# Convenience targets for the PAE reproduction.

.PHONY: install test chaos chaos-env dirty serve-chaos bench bench-fast bench-runner bench-pipeline bench-train bench-serve bench-scale verify examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# Fault-injection suite: kill-and-resume, deadlines, chaos recovery.
# PYTHONPATH makes the target work from a bare checkout too.
chaos:
	PYTHONPATH=src pytest tests/test_chaos.py tests/test_runtime_checkpoint.py -q

# Dirty-input suite: ingest-gate fuzzing plus the seeded 20%-dirt
# end-to-end bootstrap runs (same files `make test` already includes).
dirty:
	PYTHONPATH=src pytest tests/test_ingest_fuzz.py tests/test_dirt_chaos.py \
		tests/test_ingest_gate.py tests/test_corpus_dirt.py -q

# Serving chaos acceptance: a seeded fault plan (worker death, corrupt
# payloads, slow models, dirty HTML) against a live daemon — every
# request must get a structured response and the breaker must walk the
# degradation ladder down and back up.
serve-chaos:
	PYTHONPATH=src pytest tests/test_serve_chaos.py -q

# Environment-fault acceptance: SIGKILLed shard workers (detected,
# respawned, requeued — output bit-identical), poisoned-shard
# quarantine, ENOSPC during prep-cache/checkpoint writes (counted
# degradation, never a crash), dueling runs on one cache directory,
# and memory-pressure throttling. Seeded and sized for a 1-CPU box.
chaos-env:
	PYTHONPATH=src pytest tests/test_chaos_env.py tests/test_runtime_pool.py \
		tests/test_runtime_storage.py -q

bench:
	pytest benchmarks/ --benchmark-only

# Quick shape check at reduced scale (~3-4 min).
bench-fast:
	REPRO_BENCH_PRODUCTS=120 pytest benchmarks/ --benchmark-only

# Serial vs parallel sweep wall-clock -> BENCH_runner.json.
bench-runner:
	python benchmarks/bench_runner.py

# Per-stage uncached-vs-optimized pipeline timings -> BENCH_pipeline.json.
# The committed baseline was measured at this exact config on the commit
# before the bucketed trainer landed; vs_previous tracks the true
# before/after (per-stage speedups included).
bench-pipeline:
	PYTHONPATH=src python -m repro.perf.bench --out BENCH_pipeline.json \
		--compare benchmarks/baselines/pre_trainer_pipeline.json

# Trainer-mode micro-bench on captured real problems -> BENCH_train.json
# (monolithic vs bucketed vs 2-worker E-step vs SGD, plus the
# exact-path bit-identity verdict).
bench-train:
	PYTHONPATH=src python -m repro.perf.bench_train --out BENCH_train.json

# Serve-path bench over real HTTP: p50/p99 latency + throughput at 8
# concurrent clients, plus shed/quarantine/breaker counters under an
# overload burst and a seeded chaos phase -> BENCH_serve.json.
bench-serve:
	PYTHONPATH=src python -m repro.perf.bench_serve --out BENCH_serve.json

# Streamed-bootstrap scale bench: cold vs prep-cache-warm pages/sec,
# peak RSS, shard counts and per-stage shares at 1k/10k/100k pages ->
# BENCH_scale.json (each scale in a fresh child process so VmHWM is
# per-scale). Add --profile to fold cProfile tops into the record.
bench-scale:
	PYTHONPATH=src python -m repro.perf.bench_scale --out BENCH_scale.json

# Tier-1 suite plus the serve chaos acceptance, the environment-fault
# acceptance, a one-pass small-corpus bench smoke and the
# sharded-vs-monolithic bit-identity gate (streamed runs with the prep
# cache cold, warm and disabled): the quick pre-merge gate.
verify:
	PYTHONPATH=src pytest tests/ -x -q
	$(MAKE) serve-chaos
	$(MAKE) chaos-env
	PYTHONPATH=src python -m repro.perf.bench --out /tmp/BENCH_smoke.json \
		--products 40 --iterations 2 --repeats 1
	PYTHONPATH=src python -m repro.perf.bench_scale --smoke

examples:
	python examples/quickstart.py
	python examples/multilingual_catalog.py
	python examples/specialized_models.py
	python examples/ablation_study.py
	python examples/error_analysis.py

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
