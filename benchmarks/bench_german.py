"""§VII-B/C — the German categories (language independence).

Paper values (CRF + cleaning): mailbox 94.36%/73%, coffee machines
92%/57.3%, garden 84.2%/87%. Shapes asserted: German precision is
comparable to Japanese (high); the noisy garden category is the least
precise of the three.
"""

from __future__ import annotations

import statistics

from repro.experiments import german


def bench_german_categories(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: german.run(settings), rounds=1, iterations=1
    )
    report("german", result.format())

    by_name = {row.category: row for row in result.rows}
    # Precision is high for the clean categories...
    assert statistics.mean(row.precision for row in result.rows) > 0.75
    # ...and garden is the weakest, like its Japanese counterpart.
    assert by_name["garden_de"].precision == min(
        row.precision for row in result.rows
    )
    # Everything extracts a non-trivial number of triples.
    assert all(row.n_triples > 20 for row in result.rows)
