"""Figure 3 — precision/coverage across bootstrap iterations, CRF with
and without cleaning.

Paper shapes: coverage rises strongly across iterations (and a little
less with cleaning); precision decays from the seed's level but
cleaning keeps the average loss small; high-precision categories stay
high throughout.
"""

from __future__ import annotations

import statistics

from repro.experiments import figure3


def bench_figure3_curves(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure3.run(settings), rounds=1, iterations=1
    )
    report("figure3", result.format())

    for (category, cleaned), points in result.curves.items():
        # Coverage is (weakly) monotone: triples only accumulate.
        coverages = [point.coverage for point in points]
        assert coverages == sorted(coverages), (category, cleaned)
        # Bootstrap multiplies the seed's coverage.
        assert coverages[-1] > 1.5 * max(coverages[0], 0.02), category

    # Cleaning trades coverage for precision, on average.
    def avg(metric: str, cleaned: bool, iteration: int) -> float:
        return statistics.mean(
            getattr(points[iteration], metric)
            for (_, flag), points in result.curves.items()
            if flag is cleaned
        )

    final = settings.iterations
    assert avg("precision", True, final) >= avg("precision", False, final)
    assert avg("coverage", True, final) <= avg("coverage", False, final) + 0.02
    # With cleaning, final precision stays high (paper: above ~85%).
    assert avg("precision", True, final) > 0.8
