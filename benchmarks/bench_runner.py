"""Serial vs. parallel sweep benchmark for the CategoryRunner.

Runs the same 4-category sweep twice — once serially inline, once over
a process pool — verifies the results are identical, and records both
wall-clocks (plus the visible CPU count, so single-core CI numbers are
interpretable) to ``BENCH_runner.json`` at the repo root. Re-run with
``make bench-runner``; the committed artifact tracks the perf
trajectory PR over PR.

The parallel sweep exercises the cheap-to-ship job path: generator-spec
jobs (category + scale + seed, materialised in the worker) with
``slim_results=True`` so neither page corpora nor training material
ever cross the process boundary. The runner itself caps the pool at
the visible CPUs — the artifact records both the requested and the
effective worker count, because on a single-core box the honest
"parallel" configuration is a one-worker pool, not four thrashing
workers.

Scale knobs: ``REPRO_BENCH_PRODUCTS`` (default 120 pages/category),
``REPRO_BENCH_ITERATIONS`` (default 2 bootstrap cycles) and
``REPRO_BENCH_REPEATS`` (default 2; each mode is timed best-of-N).
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.config import PipelineConfig  # noqa: E402
from repro.runtime import CategoryRunner, RunnerJob  # noqa: E402
from repro.runtime.runner import visible_cpus  # noqa: E402

CATEGORIES = ("tennis", "kitchen", "garden", "vacuum_cleaner")
ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_runner.json"


def _jobs(products: int, iterations: int) -> list[RunnerJob]:
    config = PipelineConfig(iterations=iterations)
    return [
        RunnerJob.generate(
            category, products, config, data_seed=7, slim_results=True
        )
        for category in CATEGORIES
    ]


def _best_of(repeats: int, run):
    """Run ``run()`` ``repeats`` times; (best seconds, last outcomes)."""
    best = float("inf")
    outcomes = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        outcomes = run()
        best = min(best, time.perf_counter() - start)
    return best, outcomes


def main() -> int:
    products = int(os.environ.get("REPRO_BENCH_PRODUCTS", "120"))
    iterations = int(os.environ.get("REPRO_BENCH_ITERATIONS", "2"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
    workers = 4
    cpus = visible_cpus()
    effective_workers = min(workers, cpus, len(CATEGORIES))

    print(
        f"sweep: {len(CATEGORIES)} categories x {products} products, "
        f"{iterations} iterations, best of {repeats} "
        f"({cpus} CPU(s) visible; {workers} workers requested, "
        f"{effective_workers} effective)"
    )

    serial_seconds, serial = _best_of(
        repeats,
        lambda: CategoryRunner(mode="serial").run(
            _jobs(products, iterations)
        ),
    )
    print(f"serial:   {serial_seconds:.2f}s")

    parallel_seconds, parallel = _best_of(
        repeats,
        lambda: CategoryRunner(workers=workers, mode="process").run(
            _jobs(products, iterations)
        ),
    )
    print(f"parallel: {parallel_seconds:.2f}s")

    failures = [o.job_name for o in serial + parallel if not o.ok]
    identical = not failures and all(
        s.result.bootstrap == p.result.bootstrap
        for s, p in zip(serial, parallel)
    )
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    print(f"speedup:  {speedup:.2f}x   identical results: {identical}")

    record = {
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "cpu_count": cpus,
        "workers": workers,
        "effective_workers": effective_workers,
        "categories": list(CATEGORIES),
        "products": products,
        "iterations": iterations,
        "repeats": repeats,
        "slim_results": True,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 3),
        "identical_results": identical,
        "per_category_seconds": {
            outcome.job_name: round(outcome.seconds, 3)
            for outcome in parallel
        },
        "failures": failures,
    }
    ARTIFACT.write_text(json.dumps(record, indent=2) + "\n")
    print(f"recorded to {ARTIFACT}")
    if failures or not identical:
        print("ERROR: sweep failed or results diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
