"""§VIII-C — per-attribute precision for complex attributes.

Paper values: Digital Cameras — shutter speed 100%, effective pixels
90%, weight 100%; Vacuum Cleaner — type >90%, container type >90%,
power supply 87%. Coverage for these attributes is small (~10%..40%).
"""

from __future__ import annotations

import statistics

from repro.experiments import per_attribute


def bench_per_attribute_precision(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: per_attribute.run(settings), rounds=1, iterations=1
    )
    report("per_attribute", result.format())

    judged = [row for row in result.rows if row.n_triples > 0]
    assert len(judged) >= 4
    # Complex attributes stay high-precision under the global model.
    assert statistics.mean(row.precision for row in judged) > 0.75
    # Their coverage is limited (the §VIII-D motivation).
    assert statistics.mean(row.coverage for row in judged) < 0.8
