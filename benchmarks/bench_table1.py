"""Table I — seed precision and coverage across the 8 core categories.

Paper values (precision of triples / coverage of truth triples):
Tennis 98.8/25.5, Kitchen 93.0/19.5, Cosmetics 93.1/36.6, Garden
88.5/8.3, Shoes 92.1/6.5, Ladies Bags 98.1/39.2, Digital Cameras
99.7/12.1, Vacuum Cleaner 96.5/27.3. Expected shapes: seed precision
is high everywhere (≈90%+ on average), Garden is the weakest seed, and
coverage stays far below half of the truth.
"""

from __future__ import annotations

import statistics

from repro.experiments import table1


def bench_table1_seed(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: table1.run(settings), rounds=1, iterations=1
    )
    report("table1", result.format())

    by_name = {row.category: row for row in result.rows}
    precisions = [row.precision_triples for row in result.rows]
    # Seed precision is high on average (paper: ~95% pairs, 88-99 triples).
    assert statistics.mean(precisions) > 0.85
    # Garden has the weakest seed of the eight categories.
    assert by_name["garden"].precision_triples == min(precisions)
    # The seed never covers even half of the truth sample; bootstrap
    # exists because of this gap.
    assert all(row.coverage_triples < 0.55 for row in result.rows)
    # Pair precision is at least as good as triple precision on average
    # (a wrong product association can still be a valid pair).
    pair_mean = statistics.mean(
        row.precision_pairs for row in result.rows
    )
    assert pair_mean >= statistics.mean(precisions) - 0.02
