"""§IX future work — the CRF+LSTM ensemble, measured.

The paper predicts the two models "can complement each other". The
agreement ensemble should be at least as precise as either member;
the union ensemble should cover at least as much as either member.
"""

from __future__ import annotations

from repro.evaluation import coverage, precision
from repro.evaluation.report import format_table
from repro.experiments.common import (
    cached_run,
    cached_truth,
    crf_config,
    lstm_config,
)
from repro.config import PipelineConfig

CATEGORY = "ladies_bags"


def bench_ensemble_policies(benchmark, settings, report):
    def run():
        rows = {}
        truth = cached_truth(
            CATEGORY, settings.products, settings.data_seed
        )
        configurations = {
            "CRF": crf_config(1, cleaning=True),
            "RNN 2 epochs": lstm_config(1, epochs=2, cleaning=True),
            "ensemble (agreement)": PipelineConfig(
                iterations=1, tagger="ensemble",
                ensemble_policy="agreement",
            ),
            "ensemble (union)": PipelineConfig(
                iterations=1, tagger="ensemble", ensemble_policy="union"
            ),
        }
        for name, config in configurations.items():
            result = cached_run(
                CATEGORY, settings.products, settings.data_seed, config
            )
            triples = result.triples_after(1)
            rows[name] = (
                precision(triples, truth).precision,
                coverage(triples, settings.products),
                len(triples),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ensemble",
        format_table(
            ["configuration", "precision%", "coverage%", "#triples"],
            [
                [name, 100 * p, 100 * c, n]
                for name, (p, c, n) in rows.items()
            ],
            title="§IX — ensemble tagger vs its members "
            f"(1st iteration, {CATEGORY})",
        ),
    )

    # Agreement is at least as precise as the weaker member.
    weakest_member = min(rows["CRF"][0], rows["RNN 2 epochs"][0])
    assert rows["ensemble (agreement)"][0] >= weakest_member - 0.02
    # Union covers at least as much as either member.
    best_member_coverage = max(rows["CRF"][1], rows["RNN 2 epochs"][1])
    assert rows["ensemble (union)"][1] >= best_member_coverage - 0.02
    # Agreement trades coverage for that precision.
    assert (
        rows["ensemble (agreement)"][1]
        <= rows["ensemble (union)"][1] + 0.01
    )
