"""Table IV — module-ablation precision (Vacuum Cleaner, Garden).

Paper shapes: knocking out modules costs precision; Garden (noisy,
small seed) leans hardest on semantic cleaning; removing both cleaning
stages is at least as bad as removing semantic cleaning alone.
"""

from __future__ import annotations

from repro.experiments import table4


def bench_table4_ablation(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: table4.run(settings), rounds=1, iterations=1
    )
    report("table4", result.format())

    final = settings.iterations
    p = result.precisions
    for category in table4.CATEGORIES:
        full = p[("CRF full", category, final)]
        no_sem = p[("CRF -sem", category, final)]
        no_both = p[("CRF -sem -synt", category, final)]
        # Stripping the veto rules on top of semantic cleaning never
        # helps (paper: an additional 10% drop in Garden).
        assert no_both <= no_sem + 0.03
        # The full system is competitive with every knockout.
        assert full >= no_both - 0.03
    # Garden depends on semantic cleaning (paper: -10% when removed).
    assert (
        p[("CRF full", "garden", final)]
        >= p[("CRF -sem -synt", "garden", final)] - 0.01
    )
