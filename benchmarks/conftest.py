"""Shared fixtures for the reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper. The
formatted output is printed and also written to
``benchmarks/results/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves the whole evaluation on disk.

Scale is controlled by ``REPRO_BENCH_PRODUCTS`` (default 160 pages per
Japanese category; the paper used 4k-12k). Absolute numbers shift with
scale; the asserted *shapes* (who wins, what grows, what drops) do not.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Bench-wide experiment settings (env-overridable scale)."""
    return ExperimentSettings()


@pytest.fixture(scope="session")
def report():
    """Persist and echo a formatted experiment table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _report
