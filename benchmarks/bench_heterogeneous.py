"""§VIII-E — heterogeneous categories.

Paper values: Baby Carriers 85.15% precision; the heterogeneous Baby
Goods parent 63.16%. Shape asserted: going one taxonomy level up (the
clothes + toys + carriers mixture) costs precision.
"""

from __future__ import annotations

from repro.experiments import heterogeneous


def bench_heterogeneous_categories(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: heterogeneous.run(settings), rounds=1, iterations=1
    )
    report("heterogeneous", result.format())

    # The homogeneous subcategory beats its heterogeneous parent.
    assert (
        result.homogeneous_precision > result.heterogeneous_precision
    )
    # Both still extract something useful.
    assert result.heterogeneous_coverage > 0.1
