"""§VIII-B — the impact of cleaning.

Paper shapes: the veto rules discard on the order of 10% of first-
iteration candidates; leaving the semantic core size unrestricted
costs at most ~1% precision in the worst categories (Garden, Shoes).
"""

from __future__ import annotations

import statistics

from repro.experiments import cleaning_impact


def bench_cleaning_impact(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: cleaning_impact.run(settings), rounds=1, iterations=1
    )
    report("cleaning", result.format())

    rates = [row.discard_rate for row in result.veto_rows]
    # Discard rate is in the right ballpark: neither negligible nor
    # wholesale (paper: ~10%).
    assert 0.005 < statistics.mean(rates) < 0.4
    # Every category produced candidates to judge.
    assert all(row.candidates > 0 for row in result.veto_rows)

    # Core-size sweep: unrestricted n is within a few points of the
    # default (paper: ≤1% worse in Garden/Shoes).
    for category in cleaning_impact.SWEEP_CATEGORIES:
        default = result.core_sweep[(category, 10)]
        unrestricted = result.core_sweep[(category, 0)]
        assert abs(default - unrestricted) < 0.08, category
