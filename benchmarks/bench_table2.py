"""Table II — precision after the first bootstrap iteration for the
five configurations (RNN 2/10 epochs, RNN 2 + cleaning, CRF, CRF +
cleaning).

Paper shapes asserted here: CRF beats the raw RNN configurations on
average; more RNN epochs trade precision away (overfitting); cleaning
improves the RNN's precision; CRF + cleaning never falls far below
plain CRF.
"""

from __future__ import annotations

import statistics

from repro.experiments import table2_3
from repro.experiments.common import CORE_CATEGORIES


def _mean(result, name: str) -> float:
    return statistics.mean(
        result.cells[(name, category)].precision
        for category in CORE_CATEGORIES
    )


def bench_table2_precision(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: table2_3.run(settings), rounds=1, iterations=1
    )
    report("table2", result.format_precision())

    crf = _mean(result, "CRF")
    crf_clean = _mean(result, "CRF + cleaning")
    rnn2 = _mean(result, "RNN 2 epochs")
    rnn10 = _mean(result, "RNN 10 epochs")
    rnn2_clean = _mean(result, "RNN 2 epochs + cleaning")

    # CRF tends to obtain better results than the overfit RNN.
    assert crf > rnn10 - 0.02
    # Overfitting: 10 epochs lose precision against 2 epochs on
    # average (individual categories may invert, as in the paper's
    # own Garden column).
    assert rnn2 > rnn10 - 0.02
    # Cleaning lifts RNN precision.
    assert rnn2_clean >= rnn2 - 0.01
    # CRF precision stays high in absolute terms (paper: ~90%+).
    assert crf_clean > 0.8
