"""Table III — coverage after the first bootstrap iteration for the
same five configurations as Table II (shared cached runs).

Paper shapes: coverage is inversely correlated with precision — the
overfitting RNN@10 covers the most; cleaning reduces coverage for the
same model; nothing is stuck at zero.
"""

from __future__ import annotations

import statistics

from repro.experiments import table2_3
from repro.experiments.common import CORE_CATEGORIES


def _mean_coverage(result, name: str) -> float:
    return statistics.mean(
        result.cells[(name, category)].coverage
        for category in CORE_CATEGORIES
    )


def bench_table3_coverage(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: table2_3.run(settings), rounds=1, iterations=1
    )
    report("table3", result.format_coverage())

    rnn2 = _mean_coverage(result, "RNN 2 epochs")
    rnn10 = _mean_coverage(result, "RNN 10 epochs")
    rnn2_clean = _mean_coverage(result, "RNN 2 epochs + cleaning")

    # The overfitting configuration buys coverage with its precision.
    assert rnn10 >= rnn2
    # Cleaning costs coverage for the same model.
    assert rnn2_clean <= rnn2 + 0.01
    # Every configuration extracts something everywhere.
    assert all(
        cell.coverage > 0.0 for cell in result.cells.values()
    )
