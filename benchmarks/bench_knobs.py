"""Design-choice ablations (DESIGN.md §4) beyond the paper's tables.

Two sweeps on Vacuum Cleaner:

* the veto unpopularity cut (keep-top share 0.6 / 0.8 / 1.0) — the
  paper fixes 80%; the sweep shows the precision/coverage trade the
  choice makes;
* the attribute-aggregation threshold — too low merges sibling
  attributes, too high leaves aliases split; cluster counts expose it.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import PipelineConfig, SeedConfig, VetoConfig
from repro.core.preprocess import aggregate_attributes, discover_candidates
from repro.evaluation import coverage, precision
from repro.evaluation.report import format_table
from repro.experiments.common import (
    cached_dataset,
    cached_run,
    cached_truth,
)

CATEGORY = "vacuum_cleaner"


def bench_veto_share_sweep(benchmark, settings, report):
    def run():
        truth = cached_truth(
            CATEGORY, settings.products, settings.data_seed
        )
        rows = []
        for share in (0.6, 0.8, 1.0):
            config = replace(
                PipelineConfig(iterations=1),
                veto=VetoConfig(keep_top_share=share),
            )
            result = cached_run(
                CATEGORY, settings.products, settings.data_seed, config
            )
            triples = result.triples_after(1)
            rows.append(
                (
                    share,
                    precision(triples, truth).precision,
                    coverage(triples, settings.products),
                    len(triples),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "knobs_veto",
        format_table(
            ["keep-top share", "precision%", "coverage%", "#triples"],
            [[s, 100 * p, 100 * c, n] for s, p, c, n in rows],
            title="Ablation — veto unpopularity cut (Vacuum Cleaner, "
            "1st iteration)",
        ),
    )
    by_share = {share: (p, c, n) for share, p, c, n in rows}
    # Disabling the cut (share=1.0) never yields more precision than
    # the strictest setting, and keeps at least as many triples.
    assert by_share[1.0][2] >= by_share[0.6][2]
    assert by_share[0.6][0] >= by_share[1.0][0] - 0.02


def bench_aggregation_threshold_sweep(benchmark, settings, report):
    def run():
        dataset = cached_dataset(
            CATEGORY, settings.products, settings.data_seed
        )
        candidates = discover_candidates(list(dataset.product_pages))
        rows = []
        for threshold in (0.15, 0.35, 0.7):
            clusters = aggregate_attributes(
                candidates,
                SeedConfig(aggregation_threshold=threshold),
            )
            surfaces = len(clusters.canonical)
            names = len(clusters.cluster_names())
            rows.append((threshold, surfaces, names))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "knobs_aggregation",
        format_table(
            ["threshold", "#surface names", "#clusters"],
            list(rows),
            title="Ablation — attribute-aggregation threshold "
            "(Vacuum Cleaner)",
        ),
    )
    by_threshold = {t: clusters for t, _, clusters in rows}
    # Cluster count is monotone in the threshold: lower thresholds
    # merge at least as aggressively.
    assert by_threshold[0.15] <= by_threshold[0.35] <= by_threshold[0.7]
