"""Figure 4 — average triples per product, CRF vs RNN (1st iteration,
with cleaning).

Paper shapes: CRF consistently associates more triples per product
than the RNN, and both stay below three properties per product on
average (the §VIII-D motivation for specialized models).
"""

from __future__ import annotations

import statistics

from repro.experiments import figure4_6
from repro.experiments.common import CORE_CATEGORIES


def bench_figure4_triples_per_product(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure4_6.run_figure4(settings), rounds=1, iterations=1
    )
    report("figure4", result.format())

    crf_wins = sum(
        result.per_product[("CRF", category)]
        >= result.per_product[("RNN", category)]
        for category in CORE_CATEGORIES
    )
    # CRF associates more triples in (at least) most categories.
    assert crf_wins >= len(CORE_CATEGORIES) - 2
    # Both approaches find fewer than three properties per product.
    assert statistics.mean(
        result.per_product[("CRF", category)]
        for category in CORE_CATEGORIES
    ) < 3.0
    assert statistics.mean(
        result.per_product[("RNN", category)]
        for category in CORE_CATEGORIES
    ) < 3.0
