"""§VIII-A — value diversification (Vacuum Cleaner weights).

Paper shapes: without the module the seed contains no decimal weight
(the frequency and query filters only keep popular integer shapes),
the system finds far fewer distinct weight values (166 vs 1068, all
integers) and precision drops (86% → 75% overall in Table IV's -div
row).
"""

from __future__ import annotations

from repro.experiments import diversification


def bench_diversification_study(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: diversification.run(settings), rounds=1, iterations=1
    )
    report("diversification", result.format())

    with_div = result.with_div
    without = result.without_div
    # The undiversified seed is decimal-starved (only query-log strays
    # remain); diversification restores the decimal shape.
    assert with_div.seed_weight_decimals >= (
        2 * max(without.seed_weight_decimals, 1)
    )
    # Diversification multiplies the distinct weight values found.
    assert with_div.final_weight_values > without.final_weight_values
    # And it does not cost precision.
    assert with_div.precision >= without.precision - 0.02
