"""Figure 7 — attribute coverage, global vs specialized models
(Digital Cameras: shutter speed, effective pixels, weight).

Paper shape: specialized models increase the studied attributes'
coverage, "in some cases by orders of magnitude".
"""

from __future__ import annotations

from repro.experiments import figure7_8


def bench_figure7_camera_specialization(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure7_8.run_figure7(settings), rounds=1, iterations=1
    )
    report("figure7", result.format("Figure 7"))

    improvements = [
        result.specialized_coverage[attribute]
        - result.global_coverage[attribute]
        for attribute in result.attributes
    ]
    # Specialization never collapses the studied attributes' coverage
    # (the paper reports orders-of-magnitude gains; at bench scale the
    # global model is far less starved, so coverage moves little — see
    # EXPERIMENTS.md)...
    assert min(improvements) > -0.12
    # ...and the specialization benefit shows up somewhere: either a
    # coverage gain or a per-attribute precision gain.
    precision_gains = [
        result.single_attribute_precision.get(attribute, 0.0)
        - result.global_precision.get(attribute, 0.0)
        for attribute in result.attributes
    ]
    assert max(improvements) >= 0.0 or max(precision_gains) > 0.0
