"""Figure 8 — attribute coverage, global vs specialized models
(Vacuum Cleaner: type, container type, power supply type).

Paper shapes: specialization increases coverage for the subset, but
fully per-attribute models can *lose* precision — power supply type
drops from >90% to <70% in the paper because the single-attribute
model loses the contrast with ``type``.
"""

from __future__ import annotations

from repro.experiments import figure7_8


def bench_figure8_vacuum_specialization(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure7_8.run_figure8(settings), rounds=1, iterations=1
    )
    report("figure8", result.format("Figure 8"))

    improvements = [
        result.specialized_coverage[attribute]
        - result.global_coverage[attribute]
        for attribute in result.attributes
    ]
    # Non-inferiority at bench scale (see bench_figure7 note).
    assert min(improvements) > -0.12
    precision_gains = [
        result.single_attribute_precision.get(attribute, 0.0)
        - result.global_precision.get(attribute, 0.0)
        for attribute in result.attributes
    ]
    assert max(improvements) >= 0.0 or max(precision_gains) > 0.0

    # Single-attribute models are not precision-safe: at least one of
    # the three loses precision against the global model.
    losses = [
        result.global_precision[attribute]
        - result.single_attribute_precision[attribute]
        for attribute in result.attributes
        if result.single_attribute_precision[attribute] > 0
    ]
    assert losses and max(losses) > -0.05
