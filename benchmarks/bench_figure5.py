"""Figure 5 — triple counts through bootstrap iterations (CRF +
cleaning).

Paper shape: "a steady increase that would yield decreasing gains
should the iterations continue" — counts grow monotonically and the
first cycle contributes the largest single gain for most categories.
"""

from __future__ import annotations

from repro.experiments import figure5


def bench_figure5_triple_growth(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure5.run(settings), rounds=1, iterations=1
    )
    report("figure5", result.format())

    first_gain_dominates = 0
    for category, counts in result.counts.items():
        # Monotone accumulation.
        assert list(counts) == sorted(counts), category
        gains = result.gains(category)
        assert gains[0] > 0, category
        if gains[0] == max(gains):
            first_gain_dominates += 1
    # Decreasing returns: the first cycle is the biggest gain almost
    # everywhere.
    assert first_gain_dominates >= len(result.counts) - 1
