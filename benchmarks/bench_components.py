"""Component micro-benchmarks: the substrates' raw throughput.

Unlike the table/figure benches (one-shot experiment regenerations),
these measure steady-state component performance over multiple rounds —
useful for catching performance regressions in the from-scratch
substrates (HTML parsing, tokenization, CRF training/decoding, LSTM
epochs, word2vec).
"""

from __future__ import annotations

import random

import pytest

from repro.config import CrfConfig, LstmConfig
from repro.core.text import tokenize_page
from repro.corpus import Marketplace
from repro.embeddings import Word2Vec
from repro.html import extract_dictionary_tables, parse_html
from repro.ml import CrfTagger, LstmTagger
from repro.nlp import get_locale
from repro.types import Sentence, TaggedSentence


@pytest.fixture(scope="module")
def pages():
    dataset = Marketplace(seed=5).generate("vacuum_cleaner", 60)
    return [generated.page for generated in dataset.pages]


@pytest.fixture(scope="module")
def training_data():
    ja = get_locale("ja")
    rng = random.Random(0)
    colors = ["aka", "ao", "shiro", "kuro", "midori"]
    weights = ["2 kg", "3 kg", "5 kg", "1 . 5 kg"]
    data = []
    for index in range(250):
        color = rng.choice(colors)
        weight = rng.choice(weights)
        tokens = ja.tokens(
            f"iro wa {color} desu soshite juryo wa {weight} desu"
        )
        texts = [token.text for token in tokens]
        labels = ["O"] * len(tokens)
        labels[texts.index(color)] = "B-iro"
        weight_tokens = weight.split()
        for start in range(len(texts)):
            if texts[start:start + len(weight_tokens)] == weight_tokens:
                labels[start] = "B-juryo"
                for offset in range(1, len(weight_tokens)):
                    labels[start + offset] = "I-juryo"
                break
        data.append(
            TaggedSentence(Sentence(f"p{index}", 0, tokens), tuple(labels))
        )
    return data


def bench_html_parse(benchmark, pages):
    html = pages[0].html

    def parse():
        return parse_html(html)

    root = benchmark(parse)
    assert root.find("title") is not None


def bench_table_extraction(benchmark, pages):
    documents = [page.html for page in pages]

    def extract():
        return sum(
            len(extract_dictionary_tables(document))
            for document in documents
        )

    benchmark(extract)


def bench_page_tokenization(benchmark, pages):
    page = pages[0]

    def tokenize():
        return tokenize_page(page)

    text = benchmark(tokenize)
    assert text.token_count() > 0


def bench_crf_training(benchmark, training_data):
    def train():
        return CrfTagger(CrfConfig(max_iterations=30)).train(
            training_data
        )

    tagger = benchmark.pedantic(train, rounds=2, iterations=1)
    assert tagger.feature_count > 0


def bench_crf_decoding(benchmark, training_data):
    tagger = CrfTagger(CrfConfig(max_iterations=30)).train(training_data)
    sentences = [tagged.sentence for tagged in training_data]

    def decode():
        return tagger.tag(sentences)

    results = benchmark(decode)
    assert len(results) == len(sentences)


def bench_lstm_epoch(benchmark, training_data):
    def train():
        return LstmTagger(LstmConfig(epochs=1)).train(training_data)

    benchmark.pedantic(train, rounds=2, iterations=1)


def bench_word2vec_training(benchmark, pages):
    from repro.core.text import corpus_token_sentences, tokenize_pages

    corpus = corpus_token_sentences(tokenize_pages(pages))

    def train():
        return Word2Vec(dim=16, epochs=3, seed=0).train(corpus)

    model = benchmark.pedantic(train, rounds=2, iterations=1)
    assert model.fitted
