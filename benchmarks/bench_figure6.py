"""Figure 6 — increase in #triples after the first bootstrap cycle for
the RNN configurations.

Paper shapes: RNN@10 epochs adds far more triples than RNN@2; adding
cleaning to RNN@2 systematically shrinks the increase.
"""

from __future__ import annotations

from repro.experiments import figure4_6
from repro.experiments.common import CORE_CATEGORIES


def bench_figure6_rnn_increase(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure4_6.run_figure6(settings), rounds=1, iterations=1
    )
    report("figure6", result.format())

    ten_wins = sum(
        result.increases[("RNN 10 epochs", category)]
        >= result.increases[("RNN 2 epochs", category)]
        for category in CORE_CATEGORIES
    )
    clean_shrinks = sum(
        result.increases[("RNN 2 epochs + cleaning", category)]
        <= result.increases[("RNN 2 epochs", category)]
        for category in CORE_CATEGORIES
    )
    assert ten_wins >= len(CORE_CATEGORIES) - 2
    assert clean_shrinks >= len(CORE_CATEGORIES) - 1
