"""Tests for report formatting."""

from repro.evaluation import format_table


def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [["a", 1], ["longer-name", 2.5]],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("name")
    assert "longer-name" in lines[-1]
    # Columns align: every data line has the separator width.
    assert len(lines[2]) >= len("longer-name")


def test_floats_rendered_with_two_decimals():
    text = format_table(["x"], [[1.23456]])
    assert "1.23" in text


def test_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text


def test_no_title():
    text = format_table(["a"], [["x"]])
    assert not text.startswith("\n")
    assert text.splitlines()[0].startswith("a")


def test_iteration_report_shape(small_vacuum_dataset):
    from repro import PipelineConfig
    from repro.core.bootstrap import Bootstrapper
    from repro.evaluation import build_truth_sample
    from repro.evaluation.report import iteration_report

    result = Bootstrapper(PipelineConfig(iterations=1)).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    truth = build_truth_sample(small_vacuum_dataset)
    text = iteration_report(result, truth, len(small_vacuum_dataset))
    lines = text.splitlines()
    # header + separator + (iterations + 1) rows
    assert len(lines) == 2 + 2
