"""Tests for the circuit breaker and degradation ladder (stepped clock)."""

import pytest

from repro.serve.breaker import (
    CLOSED,
    DICTIONARY_LEVEL,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    DegradationLadder,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


def test_breaker_trips_after_threshold(clock):
    breaker = CircuitBreaker(3, 5.0, clock)
    for _ in range(2):
        breaker.record_failure()
        assert breaker.state == CLOSED
    assert breaker.record_failure()  # third strike
    assert breaker.state == OPEN
    assert breaker.admit() == (False, False)


def test_success_resets_the_failure_streak(clock):
    breaker = CircuitBreaker(3, 5.0, clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED  # streak restarted, not cumulative


def test_half_open_admits_exactly_one_probe(clock):
    breaker = CircuitBreaker(1, 5.0, clock)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(5.0)
    assert breaker.admit() == (True, True)  # the probe
    assert breaker.admit() == (False, False)  # racing arrival refused
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.admit() == (True, False)


def test_failed_probe_reopens_for_a_fresh_cooldown(clock):
    breaker = CircuitBreaker(1, 5.0, clock)
    breaker.record_failure()
    clock.advance(5.0)
    admitted, probe = breaker.admit()
    assert admitted and probe
    breaker.record_failure()  # probe failed
    assert breaker.state == OPEN
    clock.advance(4.9)
    assert breaker.admit() == (False, False)
    clock.advance(0.2)
    assert breaker.admit() == (True, True)


def test_ladder_routes_down_and_recovers(clock):
    ladder = DegradationLadder(
        threshold=2, cooldown_seconds=3.0, clock=clock
    )
    # Healthy: everything at level 0.
    route = ladder.acquire()
    assert route.level == 0
    ladder.success(route, 0)

    # Two failures trip level 0; next requests route to level 1.
    for _ in range(2):
        route = ladder.acquire()
        ladder.failure(route, route.level)
        ladder.success(route, DICTIONARY_LEVEL)
    assert ladder.acquire().level == 1

    # Level 1 trips too; requests land on the dictionary rung.
    for _ in range(2):
        route = ladder.acquire()
        ladder.failure(route, route.level)
        ladder.success(route, DICTIONARY_LEVEL)
    assert ladder.acquire().level == DICTIONARY_LEVEL
    assert ladder.current_level() == DICTIONARY_LEVEL

    # After cooldown a single probe goes to the best rung...
    clock.advance(3.1)
    probe_route = ladder.acquire()
    assert probe_route.level == 0
    assert probe_route.probe
    # ...and concurrent arrivals do not pile onto the probing rung.
    assert ladder.acquire().level == 1  # level 1 also past cooldown
    # Probe succeeds: level 0 closes, traffic is back to full.
    ladder.success(probe_route, 0)
    assert ladder.current_level() == 0
    assert ladder.recoveries == 1


def test_ladder_counts_served_levels(clock):
    ladder = DegradationLadder(threshold=2, cooldown_seconds=1, clock=clock)
    route = ladder.acquire()
    ladder.success(route, 0)
    route = ladder.acquire()
    ladder.success(route, DICTIONARY_LEVEL)
    stats = ladder.stats()
    assert stats["served_at_level"]["full"] == 1
    assert stats["served_at_level"]["dictionary"] == 1


def test_abandon_releases_the_probe_slot(clock):
    ladder = DegradationLadder(threshold=1, cooldown_seconds=1, clock=clock)
    route = ladder.acquire()
    ladder.failure(route, 0)
    ladder.success(route, DICTIONARY_LEVEL)
    clock.advance(1.1)
    probe = ladder.acquire()
    assert probe.level == 0 and probe.probe
    # Probe produced no model verdict (e.g. request was a 400).
    ladder.abandon(probe)
    again = ladder.acquire()
    assert again.level == 0 and again.probe


def test_half_open_state_is_visible_in_stats(clock):
    ladder = DegradationLadder(threshold=1, cooldown_seconds=1, clock=clock)
    route = ladder.acquire()
    ladder.failure(route, 0)
    clock.advance(1.1)
    ladder.acquire()
    assert ladder.stats()["breakers"]["full"]["state"] == HALF_OPEN
