"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name


def test_unknown_locale_error_carries_context():
    error = errors.UnknownLocaleError("fr", ("de", "ja"))
    assert error.locale == "fr"
    assert error.known == ("de", "ja")
    assert "fr" in str(error)
    assert "de" in str(error)


def test_not_fitted_error_names_the_model():
    error = errors.NotFittedError("CrfTagger")
    assert "CrfTagger" in str(error)


def test_config_errors_are_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.ConfigError("bad")


def test_schema_error_is_config_error():
    assert issubclass(errors.SchemaError, errors.ConfigError)


def test_model_errors_grouped():
    assert issubclass(errors.NotFittedError, errors.ModelError)
    assert issubclass(errors.TrainingError, errors.ModelError)
