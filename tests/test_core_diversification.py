"""Tests for value diversification (PoS-shape re-injection)."""

from collections import Counter

from repro.config import SeedConfig
from repro.core.preprocess import aggregate_attributes, diversify_values
from repro.core.preprocess.candidate_discovery import RawCandidate
from repro.core.preprocess.diversification import pos_sequence


def _setup(rows):
    candidates = [
        RawCandidate(page, "juryo", value) for page, value in rows
    ]
    clusters = aggregate_attributes(
        candidates, SeedConfig(min_attribute_pages=1)
    )
    return candidates, clusters


def test_pos_sequence_of_integer_and_decimal():
    assert pos_sequence("5 kg", "ja") == ("NUM", "UNIT")
    assert pos_sequence("2 . 5 kg", "ja") == ("NUM", "SYM", "NUM", "UNIT")


def test_rare_shape_reinjected():
    """The §VIII-A scenario: the cleaned seed has only integers, the
    raw candidates also contain rare decimals — diversification adopts
    the most frequent decimal values."""
    rows = [(f"p{i}", f"{i % 4 + 1} kg") for i in range(12)]
    rows += [("q1", "2 . 5 kg"), ("q2", "2 . 5 kg"), ("q3", "7 . 1 kg")]
    candidates, clusters = _setup(rows)
    cleaned = {"juryo": Counter({f"{m} kg": 3 for m in (1, 2, 3, 4)})}
    diversified = diversify_values(
        cleaned, candidates, clusters, "ja",
        SeedConfig(diversification_k=3, diversification_n=2),
    )
    assert "2 . 5 kg" in diversified["juryo"]


def test_respects_n_limit_per_shape():
    rows = [(f"p{i}", f"{i % 4 + 1} kg") for i in range(12)]
    rows += [(f"d{i}", f"{i} . 5 kg") for i in range(6)]
    candidates, clusters = _setup(rows)
    cleaned = {"juryo": Counter({"1 kg": 3})}
    diversified = diversify_values(
        cleaned, candidates, clusters, "ja",
        SeedConfig(diversification_k=4, diversification_n=2),
    )
    decimals = [
        value for value in diversified["juryo"] if " . " in value
    ]
    assert len(decimals) == 2


def test_respects_k_shapes():
    rows = (
        [(f"a{i}", f"{i+1} kg") for i in range(8)]          # NUM UNIT
        + [(f"b{i}", f"{i} . 5 kg") for i in range(4)]      # NUM SYM NUM UNIT
        + [(f"c{i}", "kamipakku") for i in range(2)]        # NN (rarest)
    )
    candidates, clusters = _setup(rows)
    cleaned = {"juryo": Counter({"1 kg": 3})}
    diversified = diversify_values(
        cleaned, candidates, clusters, "ja",
        SeedConfig(diversification_k=2, diversification_n=3),
    )
    # The NN shape is the least frequent and falls outside top-2.
    assert "kamipakku" not in diversified["juryo"]


def test_disabled_when_k_or_n_zero():
    rows = [("p1", "1 kg"), ("p2", "2 . 5 kg")]
    candidates, clusters = _setup(rows)
    cleaned = {"juryo": Counter({"1 kg": 1})}
    out = diversify_values(
        cleaned, candidates, clusters, "ja",
        SeedConfig(diversification_k=0, diversification_n=0),
    )
    assert dict(out["juryo"]) == {"1 kg": 1}


def test_input_not_mutated():
    rows = [(f"p{i}", "1 kg") for i in range(3)]
    rows += [("q1", "2 . 5 kg")]
    candidates, clusters = _setup(rows)
    cleaned = {"juryo": Counter({"1 kg": 3})}
    diversify_values(cleaned, candidates, clusters, "ja", SeedConfig())
    assert dict(cleaned["juryo"]) == {"1 kg": 3}


def test_attributes_missing_from_cleaned_are_not_added():
    rows = [("p1", "1 kg")]
    candidates, clusters = _setup(rows)
    out = diversify_values({}, candidates, clusters, "ja", SeedConfig())
    assert out == {}
