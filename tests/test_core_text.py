"""Tests for page tokenization."""

from repro.core.text import (
    corpus_token_sentences,
    tokenize_page,
    tokenize_pages,
)
from repro.types import ProductPage


def _page(body, product_id="p1", locale="ja"):
    return ProductPage(
        product_id, "cat",
        f"<html><head><title>Kamera X</title></head>"
        f"<body>{body}</body></html>",
        locale,
    )


def test_title_is_first_sentence():
    text = tokenize_page(_page("<p>honbun。</p>"))
    assert text.sentences[0].texts()[0] == "Kamera"
    assert text.sentences[0].index == 0


def test_table_contents_excluded():
    text = tokenize_page(
        _page(
            "<table><tr><td>iro</td><td>mimizuku-value</td></tr></table>"
            "<p>honbun。</p>"
        )
    )
    all_tokens = {
        token.text
        for sentence in text.sentences
        for token in sentence
    }
    assert "mimizuku" not in " ".join(all_tokens)


def test_sentences_carry_product_id():
    text = tokenize_page(_page("<p>a。b。</p>", product_id="px"))
    assert all(s.product_id == "px" for s in text.sentences)
    assert text.product_id == "px"


def test_sentence_indices_page_wide():
    text = tokenize_page(_page("<p>a。b。</p><p>c。</p>"))
    indices = [sentence.index for sentence in text.sentences]
    assert indices == list(range(len(indices)))


def test_token_count():
    text = tokenize_page(_page("<p>a b c。</p>"))
    assert text.token_count() == sum(
        len(sentence) for sentence in text.sentences
    )


def test_tokenize_pages_preserves_order():
    pages = [_page("<p>x。</p>", product_id=f"p{i}") for i in range(3)]
    texts = tokenize_pages(pages)
    assert [text.product_id for text in texts] == ["p0", "p1", "p2"]


def test_corpus_token_sentences_flattens():
    texts = tokenize_pages([_page("<p>a。b。</p>")])
    sentences = corpus_token_sentences(texts)
    assert all(
        isinstance(token, str)
        for sentence in sentences
        for token in sentence
    )
    assert len(sentences) == len(texts[0].sentences)


def test_german_locale_used_for_de_pages():
    page = ProductPage(
        "p1", "cat",
        "<html><body><p>Gewicht ist 2,5 kg .</p></body></html>",
        "de",
    )
    text = tokenize_page(page)
    tokens = [t.text for s in text.sentences for t in s]
    assert "2,5" in tokens
