"""Targeted tests for the page generator's behaviour knobs."""

import random
from dataclasses import replace

from repro.corpus import get_schema
from repro.corpus.pages import PageGenerator
from repro.html import extract_dictionary_tables, extract_text_blocks


def _pages(schema, seed=0, count=60):
    generator = PageGenerator(schema, random.Random(seed))
    return [generator.generate(f"x_{i}") for i in range(count)]


def test_bare_pages_suppress_statements():
    schema = replace(
        get_schema("tennis"),
        bare_page_rate=1.0,
        compact_spec_rate=0.0,
        table_coverage=0.0,
        negation_rate=0.0,
        secondary_product_rate=0.0,
    )
    for page in _pages(schema, count=25):
        # Only title statements (brand/type) can be correct on a bare
        # page; no description statement exists.
        blocks = extract_text_blocks(page.page.html)
        body = " ".join(blocks[1:])  # skip the title block
        for triple in page.correct_triples:
            assert triple.value not in body or triple.value in blocks[0]


def test_compact_spec_rate_zero_yields_no_bare_value_lines():
    schema = replace(get_schema("garden"), compact_spec_rate=0.0)
    pages_without = _pages(schema, seed=1)
    schema_with = replace(get_schema("garden"), compact_spec_rate=1.0,
                          bare_page_rate=0.0)
    pages_with = _pages(schema_with, seed=1)
    # With the knob maxed, pages state strictly more correct triples
    # on average (compact lines add statements).
    mean_without = sum(
        len(p.correct_triples) for p in pages_without
    ) / len(pages_without)
    mean_with = sum(
        len(p.correct_triples) for p in pages_with
    ) / len(pages_with)
    assert mean_with > mean_without


def test_table_coverage_zero_means_no_tables():
    schema = replace(get_schema("ladies_bags"), table_coverage=0.0)
    for page in _pages(schema, count=30):
        assert extract_dictionary_tables(page.page.html) == []


def test_table_noise_rate_injects_junk_rows():
    schema = replace(
        get_schema("ladies_bags"),
        table_coverage=1.0,
        table_noise_rate=0.9,
        table_variant_rate=0.0,
    )
    pages = _pages(schema, count=30)
    junk = [
        triple
        for page in pages
        for triple in page.incorrect_triples
        if triple.attribute in ("sonota", "bikou", "chuui jiko")
    ]
    assert junk


def test_negation_rate_one_marks_incorrect():
    schema = replace(
        get_schema("tennis"),
        negation_rate=1.0,
        secondary_product_rate=0.0,
        table_coverage=0.0,
        table_noise_rate=0.0,
        table_variant_rate=0.0,
        bare_page_rate=0.0,
        markup_noise_rate=0.0,
        compact_spec_rate=0.0,
    )
    pages = _pages(schema, count=30)
    with_negation = [page for page in pages if page.incorrect_triples]
    # Negation sampling retries up to 8 times; nearly every page
    # carries one.
    assert len(with_negation) > 20


def test_markup_noise_appears_in_visible_text():
    schema = replace(
        get_schema("tennis"), markup_noise_rate=1.0, bare_page_rate=0.0
    )
    pages = _pages(schema, count=20)
    fragments = ("<br>", "&nbsp;", "</span>", "<b>", "★★★")
    hits = 0
    for page in pages:
        text = " ".join(extract_text_blocks(page.page.html))
        if any(fragment in text for fragment in fragments):
            hits += 1
    assert hits > 10


def test_typed_title_adds_type_triple():
    schema = get_schema("vacuum_cleaner")
    pages = _pages(schema, seed=4, count=80)
    typed = [
        page
        for page in pages
        if any(
            triple.attribute == "taipu"
            and triple.value == page.assignment.get("taipu")
            for triple in page.correct_triples
        )
    ]
    assert typed  # some titles carry the true type


def test_brand_attribute_detection():
    generator = PageGenerator(
        get_schema("tennis"), random.Random(0)
    )
    assert generator._brand_attribute == "burando"
    generator_no_brand = PageGenerator(
        get_schema("garden"), random.Random(0)
    )
    assert generator_no_brand._brand_attribute is None
