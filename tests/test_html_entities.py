"""Unit tests for HTML entity decoding/encoding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.html import decode_entities, encode_entities


def test_decodes_named_entities():
    assert decode_entities("a &amp; b") == "a & b"
    assert decode_entities("&lt;br&gt;") == "<br>"
    assert decode_entities("5&nbsp;kg") == "5 kg"


def test_decodes_german_umlauts():
    assert decode_entities("Gr&uuml;n &szlig;") == "Grün ß"


def test_decodes_decimal_and_hex_references():
    assert decode_entities("&#65;&#x42;") == "AB"
    assert decode_entities("&#x3042;") == "あ"


def test_unknown_entity_passes_through():
    assert decode_entities("&unknownent;") == "&unknownent;"


def test_out_of_range_reference_passes_through():
    assert decode_entities("&#x110000;") == "&#x110000;"


def test_bare_ampersand_untouched():
    assert decode_entities("fish & chips") == "fish & chips"


def test_text_without_ampersand_is_returned_unchanged():
    text = "no entities here"
    assert decode_entities(text) is text


def test_encode_escapes_markup_characters():
    assert encode_entities('<a href="x">&') == (
        "&lt;a href=&quot;x&quot;&gt;&amp;"
    )


def test_encode_leaves_plain_text():
    assert encode_entities("juryo wa 2.5kg") == "juryo wa 2.5kg"


@given(st.text(max_size=200))
def test_encode_then_decode_round_trips(text):
    assert decode_entities(encode_entities(text)) == text
