"""Unit and property tests for the distant-supervision value matcher."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.preprocess.matcher import ValueMatcher


def test_single_word_match():
    matcher = ValueMatcher({"iro": ["aka"]})
    spans = matcher.find_spans(["iro", "wa", "aka", "desu"])
    assert spans == [(2, 3, "iro")]


def test_multiword_match():
    matcher = ValueMatcher({"juryo": ["2 . 5 kg"]})
    spans = matcher.find_spans(["juryo", "wa", "2", ".", "5", "kg", "desu"])
    assert spans == [(2, 6, "juryo")]


def test_longest_match_wins():
    matcher = ValueMatcher({"juryo": ["5 kg", "2 . 5 kg"]})
    spans = matcher.find_spans(["2", ".", "5", "kg"])
    assert spans == [(0, 4, "juryo")]


def test_ambiguous_value_skipped():
    matcher = ValueMatcher({"iro": ["aka"], "teema": ["aka"]})
    assert matcher.find_spans(["aka"]) == []


def test_page_preference_resolves_ambiguity():
    matcher = ValueMatcher({"iro": ["aka"], "teema": ["aka"]})
    spans = matcher.find_spans(["aka"], prefer={"aka": "teema"})
    assert spans == [(0, 1, "teema")]


def test_preference_for_unknown_attribute_ignored():
    matcher = ValueMatcher({"iro": ["aka"]})
    spans = matcher.find_spans(["aka"], prefer={"aka": "ghost"})
    # 'ghost' does not own the value; unique fallback applies.
    assert spans == [(0, 1, "iro")]


def test_multiple_occurrences_all_found():
    matcher = ValueMatcher({"iro": ["aka"]})
    spans = matcher.find_spans(["aka", "to", "aka"])
    assert spans == [(0, 1, "iro"), (2, 3, "iro")]


def test_no_match_in_plain_text():
    matcher = ValueMatcher({"iro": ["aka"]})
    assert matcher.find_spans(["nothing", "here"]) == []


def test_empty_matcher():
    matcher = ValueMatcher({})
    assert len(matcher) == 0
    assert matcher.find_spans(["a", "b"]) == []


def test_longest_failed_match_does_not_hide_shorter_value():
    # "2 . 5 kg" is known under juryo; "2 . 5" alone under another
    # attribute. At position 0 the longest window fails (only the
    # longest hit is tried), matching the greedy specification.
    matcher = ValueMatcher({"juryo": ["2 . 5 kg"], "saizu": ["5 cm"]})
    spans = matcher.find_spans(["2", ".", "5", "cm"])
    assert spans == [(2, 4, "saizu")]


_VOCAB = ["aka", "ao", "kg", "2", "5", ".", "wa", "desu"]


@given(
    st.lists(st.sampled_from(_VOCAB), max_size=25),
)
def test_spans_are_ordered_nonoverlapping_in_bounds(tokens):
    matcher = ValueMatcher(
        {"iro": ["aka", "ao"], "juryo": ["2 kg", "2 . 5 kg", "5 kg"]}
    )
    spans = matcher.find_spans(tokens)
    previous_end = 0
    for start, end, attribute in spans:
        assert 0 <= start < end <= len(tokens)
        assert start >= previous_end
        previous_end = end
        # Every span's tokens reproduce a known value key.
        assert " ".join(tokens[start:end]) in {
            "aka", "ao", "2 kg", "2 . 5 kg", "5 kg",
        }
