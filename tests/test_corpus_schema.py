"""Unit tests for category schemas and value specs."""

import pytest

from repro.corpus import (
    AttributeSpec,
    CategoricalValues,
    CategorySchema,
    CompositeValues,
    NumericValues,
)
from repro.corpus.schema import weighted_choice, zipf_weights
from repro.errors import SchemaError


def _attr(name="iro", **kwargs):
    return AttributeSpec(
        name=name, values=CategoricalValues(("aka", "ao")), **kwargs
    )


class TestValueSpecs:
    def test_categorical_requires_values(self):
        with pytest.raises(SchemaError):
            CategoricalValues(())

    def test_categorical_rejects_negative_skew(self):
        with pytest.raises(SchemaError):
            CategoricalValues(("a",), zipf=-1.0)

    def test_numeric_requires_ordered_range(self):
        with pytest.raises(SchemaError):
            NumericValues(10, 5, "kg")

    def test_numeric_requires_unit(self):
        with pytest.raises(SchemaError):
            NumericValues(1, 5, "")

    def test_numeric_rejects_bad_rates(self):
        with pytest.raises(SchemaError):
            NumericValues(1, 5, "kg", decimal_rate=1.5)
        with pytest.raises(SchemaError):
            NumericValues(1, 5, "kg", thousands_rate=-0.1)

    def test_numeric_rejects_zero_step(self):
        with pytest.raises(SchemaError):
            NumericValues(1, 5, "kg", step=0)

    def test_composite_requires_patterns(self):
        with pytest.raises(SchemaError):
            CompositeValues(())

    def test_composite_requires_ordered_range(self):
        with pytest.raises(SchemaError):
            CompositeValues(("1/{n}",), low=5, high=1)


class TestAttributeSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            _attr(name="")

    def test_rejects_alias_equal_to_name(self):
        with pytest.raises(SchemaError):
            _attr(aliases=("iro",))

    def test_rejects_bad_rates(self):
        with pytest.raises(SchemaError):
            _attr(presence_rate=1.5)
        with pytest.raises(SchemaError):
            _attr(table_rate=-0.1)

    def test_all_names_orders_canonical_first(self):
        spec = _attr(aliases=("karaa",))
        assert spec.all_names() == ("iro", "karaa")


class TestCategorySchema:
    def test_requires_attributes(self):
        with pytest.raises(SchemaError):
            CategorySchema(name="x", locale="ja", attributes=())

    def test_rejects_duplicate_attribute_names(self):
        with pytest.raises(SchemaError):
            CategorySchema(
                name="x", locale="ja",
                attributes=(_attr(), _attr()),
            )

    def test_rejects_alias_collision_across_attributes(self):
        first = _attr(name="iro", aliases=("karaa",))
        second = _attr(name="shurui", aliases=("karaa",))
        with pytest.raises(SchemaError):
            CategorySchema(
                name="x", locale="ja", attributes=(first, second)
            )

    def test_rejects_unknown_confusable(self):
        spec = _attr(confusable_with="ghost")
        with pytest.raises(SchemaError):
            CategorySchema(name="x", locale="ja", attributes=(spec,))

    def test_rejects_unknown_title_noun_attribute(self):
        with pytest.raises(SchemaError):
            CategorySchema(
                name="x", locale="ja", attributes=(_attr(),),
                title_noun_attribute="ghost",
            )

    def test_rejects_bad_filler_range(self):
        with pytest.raises(SchemaError):
            CategorySchema(
                name="x", locale="ja", attributes=(_attr(),),
                filler_sentences=(3, 1),
            )

    def test_attribute_lookup(self):
        schema = CategorySchema(
            name="x", locale="ja", attributes=(_attr(),)
        )
        assert schema.attribute("iro").name == "iro"
        with pytest.raises(KeyError):
            schema.attribute("ghost")
        assert schema.attribute_names() == ("iro",)


class TestZipf:
    def test_weights_are_decreasing(self):
        weights = zipf_weights(5, 1.0)
        assert weights == sorted(weights, reverse=True)

    def test_zero_skew_is_uniform(self):
        assert zipf_weights(4, 0.0) == [1.0] * 4

    def test_weighted_choice_prefers_head(self, rng):
        items = [str(i) for i in range(10)]
        draws = [weighted_choice(rng, items, 1.2) for _ in range(600)]
        assert draws.count("0") > draws.count("9")
