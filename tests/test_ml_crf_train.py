"""Tests for CRF training: numerical gradient check and learning sanity."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import TrainingError
from repro.ml.crf.train import CrfProblem, _objective, _Workspace, train_crf


def _toy_problem(seed=0, sentences=6, max_len=5, labels=3, features=7):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, max_len + 1, size=sentences)
    rows = int(lengths.sum())
    # Each position activates 2 random features.
    indices = []
    indptr = [0]
    for _ in range(rows):
        indices.extend(rng.choice(features, size=2, replace=False))
        indptr.append(len(indices))
    design = sparse.csr_matrix(
        (np.ones(len(indices)), np.array(indices), np.array(indptr)),
        shape=(rows, features),
    )
    gold = rng.integers(0, labels, size=rows)
    return CrfProblem(design, gold, lengths, labels)


def test_problem_validates_alignment():
    problem = _toy_problem()
    with pytest.raises(TrainingError):
        CrfProblem(
            problem.design,
            problem.labels[:-1],
            problem.lengths,
            problem.n_labels,
        )


def test_problem_rejects_empty_sentences():
    problem = _toy_problem()
    lengths = problem.lengths.copy()
    lengths[0] = 0
    lengths[1] += problem.lengths[0]
    with pytest.raises(TrainingError):
        CrfProblem(
            problem.design, problem.labels, lengths, problem.n_labels
        )


def test_analytic_gradient_matches_numerical():
    problem = _toy_problem(seed=3)
    workspace = _Workspace(problem)
    n_params = (
        problem.design.shape[1] * problem.n_labels
        + problem.n_labels ** 2
    )
    rng = np.random.default_rng(1)
    weights = rng.normal(scale=0.3, size=n_params)
    value, gradient = _objective(weights, workspace, l1=0.01, l2=0.1)

    epsilon = 1e-6
    for index in rng.choice(n_params, size=12, replace=False):
        bumped = weights.copy()
        bumped[index] += epsilon
        up, _ = _objective(bumped, workspace, l1=0.01, l2=0.1)
        bumped[index] -= 2 * epsilon
        down, _ = _objective(bumped, workspace, l1=0.01, l2=0.1)
        numerical = (up - down) / (2 * epsilon)
        assert gradient[index] == pytest.approx(
            numerical, rel=1e-4, abs=1e-6
        )


def test_objective_at_zero_is_uniform_nll():
    problem = _toy_problem(seed=4)
    workspace = _Workspace(problem)
    n_params = (
        problem.design.shape[1] * problem.n_labels
        + problem.n_labels ** 2
    )
    value, _ = _objective(
        np.zeros(n_params), workspace, l1=0.0, l2=0.0
    )
    # With zero weights, every position is a uniform choice over L.
    expected = problem.design.shape[0] * np.log(problem.n_labels)
    assert value == pytest.approx(expected, rel=1e-9)


def test_training_reduces_nll():
    problem = _toy_problem(seed=5, sentences=12)
    workspace = _Workspace(problem)
    unary, transitions = train_crf(
        problem, l1=0.01, l2=0.01, max_iterations=40
    )
    n_params = unary.size + transitions.size
    trained = np.concatenate([unary.ravel(), transitions.ravel()])
    nll_zero, _ = _objective(
        np.zeros(n_params), workspace, l1=0.0, l2=0.0
    )
    nll_trained, _ = _objective(trained, workspace, l1=0.0, l2=0.0)
    assert nll_trained < nll_zero


def test_regularisation_shrinks_weights():
    problem = _toy_problem(seed=6, sentences=12)
    loose_unary, _ = train_crf(problem, l1=0.0, l2=0.001, max_iterations=40)
    tight_unary, _ = train_crf(problem, l1=0.0, l2=10.0, max_iterations=40)
    assert np.abs(tight_unary).sum() < np.abs(loose_unary).sum()
