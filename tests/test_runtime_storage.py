"""Durable-storage primitives: atomic writes, classification, locking.

The contract of :mod:`repro.runtime.storage`: a reader never observes
a torn file (the write happened completely or not at all), environment
errnos surface as :class:`~repro.errors.StorageError` so callers can
degrade instead of crash, and two runs sharing a directory serialize
through :class:`DirectoryLock` — whose flock semantics make even two
handles in one process conflict, which is what these tests exploit.
"""

import errno
import os
import time

import pytest

from repro.errors import StorageError
from repro.runtime import (
    DirectoryLock,
    FaultPlan,
    FaultSpec,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
)
from repro.runtime.storage import STORAGE_ERRNOS, classify_storage_error

pytestmark = pytest.mark.usefixtures("watchdog")


# -- atomic writes -------------------------------------------------------


def test_atomic_write_text_roundtrip(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, '{"ok": 1}')
    assert target.read_text(encoding="utf-8") == '{"ok": 1}'
    # No tmp residue.
    assert sorted(p.name for p in tmp_path.iterdir()) == ["artifact.json"]


def test_atomic_write_bytes_replaces_existing(tmp_path):
    target = tmp_path / "blob.bin"
    target.write_bytes(b"old")
    atomic_write_bytes(target, b"new contents")
    assert target.read_bytes() == b"new contents"


def test_atomic_write_creates_parent_directories(tmp_path):
    target = tmp_path / "a" / "b" / "c.txt"
    atomic_write_text(target, "deep")
    assert target.read_text(encoding="utf-8") == "deep"


def test_atomic_writer_cleans_tmp_on_error(tmp_path):
    target = tmp_path / "artifact.json"
    with pytest.raises(ValueError, match="mid-write"):
        with atomic_writer(target, "wt", encoding="utf-8") as handle:
            handle.write("partial")
            raise ValueError("mid-write")
    # Neither the final file nor the tmp file survives.
    assert list(tmp_path.iterdir()) == []


def test_failed_write_leaves_previous_contents(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, "v1")
    with pytest.raises(ValueError):
        with atomic_writer(target, "wt", encoding="utf-8") as handle:
            handle.write("v2 partial")
            raise ValueError("crash")
    assert target.read_text(encoding="utf-8") == "v1"


# -- error classification ------------------------------------------------


@pytest.mark.parametrize("code", sorted(STORAGE_ERRNOS))
def test_environment_errnos_classify(code, tmp_path):
    error = OSError(code, os.strerror(code))
    classified = classify_storage_error(error, "checkpoint_write", tmp_path)
    assert isinstance(classified, StorageError)
    assert classified.op == "checkpoint_write"
    assert classified.errno == code


def test_programming_errnos_stay_plain(tmp_path):
    error = OSError(errno.EACCES, "permission denied")
    assert classify_storage_error(error, "storage", tmp_path) is None


def test_unclassified_oserror_propagates_from_writer(tmp_path):
    # Writing "under" a regular file is a caller bug (ENOTDIR), not an
    # environment failure — it must NOT come back as StorageError.
    blocker = tmp_path / "file"
    blocker.write_text("x")
    with pytest.raises(OSError) as excinfo:
        atomic_write_text(blocker / "child.txt", "data")
    assert not isinstance(excinfo.value, StorageError)


# -- fault injection through the write path ------------------------------


def test_injected_disk_full_classifies_like_the_real_thing(tmp_path):
    plan = FaultPlan([FaultSpec(stage="storage", kind="disk_full")])
    target = tmp_path / "artifact.json"
    with pytest.raises(StorageError) as excinfo:
        atomic_write_text(target, "doomed", faults=plan, op="storage")
    assert excinfo.value.errno == errno.ENOSPC
    assert not target.exists()
    # times=1: the disk "recovers" and the next write lands.
    atomic_write_text(target, "ok", faults=plan, op="storage")
    assert target.read_text(encoding="utf-8") == "ok"


def test_disk_full_targets_one_logical_op(tmp_path):
    plan = FaultPlan(
        [FaultSpec(stage="prep_cache_write", kind="disk_full", times=None)]
    )
    # A checkpoint write is unaffected by a prep-cache-targeted fault...
    atomic_write_text(
        tmp_path / "ckpt", "fine", faults=plan, op="checkpoint_write"
    )
    # ...while the named op fails every time (times=None).
    for _ in range(2):
        with pytest.raises(StorageError):
            atomic_write_text(
                tmp_path / "meta",
                "doomed",
                faults=plan,
                op="prep_cache_write",
            )


def test_slow_disk_injects_latency_not_failure(tmp_path):
    plan = FaultPlan(
        [
            FaultSpec(
                stage="storage", kind="slow_disk", delay_seconds=0.05
            )
        ]
    )
    start = time.monotonic()
    atomic_write_text(tmp_path / "slow.txt", "data", faults=plan)
    assert time.monotonic() - start >= 0.05
    assert (tmp_path / "slow.txt").read_text(encoding="utf-8") == "data"


# -- DirectoryLock -------------------------------------------------------


def test_lock_conflicts_between_handles(tmp_path):
    first = DirectoryLock(tmp_path, ".run.lock")
    second = DirectoryLock(tmp_path, ".run.lock")
    assert first.try_acquire()
    assert first.held
    # flock attaches to the open file description, so a second handle
    # conflicts even inside one process — the dueling-run scenario.
    assert not second.try_acquire()
    first.release()
    assert second.try_acquire()
    second.release()


def test_try_acquire_is_reentrant_while_held(tmp_path):
    lock = DirectoryLock(tmp_path)
    assert lock.try_acquire()
    assert lock.try_acquire()  # already ours: True, no double-open
    lock.release()


def test_acquire_timeout_raises(tmp_path):
    holder = DirectoryLock(tmp_path)
    assert holder.try_acquire()
    waiter = DirectoryLock(tmp_path)
    with pytest.raises(TimeoutError, match="another run holds it"):
        waiter.acquire(timeout=0.1, poll_seconds=0.02)
    holder.release()


def test_acquire_succeeds_once_holder_releases(tmp_path):
    holder = DirectoryLock(tmp_path)
    assert holder.try_acquire()
    holder.release()
    with DirectoryLock(tmp_path) as lock:
        assert lock.held
    assert not lock.held


def test_release_is_idempotent_and_sentinel_stays(tmp_path):
    lock = DirectoryLock(tmp_path, ".cache.lock")
    assert lock.try_acquire()
    lock.release()
    lock.release()  # no-op, no error
    # The sentinel file is the lock's anchor, not its signal: it stays
    # behind so a crashed holder never wedges later runs.
    assert (tmp_path / ".cache.lock").exists()
    assert DirectoryLock(tmp_path, ".cache.lock").try_acquire()
