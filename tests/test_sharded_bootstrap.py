"""Sharded bootstrap: bit-identity to the monolithic path + resume.

The acceptance contract of :mod:`repro.core.sharded`: for any shard
size and worker count, ``run_streamed`` produces **bit-identical**
output to ``run`` on the materialized page list — triples, seed,
per-iteration records, quarantine ledger — and a run killed mid-
iteration resumes from its per-shard tag snapshots without re-tagging
completed shards.
"""

import random

import pytest

from repro import IngestConfig, PAEPipeline, PipelineConfig
from repro.corpus import (
    GeneratedPageSource,
    Marketplace,
    MaterializedPageSource,
)
from repro.errors import FaultInjectionError, PageQuarantinedError
from repro.runtime import FaultPlan, FaultSpec, PipelineTrace
from repro.types import ProductPage

pytestmark = pytest.mark.usefixtures("watchdog")

CONFIG = PipelineConfig(iterations=2)


@pytest.fixture(scope="module")
def vacuum():
    return Marketplace(seed=7).generate("vacuum_cleaner", 40)


@pytest.fixture(scope="module")
def monolithic(vacuum):
    return PAEPipeline(CONFIG).run(
        vacuum.product_pages, vacuum.query_log
    )


def _assert_identical(streamed, monolithic):
    assert streamed.triples == monolithic.triples
    assert streamed.seed_triples == monolithic.seed_triples
    assert streamed.attributes == monolithic.attributes
    assert len(streamed.bootstrap.iterations) == len(
        monolithic.bootstrap.iterations
    )
    for mono_it, stream_it in zip(
        monolithic.bootstrap.iterations, streamed.bootstrap.iterations
    ):
        assert stream_it.new_triples == mono_it.new_triples
        assert stream_it.triples == mono_it.triples
        assert (
            stream_it.candidate_extractions
            == mono_it.candidate_extractions
        )
        assert stream_it.veto_stats == mono_it.veto_stats
        assert stream_it.semantic_stats == mono_it.semantic_stats
        assert stream_it.dataset_sentences == mono_it.dataset_sentences


# -- bit-identity across fan-out shapes ----------------------------------


@pytest.mark.parametrize("shard_size,workers", [(7, 1), (15, 2)])
def test_bit_identical_across_shard_and_worker_combos(
    vacuum, monolithic, shard_size, workers
):
    source = MaterializedPageSource(
        vacuum.product_pages, shard_size=shard_size
    )
    streamed = PAEPipeline(CONFIG).run_streamed(
        source, vacuum.query_log, shard_workers=workers
    )
    _assert_identical(streamed, monolithic)
    assert streamed.product_count == monolithic.product_count


def test_bit_identical_with_estep_fanout(vacuum):
    from dataclasses import replace

    config = replace(CONFIG, crf=replace(CONFIG.crf, estep_workers=2))
    mono = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log
    )
    source = MaterializedPageSource(vacuum.product_pages, shard_size=11)
    streamed = PAEPipeline(config).run_streamed(
        source, vacuum.query_log, shard_workers=2
    )
    _assert_identical(streamed, mono)


def test_bit_identical_without_semantic_cleaning(vacuum):
    from dataclasses import replace

    config = replace(CONFIG, enable_semantic_cleaning=False)
    mono = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log
    )
    source = MaterializedPageSource(vacuum.product_pages, shard_size=9)
    streamed = PAEPipeline(config).run_streamed(
        source, vacuum.query_log
    )
    _assert_identical(streamed, mono)


def test_merge_survives_shuffled_completion_order(
    vacuum, monolithic, monkeypatch
):
    """Tag results arriving in any order must merge identically.

    ``parallel_map`` preserves item order; this test drops that
    guarantee for the tag fan-out (results come back shuffled, as if
    fast shards finished first) and asserts the index-addressed merge
    still reproduces the monolithic output.
    """
    from repro.core.sharded import _tag_shard
    from repro.runtime import runner

    real = runner.parallel_map
    rng = random.Random(11)

    def shuffled(func, items, workers=None, **kwargs):
        results = real(func, items, workers=workers, **kwargs)
        if getattr(func, "func", None) is _tag_shard:
            results = list(results)
            rng.shuffle(results)
        return results

    monkeypatch.setattr(runner, "parallel_map", shuffled)
    source = MaterializedPageSource(vacuum.product_pages, shard_size=6)
    streamed = PAEPipeline(CONFIG).run_streamed(
        source, vacuum.query_log
    )
    _assert_identical(streamed, monolithic)


def test_max_labeled_sentences_cap_parity(vacuum):
    from dataclasses import replace

    config = replace(CONFIG, max_labeled_sentences=40)
    mono = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log
    )
    source = MaterializedPageSource(vacuum.product_pages, shard_size=13)
    streamed = PAEPipeline(config).run_streamed(
        source, vacuum.query_log
    )
    _assert_identical(streamed, mono)


# -- dirty input: the sequential-gate replay -----------------------------


def _with_cross_shard_duplicates(pages):
    # Copies of early pages appended at the end: with shard_size=10
    # the duplicates land two shards away from their originals, so
    # only the parent's global replay can catch them.
    return list(pages) + [pages[0], pages[5]]


def test_cross_shard_duplicates_match_monolithic(vacuum):
    from dataclasses import replace

    config = replace(
        CONFIG, ingest=IngestConfig(enabled=True, policy="repair")
    )
    pages = _with_cross_shard_duplicates(vacuum.product_pages)
    mono = PAEPipeline(config).run(pages, vacuum.query_log)
    source = MaterializedPageSource(pages, shard_size=10)
    streamed = PAEPipeline(config).run_streamed(
        source, vacuum.query_log, shard_workers=2
    )
    _assert_identical(streamed, mono)
    assert mono.quarantine is not None
    assert streamed.quarantine is not None
    assert (
        streamed.quarantine.to_payload() == mono.quarantine.to_payload()
    )
    checks = streamed.quarantine.counts_by_check()
    assert checks.get("duplicate_id") == 2


def test_strict_cross_shard_duplicate_raises_like_monolithic(vacuum):
    from dataclasses import replace

    config = replace(
        CONFIG, ingest=IngestConfig(enabled=True, policy="strict")
    )
    pages = _with_cross_shard_duplicates(vacuum.product_pages)
    with pytest.raises(PageQuarantinedError) as mono_error:
        PAEPipeline(config).run(pages, vacuum.query_log)
    source = MaterializedPageSource(pages, shard_size=10)
    with pytest.raises(PageQuarantinedError) as stream_error:
        PAEPipeline(config).run_streamed(source, vacuum.query_log)
    assert stream_error.value.page_id == mono_error.value.page_id
    assert stream_error.value.check == "duplicate_id"
    assert stream_error.value.detail == mono_error.value.detail


# -- page-fault injection inside shard workers ---------------------------


def test_streamed_dirt_faults_populate_quarantine(vacuum):
    from dataclasses import replace

    config = replace(CONFIG, iterations=1)
    plan = FaultPlan(
        [FaultSpec(stage="corpus", kind="dirt", corrupt_fraction=0.25)],
        seed=5,
    )
    source = MaterializedPageSource(vacuum.product_pages, shard_size=10)
    result = PAEPipeline(config).run_streamed(
        source, vacuum.query_log, faults=plan, shard_workers=2
    )
    # Worker tallies were absorbed into the parent's plan...
    assert plan.injected.get(("corpus", "dirt_pages"), 0) > 0
    counters = result.resilience_counters()
    # ...the corruption count reached the trace...
    assert counters["pages_corrupted"] > 0
    # ...and the gate contained the damage (dirt is calibrated to trip
    # at least one repair or quarantine check).
    contained = sum(counters["quarantined"].values()) + sum(
        counters["repaired"].values()
    )
    assert contained > 0


def test_streamed_corrupt_pages_faults_absorbed(vacuum):
    from dataclasses import replace

    config = replace(CONFIG, iterations=1)
    plan = FaultPlan(
        [
            FaultSpec(
                stage="corpus",
                kind="corrupt_pages",
                corrupt_fraction=0.2,
                times=None,
            )
        ],
        seed=9,
    )
    source = MaterializedPageSource(vacuum.product_pages, shard_size=10)
    result = PAEPipeline(config).run_streamed(
        source, vacuum.query_log, faults=plan
    )
    assert plan.injected.get(("corpus", "pages"), 0) > 0
    assert result.resilience_counters()["pages_corrupted"] > 0
    # The run survives the tag soup end to end.
    assert len(result.triples) > 0


def test_streamed_page_faults_deterministic_across_worker_counts(vacuum):
    from dataclasses import replace

    config = replace(CONFIG, iterations=1)
    outputs = []
    for workers in (1, 2):
        plan = FaultPlan(
            [
                FaultSpec(
                    stage="corpus", kind="dirt", corrupt_fraction=0.25
                )
            ],
            seed=5,
        )
        source = MaterializedPageSource(
            vacuum.product_pages, shard_size=10
        )
        result = PAEPipeline(config).run_streamed(
            source, vacuum.query_log, faults=plan, shard_workers=workers
        )
        outputs.append((result, dict(plan.injected)))
    (first, first_injected), (second, second_injected) = outputs
    # Decisions derive from (plan seed, shard index), so the worker
    # count cannot change what was corrupted or what came out.
    assert first_injected == second_injected
    assert first.triples == second.triples
    assert (
        first.quarantine.to_payload() == second.quarantine.to_payload()
    )


# -- generated sources end to end ----------------------------------------


def test_generated_source_runs_end_to_end():
    source = GeneratedPageSource("tennis", 30, shard_size=10, seed=7)
    trace = PipelineTrace()
    result = PAEPipeline(CONFIG).run_streamed(
        source, source.build_query_log(), trace=trace
    )
    assert len(result.triples) > 0
    assert result.coverage() > 0.0
    assert result.product_count == 30
    stages = {event.stage for event in trace.events}
    assert "shard_prep" in stages
    assert "tagger_tag" in stages
    # Peak RSS lands on the trace and in the resilience counters.
    assert result.resilience_counters()["peak_rss_bytes"] > 0


def test_generated_source_is_shard_size_invariant():
    logs = []
    results = []
    for shard_size in (7, 30):
        source = GeneratedPageSource(
            "tennis", 30, shard_size=shard_size, seed=7
        )
        logs.append(source.build_query_log().counts)
        results.append(
            PAEPipeline(CONFIG).run_streamed(
                source, source.build_query_log()
            )
        )
    assert logs[0] == logs[1]
    assert results[0].triples == results[1].triples
    assert results[0].seed_triples == results[1].seed_triples


# -- kill-and-resume mid-iteration ---------------------------------------


def test_kill_mid_iteration_resumes_without_retagging(vacuum, tmp_path):
    from dataclasses import replace

    config = replace(CONFIG, stage_retries=0)
    source = MaterializedPageSource(vacuum.product_pages, shard_size=10)
    reference = PAEPipeline(config).run_streamed(
        source, vacuum.query_log
    )

    # Shards 0 and 1 snapshot, then the fault kills the run entering
    # shard 2 of iteration 1 (inline workers keep the plan's counter
    # in-process; zero stage retries lets the crash escalate).
    plan = FaultPlan([FaultSpec(stage="shard_tag:0002", iteration=1)])
    with pytest.raises(FaultInjectionError):
        PAEPipeline(config).run_streamed(
            source,
            vacuum.query_log,
            checkpoint_dir=str(tmp_path),
            faults=plan,
            shard_workers=1,
        )
    snapshots = sorted(
        path.name for path in tmp_path.glob("shard_tag_*.json.gz")
    )
    assert snapshots == [
        "shard_tag_0001_0000.json.gz",
        "shard_tag_0001_0001.json.gz",
    ]
    assert not list(tmp_path.glob("iteration_*.json.gz"))

    trace = PipelineTrace()
    resumed = PAEPipeline(config).run_streamed(
        source,
        vacuum.query_log,
        checkpoint_dir=str(tmp_path),
        trace=trace,
        shard_workers=1,
    )
    _assert_identical(resumed, reference)
    assert resumed.bootstrap.iterations == reference.bootstrap.iterations
    # The two completed shards were loaded, not re-tagged...
    assert trace.counter_totals("shard_resume") == {"shards": 2}
    # ...and the finished iterations cleaned their scaffolding up.
    assert not list(tmp_path.glob("shard_tag_*.json.gz"))
    assert len(list(tmp_path.glob("iteration_*.json.gz"))) == 2


def test_completed_checkpoint_resumes_without_work(vacuum, tmp_path):
    source = MaterializedPageSource(vacuum.product_pages, shard_size=10)
    first = PAEPipeline(CONFIG).run_streamed(
        source, vacuum.query_log, checkpoint_dir=str(tmp_path)
    )
    trace = PipelineTrace()
    second = PAEPipeline(CONFIG).run_streamed(
        source,
        vacuum.query_log,
        checkpoint_dir=str(tmp_path),
        trace=trace,
    )
    _assert_identical(second, first)
    assert trace.counter_totals("checkpoint_resume") == {"iterations": 2}
    assert not any(
        event.stage == "tagger_train" for event in trace.events
    )


def test_foreign_source_checkpoint_rejected(vacuum, tmp_path):
    from repro.errors import CheckpointError

    source = MaterializedPageSource(vacuum.product_pages, shard_size=10)
    PAEPipeline(CONFIG).run_streamed(
        source, vacuum.query_log, checkpoint_dir=str(tmp_path)
    )
    other = MaterializedPageSource(
        vacuum.product_pages[:30], shard_size=10
    )
    with pytest.raises(CheckpointError):
        PAEPipeline(CONFIG).run_streamed(
            other, vacuum.query_log, checkpoint_dir=str(tmp_path)
        )


# -- streamed result shape ----------------------------------------------


def test_streamed_result_has_no_material(vacuum, monolithic):
    source = MaterializedPageSource(vacuum.product_pages, shard_size=10)
    streamed = PAEPipeline(CONFIG).run_streamed(
        source, vacuum.query_log
    )
    assert streamed.bootstrap.material is None
    assert monolithic.bootstrap.material is not None
    # slim() (the sweep-worker pickle shrinker) stays usable.
    assert streamed.slim().triples == streamed.triples
