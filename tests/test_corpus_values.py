"""Unit and property tests for value sampling.

The critical invariant: a value's canonical token tuple must equal what
the locale tokenizer produces from its display form — the ground truth
is keyed on tokens, so any divergence would corrupt every experiment.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import (
    CategoricalValues,
    CompositeValues,
    NumericValues,
    category_names,
    get_schema,
)
from repro.corpus.values import (
    sample_categorical,
    sample_composite,
    sample_numeric,
    sample_value,
    spec_value_inventory,
    value_key,
)
from repro.nlp import get_locale


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_numeric_display_tokenizes_to_token_tuple_ja(seed):
    rng = random.Random(seed)
    spec = NumericValues(
        1, 5000, "kg", decimal_rate=0.4, thousands_rate=0.4
    )
    value = sample_numeric(rng, spec, "ja")
    tokenizer = get_locale("ja").tokenizer
    assert tuple(tokenizer.tokenize(value.display)) == value.tokens


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_numeric_display_tokenizes_to_token_tuple_de(seed):
    rng = random.Random(seed)
    spec = NumericValues(
        1, 5000, "kg", decimal_rate=0.4, thousands_rate=0.4
    )
    value = sample_numeric(rng, spec, "de")
    tokenizer = get_locale("de").tokenizer
    assert tuple(tokenizer.tokenize(value.display)) == value.tokens


def test_numeric_magnitude_respects_step(rng):
    spec = NumericValues(10, 50, "cm", step=10)
    for _ in range(50):
        value = sample_numeric(rng, spec, "ja")
        magnitude = int(value.tokens[0])
        assert magnitude % 10 == 0
        assert 10 <= magnitude <= 50


def test_numeric_unit_is_final_token(rng):
    spec = NumericValues(1, 9, "w")
    value = sample_numeric(rng, spec, "ja")
    assert value.tokens[-1] == "w"


def test_categorical_values_come_from_inventory(rng):
    spec = CategoricalValues(("aka", "gosei kawa"))
    for _ in range(20):
        value = sample_categorical(rng, spec, "ja")
        assert value.display in spec.values


def test_categorical_multiword_tokens(rng):
    spec = CategoricalValues(("gosei kawa",))
    value = sample_categorical(rng, spec, "ja")
    assert value.tokens == ("gosei", "kawa")
    assert value.key == "gosei kawa"


def test_composite_fills_placeholders(rng):
    spec = CompositeValues(("1/{n} byo ~ {m} byo",), low=1, high=9)
    value = sample_composite(rng, spec, "ja")
    assert "{n}" not in value.display
    assert "{m}" not in value.display
    assert value.tokens[0] == "1"


def test_sample_value_dispatches(rng):
    assert sample_value(
        rng, NumericValues(1, 2, "kg"), "ja"
    ).tokens[-1] == "kg"
    assert sample_value(
        rng, CategoricalValues(("x",)), "ja"
    ).display == "x"
    assert sample_value(
        rng, CompositeValues(("{n} bai",)), "ja"
    ).tokens[-1] == "bai"


def test_value_key_from_string_and_tokens_agree():
    assert value_key("2.5kg", "ja") == value_key(
        ("2", ".", "5", "kg"), "ja"
    )
    assert value_key("2.5 kg", "ja") == "2 . 5 kg"


def test_spec_value_inventory():
    assert spec_value_inventory(CategoricalValues(("a", "b"))) == (
        "a", "b",
    )
    assert spec_value_inventory(NumericValues(1, 2, "kg")) is None


@pytest.mark.parametrize("category", category_names())
def test_every_shipped_spec_round_trips(category, rng):
    """For every attribute of every shipped schema, sampled displays
    tokenize back to the canonical token tuple."""
    schema = get_schema(category)
    tokenizer = get_locale(schema.locale).tokenizer
    for attribute in schema.attributes:
        for _ in range(8):
            value = sample_value(rng, attribute.values, schema.locale)
            assert tuple(tokenizer.tokenize(value.display)) == (
                value.tokens
            ), (category, attribute.name, value.display)
