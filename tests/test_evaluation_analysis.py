"""Tests for the structured error-analysis API."""

import pytest

from repro.evaluation import error_buckets
from repro.evaluation.truth import TruthSample
from repro.types import Triple


@pytest.fixture
def truth():
    return TruthSample(
        correct=frozenset(
            {
                Triple("p1", "iro", "aka"),
                Triple("p2", "iro", "ao"),
                Triple("p2", "juryo", "2 kg"),
            }
        ),
        incorrect=frozenset({Triple("p3", "iro", "shiro")}),
        alias_map={"karaa": "iro"},
    )


def test_buckets_partition_all_triples(truth):
    system = [
        Triple("p1", "iro", "aka"),      # correct
        Triple("p3", "iro", "shiro"),    # incorrect
        Triple("p2", "iro", "kuro"),     # maybe (value disagrees)
        Triple("p9", "iro", "aka"),      # spurious
    ]
    buckets = error_buckets(system, truth)
    assert len(buckets.correct) == 1
    assert len(buckets.incorrect) == 1
    assert len(buckets.maybe_incorrect) == 1
    assert len(buckets.spurious) == 1
    assert buckets.total == 4


def test_buckets_agree_with_precision_metric(truth):
    from repro.evaluation import precision

    system = [
        Triple("p1", "iro", "aka"),
        Triple("p2", "iro", "kuro"),
        Triple("p9", "juryo", "9 kg"),
    ]
    buckets = error_buckets(system, truth)
    breakdown = precision(system, truth)
    assert len(buckets.correct) == breakdown.correct
    assert len(buckets.incorrect) == breakdown.incorrect
    assert len(buckets.maybe_incorrect) == breakdown.maybe_incorrect
    assert len(buckets.spurious) == breakdown.spurious


def test_alias_canonicalized(truth):
    buckets = error_buckets([Triple("p1", "karaa", "aka")], truth)
    assert Triple("p1", "iro", "aka") in buckets.correct


def test_errors_by_attribute(truth):
    system = [
        Triple("p3", "iro", "shiro"),
        Triple("p2", "iro", "kuro"),
        Triple("p9", "juryo", "9 kg"),
    ]
    by_attribute = error_buckets(system, truth).errors_by_attribute()
    assert by_attribute["iro"]["incorrect"] == 1
    assert by_attribute["iro"]["maybe_incorrect"] == 1
    assert by_attribute["juryo"]["spurious"] == 1


def test_dominant_error_values(truth):
    system = [
        Triple("p2", "iro", "kuro"),
        Triple("p9", "iro", "kuro"),
        Triple("p8", "iro", "gin"),
    ]
    dominant = error_buckets(system, truth).dominant_error_values("iro")
    assert dominant[0] == ("kuro", 2)


def test_concentration(truth):
    system = [
        Triple("p3", "iro", "shiro"),
        Triple("p2", "iro", "kuro"),
        Triple("p9", "juryo", "9 kg"),
    ]
    buckets = error_buckets(system, truth)
    assert buckets.concentration() == pytest.approx(2 / 3)


def test_concentration_with_no_errors(truth):
    buckets = error_buckets([Triple("p1", "iro", "aka")], truth)
    assert buckets.concentration() == 0.0
