"""Streaming page sources: shard determinism, offsets and policies.

The contract under test: a :class:`PageSource` yields the same pages
no matter which order (or how many times) its shards are accessed, a
``JsonlPageSource`` shard-load seeks instead of rescanning, and every
source's fingerprint moves when its identity does.
"""

import json
import pickle

import pytest

from repro.corpus import (
    GeneratedPageSource,
    JsonlPageSource,
    MaterializedPageSource,
    Marketplace,
)
from repro.corpus.categories import HETEROGENEOUS_UNIONS
from repro.corpus.io import load_pages
from repro.errors import ConfigError, DatasetError, ReproError, SchemaError
from repro.ingest import QuarantineEntry
from repro.types import ProductPage

# -- generated source ----------------------------------------------------


def test_generated_shards_identical_in_any_order():
    source = GeneratedPageSource("tennis", 25, shard_size=10, seed=3)
    backwards = [source.shard(index) for index in (2, 1, 0)][::-1]
    fresh = GeneratedPageSource("tennis", 25, shard_size=10, seed=3)
    forwards = [fresh.shard(index) for index in (0, 1, 2)]
    assert backwards == forwards
    # Re-reading a shard is also stable.
    assert source.shard(1) == forwards[1]


def test_generated_shard_count_and_sizes():
    source = GeneratedPageSource("tennis", 25, shard_size=10, seed=3)
    assert source.shard_count == 3
    assert [len(source.shard(i)) for i in range(3)] == [10, 10, 5]
    assert source.page_count == 25


def test_generated_page_ids_globally_numbered():
    source = GeneratedPageSource("tennis", 12, shard_size=5, seed=1)
    ids = [page.product_id for page in source.iter_pages()]
    assert ids == [f"tennis_{number:05d}" for number in range(12)]


def test_generated_pages_look_like_marketplace_pages():
    source = GeneratedPageSource("tennis", 6, shard_size=3, seed=1)
    pages = list(source.iter_pages())
    for page in pages:
        assert page.category == "tennis"
        assert page.locale == "ja"
        assert page.html.startswith("<html>")
    # Some pages are text-only by design, but a shard stream must
    # still surface dictionary tables for seeding.
    assert any("<table" in page.html for page in pages)


def test_union_category_cannot_stream():
    union = sorted(HETEROGENEOUS_UNIONS)[0]
    with pytest.raises(SchemaError):
        GeneratedPageSource(union, 10)


def test_generated_argument_validation():
    with pytest.raises(SchemaError):
        GeneratedPageSource("tennis", 0)
    with pytest.raises(ConfigError):
        GeneratedPageSource("tennis", 10, shard_size=0)
    source = GeneratedPageSource("tennis", 10, shard_size=5)
    with pytest.raises(ConfigError):
        source.shard(2)
    with pytest.raises(ConfigError):
        source.shard(-1)


def test_generated_query_log_deterministic():
    one = GeneratedPageSource("tennis", 15, shard_size=4, seed=9)
    two = GeneratedPageSource("tennis", 15, shard_size=4, seed=9)
    assert one.build_query_log().counts == two.build_query_log().counts
    assert len(one.build_query_log()) > 0


def test_generated_source_pickles():
    # Shard fan-out sends the source to worker processes.
    source = GeneratedPageSource("tennis", 8, shard_size=4, seed=2)
    clone = pickle.loads(pickle.dumps(source))
    assert clone.shard(1) == source.shard(1)


def test_generated_fingerprint_tracks_identity():
    base = GeneratedPageSource("tennis", 10, shard_size=5, seed=1)
    same = GeneratedPageSource("tennis", 10, shard_size=5, seed=1)
    assert base.fingerprint() == same.fingerprint()
    variants = [
        GeneratedPageSource("tennis", 10, shard_size=5, seed=2),
        GeneratedPageSource("tennis", 11, shard_size=5, seed=1),
        GeneratedPageSource("tennis", 10, shard_size=4, seed=1),
        GeneratedPageSource("digital_cameras", 10, shard_size=5, seed=1),
    ]
    for variant in variants:
        assert variant.fingerprint() != base.fingerprint()


# -- materialized source -------------------------------------------------


@pytest.fixture(scope="module")
def tennis_pages():
    return Marketplace(seed=5).generate("tennis", 13).product_pages


def test_materialized_shards_reassemble_the_corpus(tennis_pages):
    source = MaterializedPageSource(tennis_pages, shard_size=5)
    assert source.shard_count == 3
    reassembled = [
        page
        for index in range(source.shard_count)
        for page in source.shard(index)
    ]
    assert reassembled == list(tennis_pages)
    assert list(source.iter_pages()) == list(tennis_pages)
    assert source.category == "tennis"
    assert source.locale == "ja"


def test_materialized_fingerprint_tracks_content(tennis_pages):
    base = MaterializedPageSource(tennis_pages, shard_size=5)
    same = MaterializedPageSource(tennis_pages, shard_size=5)
    assert base.fingerprint() == same.fingerprint()
    tampered = list(tennis_pages)
    tampered[3] = ProductPage(
        tampered[3].product_id,
        tampered[3].category,
        tampered[3].html + " ",
        tampered[3].locale,
    )
    changed = MaterializedPageSource(tampered, shard_size=5)
    assert changed.fingerprint() != base.fingerprint()


def test_empty_materialized_source():
    source = MaterializedPageSource([], shard_size=5)
    assert source.shard_count == 0
    assert list(source.iter_pages()) == []


# -- jsonl source --------------------------------------------------------


def _write_jsonl(path, rows):
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(
                (row if isinstance(row, str) else json.dumps(row)) + "\n"
            )


@pytest.fixture
def jsonl_dir(tmp_path):
    rows = [
        {"product_id": f"p{number}", "html": f"<p>page {number}</p>"}
        for number in range(7)
    ]
    _write_jsonl(tmp_path / "pages.jsonl", rows)
    (tmp_path / "querylog.json").write_text(json.dumps({"500 w": 3}))
    return tmp_path


def test_jsonl_shards_match_the_monolithic_loader(jsonl_dir):
    source = JsonlPageSource(jsonl_dir, shard_size=3)
    loaded, _ = load_pages(jsonl_dir)
    streamed = list(source.iter_pages())
    assert streamed == loaded
    assert source.shard_count == 3
    assert [len(source.shard(i)) for i in range(3)] == [3, 3, 1]
    # Shard loads seek; reading out of order changes nothing.
    assert source.shard(2) == streamed[6:]
    assert source.shard(0) == streamed[:3]


def test_jsonl_accepts_file_or_directory(jsonl_dir):
    by_dir = JsonlPageSource(jsonl_dir, shard_size=4)
    by_file = JsonlPageSource(jsonl_dir / "pages.jsonl", shard_size=4)
    assert list(by_dir.iter_pages()) == list(by_file.iter_pages())
    assert by_dir.category == "pages"


def test_jsonl_bad_row_strict_raises(tmp_path):
    _write_jsonl(
        tmp_path / "pages.jsonl",
        [{"product_id": "a", "html": "<p>x</p>"}, "{not json"],
    )
    source = JsonlPageSource(tmp_path, shard_size=10, policy="strict")
    with pytest.raises(DatasetError):
        source.shard(0)


def test_jsonl_bad_row_drop_keeps_ledger_position(tmp_path):
    _write_jsonl(
        tmp_path / "pages.jsonl",
        [
            {"product_id": "a", "html": "<p>x</p>"},
            "{not json",
            {"html": "<p>no id</p>"},
            {"product_id": "b", "html": "<p>y</p>"},
        ],
    )
    source = JsonlPageSource(tmp_path, shard_size=10, policy="drop")
    records = source.shard(0)
    assert [type(record) for record in records] == [
        ProductPage, QuarantineEntry, QuarantineEntry, ProductPage
    ]
    assert records[1].check == "jsonl"
    assert records[1].line == 2
    assert records[2].line == 3


def test_jsonl_row_defaults(jsonl_dir):
    source = JsonlPageSource(jsonl_dir, shard_size=10, locale="de")
    page = source.shard(0)[0]
    assert page.category == "unknown"
    assert page.locale == "de"


def test_jsonl_query_log_reads_sibling(jsonl_dir):
    source = JsonlPageSource(jsonl_dir)
    assert source.query_log().frequency("500 w") == 3
    (jsonl_dir / "querylog.json").unlink()
    assert len(JsonlPageSource(jsonl_dir).query_log()) == 0


def test_jsonl_validation(tmp_path, jsonl_dir):
    with pytest.raises(ReproError):
        JsonlPageSource(tmp_path / "missing")
    with pytest.raises(ConfigError):
        JsonlPageSource(jsonl_dir, policy="lenient")
    with pytest.raises(ConfigError):
        JsonlPageSource(jsonl_dir, shard_size=0)


def test_jsonl_fingerprint_tracks_file(jsonl_dir):
    base = JsonlPageSource(jsonl_dir, shard_size=3)
    assert base.fingerprint() == JsonlPageSource(
        jsonl_dir, shard_size=3
    ).fingerprint()
    assert base.fingerprint() != JsonlPageSource(
        jsonl_dir, shard_size=4
    ).fingerprint()
    with open(jsonl_dir / "pages.jsonl", "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"product_id": "z", "html": "<p/>"}) + "\n")
    assert JsonlPageSource(
        jsonl_dir, shard_size=3
    ).fingerprint() != base.fingerprint()


def test_marketplace_stream_shares_the_seed():
    source = Marketplace(seed=3).stream("tennis", 9, shard_size=4)
    direct = GeneratedPageSource("tennis", 9, shard_size=4, seed=3)
    assert list(source.iter_pages()) == list(direct.iter_pages())
    assert source.fingerprint() == direct.fingerprint()


def test_generated_pages_are_shard_size_invariant():
    coarse = GeneratedPageSource("tennis", 12, shard_size=12, seed=4)
    fine = GeneratedPageSource("tennis", 12, shard_size=5, seed=4)
    assert list(coarse.iter_pages()) == list(fine.iter_pages())
