"""Tests for the extraction service core and its HTTP transport."""

import http.client
import json
import threading

import pytest

from repro.config import ServeConfig
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.serve import (
    ExtractionService,
    ModelRegistry,
    publish_bundle,
    start_server,
)

pytestmark = pytest.mark.usefixtures("watchdog")


def _body(**fields) -> bytes:
    return json.dumps(fields).encode("utf-8")


@pytest.fixture
def registry(tmp_path, serve_model):
    tagger, dictionary = serve_model
    publish_bundle(tmp_path / "registry", "v1", tagger, dictionary, "ja")
    registry = ModelRegistry(tmp_path / "registry")
    registry.activate("v1")
    return registry


@pytest.fixture
def service(tmp_path, registry):
    service = ExtractionService(
        registry,
        ServeConfig(queue_capacity=8, deadline_seconds=5.0),
        quarantine_path=tmp_path / "quarantine.jsonl",
    )
    yield service
    service.close()


# -- service core ------------------------------------------------------


def test_text_request_serves_triples(service):
    status, payload, _ = service.handle_extract(
        _body(
            product_id="x1",
            text="iro wa aka desu soshite juryo wa 3 kg desu",
        )
    )
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["degradation"] == "full"
    assert payload["served_by"] == "v1"
    triples = {
        (triple["attribute"], triple["value"])
        for triple in payload["triples"]
    }
    assert ("iro", "aka") in triples
    assert ("juryo", "3 kg") in triples


def test_html_request_is_gated_then_served(service):
    status, payload, _ = service.handle_extract(
        _body(
            product_id="x2",
            html="<html><title>t</title>"
            "<p>juryo wa 5 kg desu。</p></html>",
        )
    )
    assert status == 200
    assert {"attribute": "juryo", "value": "5 kg"} in payload["triples"]


@pytest.mark.parametrize(
    "body",
    [
        b"",
        b"not json",
        b'"just a string"',
        _body(product_id="x"),  # neither text nor html
        _body(product_id="x", text="a", html="<p>b</p>"),  # both
        _body(product_id="", text="a"),
        _body(product_id="x", text=123),
        _body(product_id="x", text="a", deadline_seconds=-1),
        _body(product_id="x", text="a", deadline_seconds=True),
        _body(product_id="x", text="a", locale=7),
    ],
)
def test_malformed_bodies_get_structured_400(service, body):
    status, payload, _ = service.handle_extract(body)
    assert status == 400
    assert payload == {
        "status": "error",
        "code": "bad_request",
        "detail": payload["detail"],
    }


def test_unknown_locale_is_a_structured_400(service):
    status, payload, _ = service.handle_extract(
        _body(product_id="x", text="hello", locale="xx")
    )
    assert status == 400
    assert "xx" in payload["detail"]


def test_dirty_html_is_quarantined_with_serve_source(
    service, tmp_path
):
    status, payload, _ = service.handle_extract(
        _body(product_id="bad1", html="<p>iro wa ao desu�</p>")
    )
    assert status == 422
    assert payload["code"] == "quarantined"
    assert payload["check"] == "mojibake"
    lines = (
        (tmp_path / "quarantine.jsonl").read_text().strip().splitlines()
    )
    entry = json.loads(lines[-1])
    assert entry["page_id"] == "bad1"
    assert entry["source"] == "serve"


def test_shed_when_admission_is_saturated(registry, tmp_path):
    service = ExtractionService(
        registry, ServeConfig(queue_capacity=1)
    )
    try:
        assert service.admission.try_admit()  # occupy the only slot
        status, payload, headers = service.handle_extract(
            _body(product_id="x", text="iro wa aka desu")
        )
        assert status == 429
        assert payload["code"] == "shed"
        assert payload["retry_after_seconds"] > 0
        assert int(headers["Retry-After"]) >= 1
    finally:
        service.admission.release()
        service.close()


def test_retry_after_is_deterministic_per_streak(registry):
    first = ExtractionService(registry, ServeConfig(queue_capacity=1))
    second = ExtractionService(registry, ServeConfig(queue_capacity=1))
    try:
        for service in (first, second):
            assert service.admission.try_admit()
        hints = []
        for service in (first, second):
            _, payload, _ = service.handle_extract(
                _body(product_id="x", text="a")
            )
            hints.append(payload["retry_after_seconds"])
        assert hints[0] == hints[1]
    finally:
        for service in (first, second):
            service.admission.release()
            service.close()


def test_slow_model_times_out_with_structured_504(registry):
    plan = FaultPlan(
        [FaultSpec(stage="serve_tag", kind="delay", delay_seconds=1.0,
                   times=None)],
        seed=5,
    )
    service = ExtractionService(
        registry,
        ServeConfig(deadline_seconds=0.2, breaker_threshold=3),
        faults=plan,
    )
    try:
        status, payload, _ = service.handle_extract(
            _body(product_id="slow", text="iro wa aka desu")
        )
        assert status == 504
        assert payload["code"] == "timeout"
        # The timeout counted as breaker evidence.
        ladder = service.ladder.stats()
        assert ladder["breakers"]["full"]["consecutive_failures"] == 1
    finally:
        service.close()


def test_client_deadline_tightens_but_never_loosens(registry):
    service = ExtractionService(
        registry,
        ServeConfig(deadline_seconds=5.0, max_deadline_seconds=10.0),
    )
    try:
        status, payload, _ = service.handle_extract(
            _body(
                product_id="x",
                text="iro wa aka desu",
                deadline_seconds=60.0,  # capped at max, still serves
            )
        )
        assert status == 200
    finally:
        service.close()


def test_empty_registry_fails_fast_with_structured_503(tmp_path):
    registry = ModelRegistry(tmp_path / "empty")
    service = ExtractionService(registry, ServeConfig())
    try:
        status, payload, _ = service.handle_extract(
            _body(product_id="x", text="iro wa aka desu")
        )
        assert status == 503
        assert payload["code"] == "unavailable"
        assert payload["degradation"] == "fail_fast"
    finally:
        service.close()


def test_stats_counters_track_outcomes(service):
    service.handle_extract(_body(product_id="a", text="iro wa aka desu"))
    service.handle_extract(b"garbage")
    stats = service.stats()
    assert stats["counters"]["requests"] == 2
    assert stats["counters"]["served"] == 1
    assert stats["counters"]["bad_request"] == 1
    assert stats["registry"]["active_version"] == "v1"


# -- HTTP transport ----------------------------------------------------


@pytest.fixture
def live_server(service):
    server, thread = start_server(service, "127.0.0.1", 0)
    yield service, server
    server.shutdown()
    thread.join(timeout=5)


def _request(server, method, path, body=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=15)
    try:
        conn.request(
            method,
            path,
            body,
            {"Content-Type": "application/json"} if body else {},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read()), dict(
            response.getheaders()
        )
    finally:
        conn.close()


def test_http_extract_roundtrip(live_server):
    _, server = live_server
    status, payload, _ = _request(
        server, "POST", "/extract",
        _body(product_id="h1", text="iro wa kuro desu"),
    )
    assert status == 200
    assert {"attribute": "iro", "value": "kuro"} in payload["triples"]


def test_http_health_and_stats(live_server):
    _, server = live_server
    status, payload, _ = _request(server, "GET", "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["degradation"] == "full"
    status, payload, _ = _request(server, "GET", "/stats")
    assert status == 200
    assert "admission" in payload and "ladder" in payload


def test_http_unknown_endpoints_are_structured_404(live_server):
    _, server = live_server
    for method, path in (("GET", "/nope"), ("POST", "/nope")):
        status, payload, _ = _request(server, method, path, b"{}")
        assert status == 404
        assert payload["code"] == "not_found"


def test_http_hot_swap_while_requests_are_in_flight(
    live_server, tmp_path, serve_model
):
    """Satellite: hot-swap during live traffic — in-flight requests
    drain on the old version, new requests see the new one, and no
    request gets anything but a structured response."""
    service, server = live_server
    tagger, dictionary = serve_model
    publish_bundle(
        service.registry.root, "v2", tagger, dictionary, "ja"
    )

    results = []
    lock = threading.Lock()

    def client(index):
        status, payload, _ = _request(
            server, "POST", "/extract",
            _body(product_id=f"c{index}", text="iro wa aka desu"),
        )
        with lock:
            results.append((status, payload.get("served_by")))

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(8)
    ]
    for thread in threads[:4]:
        thread.start()
    status, payload, _ = _request(
        server, "POST", "/admin/swap", _body(version="v2")
    )
    assert status == 200
    assert payload["active_version"] == "v2"
    for thread in threads[4:]:
        thread.start()
    for thread in threads:
        thread.join(timeout=15)

    assert len(results) == 8
    for status, served_by in results:
        assert status == 200
        # Every request was served by exactly one whole version.
        assert served_by in ("v1", "v2")
    # Post-swap requests land on v2.
    status, payload, _ = _request(
        server, "POST", "/extract",
        _body(product_id="after", text="iro wa aka desu"),
    )
    assert payload["served_by"] == "v2"
    # The drained v1 stayed resident as the ladder's previous rung.
    assert service.registry.previous.version == "v1"


def test_http_swap_to_missing_version_is_structured(live_server):
    _, server = live_server
    status, payload, _ = _request(
        server, "POST", "/admin/swap", _body(version="v99")
    )
    assert status == 500
    assert payload["code"] == "model_error"
