"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_categories_command(capsys):
    assert main(["categories"]) == 0
    out = capsys.readouterr().out
    assert "vacuum_cleaner" in out
    assert "baby_goods" in out
    assert "heterogeneous union" in out


def test_run_command(capsys):
    code = main(
        [
            "run", "--category", "tennis", "--products", "50",
            "--iterations", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "precision:" in out
    assert "coverage:" in out
    assert "iteration" in out


def test_run_command_no_cleaning(capsys):
    code = main(
        [
            "run", "--category", "tennis", "--products", "50",
            "--iterations", "1", "--no-cleaning",
            "--no-diversification",
        ]
    )
    assert code == 0


def test_experiment_command_table1(capsys):
    code = main(
        [
            "experiment", "--name", "table1", "--products", "60",
            "--iterations", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Table I" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "--name", "table99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
