"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_categories_command(capsys):
    assert main(["categories"]) == 0
    out = capsys.readouterr().out
    assert "vacuum_cleaner" in out
    assert "baby_goods" in out
    assert "heterogeneous union" in out


def test_run_command(capsys):
    code = main(
        [
            "run", "--category", "tennis", "--products", "50",
            "--iterations", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "precision:" in out
    assert "coverage:" in out
    assert "iteration" in out


def test_run_command_no_cleaning(capsys):
    code = main(
        [
            "run", "--category", "tennis", "--products", "50",
            "--iterations", "1", "--no-cleaning",
            "--no-diversification",
        ]
    )
    assert code == 0


def test_run_command_writes_trace(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    code = main(
        [
            "run", "--category", "tennis", "--products", "40",
            "--iterations", "1", "--trace", str(trace_path),
        ]
    )
    assert code == 0
    import json

    payload = json.loads(trace_path.read_text())
    assert payload["label"] == "tennis"
    stages = {event["stage"] for event in payload["events"]}
    assert {"seed_build", "tagger_train", "tagger_tag"} <= stages
    assert any(event.get("iteration") == 1 for event in payload["events"])


def test_run_command_multi_category_sweep(capsys, tmp_path):
    trace_path = tmp_path / "sweep.json"
    code = main(
        [
            "run", "--category", "tennis,garden", "--products", "40",
            "--iterations", "1", "--workers", "2",
            "--trace", str(trace_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "category:   tennis" in out
    assert "category:   garden" in out
    assert "wall-clock:" in out
    import json

    payload = json.loads(trace_path.read_text())
    assert set(payload["categories"]) == {"tennis", "garden"}


def test_run_command_sweep_reports_failures(capsys):
    code = main(
        [
            "run", "--category", "tennis,no_such_category",
            "--products", "40", "--iterations", "1",
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "FAILED" in out
    assert "category:   tennis" in out


def test_experiment_command_table1(capsys):
    code = main(
        [
            "experiment", "--name", "table1", "--products", "60",
            "--iterations", "1",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Table I" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "--name", "table99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_run_command_rejects_bad_tag_batch_size():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        main(
            [
                "run", "--category", "tennis", "--products", "40",
                "--iterations", "1", "--tag-batch-size", "0",
            ]
        )


def test_run_command_writes_bench_counters(capsys, tmp_path):
    bench_path = tmp_path / "bench.json"
    code = main(
        [
            "run", "--category", "tennis", "--products", "40",
            "--iterations", "1", "--tag-batch-size", "8",
            "--bench-out", str(bench_path),
        ]
    )
    assert code == 0
    import json

    payload = json.loads(bench_path.read_text())
    counters = payload["tennis"]
    assert counters["feature_cache"]["hits"] > 0
    assert "tagger_train" in counters["stage_seconds"]


def test_run_command_streamed(capsys, tmp_path):
    trace_path = tmp_path / "trace.json"
    code = main(
        [
            "run", "--category", "tennis", "--products", "40",
            "--iterations", "1", "--stream", "--shard-size", "15",
            "--trace", str(trace_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "streamed" in out
    assert "throughput:" in out
    assert "3 shard(s)" in out
    assert "coverage:" in out
    import json

    payload = json.loads(trace_path.read_text())
    stages = {event["stage"] for event in payload["events"]}
    assert "shard_prep" in stages


def test_run_command_stream_rejects_sweeps(capsys):
    code = main(
        [
            "run", "--category", "tennis,running_shoes",
            "--products", "10", "--stream",
        ]
    )
    assert code == 1
    assert "one category at a time" in capsys.readouterr().err


def test_run_command_stream_accepts_dirt(capsys):
    code = main(
        [
            "run", "--category", "tennis", "--products", "10",
            "--stream", "--dirt-rate", "0.2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "streamed" in out
    assert "containment:" in out
