"""Gold-standard tests for CRF inference.

Forward–backward and Viterbi are checked against brute-force
enumeration over all label sequences — the strongest possible oracle at
small sizes.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.crf.inference import (
    forward_backward,
    pairwise_expected_counts,
    viterbi,
)


def brute_force_log_z(emissions, transitions, length):
    labels = emissions.shape[1]
    scores = []
    for path in itertools.product(range(labels), repeat=length):
        score = emissions[0, path[0]]
        for t in range(1, length):
            score += transitions[path[t - 1], path[t]]
            score += emissions[t, path[t]]
        scores.append(score)
    peak = max(scores)
    return peak + np.log(sum(np.exp(s - peak) for s in scores))


def brute_force_best_path(emissions, transitions, length):
    labels = emissions.shape[1]
    best_score, best_path = -np.inf, None
    for path in itertools.product(range(labels), repeat=length):
        score = emissions[0, path[0]]
        for t in range(1, length):
            score += transitions[path[t - 1], path[t]]
            score += emissions[t, path[t]]
        if score > best_score:
            best_score, best_path = score, list(path)
    return best_path


def brute_force_marginal(emissions, transitions, length, t, label):
    labels = emissions.shape[1]
    log_z = brute_force_log_z(emissions, transitions, length)
    total = 0.0
    for path in itertools.product(range(labels), repeat=length):
        if path[t] != label:
            continue
        score = emissions[0, path[0]]
        for step in range(1, length):
            score += transitions[path[step - 1], path[step]]
            score += emissions[step, path[step]]
        total += np.exp(score - log_z)
    return total


def _random_case(rng, batch, max_len, labels):
    lengths = rng.integers(1, max_len + 1, size=batch)
    steps = int(lengths.max())
    emissions = rng.normal(size=(batch, steps, labels))
    mask = np.zeros((batch, steps), dtype=bool)
    for b, length in enumerate(lengths):
        mask[b, :length] = True
        emissions[b, length:] = 0.0
    transitions = rng.normal(size=(labels, labels))
    return emissions, mask, transitions, lengths


@pytest.mark.parametrize("seed", range(5))
def test_log_z_matches_brute_force(seed):
    rng = np.random.default_rng(seed)
    emissions, mask, transitions, lengths = _random_case(rng, 4, 5, 3)
    fb = forward_backward(emissions, mask, transitions)
    for b, length in enumerate(lengths):
        expected = brute_force_log_z(
            emissions[b], transitions, int(length)
        )
        assert fb.log_z[b] == pytest.approx(expected, rel=1e-9)


@pytest.mark.parametrize("seed", range(3))
def test_unary_marginals_match_brute_force(seed):
    rng = np.random.default_rng(seed + 100)
    emissions, mask, transitions, lengths = _random_case(rng, 2, 4, 3)
    fb = forward_backward(emissions, mask, transitions)
    marginals = fb.unary_marginals()
    for b, length in enumerate(lengths):
        for t in range(int(length)):
            for label in range(3):
                expected = brute_force_marginal(
                    emissions[b], transitions, int(length), t, label
                )
                assert marginals[b, t, label] == pytest.approx(
                    expected, abs=1e-9
                )


@pytest.mark.parametrize("seed", range(5))
def test_viterbi_matches_brute_force(seed):
    rng = np.random.default_rng(seed + 200)
    emissions, mask, transitions, lengths = _random_case(rng, 4, 5, 3)
    paths = viterbi(emissions, mask, transitions)
    for b, length in enumerate(lengths):
        expected = brute_force_best_path(
            emissions[b], transitions, int(length)
        )
        assert paths[b] == expected


def test_pairwise_counts_sum_to_transition_count():
    rng = np.random.default_rng(7)
    emissions, mask, transitions, lengths = _random_case(rng, 5, 6, 4)
    fb = forward_backward(emissions, mask, transitions)
    pairwise = pairwise_expected_counts(fb, emissions, mask, transitions)
    # Each sequence of length L contributes exactly L-1 expected
    # transitions in total probability mass.
    expected_total = float((lengths - 1).sum())
    assert pairwise.sum() == pytest.approx(expected_total, rel=1e-8)


def test_marginals_sum_to_one_at_valid_positions():
    rng = np.random.default_rng(8)
    emissions, mask, transitions, lengths = _random_case(rng, 5, 6, 4)
    fb = forward_backward(emissions, mask, transitions)
    marginals = fb.unary_marginals()
    for b, length in enumerate(lengths):
        for t in range(int(length)):
            assert marginals[b, t].sum() == pytest.approx(1.0, rel=1e-8)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_viterbi_path_lengths_match_mask(seed):
    rng = np.random.default_rng(seed)
    emissions, mask, transitions, lengths = _random_case(rng, 3, 7, 3)
    paths = viterbi(emissions, mask, transitions)
    assert [len(path) for path in paths] == [int(l) for l in lengths]


def test_single_token_sequences():
    emissions = np.array([[[1.0, 3.0, 2.0]]])
    mask = np.array([[True]])
    transitions = np.zeros((3, 3))
    fb = forward_backward(emissions, mask, transitions)
    assert fb.log_z[0] == pytest.approx(
        np.log(np.exp(1) + np.exp(3) + np.exp(2))
    )
    assert viterbi(emissions, mask, transitions) == [[1]]
