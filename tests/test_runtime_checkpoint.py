"""Checkpoint/resume: kill-and-resume bit-identity and integrity.

The crash-safety contract: a bootstrap run killed after any completed
iteration, re-invoked with the same arguments and checkpoint directory,
resumes from its last snapshot and produces **bit-identical** output to
an uninterrupted run — including under an active fault plan that the
retry path absorbs. Corrupt, truncated or foreign checkpoints raise
:class:`~repro.errors.CheckpointError` instead of resuming from
garbage.
"""

import gzip
import json

import pytest

from repro import PAEPipeline, PipelineConfig
from repro.corpus import Marketplace
from repro.errors import CheckpointError, FaultInjectionError
from repro.runtime import (
    CheckpointStore,
    FaultPlan,
    FaultSpec,
    PipelineTrace,
)

pytestmark = pytest.mark.usefixtures("watchdog")

CONFIG = PipelineConfig(iterations=3)


@pytest.fixture(scope="module")
def tennis():
    return Marketplace(seed=7).generate("tennis", 40)


@pytest.fixture(scope="module")
def baseline(tennis):
    """The uninterrupted reference run (no checkpointing, no faults)."""
    trace = PipelineTrace(label="baseline")
    return PAEPipeline(CONFIG).run(
        tennis.product_pages, tennis.query_log, trace=trace
    )


def _run(tennis, directory, *, faults=None, resume=True, config=CONFIG):
    trace = PipelineTrace(label="checkpointed")
    return PAEPipeline(config).run(
        tennis.product_pages,
        tennis.query_log,
        trace=trace,
        checkpoint_dir=str(directory),
        resume=resume,
        faults=faults,
    )


def _kill_after(tennis, directory, completed):
    """Start a checkpointed run that dies entering ``completed + 1``.

    ``times=2`` outlives the single default stage retry, so the crash
    escalates out of the run exactly like a killed worker.
    """
    plan = FaultPlan(
        [FaultSpec(stage="tagger_train", iteration=completed + 1, times=2)]
    )
    with pytest.raises(FaultInjectionError):
        _run(tennis, directory, faults=plan)


def _iteration_structure(trace, iterations):
    """(stage, iteration, counters) events of the given cycles,
    minus the checkpointing stages that only a snapshotting run has."""
    return [
        (event.stage, event.iteration, event.counters)
        for event in trace.events
        if event.iteration in iterations
        and event.stage not in ("checkpoint_write", "checkpoint_resume")
    ]


def test_snapshots_written_per_iteration(tennis, tmp_path):
    result = _run(tennis, tmp_path)
    # The run-lock sentinel (".run.lock") stays behind by design —
    # flock state lives on the open fd, the file is just its anchor.
    names = sorted(
        path.name
        for path in tmp_path.iterdir()
        if not path.name.startswith(".")
    )
    assert names == [
        "iteration_0001.json.gz",
        "iteration_0002.json.gz",
        "iteration_0003.json.gz",
        "meta.json",
    ]
    assert len(result.bootstrap.iterations) == 3


@pytest.mark.parametrize("completed", [1, 2])
def test_kill_and_resume_bit_identical(tennis, baseline, tmp_path, completed):
    """The acceptance contract, for a crash after every iteration."""
    _kill_after(tennis, tmp_path, completed)
    snapshots = sorted(
        path.name for path in tmp_path.glob("iteration_*.json.gz")
    )
    assert len(snapshots) == completed

    resumed = _run(tennis, tmp_path)
    assert resumed.triples == baseline.triples
    assert resumed.bootstrap == baseline.bootstrap
    # The resumed run really did skip the completed cycles...
    resumed_iters = resumed.trace.iterations()
    trained = {
        event.iteration
        for event in resumed.trace.events
        if event.stage == "tagger_train"
    }
    assert trained == set(range(completed + 1, 4))
    assert resumed_iters == list(range(completed + 1, 4))
    # ...and the cycles it did run are structurally identical to the
    # uninterrupted run's (same stages, same counters, in order).
    live = set(range(completed + 1, 4))
    assert _iteration_structure(resumed.trace, live) == (
        _iteration_structure(baseline.trace, live)
    )


def test_resume_under_recovered_fault_is_bit_identical(
    tennis, baseline, tmp_path
):
    """Resume stays bit-identical even with an active fault plan that
    the stage-retry path absorbs."""
    _kill_after(tennis, tmp_path, 1)
    plan = FaultPlan(
        [FaultSpec(stage="tagger_tag", iteration=3, times=1)], seed=11
    )
    resumed = _run(tennis, tmp_path, faults=plan)
    assert resumed.triples == baseline.triples
    assert resumed.bootstrap == baseline.bootstrap
    counters = resumed.resilience_counters()
    assert counters["faults"] == {"tagger_tag": 1}
    assert counters["retries"] == {"tagger_tag": 1}


def test_resume_of_complete_run_recomputes_nothing(
    tennis, baseline, tmp_path
):
    _run(tennis, tmp_path)
    resumed = _run(tennis, tmp_path)
    assert resumed.bootstrap == baseline.bootstrap
    assert not any(
        event.stage == "tagger_train" for event in resumed.trace.events
    )


def test_resume_false_restarts_from_scratch(tennis, baseline, tmp_path):
    _kill_after(tennis, tmp_path, 2)
    fresh = _run(tennis, tmp_path, resume=False)
    assert fresh.bootstrap == baseline.bootstrap
    # All three snapshots were rewritten by the fresh run.
    assert len(list(tmp_path.glob("iteration_*.json.gz"))) == 3


def test_truncated_snapshot_raises_checkpoint_error(tennis, tmp_path):
    _kill_after(tennis, tmp_path, 2)
    snapshot = tmp_path / "iteration_0002.json.gz"
    snapshot.write_bytes(snapshot.read_bytes()[: 200])
    with pytest.raises(CheckpointError, match="corrupt"):
        _run(tennis, tmp_path)


def test_tampered_snapshot_fails_checksum(tennis, tmp_path):
    _kill_after(tennis, tmp_path, 1)
    snapshot = tmp_path / "iteration_0001.json.gz"
    with gzip.open(snapshot, "rt", encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["iteration"] = 7
    with gzip.open(snapshot, "wt", encoding="utf-8") as handle:
        json.dump(payload, handle)
    with pytest.raises(CheckpointError, match="checksum"):
        _run(tennis, tmp_path)


def test_corrupt_meta_raises_checkpoint_error(tennis, tmp_path):
    _kill_after(tennis, tmp_path, 1)
    (tmp_path / "meta.json").write_text("{not json")
    with pytest.raises(CheckpointError):
        _run(tennis, tmp_path)


def test_missing_iteration_gap_raises(tennis, tmp_path):
    _kill_after(tennis, tmp_path, 2)
    (tmp_path / "iteration_0001.json.gz").unlink()
    with pytest.raises(CheckpointError, match="missing"):
        _run(tennis, tmp_path)


def test_foreign_checkpoint_rejected_by_fingerprint(tennis, tmp_path):
    """Resuming with a different config must not splice two runs."""
    _kill_after(tennis, tmp_path, 1)
    other = PipelineConfig(iterations=3, seed=99)
    with pytest.raises(CheckpointError, match="fingerprint"):
        _run(tennis, tmp_path, config=other)


def test_crash_during_checkpoint_write_is_atomic(tennis, baseline, tmp_path):
    """A kill mid-snapshot never leaves a half-written file behind."""
    plan = FaultPlan(
        [FaultSpec(stage="checkpoint_write", iteration=2, times=2)]
    )
    with pytest.raises(FaultInjectionError):
        _run(tennis, tmp_path, faults=plan)
    # Iteration 1's snapshot is intact; iteration 2's was never
    # published under its final name.
    names = sorted(path.name for path in tmp_path.glob("iteration_*"))
    assert names == ["iteration_0001.json.gz"]
    resumed = _run(tennis, tmp_path)
    assert resumed.bootstrap == baseline.bootstrap


def test_load_resume_state_roundtrip(tennis, tmp_path):
    """The store's own view: results and dataset survive the round
    trip through JSON exactly."""
    _run(tennis, tmp_path)
    state = CheckpointStore(tmp_path).load_resume_state()
    assert state is not None
    assert state.completed_iterations == 3
    assert [result.iteration for result in state.results] == [1, 2, 3]
    assert all(
        len(tagged.labels) == len(tagged.sentence.tokens)
        for tagged in state.dataset
    )


def test_legacy_uncompressed_snapshots_still_resume(
    tennis, baseline, tmp_path
):
    """Plain ``.json`` snapshots from pre-compression stores resume
    transparently (the checksum covers the payload, not the encoding)."""
    _kill_after(tennis, tmp_path, 2)
    for snapshot in sorted(tmp_path.glob("iteration_*.json.gz")):
        with gzip.open(snapshot, "rt", encoding="utf-8") as handle:
            text = handle.read()
        legacy = tmp_path / snapshot.name.removesuffix(".gz")
        legacy.write_text(text, encoding="utf-8")
        snapshot.unlink()
    resumed = _run(tennis, tmp_path)
    assert resumed.bootstrap == baseline.bootstrap


def test_empty_store_has_no_resume_state(tmp_path):
    assert CheckpointStore(tmp_path).load_resume_state() is None
    assert not CheckpointStore(tmp_path).has_run()
    with pytest.raises(CheckpointError, match="no checkpoint run"):
        CheckpointStore(tmp_path).load_meta()


# -- per-shard tag snapshots (sharded bootstrap) -------------------------


def test_shard_tags_roundtrip(tmp_path, make_tagged):
    store = CheckpointStore(tmp_path)
    tagged = [
        make_tagged("重さ は 500 g です", "500 g", "weight"),
        make_tagged("高さ は 30 cm です", "30 cm", "height", "p1", 2),
    ]
    store.write_shard_tags(2, 5, tagged, sentence_count=40)
    loaded = store.load_shard_tags(2, 5)
    assert loaded is not None
    assert loaded[0] == tagged
    assert loaded[1] == 40
    # Other (iteration, shard) slots stay empty.
    assert store.load_shard_tags(2, 4) is None
    assert store.load_shard_tags(1, 5) is None


def test_shard_tags_corruption_raises(tmp_path, make_tagged):
    store = CheckpointStore(tmp_path)
    store.write_shard_tags(
        1, 0, [make_tagged("重さ は 500 g", "500 g", "weight")], 3
    )
    path = tmp_path / "shard_tag_0001_0000.json.gz"
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["sentence_count"] = 999
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        json.dump(payload, handle)
    with pytest.raises(CheckpointError, match="checksum"):
        store.load_shard_tags(1, 0)


def test_clear_shard_tags_by_iteration_and_wholesale(
    tmp_path, make_tagged
):
    store = CheckpointStore(tmp_path)
    tagged = [make_tagged("重さ は 500 g", "500 g", "weight")]
    for iteration in (1, 2):
        for shard in (0, 1):
            store.write_shard_tags(iteration, shard, tagged, 1)
    assert store.clear_shard_tags(1) == 2
    assert store.load_shard_tags(1, 0) is None
    assert store.load_shard_tags(2, 0) is not None
    assert store.clear_shard_tags() == 2
    assert store.load_shard_tags(2, 0) is None
    assert store.clear_shard_tags() == 0


def test_begin_wipes_stale_shard_tags(tmp_path, make_tagged):
    store = CheckpointStore(tmp_path)
    store.write_shard_tags(
        1, 0, [make_tagged("重さ は 500 g", "500 g", "weight")], 1
    )
    store.begin("fingerprint", "digest", iterations=2)
    assert store.load_shard_tags(1, 0) is None
