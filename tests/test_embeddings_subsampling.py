"""Tests for frequent-word subsampling in word2vec."""

import numpy as np

from repro.embeddings import Word2Vec
from repro.nlp.vocab import Vocabulary


def _vocabulary(counts):
    vocabulary = Vocabulary()
    for token, count in counts.items():
        for _ in range(count):
            vocabulary.add(token)
    return vocabulary.freeze()


def test_keep_probability_monotone_in_frequency():
    vocabulary = _vocabulary({"rare": 2, "mid": 50, "stop": 500})
    model = Word2Vec(subsample=1e-3)
    keep = model._keep_probabilities(vocabulary)
    assert keep[vocabulary.id_of("rare")] >= keep[vocabulary.id_of("mid")]
    assert keep[vocabulary.id_of("mid")] > keep[vocabulary.id_of("stop")]


def test_keep_probability_capped_at_one():
    vocabulary = _vocabulary({"a": 1, "b": 1})
    keep = Word2Vec(subsample=1e-3)._keep_probabilities(vocabulary)
    assert np.all(keep <= 1.0)


def test_subsample_zero_keeps_everything():
    vocabulary = _vocabulary({"a": 100, "b": 1})
    keep = Word2Vec(subsample=0.0)._keep_probabilities(vocabulary)
    assert np.all(keep == 1.0)


def test_tiny_uniform_corpus_falls_back_to_full_pairs():
    # Subsampling would drop everything; training must still work.
    model = Word2Vec(dim=4, epochs=1, seed=0).train(
        [["a", "b", "c"]] * 4
    )
    assert model.fitted
    assert model.vector("a") is not None


def test_subsampling_prevents_anisotropy_collapse():
    """Without subsampling, ubiquitous particles pull every content
    vector into one direction and all pairwise cosines saturate near 1;
    subsampling keeps the geometry spread out."""
    corpus = []
    for _ in range(120):
        corpus.append(["iro", "wa", "aka", "desu"])
        corpus.append(["iro", "wa", "ao", "desu"])
        corpus.append(["juryo", "ga", "omoi", "kg"])
        corpus.append(["juryo", "ga", "karui", "kg"])

    def mean_abs_cosine(model):
        words = ["aka", "ao", "omoi", "karui"]
        sims = [
            abs(model.similarity(a, b))
            for i, a in enumerate(words)
            for b in words[i + 1:]
        ]
        return sum(sims) / len(sims)

    collapsed = Word2Vec(
        dim=16, epochs=12, seed=3, subsample=0.0
    ).train(corpus)
    spread = Word2Vec(
        dim=16, epochs=12, seed=3, subsample=1e-3
    ).train(corpus)
    assert mean_abs_cosine(spread) < mean_abs_cosine(collapsed)
