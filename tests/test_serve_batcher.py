"""Tests for the serve micro-batcher and its per-request isolation."""

import threading
import time

import pytest

from repro.errors import JobTimeoutError, ModelError, WorkerDeathError
from repro.runtime.jobs import Deadline
from repro.serve.batcher import BatchJob, MicroBatcher
from repro.types import TaggedSentence

pytestmark = pytest.mark.usefixtures("watchdog")

POISON_ID = "poison"


class EchoTagger:
    """Tags every token O; raises on sentences from the poison product.

    Mimics the strict-decode contract of ``CrfTagger.tag``: one bad
    sentence raises ``ModelError`` for the whole call.
    """

    def __init__(self, error=ModelError):
        self.error = error
        self.calls = 0

    def tag(self, sentences):
        self.calls += 1
        tagged = []
        for sentence in sentences:
            if sentence.product_id == POISON_ID:
                raise self.error(
                    "CrfTagger.tag decoded no labels for non-empty "
                    f"sentence {sentence.product_id!r}"
                )
            tagged.append(TaggedSentence(sentence, ("O",) * len(sentence)))
        return tagged


class FakeBundle:
    def __init__(self, tagger):
        self.tagger = tagger
        self.version = "fake"


@pytest.fixture
def batcher():
    instance = MicroBatcher(max_size=8, max_wait_seconds=0.02)
    yield instance
    instance.close()


def _job(bundle, make_sentence, product_id="p0", budget=5.0):
    return BatchJob(
        bundle,
        [make_sentence("iro wa aka desu", product_id)],
        Deadline.after(budget),
    )


def test_jobs_resolve_with_results(batcher, make_sentence):
    bundle = FakeBundle(EchoTagger())
    jobs = [
        batcher.submit(_job(bundle, make_sentence, f"p{i}"))
        for i in range(4)
    ]
    for job in jobs:
        assert job.wait(5.0)
        assert job.error is None
        assert len(job.result) == 1
        assert job.result[0].labels == ("O",) * len(job.result[0].sentence)


def test_concurrent_jobs_share_batches(batcher, make_sentence):
    bundle = FakeBundle(EchoTagger())
    jobs = [_job(bundle, make_sentence, f"p{i}") for i in range(8)]
    for job in jobs:
        batcher.submit(job)
    for job in jobs:
        assert job.wait(5.0)
    # The gather window merged at least some of the burst: fewer
    # tagger calls than jobs.
    assert bundle.tagger.calls < len(jobs)
    assert batcher.batched_jobs == len(jobs)


def test_model_error_fails_only_the_poisoned_request(
    batcher, make_sentence
):
    """Satellite: a strict-decode ModelError on one request's sentence
    must fail that request alone, not its whole micro-batch."""
    bundle = FakeBundle(EchoTagger())
    good = [_job(bundle, make_sentence, f"good{i}") for i in range(3)]
    poisoned = _job(bundle, make_sentence, POISON_ID)
    # Submit as one burst so they share a batch.
    for job in (*good[:2], poisoned, good[2]):
        batcher.submit(job)
    for job in (*good, poisoned):
        assert job.wait(5.0)
    assert isinstance(poisoned.error, ModelError)
    for job in good:
        assert job.error is None, f"batch-mate failed: {job.error}"
        assert job.result is not None
    assert batcher.isolated_retries >= 1


def test_worker_death_is_isolated_the_same_way(batcher, make_sentence):
    bundle = FakeBundle(EchoTagger(error=lambda msg: WorkerDeathError("tag", msg)))
    good = _job(bundle, make_sentence, "good")
    dead = _job(bundle, make_sentence, POISON_ID)
    batcher.submit(good)
    batcher.submit(dead)
    assert good.wait(5.0) and dead.wait(5.0)
    assert isinstance(dead.error, WorkerDeathError)
    assert good.error is None


def test_expired_deadline_drops_before_model_work(batcher, make_sentence):
    bundle = FakeBundle(EchoTagger())
    job = BatchJob(
        bundle,
        [make_sentence("iro wa aka desu")],
        Deadline.after(-1.0),
    )
    batcher.submit(job)
    assert job.wait(5.0)
    assert isinstance(job.error, JobTimeoutError)
    assert batcher.deadline_drops == 1
    # The tagger never ran for the dropped job.
    assert bundle.tagger.calls == 0


def test_different_bundles_never_share_a_batch(batcher, make_sentence):
    first = FakeBundle(EchoTagger())
    second = FakeBundle(EchoTagger())
    jobs = [
        batcher.submit(_job(first, make_sentence, "a")),
        batcher.submit(_job(second, make_sentence, "b")),
    ]
    for job in jobs:
        assert job.wait(5.0)
        assert job.error is None
    assert first.tagger.calls == 1
    assert second.tagger.calls == 1


def test_close_resolves_pending_jobs(make_sentence):
    class SlowTagger(EchoTagger):
        def tag(self, sentences):
            time.sleep(0.1)
            return super().tag(sentences)

    batcher = MicroBatcher(max_size=2, max_wait_seconds=0.0)
    bundle = FakeBundle(SlowTagger())
    jobs = [_job(bundle, make_sentence, f"p{i}") for i in range(6)]
    for job in jobs:
        batcher.submit(job)
    batcher.close()
    for job in jobs:
        assert job.wait(5.0), "close() left a job unresolved"
    # After close, new submissions fail fast instead of hanging.
    late = batcher.submit(_job(bundle, make_sentence, "late"))
    assert late.wait(1.0)
    assert late.error is not None


def test_submissions_from_many_threads(batcher, make_sentence):
    bundle = FakeBundle(EchoTagger())
    jobs = []
    lock = threading.Lock()

    def submit_some(prefix):
        for i in range(10):
            job = _job(bundle, make_sentence, f"{prefix}-{i}")
            batcher.submit(job)
            with lock:
                jobs.append(job)

    threads = [
        threading.Thread(target=submit_some, args=(f"t{t}",))
        for t in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for job in jobs:
        assert job.wait(5.0)
        assert job.error is None
    assert batcher.batched_jobs == 40
