"""Tests for the experiment infrastructure (caching, configs)."""

from repro.config import PipelineConfig
from repro.experiments import ExperimentSettings, cached_dataset, cached_run
from repro.experiments.common import (
    CORE_CATEGORIES,
    RunRequest,
    cached_truth,
    crf_config,
    lstm_config,
    prefetch_runs,
)


def test_core_categories_match_paper():
    assert CORE_CATEGORIES == (
        "tennis", "kitchen", "cosmetics", "garden", "shoes",
        "ladies_bags", "digital_cameras", "vacuum_cleaner",
    )


def test_settings_defaults():
    settings = ExperimentSettings()
    assert settings.iterations == 5
    assert settings.german_products < settings.products


def test_cached_dataset_is_memoized():
    first = cached_dataset("tennis", 12, 99)
    second = cached_dataset("tennis", 12, 99)
    assert first is second


def test_cached_dataset_key_includes_seed():
    first = cached_dataset("tennis", 12, 99)
    second = cached_dataset("tennis", 12, 100)
    assert first is not second


def test_cached_run_is_memoized():
    config = crf_config(1, cleaning=False)
    first = cached_run("tennis", 30, 99, config)
    second = cached_run("tennis", 30, 99, config)
    assert first is second


def test_cached_run_key_includes_config():
    first = cached_run("tennis", 30, 99, crf_config(1, cleaning=False))
    second = cached_run("tennis", 30, 99, crf_config(1, cleaning=True))
    assert first is not second


def test_prefetch_runs_warms_the_cache():
    config = crf_config(1, cleaning=False)
    requests = [
        RunRequest("tennis", 25, 123, config),
        RunRequest("garden", 25, 123, config),
        RunRequest("tennis", 25, 123, config),  # duplicate, deduped
    ]
    prefetch_runs(requests, workers=2)
    # Hits must come straight from the warmed memo.
    first = cached_run("tennis", 25, 123, config)
    assert cached_run("tennis", 25, 123, config) is first
    assert cached_run("garden", 25, 123, config) is not first


def test_prefetch_matches_inline_run():
    config = crf_config(1, cleaning=True)
    prefetch_runs([RunRequest("kitchen", 25, 124, config)], workers=2)
    warmed = cached_run("kitchen", 25, 124, config)
    from repro.core.bootstrap import Bootstrapper

    dataset = cached_dataset("kitchen", 25, 124)
    inline = Bootstrapper(config).run(
        list(dataset.product_pages), dataset.query_log
    )
    assert warmed == inline


def test_cached_run_key_includes_subset():
    config = crf_config(1, cleaning=False)
    full = cached_run("tennis", 30, 99, config)
    subset = cached_run(
        "tennis", 30, 99, config, attribute_subset=("iro",)
    )
    assert full is not subset
    assert {t.attribute for t in subset.final_triples} <= {"iro"}


def test_cached_truth_matches_dataset():
    truth = cached_truth("tennis", 12, 99)
    dataset = cached_dataset("tennis", 12, 99)
    assert truth.correct == dataset.correct_triples


def test_crf_config_knobs():
    config = crf_config(3, semantic=False, syntactic=True)
    assert config.tagger == "crf"
    assert config.iterations == 3
    assert not config.enable_semantic_cleaning
    assert config.enable_syntactic_cleaning

    no_div = crf_config(2, cleaning=True, diversification=False)
    assert not no_div.enable_diversification


def test_lstm_config_knobs():
    config = lstm_config(1, epochs=10, cleaning=False)
    assert config.tagger == "lstm"
    assert config.lstm.epochs == 10
    assert not config.enable_semantic_cleaning
