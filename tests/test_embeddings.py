"""Tests for word2vec and the similarity utilities."""

import numpy as np
import pytest

from repro.embeddings import (
    Word2Vec,
    cosine_similarity,
    multiplicative_similarity,
)
from repro.embeddings.similarity import (
    average_pairwise_similarity,
    shifted_cosine,
)
from repro.errors import EmbeddingError


def _cluster_corpus(repeats=150):
    """Two word families with disjoint contexts."""
    corpus = []
    for _ in range(repeats):
        corpus.append(["iro", "wa", "aka", "desu"])
        corpus.append(["iro", "wa", "ao", "desu"])
        corpus.append(["juryo", "ga", "omoi", "kg"])
        corpus.append(["juryo", "ga", "karui", "kg"])
    return corpus


def test_train_on_empty_corpus_raises():
    with pytest.raises(EmbeddingError):
        Word2Vec().train([])


def test_rejects_bad_hyperparameters():
    with pytest.raises(EmbeddingError):
        Word2Vec(dim=0)
    with pytest.raises(EmbeddingError):
        Word2Vec(window=0)


def test_vector_lookup():
    model = Word2Vec(dim=8, epochs=1, seed=0).train(
        [["a", "b", "c"]] * 5
    )
    assert model.vector("a") is not None
    assert model.vector("a").shape == (8,)
    assert model.vector("unseen-word") is None
    assert "a" in model
    assert "unseen-word" not in model


def test_similarity_of_unknown_word_is_zero():
    model = Word2Vec(dim=8, epochs=1, seed=0).train([["a", "b"]] * 5)
    assert model.similarity("a", "never") == 0.0


def test_cooccurring_words_become_similar():
    model = Word2Vec(dim=16, epochs=5, seed=1, window=2).train(
        _cluster_corpus()
    )
    same_cluster = model.similarity("aka", "ao")
    cross_cluster = model.similarity("aka", "omoi")
    assert same_cluster > cross_cluster


def test_training_is_deterministic():
    corpus = _cluster_corpus(30)
    first = Word2Vec(dim=8, epochs=2, seed=3).train(corpus)
    second = Word2Vec(dim=8, epochs=2, seed=3).train(corpus)
    assert np.allclose(first.vector("aka"), second.vector("aka"))


def test_cosine_similarity_bounds():
    a = np.array([1.0, 0.0])
    assert cosine_similarity(a, a) == pytest.approx(1.0)
    assert cosine_similarity(a, -a) == pytest.approx(-1.0)
    assert cosine_similarity(a, np.array([0.0, 1.0])) == pytest.approx(0.0)


def test_cosine_of_zero_vector_is_zero():
    assert cosine_similarity(np.zeros(2), np.ones(2)) == 0.0


def test_shifted_cosine_range():
    a = np.array([1.0, 0.0])
    assert shifted_cosine(a, a) == pytest.approx(1.0)
    assert shifted_cosine(a, -a) == pytest.approx(0.0)


def test_multiplicative_similarity_geometric_mean():
    candidate = np.array([1.0, 0.0])
    core = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
    # shifted cosines: 1.0 and 0.5 -> geometric mean sqrt(0.5)
    assert multiplicative_similarity(candidate, core) == pytest.approx(
        np.sqrt(0.5)
    )


def test_multiplicative_similarity_empty_core():
    assert multiplicative_similarity(np.ones(2), []) == 0.0


def test_average_pairwise_similarity_identifies_outlier():
    vectors = [
        np.array([1.0, 0.0]),
        np.array([0.9, 0.1]),
        np.array([-1.0, 0.0]),  # the outlier
    ]
    scores = [
        average_pairwise_similarity(i, vectors) for i in range(3)
    ]
    assert scores.index(min(scores)) == 2


def test_average_pairwise_similarity_single_vector():
    assert average_pairwise_similarity(0, [np.ones(2)]) == 0.0
