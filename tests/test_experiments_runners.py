"""Smoke tests for every experiment runner at tiny scale.

These are *structure* tests — the runners must produce complete,
well-formed result objects and printable tables. Shape assertions
against the paper live in the benchmarks at proper scale.
"""

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments import (
    cleaning_impact,
    diversification,
    figure3,
    figure4_6,
    figure5,
    figure7_8,
    german,
    heterogeneous,
    per_attribute,
    table1,
    table2_3,
    table4,
)

TINY = ExperimentSettings(products=60, data_seed=5, iterations=1)


@pytest.fixture(scope="module")
def tiny():
    return TINY


def test_table1_runner(tiny):
    result = table1.run(tiny)
    assert len(result.rows) == 8
    assert "Table I" in result.format()
    for row in result.rows:
        assert 0.0 <= row.precision_pairs <= 1.0
        assert 0.0 <= row.coverage_triples <= 1.0


def test_table2_3_runner(tiny):
    result = table2_3.run(tiny)
    assert len(result.cells) == 5 * 8
    text = result.format()
    assert "Table II" in text
    assert "Table III" in text


def test_table4_runner(tiny):
    result = table4.run(tiny)
    # 4 ablations × 2 categories × (iteration 1, iteration N) — with
    # N=1 the two reads coincide on the same key.
    assert len(result.precisions) == 4 * 2
    assert "Table IV" in result.format()


def test_figure3_runner(tiny):
    result = figure3.run(tiny)
    assert len(result.curves) == 2 * len(figure3.FIGURE3_CATEGORIES)
    for points in result.curves.values():
        assert len(points) == tiny.iterations + 1
    assert "Figure 3" in result.format()


def test_figure4_and_6_runners(tiny):
    fig4 = figure4_6.run_figure4(tiny)
    assert len(fig4.per_product) == 2 * 8
    assert "Figure 4" in fig4.format()
    fig6 = figure4_6.run_figure6(tiny)
    assert len(fig6.increases) == 3 * 8
    assert all(value >= 0 for value in fig6.increases.values())
    assert "Figure 6" in fig6.format()


def test_figure5_runner(tiny):
    result = figure5.run(tiny)
    for counts in result.counts.values():
        assert len(counts) == tiny.iterations + 1
        assert list(counts) == sorted(counts)
    assert "Figure 5" in result.format()


def test_figure7_8_runners(tiny):
    fig7 = figure7_8.run_figure7(tiny)
    assert set(fig7.attributes) == set(figure7_8.FIGURE7[1])
    assert "Figure 7" in fig7.format("Figure 7")
    fig8 = figure7_8.run_figure8(tiny)
    assert set(fig8.attributes) == set(figure7_8.FIGURE8[1])


def test_german_runner(tiny):
    result = german.run(tiny)
    assert [row.category for row in result.rows] == list(
        german.GERMAN_CATEGORIES
    )
    assert "German" in result.format()


def test_diversification_runner(tiny):
    result = diversification.run(tiny)
    assert result.with_div.seed_weight_values >= (
        result.without_div.seed_weight_values
    )
    assert "diversification" in result.format()


def test_cleaning_impact_runner(tiny):
    result = cleaning_impact.run(tiny)
    assert len(result.veto_rows) == 8
    assert len(result.core_sweep) == 2 * 3
    assert "veto" in result.format()


def test_per_attribute_runner(tiny):
    result = per_attribute.run(tiny)
    assert len(result.rows) == 6
    assert "per-attribute" in result.format()


def test_heterogeneous_runner(tiny):
    result = heterogeneous.run(tiny)
    assert 0.0 <= result.heterogeneous_precision <= 1.0
    assert "homogeneity" in result.format()
