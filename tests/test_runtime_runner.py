"""Tests for CategoryRunner: parallel sweeps, retries, degradation."""

from concurrent.futures import Future

import pytest

from repro.config import PipelineConfig
from repro.errors import ConfigError
from repro.runtime import (
    CategoryRunner,
    JobOutcome,
    RunnerJob,
    default_workers,
    execute_job,
    parallel_map,
    retry_backoff,
)

SWEEP_CATEGORIES = ("tennis", "kitchen", "garden", "vacuum_cleaner")


def _sweep_jobs(products=40, iterations=1):
    config = PipelineConfig(iterations=iterations)
    return [
        RunnerJob.generate(category, products, config, data_seed=7)
        for category in SWEEP_CATEGORIES
    ]


def test_job_requires_dataset_or_spec():
    config = PipelineConfig(iterations=1)
    with pytest.raises(ValueError):
        RunnerJob(name="bad", config=config)
    with pytest.raises(ValueError):
        RunnerJob(
            name="bad",
            config=config,
            pages=(),
            query_log=object(),
            category="tennis",
            products=10,
        )


def test_parallel_matches_serial_on_four_categories():
    """The headline determinism contract of the sweep runner."""
    serial = CategoryRunner(mode="serial").run(_sweep_jobs())
    parallel = CategoryRunner(workers=4, mode="process").run(_sweep_jobs())
    assert len(serial) == len(parallel) == len(SWEEP_CATEGORIES)
    for ser, par in zip(serial, parallel):
        assert ser.ok and par.ok
        assert ser.job_name == par.job_name
        # Full structural equality: seed, material, every iteration.
        assert ser.result.bootstrap == par.result.bootstrap
        assert ser.result.triples == par.result.triples


def test_outcomes_in_submission_order():
    outcomes = CategoryRunner(workers=2).run(_sweep_jobs(products=30))
    assert [o.job_name for o in outcomes] == list(SWEEP_CATEGORIES)
    assert [o.index for o in outcomes] == [0, 1, 2, 3]


def test_failed_category_yields_error_record_not_crash():
    config = PipelineConfig(iterations=1)
    jobs = [
        RunnerJob.generate("tennis", 30, config),
        RunnerJob.generate("no_such_category", 30, config),
        RunnerJob.generate("garden", 30, config),
    ]
    outcomes = CategoryRunner(workers=2, retries=0).run(jobs)
    assert [o.ok for o in outcomes] == [True, False, True]
    failure = outcomes[1].failure
    assert failure is not None
    assert failure.job_name == "no_such_category"
    assert failure.error_type
    assert failure.traceback
    assert outcomes[1].trace is None


def test_execute_job_retries_until_success(monkeypatch):
    attempts = {"n": 0}
    original = RunnerJob.materialize

    def flaky(self):
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise OSError("transient")
        return original(self)

    monkeypatch.setattr(RunnerJob, "materialize", flaky)
    job = RunnerJob.generate("tennis", 30, PipelineConfig(iterations=1))
    outcome = execute_job(0, job, retries=2)
    assert outcome.ok
    assert outcome.attempts == 3


def test_execute_job_exhausts_retries(monkeypatch):
    def always_broken(self):
        raise OSError("permanent")

    monkeypatch.setattr(RunnerJob, "materialize", always_broken)
    job = RunnerJob.generate("tennis", 30, PipelineConfig(iterations=1))
    outcome = execute_job(0, job, retries=1)
    assert not outcome.ok
    assert outcome.attempts == 2
    assert outcome.failure.error_type == "OSError"


def test_runner_trace_travels_across_processes():
    outcomes = CategoryRunner(workers=2).run(_sweep_jobs(products=30))
    for outcome in outcomes:
        assert outcome.trace is not None
        assert "tagger_train" in outcome.trace.stage_totals()


def test_empty_job_list():
    assert CategoryRunner().run([]) == []


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        CategoryRunner(mode="coroutine")


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_workers() == 3
    assert default_workers(job_count=2) == 2
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert default_workers() == 1


def test_parallel_map_preserves_order():
    assert parallel_map(str.upper, ["a", "b", "c"], workers=2) == [
        "A",
        "B",
        "C",
    ]
    assert parallel_map(str.upper, [], workers=2) == []


def test_default_workers_rejects_non_integer_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "banana")
    with pytest.raises(ConfigError, match="banana"):
        default_workers()


def test_runner_validates_deadline_retries_and_backoff():
    with pytest.raises(ValueError):
        CategoryRunner(job_timeout=0)
    with pytest.raises(ValueError):
        CategoryRunner(job_timeout=-1.0)
    with pytest.raises(ValueError):
        CategoryRunner(backoff_base=-0.1)
    with pytest.raises(ValueError):
        CategoryRunner(retries=-1)


def test_retry_backoff_is_deterministic_and_capped():
    schedule = [retry_backoff("tennis", n) for n in (1, 2, 3)]
    assert schedule == [retry_backoff("tennis", n) for n in (1, 2, 3)]
    assert schedule[0] < schedule[1] < schedule[2]
    assert retry_backoff("tennis", 50, cap=2.0) <= 2.0
    assert retry_backoff("tennis", 1, base=0.0) == 0.0


def _failed_future(error: Exception) -> Future:
    future: Future = Future()
    future.set_exception(error)
    return future


def test_collect_pool_fault_recovers_inline():
    """A worker that died of a pool-level fault gets one inline retry."""
    runner = CategoryRunner(workers=2, backoff_base=0.0)
    job = RunnerJob.generate("tennis", 30, PipelineConfig(iterations=1))
    outcome = runner._collect(
        0, job, _failed_future(RuntimeError("pool died"))
    )
    assert outcome.ok
    assert outcome.result is not None


def test_collect_merges_pool_and_inline_failures():
    """When the inline retry fails too, the merged failure keeps the
    inline root cause, notes the pool fault, and counts both attempts."""
    runner = CategoryRunner(workers=2, backoff_base=0.0)
    job = RunnerJob.generate(
        "no_such_category", 30, PipelineConfig(iterations=1)
    )
    outcome = runner._collect(
        0, job, _failed_future(RuntimeError("pool died"))
    )
    assert not outcome.ok
    failure = outcome.failure
    assert failure.attempts == 2
    assert outcome.attempts == 2
    # The inline error is the root cause; the pool fault is context.
    assert failure.error_type != "RuntimeError"
    assert "worker pool fault: RuntimeError: pool died" in failure.message
    assert failure.traceback


def _record_and_maybe_raise(item):
    path, index = item
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{index}\n")
    if index == 1:
        raise OSError("deterministic item failure")
    return index * 10


def test_parallel_map_item_error_raises_without_serial_rerun(tmp_path):
    """A deterministic per-item failure surfaces with its original type
    (even an OSError, the pool-degradation trigger) after exactly one
    guarded inline retry — never a full serial re-run of every item."""
    path = str(tmp_path / "calls.log")
    items = [(path, 0), (path, 1), (path, 2)]
    with pytest.raises(OSError, match="deterministic item failure"):
        parallel_map(_record_and_maybe_raise, items, workers=2)
    with open(path, encoding="utf-8") as handle:
        calls = [int(line) for line in handle.read().split()]
    assert calls.count(1) == 2  # pool attempt + guarded inline retry
    assert calls.count(0) == 1  # healthy items never re-run


def test_process_pool_capped_at_visible_cpus(monkeypatch):
    """Requesting more workers than CPUs must not oversubscribe."""
    from repro.runtime import runner as runner_module

    monkeypatch.setattr(runner_module, "visible_cpus", lambda: 1)

    def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("pool built despite 1 visible CPU")

    monkeypatch.setattr(
        runner_module, "ProcessPoolExecutor", _no_pool
    )
    outcomes = CategoryRunner(workers=4, mode="process").run(
        _sweep_jobs(products=30)[:2]
    )
    assert [outcome.ok for outcome in outcomes] == [True, True]


def test_deadline_runs_keep_requested_pool(monkeypatch):
    """A job_timeout needs a real pool even on a 1-CPU box."""
    from repro.runtime import runner as runner_module

    monkeypatch.setattr(runner_module, "visible_cpus", lambda: 1)
    outcomes = CategoryRunner(
        workers=2, mode="process", job_timeout=120.0
    ).run(_sweep_jobs(products=30)[:2])
    assert [outcome.ok for outcome in outcomes] == [True, True]


def test_slim_results_drop_training_material():
    job = RunnerJob.generate(
        "tennis", 30, PipelineConfig(iterations=1),
        data_seed=7, slim_results=True,
    )
    outcome = execute_job(0, job, retries=0)
    assert outcome.ok
    assert outcome.result.bootstrap.material is None
    assert len(outcome.result.triples) > 0
