"""End-to-end tests for the PAEPipeline facade."""

import pytest

from repro import PAEPipeline, PipelineConfig
from repro.evaluation import build_truth_sample, precision


@pytest.fixture(scope="module")
def pipeline_result(small_vacuum_dataset):
    pipeline = PAEPipeline(PipelineConfig(iterations=2))
    return pipeline.run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )


def test_produces_triples(pipeline_result):
    assert len(pipeline_result.triples) > 0


def test_attributes_discovered(pipeline_result):
    # Core attributes of the category appear among the discovered ones.
    assert "juryo" in pipeline_result.attributes or (
        "omosa" in pipeline_result.attributes
    )


def test_coverage_bounds(pipeline_result):
    assert 0.0 < pipeline_result.coverage() <= 1.0
    assert pipeline_result.coverage(0) <= pipeline_result.coverage()


def test_triples_per_product_positive(pipeline_result):
    assert pipeline_result.triples_per_product() > 0


def test_seed_triples_subset_of_final(pipeline_result):
    assert pipeline_result.seed_triples <= pipeline_result.triples


def test_reused_pipeline_instance_is_re_entrant(
    small_vacuum_dataset, small_garden_dataset
):
    """Regression: one instance run on two datasets must match two
    fresh pipelines — no `_kept_extractions`/`_last_tagged` leakage."""
    config = PipelineConfig(iterations=1)
    shared = PAEPipeline(config)
    reused_vacuum = shared.run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    reused_garden = shared.run(
        list(small_garden_dataset.product_pages),
        small_garden_dataset.query_log,
    )
    fresh_vacuum = PAEPipeline(config).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    fresh_garden = PAEPipeline(config).run(
        list(small_garden_dataset.product_pages),
        small_garden_dataset.query_log,
    )
    assert reused_vacuum.bootstrap == fresh_vacuum.bootstrap
    assert reused_garden.bootstrap == fresh_garden.bootstrap


def test_deterministic_end_to_end(small_vacuum_dataset):
    config = PipelineConfig(iterations=1)
    pages = list(small_vacuum_dataset.product_pages)
    first = PAEPipeline(config).run(pages, small_vacuum_dataset.query_log)
    second = PAEPipeline(config).run(pages, small_vacuum_dataset.query_log)
    assert first.triples == second.triples


def test_lstm_backend_runs(small_vacuum_dataset):
    config = PipelineConfig(iterations=1, tagger="lstm")
    result = PAEPipeline(config).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    assert result.triples >= result.seed_triples


def test_ensemble_backend_runs(small_vacuum_dataset):
    config = PipelineConfig(
        iterations=1, tagger="ensemble", ensemble_policy="agreement"
    )
    result = PAEPipeline(config).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    assert result.triples >= result.seed_triples


def test_quality_against_truth(pipeline_result, small_vacuum_dataset):
    truth = build_truth_sample(small_vacuum_dataset)
    breakdown = precision(pipeline_result.triples, truth)
    assert breakdown.correct > 0
    assert breakdown.precision > 0.6


def test_resilience_counters_include_trainer_warnings(pipeline_result):
    counters = pipeline_result.resilience_counters()
    # Clean run: the key exists and is empty.
    assert counters["trainer_warnings"] == {}


def test_trainer_warnings_flow_through_trace():
    from repro.core.pipeline import PipelineResult
    from repro.runtime.trace import PipelineTrace

    trace = PipelineTrace()
    trace.count("trainer_warning", 2, lbfgs_abnormal=1)
    trace.count("trainer_warning", 3, lbfgs_abnormal=2)
    result = PipelineResult(
        bootstrap=None, product_count=0, trace=trace
    )
    counters = result.resilience_counters()
    assert counters["trainer_warnings"] == {"lbfgs_abnormal": 3}


def test_resilience_counters_without_trace_have_trainer_key():
    from repro.core.pipeline import PipelineResult

    result = PipelineResult(bootstrap=None, product_count=0, trace=None)
    assert result.resilience_counters()["trainer_warnings"] == {}
