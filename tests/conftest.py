"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
import signal

import pytest

from repro.corpus import Marketplace
from repro.nlp import get_locale
from repro.types import Sentence, TaggedSentence

#: Wall-clock budget (seconds) the ``watchdog`` fixture grants a test.
WATCHDOG_SECONDS = 90


@pytest.fixture
def watchdog():
    """Fail fast instead of wedging CI when a recovery path hangs.

    The chaos/resilience tests exercise timeout and retry machinery; a
    regression there can hang rather than fail. This fixture arms a
    SIGALRM that raises ``TimeoutError`` after ``WATCHDOG_SECONDS``, so
    a hung test dies loudly. Opt in per-module with
    ``pytestmark = pytest.mark.usefixtures("watchdog")``. No-op on
    platforms without SIGALRM.
    """
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"watchdog: test exceeded {WATCHDOG_SECONDS}s wall-clock"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def ja():
    """The Japanese-locale NLP bundle."""
    return get_locale("ja")


@pytest.fixture(scope="session")
def de():
    """The German-locale NLP bundle."""
    return get_locale("de")


@pytest.fixture
def make_sentence(ja):
    """Factory: text -> tokenized Sentence in the ja locale."""

    def _make(
        text: str, product_id: str = "p0", index: int = 0
    ) -> Sentence:
        return Sentence(product_id, index, ja.tokens(text))

    return _make


@pytest.fixture
def make_tagged(make_sentence):
    """Factory: (text, value, attribute) -> BIO-labelled sentence.

    Labels the first occurrence of ``value``'s token sequence.
    """

    def _make(
        text: str,
        value: str,
        attribute: str,
        product_id: str = "p0",
        index: int = 0,
    ) -> TaggedSentence:
        sentence = make_sentence(text, product_id, index)
        texts = list(sentence.texts())
        value_tokens = value.split(" ")
        labels = ["O"] * len(texts)
        for start in range(len(texts) - len(value_tokens) + 1):
            if texts[start:start + len(value_tokens)] == value_tokens:
                labels[start] = f"B-{attribute}"
                for offset in range(1, len(value_tokens)):
                    labels[start + offset] = f"I-{attribute}"
                break
        return TaggedSentence(sentence, tuple(labels))

    return _make


@pytest.fixture(scope="session")
def small_vacuum_dataset():
    """A small but non-trivial generated category (cached per session)."""
    return Marketplace(seed=11).generate("vacuum_cleaner", 80)


@pytest.fixture(scope="session")
def small_garden_dataset():
    """The noisy category at small scale (cached per session)."""
    return Marketplace(seed=11).generate("garden", 80)


@pytest.fixture
def rng():
    return random.Random(1234)


#: The serve suite's dictionary: attribute -> value keys.
SERVE_DICTIONARY = {
    "iro": ("aka", "ao", "shiro", "kuro", "midori"),
    "juryo": ("2 kg", "3 kg", "5 kg", "1 . 5 kg"),
}


@pytest.fixture(scope="session")
def serve_model(ja):
    """A trained CRF + its dictionary for serve tests (cached per session).

    Same tiny ja labelling task as the CRF model tests; returns
    ``(tagger, dictionary)`` ready for ``publish_bundle``.
    """
    from repro.config import CrfConfig
    from repro.ml import CrfTagger

    generator = random.Random(0)
    colors = list(SERVE_DICTIONARY["iro"])
    weights = list(SERVE_DICTIONARY["juryo"])
    data = []
    for index in range(150):
        color = generator.choice(colors)
        weight = generator.choice(weights)
        tokens = ja.tokens(
            f"iro wa {color} desu soshite juryo wa {weight} desu"
        )
        texts = [token.text for token in tokens]
        labels = ["O"] * len(tokens)
        labels[texts.index(color)] = "B-iro"
        weight_tokens = weight.split()
        for start in range(len(texts)):
            if texts[start:start + len(weight_tokens)] == weight_tokens:
                labels[start] = "B-juryo"
                for offset in range(1, len(weight_tokens)):
                    labels[start + offset] = "I-juryo"
                break
        data.append(
            TaggedSentence(Sentence(f"p{index}", 0, tokens), tuple(labels))
        )
    tagger = CrfTagger(CrfConfig(max_iterations=40)).train(data)
    return tagger, {
        attribute: list(values)
        for attribute, values in SERVE_DICTIONARY.items()
    }
