"""Cross-module integration tests: generator → pipeline → evaluation.

These check the *shapes* the benchmarks rely on, at a scale small
enough for the unit-test suite.
"""

import pytest

from repro import PAEPipeline, PipelineConfig
from repro.corpus import Marketplace
from repro.evaluation import build_truth_sample, coverage, precision


@pytest.fixture(scope="module")
def two_iteration_runs():
    """Cleaned and uncleaned two-iteration runs over one dataset."""
    dataset = Marketplace(seed=21).generate("ladies_bags", 110)
    truth = build_truth_sample(dataset)
    pages = list(dataset.product_pages)
    cleaned = PAEPipeline(PipelineConfig(iterations=2)).run(
        pages, dataset.query_log
    )
    raw = PAEPipeline(
        PipelineConfig(iterations=2).without_cleaning()
    ).run(pages, dataset.query_log)
    return dataset, truth, cleaned, raw


def test_bootstrap_grows_coverage(two_iteration_runs):
    dataset, truth, cleaned, raw = two_iteration_runs
    assert cleaned.coverage() > cleaned.coverage(0)


def test_precision_stays_high_with_cleaning(two_iteration_runs):
    dataset, truth, cleaned, raw = two_iteration_runs
    breakdown = precision(cleaned.triples, truth)
    assert breakdown.precision > 0.75


def test_cleaning_never_increases_triple_count(two_iteration_runs):
    dataset, truth, cleaned, raw = two_iteration_runs
    assert len(cleaned.triples) <= len(raw.triples)


def test_seed_triples_shared_between_configs(two_iteration_runs):
    dataset, truth, cleaned, raw = two_iteration_runs
    assert cleaned.seed_triples == raw.seed_triples


def test_german_pipeline_end_to_end():
    dataset = Marketplace(seed=22).generate("coffee_machines", 90)
    truth = build_truth_sample(dataset)
    result = PAEPipeline(PipelineConfig(iterations=2)).run(
        list(dataset.product_pages), dataset.query_log
    )
    breakdown = precision(result.triples, truth)
    assert breakdown.correct > 10
    assert breakdown.precision > 0.7
    assert result.coverage() > 0.3


def test_attribute_aggregation_survives_end_to_end():
    """Merchant aliases (meka / seizomoto) must collapse into the
    canonical brand attribute somewhere in the discovered inventory."""
    dataset = Marketplace(seed=23).generate("ladies_bags", 110)
    result = PAEPipeline(PipelineConfig(iterations=1)).run(
        list(dataset.product_pages), dataset.query_log
    )
    brand_names = {"burando", "meka", "seizomoto"}
    discovered = set(result.attributes)
    # At least one brand surface made it through, and fewer cluster
    # names than surface names survive (some merging happened).
    assert discovered & brand_names
    assert len(discovered & brand_names) < 3
