"""Tests for seed value cleaning (query log + frequency filter)."""

from collections import Counter

from repro.config import SeedConfig
from repro.core.preprocess import aggregate_attributes, clean_values
from repro.core.preprocess.candidate_discovery import RawCandidate
from repro.corpus.querylog import QueryLog


def _make(spec):
    candidates = [
        RawCandidate(page, attribute, value)
        for attribute, rows in spec.items()
        for page, value in rows
    ]
    clusters = aggregate_attributes(
        candidates, SeedConfig(min_attribute_pages=1)
    )
    return candidates, clusters


def _log(*keys):
    return QueryLog(Counter({key: 1 for key in keys}))


def test_frequent_values_survive_without_query_log():
    candidates, clusters = _make(
        {"iro": [(f"p{i}", "aka") for i in range(4)]}
    )
    cleaned = clean_values(
        candidates, clusters, _log(),
        SeedConfig(min_attribute_pages=1, min_value_page_frequency=3),
    )
    assert cleaned["iro"]["aka"] == 4


def test_rare_values_dropped_unless_searched():
    candidates, clusters = _make(
        {
            "iro": [
                ("p1", "aka"), ("p2", "aka"), ("p3", "aka"),
                ("p4", "nebi"),
                ("p5", "rozu pinku"),
            ]
        }
    )
    cleaned = clean_values(
        candidates, clusters, _log("rozu pinku"),
        SeedConfig(min_attribute_pages=1, min_value_page_frequency=3),
    )
    assert "aka" in cleaned["iro"]            # frequent
    assert "rozu pinku" in cleaned["iro"]     # searched
    assert "nebi" not in cleaned["iro"]       # rare + unsearched


def test_support_counts_distinct_pages_not_rows():
    candidates, clusters = _make(
        {"iro": [("p1", "aka"), ("p1", "aka"), ("p2", "aka")]}
    )
    cleaned = clean_values(
        candidates, clusters, _log(),
        SeedConfig(min_attribute_pages=1, min_value_page_frequency=2),
    )
    assert cleaned["iro"]["aka"] == 2


def test_dropped_attribute_names_ignored():
    candidates, clusters = _make(
        {
            "iro": [(f"p{i}", "aka") for i in range(4)],
        }
    )
    # Inject a candidate whose attribute was never clustered.
    candidates.append(RawCandidate("p9", "ghost", "x"))
    cleaned = clean_values(
        candidates, clusters, _log(),
        SeedConfig(min_attribute_pages=1, min_value_page_frequency=1),
    )
    assert "ghost" not in cleaned


def test_attribute_with_no_surviving_values_removed():
    candidates, clusters = _make(
        {"iro": [("p1", "nebi")]}
    )
    cleaned = clean_values(
        candidates, clusters, _log(),
        SeedConfig(min_attribute_pages=1, min_value_page_frequency=3),
    )
    assert cleaned == {}


def test_aliases_pool_their_support():
    candidates, clusters = _make(
        {
            "iro": [(f"p{i}", v) for i, v in enumerate(
                ["aka", "aka", "ao", "shiro", "gin"]
            )],
            "karaa": [("q1", "aka"), ("q2", "ao")],
        }
    )
    assert clusters.resolve("karaa") == "iro"
    cleaned = clean_values(
        candidates, clusters, _log(),
        SeedConfig(min_attribute_pages=1, min_value_page_frequency=3),
    )
    # aka: 2 pages via 'iro' + 1 via 'karaa' = 3 -> survives.
    assert cleaned["iro"]["aka"] == 3
