"""Dirty-input chaos: full bootstrap runs over seeded 20%-dirt corpora.

The containment contract, end to end:

* a 20%-dirt corpus completes the paper's 5-iteration bootstrap under
  both ``repair`` and ``drop`` with zero uncaught exceptions, and the
  quarantine/repair ledgers match the injection ledger exactly;
* dirt rate 0 is bit-identical to a clean run;
* no single hostile page can abort or hang a :class:`CategoryRunner`
  job (the watchdog turns a hang into a failure);
* a killed dirty run checkpoint-resumes to bit-identical results with
  the same quarantine ledger;
* the iteration-health circuit breaker halts a poisoned run with the
  last healthy iteration's output.
"""

from dataclasses import replace

import pytest

from repro import PAEPipeline, PipelineConfig
from repro.config import HealthConfig, IngestConfig, VetoConfig
from repro.core.bootstrap import (
    Bootstrapper,
    IterationResult,
    _IterationArtifacts,
)
from repro.corpus import Marketplace
from repro.errors import CheckpointError, FaultInjectionError
from repro.runtime import (
    CategoryRunner,
    CheckpointStore,
    FaultPlan,
    FaultSpec,
    PipelineTrace,
    RunnerJob,
    summarize_outcomes,
)
from repro.types import ProductPage

pytestmark = pytest.mark.usefixtures("watchdog")

DIRT_RATE = 0.2
CONFIG = PipelineConfig(iterations=5)


def _dirt_plan(seed: int = 5, rate: float = DIRT_RATE) -> FaultPlan:
    return FaultPlan(
        [FaultSpec(stage="corpus", kind="dirt", corrupt_fraction=rate)],
        seed=seed,
    )


@pytest.fixture(scope="module")
def vacuum():
    return Marketplace(seed=7).generate("vacuum_cleaner", 40)


# -- the acceptance run --------------------------------------------------


@pytest.mark.parametrize("policy", ["repair", "drop"])
def test_twenty_percent_dirt_completes_five_iterations(vacuum, policy):
    """20% dirt, 5 iterations, ledger == injection, no exceptions."""
    plan = _dirt_plan()
    config = replace(CONFIG, ingest=IngestConfig(policy=policy))
    result = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log, faults=plan
    )
    assert len(result.bootstrap.iterations) == CONFIG.iterations
    (report,) = plan.dirt_reports
    assert report.total == round(DIRT_RATE * len(vacuum.product_pages))

    counters = result.resilience_counters()
    observed = dict(counters["quarantined"])
    if policy == "drop":
        assert counters["repaired"] == {}
    for check, count in counters["repaired"].items():
        observed[check] = observed.get(check, 0) + count
    assert observed == report.expected_checks()
    # The ledger object carries the same census as the trace counters.
    assert result.quarantine is not None
    assert (
        result.quarantine.counts_by_check() == counters["quarantined"]
    )
    assert counters["circuit_breaker"] == {}
    # Mangled pages never invent phantom products.
    ids = {page.product_id for page in vacuum.product_pages}
    assert {t.product_id for t in result.triples} <= ids


def test_dirt_rate_zero_is_bit_identical_to_clean(vacuum):
    config = PipelineConfig(iterations=2)
    clean = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log
    )
    plan = _dirt_plan(rate=0.0)
    dirty = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log, faults=plan
    )
    assert dirty.triples == clean.triples
    assert dirty.bootstrap == clean.bootstrap
    assert plan.dirt_reports[0].total == 0
    assert not dirty.quarantine


def test_default_gate_is_noop_on_clean_corpus(vacuum):
    """The shipped repair gate must not perturb a clean run at all."""
    config = PipelineConfig(iterations=2)
    gated = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log
    )
    ungated = PAEPipeline(
        replace(config, ingest=IngestConfig(enabled=False))
    ).run(vacuum.product_pages, vacuum.query_log)
    assert gated.triples == ungated.triples
    assert gated.bootstrap.iterations == ungated.bootstrap.iterations
    assert gated.quarantine is not None and not gated.quarantine
    assert ungated.quarantine is None


# -- the kill-test -------------------------------------------------------


def test_hostile_pages_cannot_kill_a_runner_job(vacuum):
    """Each hostile page is quarantined; the job's output matches a run
    that never saw them. No aborts, no hangs (watchdog-enforced)."""
    hostile = [
        ProductPage(
            "hostile-truncated", "vacuum_cleaner",
            "<html><body><table><tr><td cla", "ja",
        ),
        ProductPage(
            "hostile-deep", "vacuum_cleaner", "<div>" * 5_000 + "x", "ja"
        ),
        ProductPage(
            "hostile-mega", "vacuum_cleaner",
            "<div>" + "x" * 1_200_000 + "</div>", "ja",
        ),
        ProductPage(
            "hostile-soup", "vacuum_cleaner",
            "<" * 5_000 + "&#" * 5_000, "ja",
        ),
    ]
    config = replace(
        PipelineConfig(iterations=2), ingest=IngestConfig(policy="drop")
    )
    jobs = [
        RunnerJob(
            name="dirty", config=config,
            pages=list(vacuum.product_pages) + hostile,
            query_log=vacuum.query_log,
        ),
        RunnerJob(
            name="clean", config=config,
            pages=vacuum.product_pages, query_log=vacuum.query_log,
        ),
    ]
    outcomes = CategoryRunner(
        workers=2, mode="thread", job_timeout=120
    ).run(jobs)
    assert [outcome.ok for outcome in outcomes] == [True, True]
    dirty, clean = outcomes[0].result, outcomes[1].result
    assert dirty.quarantine.page_ids() == {
        page.product_id for page in hostile
    }
    assert dirty.triples == clean.triples


def test_sweep_summary_aggregates_containment(vacuum):
    config = replace(
        PipelineConfig(iterations=2), ingest=IngestConfig(policy="drop")
    )
    plans = {seed: _dirt_plan(seed=seed) for seed in (1, 2)}
    jobs = [
        RunnerJob(
            name=f"job{seed}", config=config,
            pages=vacuum.product_pages, query_log=vacuum.query_log,
            faults=plan,
        )
        for seed, plan in plans.items()
    ]
    outcomes = CategoryRunner(workers=2, mode="thread").run(jobs)
    summary = summarize_outcomes(outcomes)
    assert summary["jobs"] == 2
    assert summary["succeeded"] == 2
    assert summary["failed"] == 0
    assert summary["failures"] == []
    assert summary["halted_jobs"] == []
    assert summary["circuit_breaker"] == {}
    injected = sum(
        plan.dirt_reports[0].total for plan in plans.values()
    )
    assert sum(summary["quarantined"].values()) == injected
    assert summary["repaired"] == {}


# -- checkpoint/resume under dirt ----------------------------------------


def test_dirty_checkpoint_resume_bit_identical(vacuum, tmp_path):
    config = replace(
        PipelineConfig(iterations=3), ingest=IngestConfig(policy="drop")
    )
    base_dir = tmp_path / "base"
    kill_dir = tmp_path / "kill"

    baseline = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log,
        checkpoint_dir=str(base_dir), faults=_dirt_plan(),
    )
    assert baseline.quarantine

    # Same dirt, plus a crash entering iteration 2 (times=2 outlives
    # the single stage retry, escalating out like a killed worker).
    kill_plan = FaultPlan(
        [
            FaultSpec(
                stage="corpus", kind="dirt", corrupt_fraction=DIRT_RATE
            ),
            FaultSpec(stage="tagger_train", iteration=2, times=2),
        ],
        seed=5,
    )
    with pytest.raises(FaultInjectionError):
        PAEPipeline(config).run(
            vacuum.product_pages, vacuum.query_log,
            checkpoint_dir=str(kill_dir), faults=kill_plan,
        )
    # The ledger was persisted before the crash, and matches the
    # uninterrupted run's exactly.
    stored = CheckpointStore(str(kill_dir)).load_quarantine()
    assert stored == baseline.quarantine.to_payload()

    trace = PipelineTrace(label="resumed")
    resumed = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log, trace=trace,
        checkpoint_dir=str(kill_dir), faults=_dirt_plan(),
    )
    assert resumed.triples == baseline.triples
    assert resumed.bootstrap == baseline.bootstrap
    assert resumed.quarantine == baseline.quarantine
    # The resume really skipped the completed cycle.
    trained = {
        event.iteration
        for event in trace.events
        if event.stage == "tagger_train"
    }
    assert trained == {2, 3}


def test_resume_with_different_dirt_raises(vacuum, tmp_path):
    """Resuming a dirty checkpoint against a differently-dirtied corpus
    must fail loudly, never splice two corpora."""
    config = replace(
        PipelineConfig(iterations=3), ingest=IngestConfig(policy="drop")
    )
    kill_plan = FaultPlan(
        [
            FaultSpec(
                stage="corpus", kind="dirt", corrupt_fraction=DIRT_RATE
            ),
            FaultSpec(stage="tagger_train", iteration=2, times=2),
        ],
        seed=5,
    )
    with pytest.raises(FaultInjectionError):
        PAEPipeline(config).run(
            vacuum.product_pages, vacuum.query_log,
            checkpoint_dir=str(tmp_path), faults=kill_plan,
        )
    with pytest.raises(CheckpointError):
        PAEPipeline(config).run(
            vacuum.product_pages, vacuum.query_log,
            checkpoint_dir=str(tmp_path), faults=_dirt_plan(seed=99),
        )


def test_record_quarantine_digest_contract(tmp_path):
    store = CheckpointStore(str(tmp_path))
    entry = {
        "page_id": "a", "check": "page_bytes", "error": "page_bytes",
        "detail": "too big", "byte_offset": None, "source": "ingest",
        "line": None,
    }
    # Empty ledger + no file: nothing written (clean-run checkpoints
    # stay byte-identical to the pre-gate layout).
    store.record_quarantine([])
    assert store.load_quarantine() is None
    store.record_quarantine([entry])
    store.record_quarantine([entry])  # same ledger: idempotent
    assert store.load_quarantine() == [entry]
    with pytest.raises(CheckpointError):
        store.record_quarantine([entry, dict(entry, page_id="b")])
    with pytest.raises(CheckpointError):
        store.record_quarantine([])  # file exists, ledger diverged


# -- circuit breaker -----------------------------------------------------


def test_circuit_breaker_halts_on_rejection_explosion(vacuum):
    """Cleaning rejecting ~everything halts the loop with the last
    healthy (here: seed-only) output instead of folding garbage in."""
    config = replace(
        PipelineConfig(iterations=3),
        veto=VetoConfig(max_value_chars=1),
        health=HealthConfig(
            max_rejection_rate=0.5, min_rejection_sample=10
        ),
    )
    result = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log
    )
    bootstrap = result.bootstrap
    assert bootstrap.halted_reason == "rejection_rate"
    assert bootstrap.halted_at_iteration == 1
    assert bootstrap.iterations == ()
    assert result.triples == bootstrap.seed_triples
    assert result.resilience_counters()["circuit_breaker"] == {
        "rejection_rate": 1
    }


def test_circuit_breaker_disabled_runs_to_completion(vacuum):
    config = replace(
        PipelineConfig(iterations=3),
        veto=VetoConfig(max_value_chars=1),
        health=HealthConfig(enable_circuit_breaker=False),
    )
    result = PAEPipeline(config).run(
        vacuum.product_pages, vacuum.query_log
    )
    assert result.bootstrap.halted_reason is None
    assert len(result.bootstrap.iterations) == 3


def _iteration(iteration: int, candidates: int) -> IterationResult:
    return IterationResult(
        iteration=iteration,
        triples=frozenset(),
        new_triples=frozenset(),
        candidate_extractions=candidates,
        veto_stats=None,
        semantic_stats=None,
        dataset_sentences=0,
    )


def test_health_trip_decision_table():
    """The trip predicate, case by case, with default thresholds."""
    boot = Bootstrapper(PipelineConfig())
    empty = _IterationArtifacts(kept_extractions=[], tagged=[])
    # Rejection explosion: 100 candidates, 0 survive cleaning.
    assert boot._health_trip(_iteration(1, 100), empty, []) == (
        "rejection_rate"
    )
    # Below the rejection sample floor: noise, not signal.
    assert boot._health_trip(_iteration(1, 5), empty, []) is None
    # Yield collapse: 100 candidates then 1 (< 100 * 0.02).
    assert boot._health_trip(
        _iteration(2, 1), empty, [_iteration(1, 100)]
    ) == "yield_collapse"
    # Prior iteration too small to diagnose collapse from.
    assert (
        boot._health_trip(_iteration(2, 0), empty, [_iteration(1, 10)])
        is None
    )
    # Breaker off: never trips.
    off = Bootstrapper(
        replace(
            PipelineConfig(),
            health=HealthConfig(enable_circuit_breaker=False),
        )
    )
    assert off._health_trip(_iteration(1, 100), empty, []) is None
