"""Peak-RSS observability helpers (``repro.runtime.memory``)."""

import subprocess
import sys

from repro.runtime import (
    children_peak_rss_bytes,
    current_rss_bytes,
    peak_rss_bytes,
    run_peak_rss_bytes,
)


def test_current_rss_is_positive_and_plausible():
    current = current_rss_bytes()
    # A running CPython interpreter needs at least a few MB and (on
    # any test box) fits in a TB.
    assert 1024 * 1024 < current < 1024**4


def test_peak_is_at_least_current():
    assert peak_rss_bytes() >= current_rss_bytes()


def test_children_counter_is_nonnegative_int():
    value = children_peak_rss_bytes()
    assert isinstance(value, int)
    assert value >= 0


def test_run_peak_covers_self_and_children():
    assert run_peak_rss_bytes() >= peak_rss_bytes()
    assert run_peak_rss_bytes() >= children_peak_rss_bytes()


def test_children_peak_observes_a_subprocess():
    # Spawn a child that allocates ~64 MB, then check the parent's
    # children counter reflects a child at least that large.
    subprocess.run(
        [sys.executable, "-c", "x = bytearray(64 * 1024 * 1024)"],
        check=True,
    )
    assert children_peak_rss_bytes() >= 64 * 1024 * 1024


# -- sampler fallbacks (hostile/foreign platforms) -----------------------


def test_status_reader_tolerates_missing_field(tmp_path, monkeypatch):
    """A /proc/self/status without VmHWM (containers, exotic kernels)
    falls back to ru_maxrss instead of crashing or returning garbage."""
    from repro.runtime import memory as memory_module

    status = tmp_path / "status"
    status.write_text("Name:\tpython\nVmRSS:\t  2048 kB\n")
    monkeypatch.setattr(memory_module, "_STATUS_PATH", status)
    assert memory_module._status_kb("VmRSS") == 2048
    assert memory_module._status_kb("VmHWM") is None
    assert memory_module.current_rss_bytes() == 2048 * 1024
    # peak falls through to the rusage path — still positive on POSIX.
    assert memory_module.peak_rss_bytes() > 0


def test_missing_status_file_degrades_to_zero(tmp_path, monkeypatch):
    from repro.runtime import memory as memory_module

    monkeypatch.setattr(
        memory_module, "_STATUS_PATH", tmp_path / "no_such_status"
    )
    assert memory_module.current_rss_bytes() == 0
    # peak still answers via rusage; never raises either way.
    assert memory_module.peak_rss_bytes() >= 0


def test_maxrss_units_normalized_per_platform():
    """Linux denominates ru_maxrss in kB, macOS in bytes."""
    from repro.runtime.memory import _maxrss_kb

    assert _maxrss_kb(4096, "linux") == 4096
    assert _maxrss_kb(4096 * 1024, "darwin") == 4096


# -- MemoryGovernor ------------------------------------------------------


def _governor(**kwargs):
    from repro.runtime import MemoryGovernor

    return MemoryGovernor(**kwargs)


def test_governor_inert_without_budget_or_faults():
    governor = _governor()
    assert governor.budget_bytes is None
    assert not governor.under_pressure()
    # No pressure: the throttles are identity functions.
    assert governor.throttle_workers(8) == 8
    assert governor.throttle_batch(64) == 64
    assert governor.pressure_events == 0
    assert governor.samples == 1


def test_governor_presses_when_budget_crossed():
    # Any live interpreter dwarfs a 1 MiB budget.
    governor = _governor(budget_mb=1)
    assert governor.under_pressure()
    assert governor.throttle_workers(8) == 4
    assert governor.throttle_batch(64) == 32
    # Floors: never throttled to zero.
    assert governor.throttle_workers(1) == 1
    assert governor.throttle_batch(1) == 1
    assert governor.pressure_events >= 1
    assert governor.max_rss_bytes >= governor.last_rss_bytes > 0


def test_governor_relaxed_under_huge_budget():
    governor = _governor(budget_mb=1 << 20)  # 1 TiB
    assert not governor.under_pressure()
    assert governor.throttle_workers(8) == 8


def test_governor_synthetic_pressure_without_budget():
    """mem_pressure faults press a budget-less governor — the chaos
    path that makes backpressure testable without real ballooning."""
    from repro.runtime import FaultPlan, FaultSpec

    plan = FaultPlan(
        [
            FaultSpec(
                stage="governor",
                kind="mem_pressure",
                pressure_bytes=1 << 30,
            )
        ]
    )
    governor = _governor(faults=plan)
    assert governor.under_pressure()
    assert governor.throttle_workers(4) == 2
    # times=1: the next sample is pressure-free again.
    assert not governor.under_pressure()


def test_governor_relieve_reports_released_entries():
    from repro.nlp.tokenizer import get_locale

    get_locale("ja").tokens("重さ は 500 g です")  # populate the memo
    governor = _governor(budget_mb=1)
    released = governor.relieve()
    assert released >= 0
    assert governor.memo_entries_released == released


def test_governor_sample_interval_caches():
    governor = _governor(budget_mb=1, min_sample_interval=60.0)
    first = governor.sample()
    assert governor.sample() == first
    assert governor.samples == 1  # second call served from cache


def test_governor_counters_payload_shape():
    governor = _governor(budget_mb=1)
    governor.sample()
    counters = governor.counters()
    assert set(counters) == {
        "samples",
        "events",
        "rss_bytes",
        "max_rss_bytes",
    }
    assert all(isinstance(v, int) for v in counters.values())
