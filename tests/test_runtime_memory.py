"""Peak-RSS observability helpers (``repro.runtime.memory``)."""

import subprocess
import sys

from repro.runtime import (
    children_peak_rss_bytes,
    current_rss_bytes,
    peak_rss_bytes,
    run_peak_rss_bytes,
)


def test_current_rss_is_positive_and_plausible():
    current = current_rss_bytes()
    # A running CPython interpreter needs at least a few MB and (on
    # any test box) fits in a TB.
    assert 1024 * 1024 < current < 1024**4


def test_peak_is_at_least_current():
    assert peak_rss_bytes() >= current_rss_bytes()


def test_children_counter_is_nonnegative_int():
    value = children_peak_rss_bytes()
    assert isinstance(value, int)
    assert value >= 0


def test_run_peak_covers_self_and_children():
    assert run_peak_rss_bytes() >= peak_rss_bytes()
    assert run_peak_rss_bytes() >= children_peak_rss_bytes()


def test_children_peak_observes_a_subprocess():
    # Spawn a child that allocates ~64 MB, then check the parent's
    # children counter reflects a child at least that large.
    subprocess.run(
        [sys.executable, "-c", "x = bytearray(64 * 1024 * 1024)"],
        check=True,
    )
    assert children_peak_rss_bytes() >= 64 * 1024 * 1024
