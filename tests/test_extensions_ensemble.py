"""Tests for the CRF+LSTM ensemble (§IX future work)."""

import random

import pytest

from repro.config import CrfConfig, LstmConfig, PipelineConfig
from repro.errors import ConfigError
from repro.extensions import EnsembleTagger
from repro.nlp import get_locale
from repro.nlp.bio import decode_bio, is_valid_bio
from repro.types import Sentence, TaggedSentence


@pytest.fixture(scope="module")
def dataset():
    ja = get_locale("ja")
    rng = random.Random(3)
    colors = ["aka", "ao", "shiro", "kuro"]
    data = []
    for index in range(140):
        color = rng.choice(colors)
        tokens = ja.tokens(f"iro wa {color} desu")
        data.append(
            TaggedSentence(
                Sentence(f"p{index}", 0, tokens),
                ("O", "O", "B-iro", "O"),
            )
        )
    return data


@pytest.fixture(scope="module")
def trained_agreement(dataset):
    return EnsembleTagger(
        policy="agreement",
        crf_config=CrfConfig(max_iterations=40),
        lstm_config=LstmConfig(epochs=4),
    ).train(dataset)


def test_rejects_unknown_policy():
    with pytest.raises(ConfigError):
        EnsembleTagger(policy="majority")


def test_agreement_tags_clear_cases(trained_agreement, dataset):
    predictions = trained_agreement.tag(
        [tagged.sentence for tagged in dataset[:20]]
    )
    hits = sum(
        prediction.labels == gold.labels
        for prediction, gold in zip(predictions, dataset[:20])
    )
    assert hits >= 15


def test_agreement_is_intersection(dataset):
    ensemble = EnsembleTagger(
        policy="agreement",
        crf_config=CrfConfig(max_iterations=40),
        lstm_config=LstmConfig(epochs=4),
    ).train(dataset)
    sentences = [tagged.sentence for tagged in dataset[:30]]
    crf, lstm = ensemble.members
    crf_spans = {
        (s.product_id, span)
        for tagged, s in zip(crf.tag(sentences), sentences)
        for span in decode_bio(tagged.labels)
    }
    lstm_spans = {
        (s.product_id, span)
        for tagged, s in zip(lstm.tag(sentences), sentences)
        for span in decode_bio(tagged.labels)
    }
    ensemble_spans = {
        (s.product_id, span)
        for tagged, s in zip(ensemble.tag(sentences), sentences)
        for span in decode_bio(tagged.labels)
    }
    assert ensemble_spans == (crf_spans & lstm_spans)


def test_union_is_superset_of_agreement(dataset):
    sentences = [tagged.sentence for tagged in dataset[:30]]
    agreement = EnsembleTagger(
        policy="agreement",
        crf_config=CrfConfig(max_iterations=40),
        lstm_config=LstmConfig(epochs=4),
    ).train(dataset)
    union = EnsembleTagger(
        policy="union",
        crf_config=CrfConfig(max_iterations=40),
        lstm_config=LstmConfig(epochs=4),
    ).train(dataset)

    def spans(tagger):
        return {
            (s.product_id, span)
            for tagged, s in zip(tagger.tag(sentences), sentences)
            for span in decode_bio(tagged.labels)
        }

    assert spans(agreement) <= spans(union)


def test_union_spans_do_not_overlap():
    crf_spans = [(0, 2, "a"), (4, 6, "b")]
    lstm_spans = [(1, 3, "c"), (6, 8, "d")]
    merged = EnsembleTagger._union_spans(crf_spans, lstm_spans)
    # (1,3,"c") overlaps the CRF's (0,2,"a") and is dropped.
    assert merged == [(0, 2, "a"), (4, 6, "b"), (6, 8, "d")]


def test_output_is_valid_bio(trained_agreement, dataset):
    for prediction in trained_agreement.tag(
        [tagged.sentence for tagged in dataset[:10]]
    ):
        assert is_valid_bio(prediction.labels)


def test_pipeline_config_accepts_ensemble():
    config = PipelineConfig(tagger="ensemble")
    assert config.ensemble_policy == "agreement"
    with pytest.raises(ConfigError):
        PipelineConfig(tagger="ensemble", ensemble_policy="noisy")


def test_make_tagger_builds_ensemble():
    from repro.core.tagger import make_tagger

    tagger = make_tagger(PipelineConfig(tagger="ensemble"))
    assert isinstance(tagger, EnsembleTagger)
