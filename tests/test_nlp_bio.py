"""Unit and property tests for the BIO label scheme."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nlp import (
    bio_label,
    decode_bio,
    encode_bio,
    is_valid_bio,
    repair_bio,
)
from repro.nlp.bio import labels_for_attributes, split_label


def test_bio_label_composition():
    assert bio_label("B", "iro") == "B-iro"
    assert bio_label("I", "juryo") == "I-juryo"


def test_bio_label_rejects_bad_prefix():
    with pytest.raises(ValueError):
        bio_label("X", "iro")


def test_split_label():
    assert split_label("O") == ("O", None)
    assert split_label("B-iro") == ("B", "iro")
    assert split_label("I-shatta supido") == ("I", "shatta supido")


def test_split_label_rejects_malformed():
    with pytest.raises(ValueError):
        split_label("Z-iro")
    with pytest.raises(ValueError):
        split_label("B-")


def test_labels_for_attributes():
    labels = labels_for_attributes(["iro", "juryo"])
    assert labels == ["O", "B-iro", "I-iro", "B-juryo", "I-juryo"]


def test_encode_simple_span():
    assert encode_bio(5, [(1, 3, "juryo")]) == [
        "O", "B-juryo", "I-juryo", "O", "O",
    ]


def test_encode_overlap_first_wins():
    labels = encode_bio(4, [(0, 2, "a"), (1, 3, "b")])
    assert labels == ["B-a", "I-a", "O", "O"]


def test_encode_rejects_out_of_range():
    with pytest.raises(ValueError):
        encode_bio(3, [(2, 4, "a")])
    with pytest.raises(ValueError):
        encode_bio(3, [(2, 2, "a")])


def test_decode_simple():
    assert decode_bio(["O", "B-a", "I-a", "O"]) == [(1, 3, "a")]


def test_decode_adjacent_b_labels():
    assert decode_bio(["B-a", "B-a"]) == [(0, 1, "a"), (1, 2, "a")]


def test_decode_orphan_i_opens_span():
    assert decode_bio(["O", "I-a", "I-a"]) == [(1, 3, "a")]


def test_decode_attribute_switch_mid_span():
    assert decode_bio(["B-a", "I-b"]) == [(0, 1, "a"), (1, 2, "b")]


def test_decode_span_to_end():
    assert decode_bio(["B-a", "I-a"]) == [(0, 2, "a")]


def test_is_valid_bio():
    assert is_valid_bio(["O", "B-a", "I-a"])
    assert not is_valid_bio(["O", "I-a"])
    assert not is_valid_bio(["B-a", "I-b"])


def test_repair_bio_promotes_orphans():
    assert repair_bio(["O", "I-a", "I-a"]) == ["O", "B-a", "I-a"]
    assert repair_bio(["B-a", "I-b"]) == ["B-a", "B-b"]


_ATTRS = st.sampled_from(["iro", "juryo", "saizu"])


@st.composite
def spans_and_length(draw):
    length = draw(st.integers(min_value=1, max_value=20))
    spans = []
    position = 0
    while position < length:
        if draw(st.booleans()):
            end = draw(
                st.integers(min_value=position + 1, max_value=length)
            )
            spans.append((position, end, draw(_ATTRS)))
            position = end
        else:
            position += 1
    return length, spans


@given(spans_and_length())
def test_encode_decode_round_trip(case):
    """Non-overlapping spans survive encode→decode unchanged, except
    that adjacent same-attribute spans may merge — so we compare the
    token-level labelling instead of the span lists."""
    length, spans = case
    labels = encode_bio(length, spans)
    assert is_valid_bio(labels)
    relabelled = encode_bio(length, decode_bio(labels))
    assert relabelled == labels


@given(
    st.lists(
        st.sampled_from(["O", "B-a", "I-a", "B-b", "I-b"]), max_size=20
    )
)
def test_repair_always_produces_valid_sequences(labels):
    assert is_valid_bio(repair_bio(labels))


@given(
    st.lists(
        st.sampled_from(["O", "B-a", "I-a", "B-b", "I-b"]), max_size=20
    )
)
def test_repair_is_idempotent(labels):
    repaired = repair_bio(labels)
    assert repair_bio(repaired) == repaired


@given(
    st.lists(
        st.sampled_from(["O", "B-a", "I-a", "B-b", "I-b"]), max_size=20
    )
)
def test_decode_spans_are_sane(labels):
    spans = decode_bio(labels)
    previous_end = 0
    for start, end, attribute in spans:
        assert 0 <= start < end <= len(labels)
        assert start >= previous_end  # non-overlapping, ordered
        assert attribute in ("a", "b")
        previous_end = end
