"""Failure injection: the pipeline must survive hostile inputs.

Merchant HTML is adversarially bad in practice; these tests feed
malformed pages, broken tables, empty text and mixed garbage through
the full pipeline and assert graceful behaviour (no crashes, sane
output) rather than specific extractions.
"""

from collections import Counter

import pytest

from repro import PAEPipeline, PipelineConfig
from repro.core.text import tokenize_page
from repro.corpus import Marketplace
from repro.corpus.querylog import QueryLog
from repro.types import ProductPage


def _page(product_id, html):
    return ProductPage(product_id, "cat", html, "ja")


GOOD_TABLE = (
    "<table><tr><td>iro</td><td>aka</td></tr>"
    "<tr><td>juryo</td><td>2kg</td></tr></table>"
)

HOSTILE_BODIES = [
    "",                                        # empty document
    "<p>",                                     # unclosed everything
    "<table><tr><td>only-one-cell</td></tr>",  # broken table
    "<table></table>",                         # empty table
    "<<<<>>>>&&&&",                            # tag soup
    "<p>" + "x" * 5000 + "</p>",               # pathological length
    "<script>alert('x')</script>",             # script only
    "<p>重量 2kg \x00 null byte</p>",           # control characters
    "<table><tr><td>iro</td><td></td></tr></table>",  # empty value
]


@pytest.mark.parametrize("body", HOSTILE_BODIES)
def test_tokenize_page_never_crashes(body):
    text = tokenize_page(_page("p1", f"<html><body>{body}</body></html>"))
    assert text.product_id == "p1"


def test_pipeline_survives_hostile_minority():
    """A corpus where a third of the pages are garbage still runs."""
    dataset = Marketplace(seed=31).generate("vacuum_cleaner", 60)
    pages = list(dataset.product_pages)
    for index, body in enumerate(HOSTILE_BODIES):
        pages.append(
            _page(
                f"hostile_{index}",
                f"<html><body>{body}{GOOD_TABLE if index % 2 else ''}"
                "</body></html>",
            )
        )
    result = PAEPipeline(PipelineConfig(iterations=1)).run(
        pages, dataset.query_log
    )
    assert len(result.triples) > 0
    # Hostile pages never produce phantom product ids.
    ids = {page.product_id for page in pages}
    assert {t.product_id for t in result.triples} <= ids


def test_pipeline_with_empty_query_log():
    dataset = Marketplace(seed=32).generate("ladies_bags", 60)
    result = PAEPipeline(PipelineConfig(iterations=1)).run(
        list(dataset.product_pages), QueryLog(Counter())
    )
    # Frequency filtering alone still yields a seed.
    assert len(result.seed_triples) > 0


def test_single_page_corpus():
    """One page with a table: degenerate but must not crash."""
    page = _page(
        "solo",
        f"<html><body>{GOOD_TABLE}<p>iro wa aka desu。</p></body></html>",
    )
    from repro.config import SeedConfig

    config = PipelineConfig(
        iterations=1,
        seed_config=SeedConfig(
            min_attribute_pages=1, min_value_page_frequency=1
        ),
    )
    result = PAEPipeline(config).run([page], QueryLog(Counter()))
    assert result.product_count == 1


def test_duplicate_product_ids_tolerated():
    page = _page(
        "dup",
        f"<html><body>{GOOD_TABLE}<p>iro wa aka desu。</p></body></html>",
    )
    from repro.config import SeedConfig

    config = PipelineConfig(
        iterations=1,
        seed_config=SeedConfig(
            min_attribute_pages=1, min_value_page_frequency=1
        ),
    )
    result = PAEPipeline(config).run(
        [page, page], QueryLog(Counter())
    )
    assert {t.product_id for t in result.triples} <= {"dup"}
