"""Consistency tests over the whole shipped category inventory."""

import pytest

from repro.corpus import category_names, get_schema
from repro.corpus.categories import (
    CORE_JA_CATEGORIES,
    GERMAN_CATEGORIES,
    HETEROGENEOUS_UNIONS,
)
from repro.corpus.locales import get_style
from repro.nlp import get_locale


def test_japanese_category_count_matches_paper():
    ja = [
        name for name in category_names()
        if get_schema(name).locale == "ja"
        and name not in ("baby_clothes", "baby_toys")
    ]
    # The paper evaluates 18 Japanese categories.
    assert len(ja) == 18


def test_german_category_count_matches_paper():
    de = [
        name for name in category_names()
        if get_schema(name).locale == "de"
    ]
    assert len(de) == len(GERMAN_CATEGORIES) == 3


@pytest.mark.parametrize("name", category_names())
def test_every_schema_has_registered_locale(name):
    schema = get_schema(name)
    get_locale(schema.locale)   # raises if unregistered
    get_style(schema.locale)


@pytest.mark.parametrize("name", category_names())
def test_every_schema_has_title_nouns(name):
    assert get_schema(name).title_nouns


@pytest.mark.parametrize("name", category_names())
def test_title_nouns_never_collide_with_categorical_values(name):
    """A generic title noun must not *be* an attribute value of the
    same schema — that contradiction poisoned cosmetics/vacuum truth
    until title_noun_attribute was introduced."""
    from repro.corpus.schema import CategoricalValues

    schema = get_schema(name)
    value_tokens: set[str] = set()
    for attribute in schema.attributes:
        if isinstance(attribute.values, CategoricalValues):
            for value in attribute.values.values:
                value_tokens.add(value)
    for noun in schema.title_nouns:
        assert noun not in value_tokens, (name, noun)


@pytest.mark.parametrize("name", CORE_JA_CATEGORIES)
def test_core_categories_have_confusable_or_numeric_attributes(name):
    """Each Table I-IV category carries at least one 'hard' attribute
    (numeric/composite or a confusable sibling) so the bootstrap has
    something nontrivial to learn."""
    from repro.corpus.schema import CategoricalValues

    schema = get_schema(name)
    hard = [
        attribute
        for attribute in schema.attributes
        if attribute.confusable_with is not None
        or not isinstance(attribute.values, CategoricalValues)
    ]
    assert hard, name


def test_union_members_are_registered():
    for union, members in HETEROGENEOUS_UNIONS.items():
        for member in members:
            get_schema(member)


def test_union_members_share_locale():
    for members in HETEROGENEOUS_UNIONS.values():
        locales = {get_schema(member).locale for member in members}
        assert len(locales) == 1


@pytest.mark.parametrize("name", category_names())
def test_alias_sets_disjoint_within_schema(name):
    schema = get_schema(name)
    seen: set[str] = set()
    for attribute in schema.attributes:
        for surface in attribute.all_names():
            assert surface not in seen, (name, surface)
            seen.add(surface)
