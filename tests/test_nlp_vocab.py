"""Unit tests for the vocabulary."""

import pytest

from repro.nlp import Vocabulary
from repro.nlp.vocab import UNKNOWN


def test_freeze_assigns_frequency_descending_ids():
    vocab = Vocabulary()
    vocab.add_all(["b", "a", "a", "c", "a", "b"])
    vocab.freeze()
    assert vocab.token_of(0) == UNKNOWN
    assert vocab.token_of(1) == "a"
    assert vocab.token_of(2) == "b"
    assert vocab.token_of(3) == "c"


def test_ties_broken_lexicographically():
    vocab = Vocabulary()
    vocab.add_all(["z", "y"])
    vocab.freeze()
    assert vocab.token_of(1) == "y"
    assert vocab.token_of(2) == "z"


def test_unknown_lookup_returns_zero():
    vocab = Vocabulary()
    vocab.add("x")
    vocab.freeze()
    assert vocab.id_of("never-seen") == 0


def test_min_count_prunes():
    vocab = Vocabulary(min_count=2)
    vocab.add_all(["a", "a", "b"])
    vocab.freeze()
    assert "a" in vocab
    assert "b" not in vocab
    assert vocab.id_of("b") == 0


def test_counts_survive_pruning():
    vocab = Vocabulary(min_count=2)
    vocab.add_all(["a", "a", "b"])
    vocab.freeze()
    assert vocab.count_of("b") == 1
    assert vocab.count_of("missing") == 0


def test_lookup_before_freeze_raises():
    vocab = Vocabulary()
    vocab.add("x")
    with pytest.raises(RuntimeError):
        vocab.id_of("x")
    with pytest.raises(RuntimeError):
        len(vocab)


def test_add_after_freeze_raises():
    vocab = Vocabulary()
    vocab.add("x")
    vocab.freeze()
    with pytest.raises(RuntimeError):
        vocab.add("y")


def test_freeze_is_idempotent():
    vocab = Vocabulary()
    vocab.add("x")
    vocab.freeze()
    first = list(vocab)
    vocab.freeze()
    assert list(vocab) == first


def test_len_and_iteration():
    vocab = Vocabulary()
    vocab.add_all(["a", "b"])
    vocab.freeze()
    assert len(vocab) == 3  # <unk> + 2
    assert list(vocab)[0] == UNKNOWN


def test_rejects_bad_min_count():
    with pytest.raises(ValueError):
        Vocabulary(min_count=0)
