"""Unit tests for the ingest gate: checks, policies, repairs, ledger."""

import signal

import pytest

from repro.config import HealthConfig, IngestConfig
from repro.errors import ConfigError, PageQuarantinedError
from repro.ingest import (
    FIXABLE_CHECKS,
    IngestGate,
    Quarantine,
    QuarantineEntry,
)
from repro.ingest.gate import _parse_budget
from repro.types import ProductPage


def page(pid: str, html: str) -> ProductPage:
    return ProductPage(
        product_id=pid, category="cam", html=html, locale="ja"
    )


CLEAN = page(
    "clean",
    "<html><body><table><tr><td>Brand</td><td>Canon&nbsp;X</td></tr>"
    "</table><br>A &amp; B</body></html>",
)
TRUNCATED = page("trunc", "<html><body><table><tr><td cla")
MOJIBAKE = page("moji", "<html><body>caf�� latte</body></html>")
ENTITY = page(
    "entity", "<html><body>" + "&#zz;&;&&" * 10 + "</body></html>"
)
UNCLOSED = page("unclosed", "<html><body>x</body></html>" + "<div>" * 24)
DUPLICATE = page("clean", "<html><body>duplicate</body></html>")
MEGA = page("mega", "<div>" + "x" * 1_100_000 + "</div>")
DEEP = page("deep", "<i>" * 120 + "x")

ALL = [CLEAN, TRUNCATED, MOJIBAKE, ENTITY, UNCLOSED, DUPLICATE, MEGA, DEEP]


# -- per-check detection -------------------------------------------------


@pytest.mark.parametrize(
    "bad, check",
    [
        (TRUNCATED, "truncated_markup"),
        (MOJIBAKE, "mojibake"),
        (ENTITY, "entity_garbage"),
        (UNCLOSED, "unclosed_tags"),
        (MEGA, "page_bytes"),
        (DEEP, "unclosed_tags"),  # flagged before parse under drop
    ],
)
def test_drop_quarantines_each_pathology(bad, check):
    result = IngestGate(IngestConfig(policy="drop")).process([CLEAN, bad])
    assert [p.product_id for p in result.pages] == ["clean"]
    assert result.quarantine.counts_by_check() == {check: 1}
    assert not result.repaired


def test_duplicate_id_quarantines_second_occurrence_only():
    result = IngestGate(IngestConfig(policy="drop")).process(
        [CLEAN, DUPLICATE]
    )
    assert len(result.pages) == 1
    assert result.pages[0].html == CLEAN.html
    (entry,) = result.quarantine.entries
    assert entry.check == "duplicate_id"
    assert entry.page_id == "clean"


def test_clean_pages_pass_untouched_under_every_policy():
    for policy in ("strict", "repair", "drop"):
        result = IngestGate(IngestConfig(policy=policy)).process([CLEAN])
        assert result.pages == [CLEAN]
        assert result.pages[0] is CLEAN  # not even rebuilt
        assert not result.quarantine
        assert not result.repaired


# -- policies ------------------------------------------------------------


def test_strict_raises_with_diagnostics():
    with pytest.raises(PageQuarantinedError) as excinfo:
        IngestGate(IngestConfig(policy="strict")).process(
            [CLEAN, TRUNCATED]
        )
    assert excinfo.value.page_id == "trunc"
    assert excinfo.value.check == "truncated_markup"


def test_repair_fixes_fixable_and_quarantines_the_rest():
    result = IngestGate(IngestConfig(policy="repair")).process(ALL)
    kept = [p.product_id for p in result.pages]
    assert kept == ["clean", "trunc", "moji", "entity", "unclosed"]
    assert result.repaired == {
        "truncated_markup": 1,
        "mojibake": 1,
        "entity_garbage": 1,
        "unclosed_tags": 1,
    }
    assert set(result.repaired) <= set(FIXABLE_CHECKS)
    # mega/deep/duplicate cannot be repaired
    assert result.quarantine.counts_by_check() == {
        "duplicate_id": 1,
        "page_bytes": 1,
        "open_depth": 1,
    }
    assert result.pages_in == len(ALL)
    assert result.repaired_total == 4


def test_repaired_pages_are_normalized():
    result = IngestGate(IngestConfig(policy="repair")).process(
        [TRUNCATED, MOJIBAKE, ENTITY, UNCLOSED]
    )
    by_id = {p.product_id: p for p in result.pages}
    assert not by_id["trunc"].html.endswith("cla")
    assert "�" not in by_id["moji"].html
    assert "&;" not in by_id["entity"].html
    assert by_id["unclosed"].html.endswith("</div>" * 24)
    # A second pass over repaired pages is a no-op: repair converges.
    again = IngestGate(IngestConfig(policy="repair")).process(
        result.pages
    )
    assert again.pages == result.pages
    assert not again.repaired


def test_deep_page_hits_open_depth_under_repair():
    # Repair closes the tags, but the parse-depth guard still rejects.
    result = IngestGate(IngestConfig(policy="repair")).process([DEEP])
    assert not result.pages
    assert result.quarantine.counts_by_check() == {"open_depth": 1}


def test_table_rows_bound():
    rows = "".join(
        f"<tr><td>a{i}</td><td>b{i}</td></tr>" for i in range(30)
    )
    big = page("rows", f"<table>{rows}</table>")
    config = IngestConfig(policy="drop", max_table_rows=20)
    result = IngestGate(config).process([big])
    assert result.quarantine.counts_by_check() == {"table_rows": 1}
    relaxed = IngestConfig(policy="drop", max_table_rows=50)
    assert IngestGate(relaxed).process([big]).pages == [big]


def test_byte_offset_diagnostics():
    result = IngestGate(IngestConfig(policy="drop")).process(
        [TRUNCATED, MOJIBAKE]
    )
    offsets = {
        entry.check: entry.byte_offset for entry in result.quarantine
    }
    assert offsets["truncated_markup"] == TRUNCATED.html.rfind("<")
    assert offsets["mojibake"] == MOJIBAKE.html.find("�")


# -- ledger --------------------------------------------------------------


def test_quarantine_round_trips_and_digests():
    result = IngestGate(IngestConfig(policy="drop")).process(ALL)
    ledger = result.quarantine
    clone = Quarantine.from_payload(ledger.to_payload())
    assert clone == ledger
    assert clone.digest() == ledger.digest()
    assert clone.page_ids() == ledger.page_ids()
    other = Quarantine(
        [QuarantineEntry("x", "jsonl", "DatasetError", "boom")]
    )
    assert other != ledger
    assert other.digest() != ledger.digest()


# -- config validation ---------------------------------------------------


def test_ingest_config_validates():
    with pytest.raises(ConfigError):
        IngestConfig(policy="lenient")
    with pytest.raises(ConfigError):
        IngestConfig(max_page_bytes=0)
    with pytest.raises(ConfigError):
        IngestConfig(max_dom_depth=0)
    with pytest.raises(ConfigError):
        IngestConfig(parse_budget_seconds=-1.0)


def test_health_config_validates():
    with pytest.raises(ConfigError):
        HealthConfig(max_rejection_rate=1.5)
    with pytest.raises(ConfigError):
        HealthConfig(yield_collapse_ratio=-0.1)
    with pytest.raises(ConfigError):
        HealthConfig(min_rejection_sample=0)


# -- parse budget machinery ----------------------------------------------


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="requires SIGALRM"
)
def test_parse_budget_restores_outer_timer():
    """The gate's budget must not disarm an enclosing watchdog."""
    fired = []

    def _outer(signum, frame):  # pragma: no cover - must not fire
        fired.append("outer")

    previous = signal.signal(signal.SIGALRM, _outer)
    signal.setitimer(signal.ITIMER_REAL, 60.0)
    try:
        with _parse_budget(5.0):
            pass
        assert signal.getsignal(signal.SIGALRM) is _outer
        remaining = signal.getitimer(signal.ITIMER_REAL)[0]
        assert 0.0 < remaining <= 60.0
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
    assert not fired


def test_parse_budget_zero_is_noop():
    with _parse_budget(0.0):
        pass
