"""The README's code snippets must actually work.

Documentation rot is a release blocker for a library; this test runs
the quickstart snippet (at reduced scale) and the module docstring
doctest examples.
"""

import doctest


def test_readme_quickstart_snippet():
    from repro import PAEPipeline, PipelineConfig
    from repro.corpus import Marketplace
    from repro.evaluation import build_truth_sample, precision

    dataset = Marketplace(seed=42).generate("digital_cameras", 40)
    pipeline = PAEPipeline(PipelineConfig(iterations=1, tagger="crf"))
    result = pipeline.run(dataset.product_pages, dataset.query_log)

    truth = build_truth_sample(dataset)
    breakdown = precision(result.triples, truth)
    assert len(result.triples) > 0
    assert 0.0 <= breakdown.precision <= 1.0


def test_package_docstring_snippet_imports():
    # The __init__ docstring names these symbols; they must resolve.
    import repro

    assert hasattr(repro, "PAEPipeline")
    assert hasattr(repro, "PipelineConfig")
    assert repro.__version__


def test_pipeline_module_doctest():
    import repro.core.pipeline as pipeline_module

    results = doctest.testmod(pipeline_module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
