"""Unit tests for sentence splitting."""

from repro.nlp import split_sentences
from repro.nlp.sentences import split_block


def test_split_block_keeps_terminator(ja):
    pieces = split_block(
        "hai。iie。", ja.sentence_terminators
    )
    assert pieces == ["hai。", "iie。"]


def test_split_block_keeps_unterminated_tail(ja):
    pieces = split_block("a。tail", ja.sentence_terminators)
    assert pieces == ["a。", "tail"]


def test_ja_decimal_does_not_split(ja):
    pieces = split_block(
        "juryo wa 1.5 kg desu。", ja.sentence_terminators
    )
    assert len(pieces) == 1


def test_de_period_splits(de):
    pieces = split_block("Eins . Zwei .", de.sentence_terminators)
    assert len(pieces) == 2


def test_split_sentences_assigns_page_wide_indices(ja):
    sentences = split_sentences(
        "p1", ["a。b。", "c。"], ja
    )
    assert [sentence.index for sentence in sentences] == [0, 1, 2]
    assert all(sentence.product_id == "p1" for sentence in sentences)


def test_split_sentences_skips_empty_blocks(ja):
    sentences = split_sentences("p1", ["", "  ", "a。"], ja)
    assert len(sentences) == 1


def test_split_sentences_tokens_are_tagged(ja):
    (sentence,) = split_sentences("p1", ["juryo wa 2 kg desu。"], ja)
    assert sentence.pos_tags()[:4] == ("NN", "FW", "NUM", "UNIT")


def test_whitespace_only_sentence_dropped(ja):
    sentences = split_sentences("p1", ["。。"], ja)
    # Each terminator alone still tokenizes to a symbol token.
    assert all(len(sentence) > 0 for sentence in sentences)
