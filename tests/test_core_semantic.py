"""Tests for semantic cleaning (drift filter)."""

from repro.config import SemanticConfig
from repro.core.cleaning import SemanticCleaner
from repro.core.cleaning.semantic import (
    _median,
    merge_values_in_corpus,
    merged_token,
)
from repro.types import Extraction


def test_median_odd_length():
    assert _median([1.0, 2.0, 9.0]) == 2.0


def test_median_even_length_averages_middle_pair():
    # Regression: the upper-middle element biased the cutoff high.
    assert _median([1.0, 2.0, 4.0, 9.0]) == 3.0
    assert _median([1.0, 3.0]) == 2.0


def _extraction(attribute, value, product="p1"):
    return Extraction(
        product, attribute, value, 0, 0, len(value.split(" "))
    )


def test_merged_token():
    assert merged_token("gosei kawa") == "gosei_kawa"
    assert merged_token("aka") == "aka"


def test_merge_values_in_corpus():
    corpus = [["sozai", "wa", "gosei", "kawa", "desu"]]
    merged = merge_values_in_corpus(corpus, ["gosei kawa"])
    assert merged == [["sozai", "wa", "gosei_kawa", "desu"]]


def test_merge_leaves_untouched_sentences():
    corpus = [["nothing", "here"]]
    merged = merge_values_in_corpus(corpus, ["gosei kawa"])
    assert merged == [["nothing", "here"]]


def _drift_corpus(repeats=120):
    """Colors share contexts; the drifted term lives elsewhere."""
    corpus = []
    for _ in range(repeats):
        corpus.append(["iro", "wa", "aka", "desu"])
        corpus.append(["iro", "wa", "ao", "desu"])
        corpus.append(["iro", "wa", "shiro", "desu"])
        corpus.append(["iro", "wa", "kuro", "desu"])
        corpus.append(["katachi", "ga", "hanagata", "da"])
        corpus.append(["katachi", "ga", "hoshigata", "da"])
    return corpus


def test_drifted_value_removed():
    extractions = [
        _extraction("iro", "aka"),
        _extraction("iro", "ao"),
        _extraction("iro", "shiro"),
        _extraction("iro", "kuro"),
        _extraction("iro", "hanagata"),  # drift: a shape, not a color
    ]
    cleaner = SemanticCleaner(
        SemanticConfig(
            core_size=3,
            accept_threshold=0.6,
            embedding_epochs=12,
            min_core_attribute_values=3,
        ),
        seed=2,
    )
    kept, stats = cleaner.clean(extractions, _drift_corpus())
    kept_values = {extraction.value for extraction in kept}
    assert "hanagata" not in kept_values
    assert {"aka", "ao", "shiro", "kuro"} <= kept_values
    assert stats.values_removed >= 1
    assert "hanagata" in stats.removed_by_attribute.get("iro", ())


def test_small_attributes_skipped():
    extractions = [_extraction("iro", "aka"), _extraction("iro", "ao")]
    cleaner = SemanticCleaner(
        SemanticConfig(min_core_attribute_values=3), seed=0
    )
    kept, stats = cleaner.clean(extractions, _drift_corpus(10))
    assert len(kept) == 2
    assert stats.attributes_cleaned == 0


def test_empty_extractions():
    cleaner = SemanticCleaner(seed=0)
    kept, stats = cleaner.clean([], [["a", "b"]])
    assert kept == []
    assert stats.values_scored == 0


def test_unrestricted_core_keeps_all_values_in_core():
    extractions = [
        _extraction("iro", value)
        for value in ("aka", "ao", "shiro", "kuro")
    ]
    cleaner = SemanticCleaner(
        SemanticConfig(core_size=0, accept_threshold=0.0,
                       embedding_epochs=2),
        seed=1,
    )
    kept, _ = cleaner.clean(extractions, _drift_corpus(20))
    assert len(kept) == 4


def test_deterministic_given_seed():
    extractions = [
        _extraction("iro", value)
        for value in ("aka", "ao", "shiro", "kuro", "hanagata")
    ]
    config = SemanticConfig(embedding_epochs=2)
    first, _ = SemanticCleaner(config, seed=5).clean(
        extractions, _drift_corpus(30)
    )
    second, _ = SemanticCleaner(config, seed=5).clean(
        extractions, _drift_corpus(30)
    )
    assert [e.value for e in first] == [e.value for e in second]
