"""Generation invariants across the entire category inventory.

Every shipped category (and union) must produce internally consistent
ground truth: correct triples match assignments and are genuinely
stated on the page, correct/incorrect never overlap, and the query log
only contains keys. Parametrized over all 23 schemas plus the union.
"""

import pytest

from repro.corpus import Marketplace, category_names
from repro.html import extract_text_blocks
from repro.nlp import get_locale

ALL = tuple(category_names()) + ("baby_goods",)


@pytest.fixture(scope="module")
def datasets():
    market = Marketplace(seed=41)
    return {name: market.generate(name, 16) for name in ALL}


@pytest.mark.parametrize("name", ALL)
def test_truth_buckets_disjoint(datasets, name):
    dataset = datasets[name]
    assert not (dataset.correct_triples & dataset.incorrect_triples)


@pytest.mark.parametrize("name", ALL)
def test_correct_triples_stated_on_their_pages(datasets, name):
    dataset = datasets[name]
    nlp = get_locale(dataset.locale)
    for generated in dataset.pages:
        blocks = extract_text_blocks(
            generated.page.html, skip_tables=False
        )
        tokens: list[str] = []
        for block in blocks:
            tokens.extend(nlp.tokenizer.tokenize(block))
        joined = " ".join(tokens)
        for triple in generated.correct_triples:
            assert triple.value in joined, (name, triple)


@pytest.mark.parametrize("name", ALL)
def test_correct_triples_consistent_with_assignment(datasets, name):
    dataset = datasets[name]
    for generated in dataset.pages:
        for triple in generated.correct_triples:
            assert generated.assignment.get(triple.attribute) == (
                triple.value
            ), (name, triple)


@pytest.mark.parametrize("name", ALL)
def test_stated_pairs_are_structurally_valid(datasets, name):
    dataset = datasets[name]
    validator = dataset.pair_validator
    for triple in dataset.correct_triples:
        assert validator.is_valid(triple.attribute, triple.value), (
            name,
            triple,
        )


@pytest.mark.parametrize("name", ALL)
def test_pages_parse_and_have_text(datasets, name):
    dataset = datasets[name]
    for generated in dataset.pages:
        blocks = extract_text_blocks(generated.page.html)
        assert blocks, (name, generated.page.product_id)
