"""Tests for the CrfTagger facade."""

import pytest

from repro.config import CrfConfig
from repro.errors import NotFittedError, TrainingError
from repro.ml import CrfTagger
from repro.nlp.bio import is_valid_bio
from repro.types import Sentence, TaggedSentence


@pytest.fixture(scope="module")
def trained(request):
    """A CRF trained on a small synthetic labelling task."""
    import random

    from repro.nlp import get_locale

    ja = get_locale("ja")
    rng = random.Random(0)
    colors = ["aka", "ao", "shiro", "kuro", "midori"]
    weights = ["2 kg", "3 kg", "5 kg", "1 . 5 kg"]
    data = []
    for index in range(200):
        color = rng.choice(colors)
        weight = rng.choice(weights)
        tokens = ja.tokens(
            f"iro wa {color} desu soshite juryo wa {weight} desu"
        )
        texts = [token.text for token in tokens]
        labels = ["O"] * len(tokens)
        labels[texts.index(color)] = "B-iro"
        weight_tokens = weight.split()
        for start in range(len(texts)):
            if texts[start:start + len(weight_tokens)] == weight_tokens:
                labels[start] = "B-juryo"
                for offset in range(1, len(weight_tokens)):
                    labels[start + offset] = "I-juryo"
                break
        data.append(
            TaggedSentence(Sentence(f"p{index}", 0, tokens), tuple(labels))
        )
    tagger = CrfTagger(CrfConfig(max_iterations=50)).train(data)
    return tagger, data, ja


def test_training_on_empty_dataset_raises():
    with pytest.raises(TrainingError):
        CrfTagger().train([])


def test_tagging_before_training_raises(make_sentence):
    with pytest.raises(NotFittedError):
        CrfTagger().tag([make_sentence("x")])


def test_learns_training_data(trained):
    tagger, data, _ = trained
    predictions = tagger.tag([tagged.sentence for tagged in data[:30]])
    exact = sum(
        prediction.labels == gold.labels
        for prediction, gold in zip(predictions, data[:30])
    )
    assert exact >= 28


def test_generalizes_to_unseen_values(trained):
    tagger, _, ja = trained
    sentence = Sentence(
        "x", 0, ja.tokens("juryo wa 4 kg desu soshite iro wa kuro desu")
    )
    (prediction,) = tagger.tag([sentence])
    texts = sentence.texts()
    labels = dict(zip(texts, prediction.labels))
    assert labels["4"] == "B-juryo"
    assert labels["kg"] == "I-juryo"
    assert labels["kuro"] == "B-iro"


def test_output_is_valid_bio(trained):
    tagger, data, _ = trained
    for prediction in tagger.tag([tagged.sentence for tagged in data[:20]]):
        assert is_valid_bio(prediction.labels)


def test_label_inventory(trained):
    tagger, _, _ = trained
    # Colors are single tokens, so I-iro never occurs in the training
    # labels; the inventory only contains observed labels plus O.
    assert set(tagger.labels) == {
        "O", "B-iro", "B-juryo", "I-juryo",
    }


def test_empty_sentence_gets_empty_labels(trained):
    tagger, _, _ = trained
    empty = Sentence("p", 0, ())
    (prediction,) = tagger.tag([empty])
    assert prediction.labels == ()


def test_tag_empty_list(trained):
    tagger, _, _ = trained
    assert tagger.tag([]) == []


def test_feature_count_positive(trained):
    tagger, _, _ = trained
    assert tagger.feature_count > 10


def test_dropped_sentence_raises_instead_of_empty_labels(trained):
    """A batching bug that loses a sentence must surface as ModelError."""
    from repro.errors import ModelError

    tagger, data, _ = trained
    sentences = [tagged.sentence for tagged in data[:4]]
    original = tagger._tag_batches

    def dropping(nonempty):
        for chunk in original(nonempty):
            trimmed = [s for s in chunk if s is not sentences[2]]
            if trimmed:
                yield trimmed

    tagger._tag_batches = dropping
    try:
        with pytest.raises(ModelError):
            tagger.tag(sentences)
        with pytest.raises(ModelError):
            tagger.tag_with_confidence(sentences)
    finally:
        tagger._tag_batches = original


def test_training_diagnostics_reset_per_train(trained):
    tagger, _, _ = trained
    # An untroubled training run leaves no warnings behind.
    assert tagger.training_diagnostics == {}
