"""Tests for CRF span confidences."""

import numpy as np
import pytest

from repro.ml.crf.confidence import span_confidences


def test_single_token_span_is_its_marginal():
    marginals = np.array([[0.1, 0.9], [0.5, 0.5]])
    confidences = span_confidences(
        marginals, [(0, 1, "iro")], {"B-iro": 1}
    )
    assert confidences == [pytest.approx(0.9)]


def test_multitoken_span_geometric_mean():
    marginals = np.array(
        [[0.1, 0.8, 0.1], [0.1, 0.1, 0.8]]
    )
    confidences = span_confidences(
        marginals, [(0, 2, "juryo")], {"B-juryo": 1, "I-juryo": 2}
    )
    assert confidences == [pytest.approx(0.8)]


def test_missing_label_scores_zero():
    marginals = np.array([[0.5, 0.5]])
    confidences = span_confidences(
        marginals, [(0, 1, "ghost")], {"B-iro": 1}
    )
    assert confidences == [0.0]


def test_empty_spans():
    assert span_confidences(np.zeros((3, 2)), [], {}) == []


class TestTagWithConfidence:
    @pytest.fixture(scope="class")
    def trained(self):
        import random

        from repro.config import CrfConfig
        from repro.ml import CrfTagger
        from repro.nlp import get_locale
        from repro.types import Sentence, TaggedSentence

        ja = get_locale("ja")
        rng = random.Random(0)
        colors = ["aka", "ao", "shiro"]
        data = []
        for index in range(150):
            color = rng.choice(colors)
            tokens = ja.tokens(f"iro wa {color} desu")
            data.append(
                TaggedSentence(
                    Sentence(f"p{index}", 0, tokens),
                    ("O", "O", "B-iro", "O"),
                )
            )
        tagger = CrfTagger(CrfConfig(max_iterations=40)).train(data)
        return tagger, ja

    def test_confident_on_trained_pattern(self, trained):
        from repro.nlp.bio import decode_bio
        from repro.types import Sentence

        tagger, ja = trained
        sentence = Sentence("x", 0, ja.tokens("iro wa aka desu"))
        ((tagged, confidences),) = tagger.tag_with_confidence([sentence])
        spans = decode_bio(tagged.labels)
        assert len(confidences) == len(spans) == 1
        assert confidences[0] > 0.9

    def test_labels_match_plain_tag(self, trained):
        from repro.types import Sentence

        tagger, ja = trained
        sentences = [
            Sentence("a", 0, ja.tokens("iro wa ao desu")),
            Sentence("b", 0, ja.tokens("nani mo nai")),
        ]
        plain = tagger.tag(sentences)
        scored = tagger.tag_with_confidence(sentences)
        assert [t.labels for t in plain] == [
            t.labels for t, _ in scored
        ]

    def test_empty_sentence(self, trained):
        from repro.types import Sentence

        tagger, _ = trained
        ((tagged, confidences),) = tagger.tag_with_confidence(
            [Sentence("e", 0, ())]
        )
        assert tagged.labels == ()
        assert confidences == []

    def test_unfitted_raises(self):
        from repro.errors import NotFittedError
        from repro.ml import CrfTagger

        with pytest.raises(NotFittedError):
            CrfTagger().tag_with_confidence([])

    def test_confidences_in_unit_interval(self, trained):
        from repro.nlp.bio import decode_bio
        from repro.types import Sentence

        tagger, ja = trained
        sentences = [
            Sentence(f"s{i}", 0, ja.tokens(text))
            for i, text in enumerate(
                ["iro wa aka desu", "aka to ao", "mimizuku desu"]
            )
        ]
        for tagged, confidences in tagger.tag_with_confidence(sentences):
            assert len(confidences) == len(decode_bio(tagged.labels))
            assert all(0.0 <= c <= 1.0 for c in confidences)
