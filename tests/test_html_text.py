"""Unit tests for visible-text extraction."""

from repro.html import extract_text_blocks, extract_title


def test_blocks_split_at_block_tags():
    html = "<div><p>one</p><p>two</p></div>"
    assert extract_text_blocks(html) == ["one", "two"]


def test_inline_markup_does_not_split():
    html = "<p>one <b>bold</b> two</p>"
    assert extract_text_blocks(html) == ["one bold two"]


def test_tables_excluded_by_default():
    html = "<p>text</p><table><tr><td>iro</td><td>aka</td></tr></table>"
    assert extract_text_blocks(html) == ["text"]


def test_tables_included_on_request():
    html = "<p>text</p><table><tr><td>iro</td><td>aka</td></tr></table>"
    blocks = extract_text_blocks(html, skip_tables=False)
    assert "iro aka" in " ".join(blocks)


def test_script_and_style_always_excluded():
    html = "<script>var x=1;</script><style>p{}</style><p>keep</p>"
    assert extract_text_blocks(html) == ["keep"]


def test_title_and_h1_are_blocks():
    html = "<title>T</title><h1>H</h1><p>body</p>"
    assert extract_text_blocks(html) == ["T", "H", "body"]


def test_whitespace_normalized_within_block():
    html = "<p>a\n   b\t c</p>"
    assert extract_text_blocks(html) == ["a b c"]


def test_br_splits_blocks():
    html = "<p>one<br>two</p>"
    assert extract_text_blocks(html) == ["one", "two"]


def test_empty_document_yields_no_blocks():
    assert extract_text_blocks("") == []


def test_extract_title_prefers_title_tag():
    html = "<title>the title</title><h1>the h1</h1>"
    assert extract_title(html) == "the title"


def test_extract_title_falls_back_to_h1():
    assert extract_title("<h1>only h1</h1>") == "only h1"


def test_extract_title_empty_when_absent():
    assert extract_title("<p>nothing</p>") == ""
