"""Integration tests for the bootstrap loop (Figure 1)."""

import pytest

from repro.config import PipelineConfig
from repro.core.bootstrap import Bootstrapper, restrict_to_attributes
from repro.errors import TrainingError
from repro.evaluation import build_truth_sample, precision
from repro.types import ProductPage, TaggedSentence


@pytest.fixture(scope="module")
def run_result(small_vacuum_dataset):
    config = PipelineConfig(iterations=2)
    return Bootstrapper(config).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )


def test_runs_requested_iterations(run_result):
    assert len(run_result.iterations) == 2
    assert [it.iteration for it in run_result.iterations] == [1, 2]


def test_triples_accumulate_monotonically(run_result):
    previous = run_result.seed_triples
    for iteration in run_result.iterations:
        assert previous <= iteration.triples
        previous = iteration.triples


def test_bootstrap_extends_seed(run_result):
    assert len(run_result.final_triples) > len(run_result.seed_triples)


def test_new_triples_disjoint_from_prior(run_result):
    seen = set(run_result.seed_triples)
    for iteration in run_result.iterations:
        assert not (iteration.new_triples & seen)
        seen |= iteration.triples


def test_veto_and_semantic_stats_present(run_result):
    for iteration in run_result.iterations:
        assert iteration.veto_stats is not None
        assert iteration.candidate_extractions >= 0


def test_cleaning_disabled_produces_no_stats(small_vacuum_dataset):
    config = PipelineConfig(iterations=1).without_cleaning()
    result = Bootstrapper(config).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    assert result.iterations[0].veto_stats is None
    assert result.iterations[0].semantic_stats is None


def test_triples_after_bounds(run_result):
    assert run_result.triples_after(0) == run_result.seed_triples
    with pytest.raises(IndexError):
        run_result.triples_after(3)


def test_covered_products_subset_of_inputs(
    run_result, small_vacuum_dataset
):
    ids = {p.page.product_id for p in small_vacuum_dataset.pages}
    assert run_result.covered_products() <= ids


def test_precision_reasonable_on_small_data(
    run_result, small_vacuum_dataset
):
    truth = build_truth_sample(small_vacuum_dataset)
    breakdown = precision(run_result.final_triples, truth)
    assert breakdown.precision > 0.6


def test_attribute_subset_restricts_output(small_vacuum_dataset):
    config = PipelineConfig(iterations=1)
    result = Bootstrapper(config, attribute_subset=("juryo",)).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    attributes = {t.attribute for t in result.final_triples}
    assert attributes <= {"juryo"}


def test_attribute_subset_restricts_seed_clusters(small_vacuum_dataset):
    """Regression: a specialized model (§VIII-D) must not keep value
    clusters or surface-name aliases of excluded attributes."""
    config = PipelineConfig(iterations=1)
    result = Bootstrapper(config, attribute_subset=("juryo",)).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    clusters = result.seed.clusters
    assert set(clusters.cluster_names()) <= {"juryo"}
    assert set(clusters.canonical.values()) <= {"juryo"}
    # page_support only tracks surfaces that still resolve somewhere.
    assert set(clusters.page_support) <= set(clusters.canonical)
    assert set(result.seed.values) <= {"juryo"}


def test_restrict_to_attributes_blanks_labels(make_tagged):
    tagged = make_tagged("iro wa aka desu", "aka", "iro")
    (restricted,) = restrict_to_attributes([tagged], frozenset({"juryo"}))
    assert all(label == "O" for label in restricted.labels)
    (kept,) = restrict_to_attributes([tagged], frozenset({"iro"}))
    assert kept.labels == tagged.labels


def test_category_without_tables_raises():
    pages = [
        ProductPage(
            f"p{i}", "cat",
            "<html><body><p>plain text。</p></body></html>", "ja",
        )
        for i in range(5)
    ]
    from collections import Counter

    from repro.corpus.querylog import QueryLog

    with pytest.raises(TrainingError):
        Bootstrapper(PipelineConfig(iterations=1)).run(
            pages, QueryLog(Counter())
        )
