"""Smoke tests for the per-stage benchmark harness."""

import json

from repro.perf import bench


def test_run_bench_schema_and_identity(tmp_path):
    payload = bench.run_bench(
        ["vacuum_cleaner"], products=20, iterations=2, seed=7
    )
    assert payload["schema"] == 1
    assert payload["config"]["categories"] == ["vacuum_cleaner"]
    assert set(payload["modes"]) == {"uncached", "optimized"}
    for mode in payload["modes"].values():
        assert mode["total_seconds"] > 0
        assert "tagger_train" in mode["stage_totals"]
        assert "1" in mode["per_iteration_seconds"]
        assert "2" in mode["per_iteration_seconds"]
        assert "triples" not in mode  # stripped from the artifact
    assert payload["modes"]["optimized"]["cache"]["hits"] > 0
    assert payload["modes"]["uncached"]["cache"] == {
        "hits": 0,
        "misses": 0,
    }
    assert payload["identical_results"] is True
    assert payload["speedup"]["iter2plus"] > 0


def test_bench_main_writes_artifact_and_compares(tmp_path, capsys):
    previous = tmp_path / "previous.json"
    previous.write_text(
        json.dumps(
            {"modes": {"optimized": {"iter2plus_seconds": 100.0}}}
        )
    )
    out = tmp_path / "bench.json"
    code = bench.main(
        [
            "--out", str(out),
            "--compare", str(previous),
            "--categories", "vacuum_cleaner",
            "--products", "20",
            "--iterations", "2",
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["vs_previous"]["previous_iter2plus_seconds"] == 100.0
    assert payload["vs_previous"]["iter2plus_speedup"] > 1.0
    assert "speedup:" in capsys.readouterr().out
