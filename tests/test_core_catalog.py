"""Tests for catalog assembly and faceted search."""

import pytest

from repro.core.catalog import build_catalog
from repro.types import Triple


def _triples(rows):
    return [Triple(*row) for row in rows]


def test_records_group_by_product():
    catalog = build_catalog(
        _triples(
            [
                ("p1", "iro", "aka"),
                ("p1", "juryo", "2 kg"),
                ("p2", "iro", "ao"),
            ]
        )
    )
    assert len(catalog) == 2
    assert catalog.records["p1"].value_of("iro") == "aka"
    assert catalog.records["p1"].value_of("juryo") == "2 kg"
    assert catalog.records["p2"].value_of("juryo") is None


def test_facet_search():
    catalog = build_catalog(
        _triples(
            [
                ("p1", "iro", "aka"),
                ("p2", "iro", "aka"),
                ("p3", "iro", "ao"),
            ]
        )
    )
    assert catalog.find("iro", "aka") == ("p1", "p2")
    assert catalog.find("iro", "ao") == ("p3",)
    assert catalog.find("iro", "missing") == ()
    assert catalog.find("ghost", "aka") == ()


def test_functional_attribute_conflict_resolution():
    # juryo is single-valued for most products -> functional; p1's
    # conflict resolves to the better-supported value.
    rows = [("p1", "juryo", "2 kg"), ("p1", "juryo", "2 kg"),
            ("p1", "juryo", "5 kg")]
    rows += [(f"q{i}", "juryo", "3 kg") for i in range(8)]
    catalog = build_catalog(_triples(rows))
    assert "juryo" in catalog.functional_attributes
    assert catalog.records["p1"].attributes["juryo"] == ("2 kg",)


def test_multi_valued_attribute_keeps_all():
    # sozai carries two values for most products -> not functional.
    rows = []
    for index in range(5):
        rows.append((f"p{index}", "sozai", "men"))
        rows.append((f"p{index}", "sozai", "kawa"))
    catalog = build_catalog(_triples(rows))
    assert "sozai" not in catalog.functional_attributes
    assert catalog.records["p0"].attributes["sozai"] == ("kawa", "men")


def test_alias_map_applied():
    catalog = build_catalog(
        _triples([("p1", "omosa", "2 kg")]),
        alias_map={"omosa": "juryo"},
    )
    assert catalog.records["p1"].value_of("juryo") == "2 kg"


def test_fill_rate():
    catalog = build_catalog(
        _triples(
            [
                ("p1", "iro", "aka"),
                ("p2", "iro", "ao"),
                ("p2", "juryo", "2 kg"),
            ]
        )
    )
    rates = catalog.attribute_fill_rate()
    assert rates["iro"] == 1.0
    assert rates["juryo"] == 0.5
    # Against the whole input corpus (coverage semantics).
    rates_vs_corpus = catalog.attribute_fill_rate(product_count=10)
    assert rates_vs_corpus["iro"] == pytest.approx(0.2)


def test_empty_input():
    catalog = build_catalog([])
    assert len(catalog) == 0
    assert catalog.facets == {}


def test_deterministic_tie_break():
    rows = [("p1", "juryo", "5 kg"), ("p1", "juryo", "2 kg")]
    rows += [(f"q{i}", "juryo", "3 kg") for i in range(8)]
    first = build_catalog(_triples(rows))
    second = build_catalog(_triples(reversed(rows)))
    assert (
        first.records["p1"].attributes
        == second.records["p1"].attributes
    )


def test_end_to_end_from_pipeline(small_vacuum_dataset):
    from repro import PAEPipeline, PipelineConfig

    result = PAEPipeline(PipelineConfig(iterations=1)).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    catalog = build_catalog(
        result.triples, alias_map=small_vacuum_dataset.alias_map
    )
    assert len(catalog) > 0
    fill = catalog.attribute_fill_rate(
        product_count=len(small_vacuum_dataset)
    )
    assert all(0.0 < rate <= 1.0 for rate in fill.values())
