"""Tests for attribute aggregation (the Charron-style scoring)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.config import SeedConfig
from repro.core.preprocess import aggregate_attributes
from repro.core.preprocess.aggregation import charron_score
from repro.core.preprocess.candidate_discovery import RawCandidate


def _candidates(spec):
    """spec: {attribute: [(page, value), ...]}"""
    return [
        RawCandidate(page, attribute, value)
        for attribute, rows in spec.items()
        for page, value in rows
    ]


class TestCharronScore:
    def test_identical_small_alias_scores_high(self):
        small = {"A", "B"}
        large = {"A", "B", "C", "D", "E", "F", "G", "H"}
        assert charron_score(small, large, damping=0.6) > 0.8

    def test_comparable_ranges_are_damped(self):
        first = {"A", "B", "C", "D"}
        second = {"A", "B", "C", "E"}
        full = charron_score(first, second, damping=0.0)
        damped = charron_score(first, second, damping=0.9)
        assert damped < full

    def test_disjoint_sets_score_zero(self):
        assert charron_score({"A"}, {"B"}, damping=0.5) == 0.0

    def test_empty_set_scores_zero(self):
        assert charron_score(set(), {"A"}, damping=0.5) == 0.0

    def test_symmetric(self):
        first = {"A", "B", "C"}
        second = {"B", "C", "D", "E"}
        assert charron_score(first, second, 0.6) == charron_score(
            second, first, 0.6
        )

    @given(
        st.sets(st.integers(0, 30), min_size=1, max_size=15),
        st.sets(st.integers(0, 30), min_size=1, max_size=15),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_score_bounded(self, first, second, damping):
        first = {str(x) for x in first}
        second = {str(x) for x in second}
        score = charron_score(first, second, damping)
        assert 0.0 <= score <= 1.0


class TestAggregation:
    def test_alias_with_shared_values_merges(self):
        config = SeedConfig(min_attribute_pages=1)
        candidates = _candidates(
            {
                "meka": [(f"p{i}", v) for i, v in enumerate(
                    ["Nikkon", "Sorex", "Hikari", "Yamado", "Sakura",
                     "Kazeno", "Fujita", "Aoyama"]
                )],
                "seizomoto": [("q1", "Nikkon"), ("q2", "Sorex")],
            }
        )
        clusters = aggregate_attributes(candidates, config)
        assert clusters.resolve("seizomoto") == "meka"
        assert clusters.resolve("meka") == "meka"
        assert clusters.members("meka") == ("meka", "seizomoto")

    def test_distinct_attributes_stay_apart(self):
        config = SeedConfig(min_attribute_pages=1)
        candidates = _candidates(
            {
                "iro": [(f"p{i}", v) for i, v in enumerate(
                    ["aka", "ao", "shiro"]
                )],
                "sozai": [(f"p{i}", v) for i, v in enumerate(
                    ["men", "kawa", "nairon"]
                )],
            }
        )
        clusters = aggregate_attributes(candidates, config)
        assert clusters.resolve("iro") == "iro"
        assert clusters.resolve("sozai") == "sozai"

    def test_comparable_range_sizes_do_not_merge(self):
        # Two sibling attributes sharing half their values but with
        # equal range sizes: the damping keeps them apart.
        config = SeedConfig(
            min_attribute_pages=1,
            aggregation_threshold=0.5,
            aggregation_damping=0.9,
        )
        shared = ["5 kg", "10 kg", "15 kg"]
        candidates = _candidates(
            {
                "juryo": [
                    (f"p{i}", v)
                    for i, v in enumerate(shared + ["2 kg", "3 kg", "4 kg"])
                ],
                "taika juryo": [
                    (f"q{i}", v)
                    for i, v in enumerate(
                        shared + ["40 kg", "60 kg", "80 kg"]
                    )
                ],
            }
        )
        clusters = aggregate_attributes(candidates, config)
        assert clusters.resolve("juryo") != clusters.resolve("taika juryo")

    def test_rare_attribute_names_dropped(self):
        config = SeedConfig(min_attribute_pages=3)
        candidates = _candidates(
            {
                "iro": [(f"p{i}", "aka") for i in range(5)],
                "sonota": [("p1", "―")],
            }
        )
        clusters = aggregate_attributes(candidates, config)
        assert clusters.resolve("sonota") is None
        assert clusters.resolve("iro") == "iro"

    def test_canonical_is_best_supported_member(self):
        config = SeedConfig(min_attribute_pages=1)
        candidates = _candidates(
            {
                "karaa": [("p1", "aka"), ("p2", "ao")],
                "iro": [(f"q{i}", v) for i, v in enumerate(
                    ["aka", "ao", "shiro", "kuro", "gin"]
                )],
            }
        )
        clusters = aggregate_attributes(candidates, config)
        assert clusters.resolve("karaa") == "iro"

    def test_merging_is_transitive(self):
        config = SeedConfig(
            min_attribute_pages=1, aggregation_threshold=0.3
        )
        base = ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J"]
        candidates = _candidates(
            {
                "big": [(f"p{i}", v) for i, v in enumerate(base)],
                "alias1": [("q1", "A"), ("q2", "B")],
                "alias2": [("r1", "C"), ("r2", "D")],
            }
        )
        clusters = aggregate_attributes(candidates, config)
        assert clusters.resolve("alias1") == clusters.resolve("alias2")

    def test_cluster_names_sorted(self):
        config = SeedConfig(min_attribute_pages=1)
        candidates = _candidates(
            {
                "b": [("p1", "x")],
                "a": [("p2", "y")],
            }
        )
        clusters = aggregate_attributes(candidates, config)
        assert clusters.cluster_names() == ("a", "b")
