"""Supervised shard-worker pool: death detection, respawn, poisoning.

The pool's contract (:mod:`repro.runtime.pool`): a SIGKILLed worker is
detected by its exitcode sentinel alone, respawned, and its shard
requeued with deterministic attempt accounting; a shard that keeps
killing its worker is returned as a :class:`ShardFailure` instead of
wedging the run; ordinary task exceptions re-raise in the parent
exactly as the pre-pool fan-out's did. With one worker the pool runs
inline with identical accounting (kills simulated), so every semantic
is testable on a 1-CPU box; the pooled tests then exercise the real
fork/SIGKILL machinery.
"""

import os
import signal

import pytest

from repro.runtime import FaultPlan, FaultSpec, ShardWorkerPool
from repro.runtime.pool import PoolReport, ShardFailure

pytestmark = pytest.mark.usefixtures("watchdog")


# Worker functions must be module-level (pickled into forked workers).


def _scale(context, index):
    return (index, context["factor"] * index)


def _raise_on(context, index):
    if index == context:
        raise ValueError(f"boom at shard {index}")
    return index


class UnpicklableError(Exception):
    def __reduce__(self):
        raise TypeError("this exception refuses to pickle")


def _raise_unpicklable(context, index):
    raise UnpicklableError("exotic failure")


def _stop_self(context, index):
    if index == context:
        # Freeze the whole process (heartbeat thread included): the
        # supervisor must notice the silence, not an exitcode.
        os.kill(os.getpid(), signal.SIGSTOP)
    return index


def _expected(indices, factor=3):
    return {index: (index, factor * index) for index in indices}


# -- inline degradation (workers=1) --------------------------------------


def test_inline_clean_run(tmp_path):
    with ShardWorkerPool(1) as pool:
        results, failures, report = pool.run(
            _scale, {"factor": 3}, range(5), stage="shard_prep"
        )
    assert results == _expected(range(5))
    assert failures == {}
    assert report.as_counts() == {}


def test_inline_injected_kill_requeues_and_completes():
    plan = FaultPlan(
        [FaultSpec(stage="shard_prep:0002", kind="worker_kill")]
    )
    with ShardWorkerPool(1) as pool:
        results, failures, report = pool.run(
            _scale,
            {"factor": 3},
            range(4),
            stage="shard_prep",
            faults=plan,
        )
    assert results == _expected(range(4))
    assert failures == {}
    assert report.deaths == 1
    assert report.injected_kills == 1
    assert report.requeues == 1
    assert report.poisoned == 0
    assert sum(plan.injected.values()) == 1


def test_inline_unlimited_kill_poisons_shard():
    plan = FaultPlan(
        [
            FaultSpec(
                stage="shard_prep:0001", kind="worker_kill", times=None
            )
        ]
    )
    with ShardWorkerPool(1, max_shard_retries=2) as pool:
        results, failures, report = pool.run(
            _scale,
            {"factor": 3},
            range(3),
            stage="shard_prep",
            faults=plan,
        )
    assert results == _expected([0, 2])
    assert set(failures) == {1}
    failure = failures[1]
    assert isinstance(failure, ShardFailure)
    assert failure.attempts == 3  # 1 + max_shard_retries
    assert failure.reason == "worker_death"
    assert report.poisoned == 1
    assert report.deaths == 3


def test_inline_task_exception_propagates():
    """Deterministic code errors are the caller's to retry/escalate —
    the pool must NOT absorb them into retry/poison accounting."""
    with ShardWorkerPool(1) as pool:
        with pytest.raises(ValueError, match="boom at shard 2"):
            pool.run(_raise_on, 2, range(4), stage="shard_tag")
        # The wave died mid-flight but its tallies stayed clean.
        assert pool.report.poisoned == 0
        assert pool.report.deaths == 0


def test_run_after_close_raises():
    pool = ShardWorkerPool(1)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        pool.run(_scale, {"factor": 3}, [0], stage="shard_prep")


def test_max_workers_cap_forces_inline():
    with ShardWorkerPool(4) as pool:
        results, _, _ = pool.run(
            _scale,
            {"factor": 3},
            range(4),
            stage="shard_prep",
            max_workers=1,
        )
        assert results == _expected(range(4))
        # No worker process was ever spawned.
        assert pool._handles == []


def test_empty_indices_short_circuit():
    with ShardWorkerPool(2) as pool:
        assert pool.run(_scale, None, [], stage="shard_prep") == (
            {},
            {},
            PoolReport(),
        )


# -- pooled execution (real processes) -----------------------------------


def test_pooled_clean_run_matches_inline():
    with ShardWorkerPool(2) as pool:
        results, failures, report = pool.run(
            _scale, {"factor": 3}, range(6), stage="shard_prep"
        )
    assert results == _expected(range(6))
    assert failures == {}
    assert report.as_counts() == {}


def test_pooled_workers_persist_across_waves():
    with ShardWorkerPool(2) as pool:
        pool.run(_scale, {"factor": 3}, range(4), stage="shard_prep")
        pids = [handle.process.pid for handle in pool._handles]
        results, _, _ = pool.run(
            _scale, {"factor": 5}, range(4), stage="shard_tag"
        )
        assert [h.process.pid for h in pool._handles] == pids
    assert results == _expected(range(4), factor=5)


def test_pooled_sigkill_respawns_and_requeues():
    """The acceptance scenario: a worker SIGKILLed mid-shard (no
    goodbye message possible) is detected via exitcode, replaced, and
    the shard re-run — with the injection booked deterministically."""
    plan = FaultPlan(
        [FaultSpec(stage="shard_prep:0003", kind="worker_kill")]
    )
    with ShardWorkerPool(2) as pool:
        results, failures, report = pool.run(
            _scale,
            {"factor": 3},
            range(6),
            stage="shard_prep",
            faults=plan,
        )
    assert results == _expected(range(6))
    assert failures == {}
    assert report.deaths >= 1
    assert report.respawns >= 1
    assert report.requeues >= 1
    assert report.injected_kills == 1
    assert report.poisoned == 0
    assert sum(plan.injected.values()) == 1


def test_pooled_unlimited_kill_poisons_and_survivors_complete():
    plan = FaultPlan(
        [
            FaultSpec(
                stage="shard_prep:0000", kind="worker_kill", times=None
            )
        ]
    )
    with ShardWorkerPool(2, max_shard_retries=1) as pool:
        results, failures, report = pool.run(
            _scale,
            {"factor": 3},
            range(4),
            stage="shard_prep",
            faults=plan,
        )
    assert results == _expected([1, 2, 3])
    assert set(failures) == {0}
    assert failures[0].attempts == 2
    assert failures[0].reason == "worker_death"
    assert report.poisoned == 1


def test_pooled_task_exception_reraises_in_parent():
    with ShardWorkerPool(2) as pool:
        with pytest.raises(ValueError, match="boom at shard 1"):
            pool.run(_raise_on, 1, range(4), stage="shard_tag")


def test_pooled_unpicklable_exception_still_surfaces():
    """mp.Queue's feeder thread pickles in the background and drops
    unpicklable items *silently* — the worker must probe the pickle
    itself so an exotic exception surfaces instead of hanging the
    wave."""
    with ShardWorkerPool(2) as pool:
        with pytest.raises(RuntimeError, match="unpicklable"):
            pool.run(_raise_unpicklable, None, range(2), stage="shard_tag")


def test_pooled_wedged_worker_detected_by_heartbeat():
    """A SIGSTOPped worker is alive by exitcode but silent: the
    supervisor escalates to SIGKILL after heartbeat_timeout and the
    shard is charged a failed attempt."""
    pool = ShardWorkerPool(
        2,
        max_shard_retries=0,
        heartbeat_timeout=1.5,
        heartbeat_interval=0.1,
    )
    try:
        results, failures, report = pool.run(
            _stop_self, 1, range(3), stage="shard_tag"
        )
    finally:
        pool.close()
    assert set(results) == {0, 2}
    assert set(failures) == {1}
    assert failures[1].reason == "heartbeat_timeout"
    assert report.deaths >= 1
    assert report.respawns >= 1
