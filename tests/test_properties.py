"""Cross-module property-based tests (hypothesis).

Invariants that hold across the whole system, checked on generated
inputs: cleaning passes only ever remove extractions; Viterbi paths
score at least as high as any labelled path; tokenization preserves
non-whitespace content; veto is idempotent.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import VetoConfig
from repro.core.cleaning import apply_veto
from repro.ml.crf.inference import viterbi
from repro.nlp import get_locale
from repro.types import Extraction

# -- veto properties -----------------------------------------------------

_VALUES = st.sampled_from(
    ["aka", "2 kg", ";", "< br >", "x" * 40, "gosei kawa", "*"]
)


@st.composite
def extractions(draw):
    count = draw(st.integers(min_value=0, max_value=25))
    result = []
    for index in range(count):
        value = draw(_VALUES)
        result.append(
            Extraction(
                product_id=f"p{draw(st.integers(0, 8))}",
                attribute=draw(st.sampled_from(["iro", "juryo"])),
                value=value,
                sentence_index=0,
                start=0,
                end=max(1, len(value.split(" "))),
            )
        )
    return result


@given(extractions())
@settings(max_examples=60)
def test_veto_output_is_subset_of_input(items):
    kept, stats = apply_veto(items, VetoConfig())
    assert len(kept) <= len(items)
    identities = {id(extraction) for extraction in items}
    assert all(id(extraction) in identities for extraction in kept)
    assert stats.total == len(items)
    assert stats.kept == len(kept)


@given(extractions())
@settings(max_examples=60)
def test_veto_is_idempotent(items):
    once, _ = apply_veto(items, VetoConfig())
    twice, stats = apply_veto(once, VetoConfig())
    assert [e.value for e in twice] == [e.value for e in once]
    # The per-item rules never fire on already-cleaned data...
    assert stats.symbol == stats.markup == stats.long == 0
    # ...and the popularity ranking is stable, so nothing is dropped.
    assert stats.unpopular == 0


# -- Viterbi optimality ---------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_viterbi_beats_random_paths(seed):
    rng = np.random.default_rng(seed)
    length = int(rng.integers(1, 8))
    labels = 4
    emissions = rng.normal(size=(1, length, labels))
    mask = np.ones((1, length), dtype=bool)
    transitions = rng.normal(size=(labels, labels))

    def score(path):
        total = emissions[0, 0, path[0]]
        for t in range(1, length):
            total += transitions[path[t - 1], path[t]]
            total += emissions[0, t, path[t]]
        return total

    (best,) = viterbi(emissions, mask, transitions)
    best_score = score(best)
    for _ in range(30):
        random_path = rng.integers(0, labels, size=length).tolist()
        assert best_score >= score(random_path) - 1e-9


# -- tokenizer properties --------------------------------------------------


@given(
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd", "Po", "Sm"),
            max_codepoint=0x2FFF,
        ),
        max_size=80,
    )
)
@settings(max_examples=80)
def test_ja_tokenizer_preserves_non_whitespace(text):
    tokens = get_locale("ja").tokenizer.tokenize(text)
    # Tokens never contain whitespace and are non-empty.
    assert all(token and not token.isspace() for token in tokens)
    # ASCII-alphanumeric content survives tokenization.
    kept = "".join(tokens)
    for char in text:
        if char.isascii() and char.isalnum():
            assert char in kept


@given(st.text(max_size=60))
@settings(max_examples=60)
def test_pos_tagger_total(text):
    """The tagger assigns some tag to every token either locale emits."""
    for locale in ("ja", "de"):
        bundle = get_locale(locale)
        for token in bundle.tokens(text):
            assert token.pos in {"NN", "NUM", "UNIT", "FW", "SYM", "AN"}


# -- html/text properties ---------------------------------------------------


@given(
    st.lists(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127
            ),
            min_size=1,
            max_size=12,
        ),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=60)
def test_text_extraction_round_trips_paragraphs(paragraphs):
    from repro.html import extract_text_blocks
    from repro.html.entities import encode_entities

    html = "".join(
        f"<p>{encode_entities(paragraph)}</p>" for paragraph in paragraphs
    )
    blocks = extract_text_blocks(html)
    assert blocks == [p for p in paragraphs]
