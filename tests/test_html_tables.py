"""Unit tests for table extraction and dictionary-table detection."""

from repro.html import extract_dictionary_tables, extract_tables


def test_two_column_dictionary():
    html = (
        "<table>"
        "<tr><td>iro</td><td>aka</td></tr>"
        "<tr><td>juryo</td><td>2kg</td></tr>"
        "</table>"
    )
    (table,) = extract_dictionary_tables(html)
    assert table.orientation == "columns"
    assert table.pairs == (("iro", "aka"), ("juryo", "2kg"))


def test_two_row_dictionary():
    html = (
        "<table>"
        "<tr><td>iro</td><td>juryo</td><td>saizu</td></tr>"
        "<tr><td>aka</td><td>2kg</td><td>30cm</td></tr>"
        "</table>"
    )
    (table,) = extract_dictionary_tables(html)
    assert table.orientation == "rows"
    assert table.pairs == (
        ("iro", "aka"), ("juryo", "2kg"), ("saizu", "30cm"),
    )


def test_th_cells_count_as_cells():
    html = (
        "<table><tr><th>iro</th><td>aka</td></tr></table>"
    )
    (table,) = extract_dictionary_tables(html)
    assert table.pairs == (("iro", "aka"),)


def test_non_dictionary_table_is_skipped():
    html = (
        "<table>"
        "<tr><td>a</td><td>b</td><td>c</td></tr>"
        "<tr><td>d</td><td>e</td><td>f</td></tr>"
        "<tr><td>g</td><td>h</td><td>i</td></tr>"
        "</table>"
    )
    assert extract_dictionary_tables(html) == []


def test_empty_cells_skipped_but_table_kept():
    html = (
        "<table>"
        "<tr><td>iro</td><td>aka</td></tr>"
        "<tr><td></td><td>orphan</td></tr>"
        "</table>"
    )
    (table,) = extract_dictionary_tables(html)
    assert table.pairs == (("iro", "aka"),)


def test_table_of_only_empty_pairs_not_a_dictionary():
    html = "<table><tr><td></td><td></td></tr></table>"
    assert extract_dictionary_tables(html) == []


def test_multiple_tables_in_document_order():
    html = (
        "<table><tr><td>a</td><td>1</td></tr></table>"
        "<p>text</p>"
        "<table><tr><td>b</td><td>2</td></tr></table>"
    )
    tables = extract_dictionary_tables(html)
    assert [table.pairs[0][0] for table in tables] == ["a", "b"]


def test_cell_text_is_whitespace_normalized():
    html = (
        "<table><tr><td>  iro \n</td><td> aka  chan </td></tr></table>"
    )
    (table,) = extract_dictionary_tables(html)
    assert table.pairs == (("iro", "aka chan"),)


def test_nested_markup_inside_cells():
    html = (
        "<table><tr><td><b>iro</b></td><td><span>aka</span></td></tr>"
        "</table>"
    )
    (table,) = extract_dictionary_tables(html)
    assert table.pairs == (("iro", "aka"),)


def test_extract_tables_returns_raw_grids():
    html = (
        "<table>"
        "<tr><td>a</td><td>b</td><td>c</td></tr>"
        "<tr><td>d</td><td>e</td><td>f</td></tr>"
        "</table>"
    )
    (grid,) = extract_tables(html)
    assert grid == [["a", "b", "c"], ["d", "e", "f"]]


def test_single_row_two_columns_is_dictionary():
    html = "<table><tr><td>iro</td><td>aka</td></tr></table>"
    (table,) = extract_dictionary_tables(html)
    assert table.orientation == "columns"


def test_no_tables_yields_empty_list():
    assert extract_dictionary_tables("<p>no tables</p>") == []
