"""Tests for the four veto rules."""

from repro.config import VetoConfig
from repro.core.cleaning import apply_veto
from repro.core.cleaning.veto import (
    is_long_value,
    is_markup_value,
    is_symbol_value,
)
from repro.types import Extraction


def _extraction(value, product="p1", attribute="iro", tokens=None):
    token_count = tokens if tokens is not None else len(value.split(" "))
    return Extraction(product, attribute, value, 0, 0, token_count)


class TestRuleSymbols:
    def test_single_symbol_vetoed(self):
        assert is_symbol_value(_extraction(";"))
        assert is_symbol_value(_extraction("*"))
        assert is_symbol_value(_extraction("―"))

    def test_word_not_vetoed(self):
        assert not is_symbol_value(_extraction("aka"))

    def test_number_not_vetoed(self):
        assert not is_symbol_value(_extraction("5"))

    def test_multitoken_symbols_not_this_rule(self):
        assert not is_symbol_value(_extraction("* *"))


class TestRuleMarkup:
    def test_markup_tags_vetoed(self):
        assert is_markup_value("< br >")
        assert is_markup_value("aka < / span >")
        assert is_markup_value("&nbsp;")

    def test_plain_text_kept(self):
        assert not is_markup_value("aka")
        assert not is_markup_value("2 . 5 kg")

    def test_comparison_text_kept(self):
        # A lone '<' in "weight < 5" is not a markup tag.
        assert not is_markup_value("juryo < 5 kg")


class TestRuleLong:
    def test_long_value_vetoed(self):
        assert is_long_value("x" * 31, 30)

    def test_short_value_kept(self):
        assert not is_long_value("x" * 30, 30)


class TestRuleUnpopular:
    def test_bottom_share_removed(self):
        extractions = []
        # 'aka' tagged on 8 products, 'ao' on 4, 'nebi' on 1.
        for index in range(8):
            extractions.append(_extraction("aka", product=f"a{index}"))
        for index in range(4):
            extractions.append(_extraction("ao", product=f"b{index}"))
        extractions.append(_extraction("nebi", product="c0"))
        # ceil(0.6 * 3 distinct values) = 2 kept.
        kept, stats = apply_veto(
            extractions, VetoConfig(keep_top_share=0.6)
        )
        values = {extraction.value for extraction in kept}
        assert values == {"aka", "ao"}
        assert stats.unpopular == 1

    def test_popularity_counts_distinct_products(self):
        extractions = [
            _extraction("aka", product="a1"),
            _extraction("aka", product="a1"),  # same product twice
            _extraction("ao", product="b1"),
            _extraction("ao", product="b2"),
        ]
        kept, _ = apply_veto(extractions, VetoConfig(keep_top_share=0.5))
        assert {extraction.value for extraction in kept} == {"ao"}

    def test_single_value_always_kept(self):
        extractions = [_extraction("aka")]
        kept, _ = apply_veto(extractions, VetoConfig(keep_top_share=0.5))
        assert len(kept) == 1

    def test_rule_is_per_attribute(self):
        extractions = [
            _extraction("aka", product="a1", attribute="iro"),
            _extraction("aka", product="a2", attribute="iro"),
            _extraction("men", product="a1", attribute="sozai"),
            _extraction("men", product="a2", attribute="sozai"),
        ]
        kept, _ = apply_veto(extractions, VetoConfig(keep_top_share=0.8))
        assert len(kept) == 4


def test_stats_accounting():
    extractions = [
        _extraction(";"),                       # symbol
        _extraction("< br >", tokens=3),        # markup
        _extraction("y" * 40, tokens=1),        # long
        _extraction("aka", product="a1"),
        _extraction("aka", product="a2"),
    ]
    kept, stats = apply_veto(extractions, VetoConfig())
    assert stats.total == 5
    assert stats.symbol == 1
    assert stats.markup == 1
    assert stats.long == 1
    assert stats.kept == len(kept) == 2
    assert stats.discard_rate == 3 / 5


def test_empty_input():
    kept, stats = apply_veto([], VetoConfig())
    assert kept == []
    assert stats.total == 0
    assert stats.discard_rate == 0.0


def test_rule_order_symbol_before_markup():
    # A one-char symbol that also looks markup-ish counts as symbol.
    kept, stats = apply_veto([_extraction("<")], VetoConfig())
    assert stats.symbol == 1
    assert stats.markup == 0
