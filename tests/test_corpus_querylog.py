"""Unit tests for the query-log generator."""

import random
from collections import Counter

from repro.corpus.querylog import QueryLog, build_query_log


def test_contains_and_frequency():
    log = QueryLog(Counter({"aka": 3}))
    assert log.contains("aka")
    assert not log.contains("ao")
    assert log.frequency("aka") == 3
    assert log.frequency("ao") == 0


def test_popular_values_almost_always_kept():
    # Across many log draws, the head value is kept most of the time.
    kept = 0
    for seed in range(20):
        rng = random.Random(seed)
        stated = ["aka"] * 50 + ["ao"] * 40 + ["rare"] * 1
        log = build_query_log(rng, stated, "ja", noise_queries=0)
        kept += log.contains("aka")
    assert kept >= 12


def test_tail_values_mostly_dropped():
    rng = random.Random(0)
    stated = []
    for index in range(60):
        stated.extend([f"v{index}"] * max(1, 60 - index))
    log = build_query_log(rng, stated, "ja", noise_queries=0)
    head_kept = sum(log.contains(f"v{i}") for i in range(10))
    tail_kept = sum(log.contains(f"v{i}") for i in range(50, 60))
    assert head_kept > tail_kept


def test_noise_queries_are_counted():
    rng = random.Random(1)
    log = build_query_log(rng, ["aka"] * 5, "ja", noise_queries=50)
    assert len(log) > 1


def test_deterministic_given_rng_state():
    first = build_query_log(random.Random(2), ["a", "b", "a"], "ja")
    second = build_query_log(random.Random(2), ["a", "b", "a"], "ja")
    assert first.counts == second.counts
