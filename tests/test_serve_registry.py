"""Tests for the versioned warm model registry."""

import threading
import time

import pytest

from repro.errors import ModelError
from repro.ml.persistence import verify_manifest, write_manifest
from repro.serve import ModelRegistry, load_bundle, publish_bundle

pytestmark = pytest.mark.usefixtures("watchdog")


@pytest.fixture
def registry_root(tmp_path, serve_model):
    tagger, dictionary = serve_model
    publish_bundle(tmp_path, "v1", tagger, dictionary, "ja")
    return tmp_path


def test_publish_writes_manifest_and_dictionary(registry_root):
    bundle_dir = registry_root / "v1"
    assert (bundle_dir / "MANIFEST.json").exists()
    assert (bundle_dir / "dictionary.json").exists()
    # Manifest verifies cleanly right after publishing.
    digest = verify_manifest(bundle_dir)
    assert len(digest) == 64


def test_load_bundle_checksums_and_warm_up(registry_root):
    bundle = load_bundle(registry_root, "v1")
    assert bundle.version == "v1"
    assert bundle.locale == "ja"
    assert not bundle.warmed
    seconds = bundle.warm_up()
    assert bundle.warmed
    assert seconds >= 0
    assert "aka" in bundle.dictionary["iro"]


def test_tampered_weights_are_rejected(registry_root):
    weights = registry_root / "v1" / "weights.npz"
    corrupted = bytearray(weights.read_bytes())
    corrupted[len(corrupted) // 2] ^= 0xFF
    weights.write_bytes(bytes(corrupted))
    with pytest.raises(ModelError, match="checksum mismatch"):
        load_bundle(registry_root, "v1")


def test_tampered_dictionary_is_rejected(registry_root):
    (registry_root / "v1" / "dictionary.json").write_text("{}")
    with pytest.raises(ModelError):
        load_bundle(registry_root, "v1")


def test_missing_version_is_a_model_error(registry_root):
    with pytest.raises(ModelError, match="no published version"):
        load_bundle(registry_root, "v9")


def test_activate_marks_bundle_live_and_warm(registry_root):
    registry = ModelRegistry(registry_root)
    assert registry.versions() == ["v1"]
    bundle = registry.activate_latest()
    assert bundle.warmed
    assert registry.active is bundle
    assert registry.previous is None
    assert registry.last_warmup_seconds is not None


def test_lease_yields_none_for_empty_rung(registry_root):
    registry = ModelRegistry(registry_root)
    registry.activate("v1")
    with registry.lease(1) as bundle:
        assert bundle is None


def test_hot_swap_keeps_previous_as_ladder_rung(
    registry_root, serve_model
):
    tagger, dictionary = serve_model
    publish_bundle(registry_root, "v2", tagger, dictionary, "ja")
    registry = ModelRegistry(registry_root)
    registry.activate("v1")
    registry.activate("v2")
    assert registry.active.version == "v2"
    assert registry.previous.version == "v1"
    with registry.lease(1) as bundle:
        assert bundle.version == "v1"


def test_hot_swap_drains_in_flight_leases(registry_root, serve_model):
    """A swap waits for the outgoing version's in-flight requests.

    Satellite: registry hot-swap during in-flight requests — the old
    version drains before activate() returns, and the in-flight lease
    observes one consistent bundle throughout.
    """
    tagger, dictionary = serve_model
    publish_bundle(registry_root, "v2", tagger, dictionary, "ja")
    registry = ModelRegistry(registry_root, drain_timeout_seconds=10.0)
    registry.activate("v1")

    lease_entered = threading.Event()
    release_lease = threading.Event()
    observed = {}

    def in_flight_request():
        with registry.lease(0) as bundle:
            observed["before"] = bundle.version
            lease_entered.set()
            release_lease.wait(timeout=10)
            # Still the same bundle object: no half-swapped model.
            observed["after"] = bundle.version
            observed["tagger"] = bundle.tagger

    worker = threading.Thread(target=in_flight_request)
    worker.start()
    assert lease_entered.wait(timeout=10)

    swap_done = threading.Event()

    def swap():
        registry.activate("v2")
        swap_done.set()

    swapper = threading.Thread(target=swap)
    swapper.start()
    # The swap itself is immediate (new requests get v2) but activate()
    # must still be draining the old version while the lease is held.
    deadline = time.monotonic() + 5
    while registry.active is None or registry.active.version != "v2":
        assert time.monotonic() < deadline
        time.sleep(0.01)
    with registry.lease(0) as bundle:
        assert bundle.version == "v2"
    assert not swap_done.is_set()  # drain still waiting on the lease

    release_lease.set()
    worker.join(timeout=10)
    assert swap_done.wait(timeout=10)
    swapper.join(timeout=10)

    assert observed["before"] == "v1"
    assert observed["after"] == "v1"
    assert registry.clean_drains == 1
    assert registry.drain_timeouts == 0


def test_drain_timeout_is_counted_not_fatal(registry_root, serve_model):
    tagger, dictionary = serve_model
    publish_bundle(registry_root, "v2", tagger, dictionary, "ja")
    registry = ModelRegistry(registry_root, drain_timeout_seconds=0.05)
    old = registry.activate("v1")
    old.acquire()  # a lease that never releases in time
    try:
        registry.activate("v2")
    finally:
        old.release()
    assert registry.drain_timeouts == 1
    assert registry.active.version == "v2"


def test_reactivating_live_version_keeps_previous(
    registry_root, serve_model
):
    tagger, dictionary = serve_model
    publish_bundle(registry_root, "v2", tagger, dictionary, "ja")
    registry = ModelRegistry(registry_root)
    registry.activate("v1")
    registry.activate("v2")
    registry.activate("v2")  # refresh, not a swap
    assert registry.active.version == "v2"
    assert registry.previous.version == "v1"


def test_manifest_detects_missing_file(tmp_path, serve_model):
    tagger, dictionary = serve_model
    publish_bundle(tmp_path, "v1", tagger, dictionary, "ja")
    (tmp_path / "v1" / "dictionary.json").unlink()
    with pytest.raises(ModelError, match="missing"):
        verify_manifest(tmp_path / "v1")


def test_write_manifest_requires_model_files(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(ModelError):
        write_manifest(tmp_path / "empty")
