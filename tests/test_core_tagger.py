"""Tests for the tagger factory."""

import pytest

from repro.config import LstmConfig, PipelineConfig
from repro.core.tagger import make_tagger
from repro.errors import ConfigError
from repro.ml import CrfTagger, LstmTagger


def test_builds_crf_by_default():
    assert isinstance(make_tagger(PipelineConfig()), CrfTagger)


def test_builds_lstm():
    tagger = make_tagger(PipelineConfig(tagger="lstm"))
    assert isinstance(tagger, LstmTagger)


def test_lstm_seed_varies_by_iteration():
    config = PipelineConfig(tagger="lstm", lstm=LstmConfig(seed=100))
    first = make_tagger(config, iteration=1)
    second = make_tagger(config, iteration=2)
    assert first.config.seed == 101
    assert second.config.seed == 102
    # Other hyperparameters are preserved.
    assert first.config.epochs == config.lstm.epochs


def test_fresh_instance_per_call():
    config = PipelineConfig()
    assert make_tagger(config) is not make_tagger(config)


def test_unknown_backend_rejected_at_config_time():
    with pytest.raises(ConfigError):
        PipelineConfig(tagger="rules")
