"""Unit tests for structural pair validity."""

import pytest

from repro.corpus import get_schema
from repro.corpus.validity import PairValidator


@pytest.fixture(scope="module")
def vacuum_validator():
    return PairValidator((get_schema("vacuum_cleaner"),))


@pytest.fixture(scope="module")
def camera_validator():
    return PairValidator((get_schema("digital_cameras"),))


def test_categorical_membership(vacuum_validator):
    assert vacuum_validator.is_valid("taipu", "robotto")
    assert not vacuum_validator.is_valid("taipu", "not a type")


def test_alias_names_are_known(vacuum_validator):
    assert vacuum_validator.knows_attribute("omosa")
    assert vacuum_validator.is_valid("omosa", "2 kg")


def test_numeric_integer_and_decimal(vacuum_validator):
    assert vacuum_validator.is_valid("juryo", "3 kg")
    assert vacuum_validator.is_valid("juryo", "2 . 5 kg")
    assert not vacuum_validator.is_valid("juryo", "2 . 5 cm")
    assert not vacuum_validator.is_valid("juryo", "kg")


def test_numeric_thousands_separator(camera_validator):
    assert camera_validator.is_valid("yukogaso", "2 , 430 gaso")
    assert camera_validator.is_valid("yukogaso", "2430 gaso")


def test_numeric_does_not_range_check(vacuum_validator):
    # A human judging <weight, 100 kg> calls the *pair* valid.
    assert vacuum_validator.is_valid("juryo", "100 kg")


def test_composite_patterns(camera_validator):
    assert camera_validator.is_valid("shatta supido", "1 / 4000 byo")
    assert camera_validator.is_valid(
        "shatta supido", "1 / 4000 byo ~ 30 byo"
    )
    assert not camera_validator.is_valid("shatta supido", "aka")


def test_unknown_attribute_invalid(vacuum_validator):
    assert not vacuum_validator.knows_attribute("sonota")
    assert not vacuum_validator.is_valid("sonota", "―")


def test_german_decimal_form():
    validator = PairValidator((get_schema("mailbox"),))
    assert validator.is_valid("Gewicht", "2,5 kg")
    assert validator.is_valid("Gewicht", "3 kg")
    assert not validator.is_valid("Gewicht", "schwer")


def test_multiple_schemas_merge_checkers():
    validator = PairValidator(
        (get_schema("baby_carriers"), get_schema("baby_toys"))
    )
    # 'iro' exists in both schemas; either inventory accepts.
    assert validator.is_valid("iro", "aka")
    # carrier-only attribute still known.
    assert validator.knows_attribute("taiju seigen")
