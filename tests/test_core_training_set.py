"""Tests for training-set generation from the seed."""

from repro.core.preprocess import (
    build_seed,
    build_training_material,
    discover_candidates,
)
from repro.core.text import tokenize_pages
from repro.config import SeedConfig
from repro.types import ProductPage


def _page(product_id, body):
    return ProductPage(
        product_id, "cat", f"<html><body>{body}</body></html>", "ja"
    )


def _material(pages, query_log=None):
    from collections import Counter

    from repro.corpus.querylog import QueryLog

    log = query_log or QueryLog(Counter())
    candidates = discover_candidates(pages)
    seed = build_seed(
        pages, log,
        SeedConfig(min_attribute_pages=1, min_value_page_frequency=1),
        candidates=candidates,
    )
    return seed, build_training_material(
        tokenize_pages(pages), seed, candidates
    )


TABLE = "<table><tr><td>iro</td><td>aka</td></tr></table>"


def test_table_pages_are_labelled():
    pages = [
        _page("p1", TABLE + "<p>iro wa aka desu。</p>"),
        _page("p2", "<p>nothing here。</p>"),
    ]
    seed, material = _material(pages)
    assert [p.product_id for p in material.labeled_pages] == ["p1"]
    assert [p.product_id for p in material.unlabeled_pages] == ["p2"]
    labelled = {
        label
        for tagged in material.labeled
        for label in tagged.labels
    }
    assert "B-iro" in labelled


def test_text_triples_extracted_from_labelled_spans():
    pages = [_page("p1", TABLE + "<p>iro wa aka desu。</p>")]
    seed, material = _material(pages)
    assert any(
        triple.attribute == "iro" and triple.value == "aka"
        for triple in material.text_triples
    )


def test_all_o_sentences_kept_as_negatives():
    pages = [
        _page("p1", TABLE + "<p>kore wa bun desu。</p>")
    ]
    seed, material = _material(pages)
    all_o = [
        tagged
        for tagged in material.labeled
        if all(label == "O" for label in tagged.labels)
    ]
    assert all_o


def test_page_table_preference_disambiguates():
    # 'aka' belongs to two attributes whose wider value ranges keep
    # them from aggregating; each page's own table decides the label.
    iro_rows = "".join(
        f"<tr><td>iro</td><td>{value}</td></tr>"
        for value in ("aka", "ao", "shiro")
    )
    teema_rows = "".join(
        f"<tr><td>teema</td><td>{value}</td></tr>"
        for value in ("aka", "natsu", "fuyu")
    )
    pages = [
        _page(
            "p1",
            f"<table>{iro_rows}</table><p>aka desu。</p>",
        ),
        _page(
            "p2",
            f"<table>{teema_rows}</table><p>aka desu。</p>",
        ),
    ]
    seed, material = _material(pages)
    by_page = {}
    for tagged in material.labeled:
        for label in tagged.labels:
            if label != "O":
                by_page.setdefault(tagged.product_id, set()).add(label)
    assert by_page.get("p1") == {"B-iro"}
    assert by_page.get("p2") == {"B-teema"}


def test_multiword_value_labelled_with_continuation():
    pages = [
        _page(
            "p1",
            "<table><tr><td>juryo</td><td>2.5kg</td></tr></table>"
            "<p>juryo wa 2.5kg desu。</p>",
        )
    ]
    seed, material = _material(pages)
    labels = [
        label
        for tagged in material.labeled
        for label in tagged.labels
    ]
    assert "B-juryo" in labels
    assert "I-juryo" in labels
