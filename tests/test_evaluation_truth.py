"""Tests for truth-sample construction and canonicalization."""

from repro.evaluation import build_truth_sample, full_truth_sample
from repro.types import Triple


def test_build_truth_from_dataset(small_vacuum_dataset):
    truth = build_truth_sample(small_vacuum_dataset)
    assert truth.correct == small_vacuum_dataset.correct_triples
    assert truth.incorrect == small_vacuum_dataset.incorrect_triples
    assert truth.size == len(truth.correct) + len(truth.incorrect)


def test_correct_and_incorrect_disjoint(small_vacuum_dataset):
    truth = build_truth_sample(small_vacuum_dataset)
    assert not (truth.correct & truth.incorrect)


def test_canonicalize_maps_aliases(small_vacuum_dataset):
    truth = build_truth_sample(small_vacuum_dataset)
    triple = Triple("p1", "omosa", "2 kg")
    assert truth.canonicalize(triple) == Triple("p1", "juryo", "2 kg")


def test_canonicalize_leaves_unknown_names(small_vacuum_dataset):
    truth = build_truth_sample(small_vacuum_dataset)
    triple = Triple("p1", "sonota", "x")
    assert truth.canonicalize(triple) == triple


def test_canonicalize_all(small_vacuum_dataset):
    truth = build_truth_sample(small_vacuum_dataset)
    triples = {
        Triple("p1", "omosa", "2 kg"),
        Triple("p1", "juryo", "2 kg"),
    }
    assert truth.canonicalize_all(triples) == frozenset(
        {Triple("p1", "juryo", "2 kg")}
    )


def test_correct_keys(small_vacuum_dataset):
    truth = build_truth_sample(small_vacuum_dataset)
    keys = truth.correct_keys()
    sample = next(iter(truth.correct))
    assert (sample.product_id, sample.attribute) in keys


def test_full_truth_is_superset(small_vacuum_dataset):
    biased = build_truth_sample(small_vacuum_dataset)
    full = full_truth_sample(small_vacuum_dataset)
    assert biased.correct <= full.correct
    # Unstated assignments exist (text_rate/table_rate < 1).
    assert len(full.correct) > len(biased.correct)
