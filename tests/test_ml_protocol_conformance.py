"""Protocol conformance: every tagger backend behaves identically at
the interface level (the bootstrap loop depends on it).
"""

import random

import pytest

from repro.config import CrfConfig, LstmConfig
from repro.extensions import EnsembleTagger
from repro.ml import CrfTagger, LstmTagger
from repro.ml.base import SequenceTagger
from repro.nlp import get_locale
from repro.nlp.bio import is_valid_bio
from repro.types import Sentence, TaggedSentence


def _dataset(count=100):
    ja = get_locale("ja")
    rng = random.Random(5)
    colors = ["aka", "ao", "shiro"]
    data = []
    for index in range(count):
        color = rng.choice(colors)
        tokens = ja.tokens(f"iro wa {color} desu")
        data.append(
            TaggedSentence(
                Sentence(f"p{index}", 0, tokens),
                ("O", "O", "B-iro", "O"),
            )
        )
    return data


BACKENDS = [
    lambda: CrfTagger(CrfConfig(max_iterations=25)),
    lambda: LstmTagger(LstmConfig(epochs=1)),
    lambda: EnsembleTagger(
        crf_config=CrfConfig(max_iterations=25),
        lstm_config=LstmConfig(epochs=1),
    ),
]


@pytest.fixture(scope="module")
def data():
    return _dataset()


@pytest.mark.parametrize("factory", BACKENDS)
def test_satisfies_runtime_protocol(factory):
    assert isinstance(factory(), SequenceTagger)


@pytest.mark.parametrize("factory", BACKENDS)
def test_train_returns_self(factory, data):
    tagger = factory()
    assert tagger.train(data) is tagger


@pytest.mark.parametrize("factory", BACKENDS)
def test_output_alignment_and_validity(factory, data):
    tagger = factory().train(data)
    sentences = [tagged.sentence for tagged in data[:10]]
    predictions = tagger.tag(sentences)
    assert len(predictions) == len(sentences)
    for sentence, prediction in zip(sentences, predictions):
        assert prediction.sentence is sentence
        assert len(prediction.labels) == len(sentence)
        assert is_valid_bio(prediction.labels)


@pytest.mark.parametrize("factory", BACKENDS)
def test_labels_within_training_inventory(factory, data):
    tagger = factory().train(data)
    predictions = tagger.tag([tagged.sentence for tagged in data[:10]])
    training_labels = {
        label for tagged in data for label in tagged.labels
    }
    for prediction in predictions:
        assert set(prediction.labels) <= training_labels


@pytest.mark.parametrize("factory", BACKENDS)
def test_tagging_is_deterministic(factory, data):
    tagger = factory().train(data)
    sentences = [tagged.sentence for tagged in data[:10]]
    first = [prediction.labels for prediction in tagger.tag(sentences)]
    second = [prediction.labels for prediction in tagger.tag(sentences)]
    assert first == second
