"""Validation tests for every configuration dataclass."""

import pytest

from repro.config import (
    CrfConfig,
    LstmConfig,
    PipelineConfig,
    SeedConfig,
    SemanticConfig,
    VetoConfig,
)
from repro.errors import ConfigError


class TestSeedConfig:
    def test_defaults_are_valid(self):
        SeedConfig()

    @pytest.mark.parametrize("threshold", [-0.1, 1.5])
    def test_rejects_bad_threshold(self, threshold):
        with pytest.raises(ConfigError):
            SeedConfig(aggregation_threshold=threshold)

    def test_rejects_bad_damping(self):
        with pytest.raises(ConfigError):
            SeedConfig(aggregation_damping=2.0)

    def test_rejects_zero_page_frequency(self):
        with pytest.raises(ConfigError):
            SeedConfig(min_value_page_frequency=0)

    def test_rejects_zero_attribute_pages(self):
        with pytest.raises(ConfigError):
            SeedConfig(min_attribute_pages=0)

    def test_rejects_negative_diversification(self):
        with pytest.raises(ConfigError):
            SeedConfig(diversification_k=-1)

    def test_zero_diversification_allowed(self):
        config = SeedConfig(diversification_k=0, diversification_n=0)
        assert config.diversification_k == 0


class TestVetoConfig:
    def test_defaults_match_paper(self):
        config = VetoConfig()
        assert config.keep_top_share == 0.8
        assert config.max_value_chars == 30

    def test_rejects_zero_share(self):
        with pytest.raises(ConfigError):
            VetoConfig(keep_top_share=0.0)

    def test_full_share_allowed(self):
        VetoConfig(keep_top_share=1.0)

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigError):
            VetoConfig(max_value_chars=0)


class TestSemanticConfig:
    def test_zero_core_size_means_unrestricted(self):
        assert SemanticConfig(core_size=0).core_size == 0

    def test_rejects_negative_core(self):
        with pytest.raises(ConfigError):
            SemanticConfig(core_size=-1)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            SemanticConfig(accept_threshold=1.2)

    def test_rejects_tiny_embedding(self):
        with pytest.raises(ConfigError):
            SemanticConfig(embedding_dim=1)

    def test_rejects_zero_epochs(self):
        with pytest.raises(ConfigError):
            SemanticConfig(embedding_epochs=0)


class TestCrfConfig:
    def test_rejects_negative_window(self):
        with pytest.raises(ConfigError):
            CrfConfig(window=-1)

    def test_rejects_negative_regularisation(self):
        with pytest.raises(ConfigError):
            CrfConfig(l1=-0.1)
        with pytest.raises(ConfigError):
            CrfConfig(l2=-0.1)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigError):
            CrfConfig(max_iterations=0)

    def test_zero_window_is_valid(self):
        assert CrfConfig(window=0).window == 0


class TestLstmConfig:
    def test_rejects_zero_epochs(self):
        with pytest.raises(ConfigError):
            LstmConfig(epochs=0)

    def test_rejects_dropout_of_one(self):
        with pytest.raises(ConfigError):
            LstmConfig(dropout=1.0)

    def test_rejects_nonpositive_learning_rate(self):
        with pytest.raises(ConfigError):
            LstmConfig(learning_rate=0.0)

    @pytest.mark.parametrize(
        "field", ["char_dim", "char_hidden", "word_dim", "word_hidden"]
    )
    def test_rejects_zero_dims(self, field):
        with pytest.raises(ConfigError):
            LstmConfig(**{field: 0})


class TestPipelineConfig:
    def test_defaults_match_paper(self):
        config = PipelineConfig()
        assert config.iterations == 5
        assert config.tagger == "crf"
        assert config.enable_semantic_cleaning
        assert config.enable_syntactic_cleaning
        assert config.enable_diversification

    def test_rejects_unknown_tagger(self):
        with pytest.raises(ConfigError):
            PipelineConfig(tagger="transformer")

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigError):
            PipelineConfig(iterations=0)

    def test_without_cleaning_disables_both_stages(self):
        config = PipelineConfig().without_cleaning()
        assert not config.enable_semantic_cleaning
        assert not config.enable_syntactic_cleaning
        assert config.enable_diversification  # untouched

    def test_with_tagger_switches_backend(self):
        config = PipelineConfig().with_tagger("lstm")
        assert config.tagger == "lstm"
        assert config.iterations == PipelineConfig().iterations


class TestResourceLimits:
    """--memory-budget / --pool-workers validation (PipelineConfig and
    ServeConfig) plus the environment-fault FaultSpec kinds."""

    def test_defaults_are_unlimited(self):
        config = PipelineConfig()
        assert config.memory_budget_mb is None
        assert config.pool_workers is None

    @pytest.mark.parametrize("value", [0, -1, -128])
    def test_rejects_nonpositive_memory_budget(self, value):
        with pytest.raises(ConfigError, match="memory_budget_mb"):
            PipelineConfig(memory_budget_mb=value)

    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects_nonpositive_pool_workers(self, value):
        with pytest.raises(ConfigError, match="pool_workers"):
            PipelineConfig(pool_workers=value)

    def test_positive_limits_accepted(self):
        config = PipelineConfig(memory_budget_mb=512, pool_workers=2)
        assert config.memory_budget_mb == 512
        assert config.pool_workers == 2

    def test_serve_memory_budget_validated(self):
        from repro.config import ServeConfig

        assert ServeConfig().memory_budget_mb is None
        assert ServeConfig(memory_budget_mb=256).memory_budget_mb == 256
        with pytest.raises(ConfigError, match="memory_budget_mb"):
            ServeConfig(memory_budget_mb=0)


class TestEnvironmentFaultSpecs:
    """The four environment fault kinds validate their targets up
    front — a typo'd stage must fail at plan build, not silently
    never fire."""

    def _spec(self, **kwargs):
        from repro.runtime import FaultSpec

        return FaultSpec(**kwargs)

    @pytest.mark.parametrize(
        "stage", ["shard_prep", "shard_tag", "shard_prep:0003"]
    )
    def test_worker_kill_accepts_pool_stages(self, stage):
        spec = self._spec(stage=stage, kind="worker_kill")
        assert spec.kind == "worker_kill"

    @pytest.mark.parametrize(
        "stage", ["tagger_train", "storage", "shardprep"]
    )
    def test_worker_kill_rejects_other_stages(self, stage):
        with pytest.raises(ConfigError, match="worker_kill"):
            self._spec(stage=stage, kind="worker_kill")

    @pytest.mark.parametrize(
        "stage", ["storage", "prep_cache_write", "checkpoint_write"]
    )
    def test_disk_full_accepts_storage_ops(self, stage):
        assert self._spec(stage=stage, kind="disk_full").stage == stage

    def test_disk_full_rejects_pipeline_stages(self):
        with pytest.raises(ConfigError, match="storage ops"):
            self._spec(stage="tagger_train", kind="disk_full")

    def test_slow_disk_requires_positive_delay(self):
        with pytest.raises(ConfigError, match="delay_seconds"):
            self._spec(stage="storage", kind="slow_disk")
        spec = self._spec(
            stage="storage", kind="slow_disk", delay_seconds=0.01
        )
        assert spec.delay_seconds == 0.01

    def test_mem_pressure_requires_positive_bytes(self):
        with pytest.raises(ConfigError, match="pressure_bytes"):
            self._spec(stage="governor", kind="mem_pressure")
        with pytest.raises(ConfigError, match="pressure_bytes"):
            self._spec(
                stage="governor", kind="mem_pressure", pressure_bytes=-1
            )
        spec = self._spec(
            stage="governor", kind="mem_pressure", pressure_bytes=1024
        )
        assert spec.pressure_bytes == 1024
