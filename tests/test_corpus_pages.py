"""Ground-truth consistency tests for the page generator.

The whole evaluation rests on these invariants: every triple the
generator marks correct is genuinely extractable from the page (its
value tokens appear in the page's text or tables under the triple's
attribute), and correct/incorrect never overlap.
"""

import random

import pytest

from repro.corpus import get_schema
from repro.corpus.pages import PageGenerator
from repro.html import extract_dictionary_tables, extract_text_blocks
from repro.nlp import get_locale


def _generate(category, seed, count=12):
    schema = get_schema(category)
    generator = PageGenerator(schema, random.Random(seed))
    return schema, [
        generator.generate(f"{category}_{i}") for i in range(count)
    ]


@pytest.mark.parametrize(
    "category", ["vacuum_cleaner", "garden", "mailbox", "cosmetics"]
)
def test_correct_and_incorrect_never_overlap(category):
    _, pages = _generate(category, seed=3)
    for page in pages:
        assert not (page.correct_triples & page.incorrect_triples)


@pytest.mark.parametrize("category", ["vacuum_cleaner", "mailbox"])
def test_correct_triples_match_assignment(category):
    _, pages = _generate(category, seed=4)
    for page in pages:
        for triple in page.correct_triples:
            assert page.assignment.get(triple.attribute) == triple.value


@pytest.mark.parametrize("category", ["vacuum_cleaner", "garden"])
def test_correct_triples_are_stated_on_the_page(category):
    schema, pages = _generate(category, seed=5)
    nlp = get_locale(schema.locale)
    for page in pages:
        blocks = extract_text_blocks(page.page.html, skip_tables=False)
        page_tokens = []
        for block in blocks:
            page_tokens.extend(nlp.tokenizer.tokenize(block))
        joined = " ".join(page_tokens)
        for triple in page.correct_triples:
            assert triple.value in joined, (
                page.page.product_id, triple
            )


@pytest.mark.parametrize("category", ["vacuum_cleaner", "garden"])
def test_incorrect_triples_disagree_with_assignment(category):
    _, pages = _generate(category, seed=6)
    for page in pages:
        for triple in page.incorrect_triples:
            assigned = page.assignment.get(triple.attribute)
            assert assigned != triple.value


def test_product_ids_propagate():
    _, pages = _generate("tennis", seed=7, count=3)
    for page in pages:
        for triple in page.correct_triples | page.incorrect_triples:
            assert triple.product_id == page.page.product_id


def test_pages_have_titles():
    _, pages = _generate("tennis", seed=8, count=5)
    for page in pages:
        blocks = extract_text_blocks(page.page.html)
        assert blocks, "every page must have visible text"


def test_table_pages_have_dictionary_tables():
    schema, pages = _generate("ladies_bags", seed=9, count=40)
    with_tables = [
        page
        for page in pages
        if extract_dictionary_tables(page.page.html)
    ]
    # ladies_bags has the highest table coverage of all categories.
    assert with_tables


def test_locale_recorded_on_page():
    _, ja_pages = _generate("tennis", seed=10, count=2)
    _, de_pages = _generate("mailbox", seed=10, count=2)
    assert all(page.page.locale == "ja" for page in ja_pages)
    assert all(page.page.locale == "de" for page in de_pages)


def test_title_brand_matches_assignment_when_present():
    schema, pages = _generate("tennis", seed=11, count=40)
    for page in pages:
        brand = page.assignment.get("burando")
        title_block = extract_text_blocks(page.page.html)[0]
        for other_brand in (
            set(get_schema("tennis").attribute("burando").values.values)
            - ({brand} if brand else set())
        ):
            # No page advertises a brand it does not have (titles of
            # secondary products live in the description, not the title).
            assert not title_block.startswith(other_brand + " ")
