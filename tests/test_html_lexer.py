"""Unit tests for the HTML lexer."""

from repro.html import tokenize_html
from repro.html.lexer import HtmlToken


def lex(markup):
    return list(tokenize_html(markup))


def test_simple_element():
    tokens = lex("<p>hello</p>")
    assert [token.kind for token in tokens] == ["start", "text", "end"]
    assert tokens[0].value == "p"
    assert tokens[1].value == "hello"


def test_attributes_parsed_with_all_quote_styles():
    (token,) = lex('<a href="x" id=\'y\' data=z checked>')
    assert token.attrs == {
        "href": "x", "id": "y", "data": "z", "checked": "",
    }


def test_tag_names_lowercased():
    tokens = lex("<TABLE></TABLE>")
    assert tokens[0].value == "table"
    assert tokens[1].value == "table"


def test_void_tag_is_self_closing():
    (token,) = lex("<br>")
    assert token.self_closing


def test_explicit_self_closing():
    (token,) = lex("<span/>")
    assert token.self_closing


def test_comment_extracted():
    tokens = lex("a<!-- hidden -->b")
    assert [token.kind for token in tokens] == ["text", "comment", "text"]
    assert tokens[1].value == " hidden "


def test_unterminated_comment_consumes_rest():
    tokens = lex("a<!-- oops")
    assert tokens[-1].kind == "comment"


def test_bare_less_than_is_text():
    tokens = lex("weight < 5kg")
    assert all(token.kind == "text" for token in tokens)
    assert "".join(token.value for token in tokens) == "weight < 5kg"


def test_unterminated_tag_recovers():
    tokens = lex("<p class=x")
    assert tokens[0].kind == "start"
    assert tokens[0].value == "p"


def test_empty_input():
    assert lex("") == []


def test_token_is_frozen():
    token = HtmlToken("text", "x")
    assert token.kind == "text"
    assert token.attrs == {}
