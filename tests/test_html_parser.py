"""Unit tests for the lenient DOM parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.html import Element, Text, parse_html


def test_builds_nested_tree():
    root = parse_html("<div><p>a</p><p>b</p></div>")
    div = root.find("div")
    assert div is not None
    paragraphs = div.direct_children("p")
    assert [p.text_content() for p in paragraphs] == ["a", "b"]


def test_entities_decoded_in_text_nodes():
    root = parse_html("<p>a &amp; b</p>")
    assert root.text_content() == "a & b"


def test_stray_end_tag_is_dropped():
    root = parse_html("</div><p>x</p>")
    assert root.find("p") is not None
    assert root.find("div") is None


def test_unclosed_tags_auto_close_at_eof():
    root = parse_html("<div><p>x")
    assert root.find("p").text_content() == "x"


def test_end_tag_closes_intermediate_elements():
    # </div> closes the unclosed <span>.
    root = parse_html("<div><span>x</div><p>y</p>")
    div = root.find("div")
    assert div.find("span") is not None
    # <p> is a sibling of <div>, not nested in <span>.
    assert root.direct_children("p")


def test_self_nesting_tags_close_siblings():
    root = parse_html("<ul><li>one<li>two</ul>")
    items = root.find("ul").direct_children("li")
    assert [item.text_content() for item in items] == ["one", "two"]


def test_table_rows_implicitly_closed():
    root = parse_html(
        "<table><tr><td>a<td>b<tr><td>c<td>d</table>"
    )
    rows = root.find("table").find_all("tr")
    assert len(rows) == 2
    assert [len(row.direct_children("td")) for row in rows] == [2, 2]


def test_comments_are_ignored():
    root = parse_html("<p>a<!-- not content -->b</p>")
    assert root.find("p").text_content() == "ab"


def test_iter_is_preorder():
    root = parse_html("<a><b></b><c></c></a>")
    tags = [element.tag for element in root.iter()]
    assert tags == ["#root", "a", "b", "c"]


def test_find_returns_none_when_absent():
    assert parse_html("<p>x</p>").find("table") is None


def test_text_nodes_preserved_in_order():
    root = parse_html("x<b>y</b>z")
    kinds = [
        child.data if isinstance(child, Text) else child.tag
        for child in root.children
    ]
    assert kinds == ["x", "b", "z"]


@given(st.text(alphabet=st.characters(codec="utf-8"), max_size=300))
def test_parser_never_raises_on_arbitrary_input(markup):
    root = parse_html(markup)
    assert isinstance(root, Element)
    # Traversal also terminates and visits a finite set of nodes.
    assert sum(1 for _ in root.iter()) >= 1


# -- hard resource bounds ------------------------------------------------


def test_input_length_bound():
    from repro.errors import HtmlLimitError

    with pytest.raises(HtmlLimitError) as excinfo:
        parse_html("<p>" + "x" * 100 + "</p>", max_length=50)
    assert excinfo.value.limit == "input_chars"
    assert excinfo.value.maximum == 50
    # None disables the bound entirely.
    root = parse_html("<p>" + "x" * 100 + "</p>", max_length=None)
    assert root.find("p") is not None


def test_open_depth_bound():
    from repro.errors import HtmlLimitError

    deep = "<div>" * 60 + "x"
    with pytest.raises(HtmlLimitError) as excinfo:
        parse_html(deep, max_depth=50)
    assert excinfo.value.limit == "open_depth"
    assert excinfo.value.maximum == 50
    root = parse_html(deep, max_depth=None)
    assert sum(1 for _ in root.iter()) > 60


def test_limit_error_is_a_parse_error():
    from repro.errors import HtmlLimitError, HtmlParseError

    assert issubclass(HtmlLimitError, HtmlParseError)


def test_default_bounds_admit_real_pages():
    # The defaults are containment bounds, not correctness bounds: an
    # ordinary page parses identically with and without them.
    markup = "<table>" + "<tr><td>k</td><td>v</td></tr>" * 50 + "</table>"
    bounded = parse_html(markup)
    unbounded = parse_html(markup, max_length=None, max_depth=None)
    assert len(bounded.find("table").find_all("tr")) == 50
    assert len(unbounded.find("table").find_all("tr")) == 50
