"""Chaos suite: the full pipeline under deterministic fault plans.

Every test asserts one of the two acceptable outcomes of a fault:

* **full recovery** — the retry path absorbs the fault and the output
  is bit-identical to a fault-free run; or
* **clean structured degradation** — the run (or sweep) completes with
  per-stage fault/retry/skip counters on the trace and
  ``PipelineResult.resilience_counters()``, or the job is written off
  as a structured :class:`JobFailure` — never a crashed sweep, never a
  silent wrong answer.

Run standalone via ``make chaos``. The ``watchdog`` fixture kills any
test that wedges instead of failing.
"""

import time

import pytest

from repro import PAEPipeline, PipelineConfig
from repro.corpus import Marketplace
from repro.errors import ConfigError, FaultInjectionError
from repro.runtime import (
    CategoryRunner,
    FaultPlan,
    FaultSpec,
    RunnerJob,
    execute_job,
    retry_backoff,
)

pytestmark = pytest.mark.usefixtures("watchdog")

CONFIG = PipelineConfig(iterations=2)


@pytest.fixture(scope="module")
def vacuum():
    # vacuum_cleaner at this scale exercises every stage, including the
    # optional cleaning pair (tiny categories can finish an iteration
    # with zero extractions, which skips semantic cleaning legitimately).
    return Marketplace(seed=7).generate("vacuum_cleaner", 40)


@pytest.fixture(scope="module")
def fault_free(vacuum):
    return PAEPipeline(CONFIG).run(vacuum.product_pages, vacuum.query_log)


# -- full recovery -------------------------------------------------------


@pytest.mark.parametrize(
    "stage",
    ["tokenize", "seed_build", "tagger_train", "tagger_tag",
     "fold_dataset"],
)
def test_single_fault_recovered_bit_identically(vacuum, fault_free, stage):
    """One transient fault at any mandatory stage: the stage retry
    absorbs it and output equals the fault-free run exactly."""
    plan = FaultPlan([FaultSpec(stage=stage, times=1)], seed=3)
    result = PAEPipeline(CONFIG).run(
        vacuum.product_pages, vacuum.query_log, faults=plan
    )
    assert result.triples == fault_free.triples
    assert result.bootstrap == fault_free.bootstrap
    counters = result.resilience_counters()
    assert counters["faults"] == {stage: 1}
    assert counters["retries"] == {stage: 1}
    assert counters["skips"] == {}
    assert plan.total_injected == 1


def test_job_level_retry_recovers_from_exhausted_stage(vacuum, fault_free):
    """A fault that outlives the stage retry still recovers one level
    up: execute_job's second attempt runs against the exhausted plan."""
    plan = FaultPlan([FaultSpec(stage="tagger_train", times=2)])
    job = RunnerJob.from_dataset(
        "vacuum_cleaner", vacuum.product_pages, vacuum.query_log, CONFIG
    )
    job = RunnerJob(
        name=job.name,
        config=job.config,
        pages=job.pages,
        query_log=job.query_log,
        faults=plan,
    )
    outcome = execute_job(0, job, retries=1, backoff_base=0.01)
    assert outcome.ok
    assert outcome.attempts == 2
    assert outcome.result.triples == fault_free.triples


# -- clean structured degradation ---------------------------------------


def test_persistent_mandatory_fault_degrades_to_job_failure(vacuum):
    plan = FaultPlan([FaultSpec(stage="tagger_train", times=None)])
    job = RunnerJob(
        name="vacuum_cleaner",
        config=CONFIG,
        pages=vacuum.product_pages,
        query_log=vacuum.query_log,
        faults=plan,
    )
    outcome = execute_job(0, job, retries=1, backoff_base=0.01)
    assert not outcome.ok
    assert outcome.attempts == 2
    assert outcome.failure.error_type == "FaultInjectionError"
    assert "tagger_train" in outcome.failure.message


def test_persistent_optional_stage_fault_skips_cleaning(vacuum):
    """Cleaning stages degrade to a counted skip, not a dead run."""
    plan = FaultPlan([FaultSpec(stage="semantic_clean", times=None)])
    result = PAEPipeline(CONFIG).run(
        vacuum.product_pages, vacuum.query_log, faults=plan
    )
    assert len(result.triples) > 0
    counters = result.resilience_counters()
    assert counters["skips"] == {"semantic_clean": CONFIG.iterations}
    # Skipped cleaning shows up structurally too.
    assert all(
        record.semantic_stats is None
        for record in result.bootstrap.iterations
    )


def test_corrupted_pages_degrade_not_crash(vacuum):
    plan = FaultPlan(
        [FaultSpec(stage="corpus", kind="corrupt_pages",
                   corrupt_fraction=0.3)],
        seed=5,
    )
    result = PAEPipeline(CONFIG).run(
        vacuum.product_pages, vacuum.query_log, faults=plan
    )
    counters = result.resilience_counters()
    assert counters["pages_corrupted"] == round(
        0.3 * len(vacuum.product_pages)
    )
    # Mangled HTML never invents phantom products.
    ids = {page.product_id for page in vacuum.product_pages}
    assert {t.product_id for t in result.triples} <= ids


def test_corruption_is_deterministic(vacuum):
    def run(seed):
        plan = FaultPlan(
            [FaultSpec(stage="corpus", kind="corrupt_pages",
                       corrupt_fraction=0.2)],
            seed=seed,
        )
        return PAEPipeline(CONFIG).run(
            vacuum.product_pages, vacuum.query_log, faults=plan
        )

    assert run(5).bootstrap == run(5).bootstrap


def test_sweep_survives_mixed_fault_plans(vacuum):
    """A whole sweep under chaos: one healthy job, one recovering job,
    one doomed job — outcomes stay structured and ordered."""
    doomed = FaultPlan([FaultSpec(stage="tagger_train", times=None)])
    recovering = FaultPlan([FaultSpec(stage="tagger_tag", times=1)])
    jobs = [
        RunnerJob(name="healthy", config=CONFIG,
                  pages=vacuum.product_pages, query_log=vacuum.query_log),
        RunnerJob(name="recovering", config=CONFIG,
                  pages=vacuum.product_pages, query_log=vacuum.query_log,
                  faults=recovering),
        RunnerJob(name="doomed", config=CONFIG,
                  pages=vacuum.product_pages, query_log=vacuum.query_log,
                  faults=doomed),
    ]
    outcomes = CategoryRunner(
        workers=2, mode="thread", backoff_base=0.01
    ).run(jobs)
    assert [o.job_name for o in outcomes] == [
        "healthy", "recovering", "doomed",
    ]
    assert [o.ok for o in outcomes] == [True, True, False]
    assert outcomes[0].result.triples == outcomes[1].result.triples
    assert outcomes[2].failure.error_type == "FaultInjectionError"


# -- deadlines ----------------------------------------------------------


def test_delay_fault_with_deadline_becomes_timeout(vacuum):
    """A hung stage + job deadline = structured Timeout, live sweep."""
    hung = FaultPlan(
        [FaultSpec(stage="tokenize", kind="delay", delay_seconds=8.0,
                   times=None)]
    )
    jobs = [
        RunnerJob(name="hung", config=CONFIG,
                  pages=vacuum.product_pages, query_log=vacuum.query_log,
                  faults=hung),
        RunnerJob(name="healthy", config=CONFIG,
                  pages=vacuum.product_pages, query_log=vacuum.query_log),
    ]
    start = time.perf_counter()
    outcomes = CategoryRunner(
        workers=2, mode="thread", retries=0, job_timeout=2.5
    ).run(jobs)
    elapsed = time.perf_counter() - start
    assert [o.ok for o in outcomes] == [False, True]
    failure = outcomes[0].failure
    assert failure.error_type == "Timeout"
    assert "2.5" in failure.message
    # The sweep never joined the wedged worker.
    assert elapsed < 8.0


def test_in_worker_deadline_stops_retry_loop(vacuum):
    """The in-worker budget halts retries even when each attempt fails
    fast: no attempt starts past the deadline."""
    plan = FaultPlan([FaultSpec(stage="tokenize", times=None)])
    job = RunnerJob(name="vacuum_cleaner", config=CONFIG,
                    pages=vacuum.product_pages,
                    query_log=vacuum.query_log, faults=plan)
    outcome = execute_job(
        0, job, retries=50, timeout=0.15, backoff_base=1.0
    )
    assert not outcome.ok
    assert outcome.failure.error_type == "Timeout"
    assert outcome.attempts < 51
    assert "FaultInjectionError" in outcome.failure.message


# -- harness determinism ------------------------------------------------


def test_probabilistic_injection_is_seed_deterministic():
    def decisions(seed):
        plan = FaultPlan(
            [FaultSpec(stage="s", probability=0.5, times=None)],
            seed=seed,
        )
        fired = []
        for _ in range(64):
            try:
                plan.fire("s")
                fired.append(False)
            except FaultInjectionError:
                fired.append(True)
        return fired

    first = decisions(3)
    assert first == decisions(3)
    assert any(first) and not all(first)
    assert first != decisions(4)


def test_backoff_is_deterministic_and_exponential():
    delays = [retry_backoff("tennis", attempt) for attempt in (1, 2, 3)]
    assert delays == [
        retry_backoff("tennis", attempt) for attempt in (1, 2, 3)
    ]
    assert delays[0] < delays[1] < delays[2]
    # Jitter decorrelates distinct jobs.
    assert retry_backoff("garden", 1) != retry_backoff("tennis", 1)
    assert retry_backoff("tennis", 1, base=0.0) == 0.0


def test_fault_spec_validation():
    with pytest.raises(ConfigError):
        FaultSpec(stage="s", kind="meteor")
    with pytest.raises(ConfigError):
        FaultSpec(stage="s", probability=1.5)
    with pytest.raises(ConfigError):
        FaultSpec(stage="s", times=0)
    with pytest.raises(ConfigError):
        FaultSpec(stage="s", delay_seconds=-1.0)
    with pytest.raises(ConfigError):
        FaultSpec(stage="s", corrupt_fraction=2.0)


def test_iteration_scoped_fault_only_fires_there():
    plan = FaultPlan(
        [FaultSpec(stage="s", iteration=2, times=None)]
    )
    plan.fire("s", iteration=1)
    plan.fire("s", iteration=None)
    with pytest.raises(FaultInjectionError):
        plan.fire("s", iteration=2)
    assert plan.injected == {("s", "error"): 1}
