"""Tests for the locale page styles."""

import pytest

from repro.corpus.locales import get_style
from repro.errors import UnknownLocaleError


@pytest.fixture(scope="module")
def ja_style():
    return get_style("ja")


@pytest.fixture(scope="module")
def de_style():
    return get_style("de")


def test_unknown_style_raises():
    with pytest.raises(UnknownLocaleError):
        get_style("fr")


def test_statement_embeds_attr_and_value(ja_style, rng):
    for dialect in range(ja_style.dialect_count):
        sentence = ja_style.statement(rng, "juryo", "2.5kg", dialect)
        assert "juryo" in sentence
        assert "2.5kg" in sentence


def test_dialects_have_disjoint_templates(ja_style):
    for i, first in enumerate(ja_style.statement_dialects):
        for second in ja_style.statement_dialects[i + 1:]:
            assert not (set(first) & set(second))


def test_negation_embeds_both(ja_style, de_style, rng):
    for style in (ja_style, de_style):
        sentence = style.negation(rng, "iro", "aka")
        assert "iro" in sentence
        assert "aka" in sentence


def test_compact_lists_values_without_attr_names(ja_style, rng):
    sentence = ja_style.compact(rng, ["aka", "hana gata"], "uekibachi")
    assert "aka" in sentence
    assert "hana gata" in sentence
    assert "iro" not in sentence


def test_secondary_mentions_other_product(ja_style, rng):
    sentence = ja_style.secondary(rng, "iro", "aka", "OTHER-PRODUCT")
    assert "OTHER-PRODUCT" in sentence


def test_title_uses_given_brand(ja_style, rng):
    title = ja_style.title(rng, "sojiki", "XX-123", brand="Nikkon")
    assert title.startswith("Nikkon")
    assert "XX-123" in title


def test_title_without_brand_picks_from_pool(ja_style, rng):
    title = ja_style.title(rng, "sojiki", "XX-123")
    assert any(title.startswith(brand) for brand in ja_style.brands)


def test_filler_pool_nonempty(ja_style, de_style, rng):
    assert ja_style.filler(rng)
    assert de_style.filler(rng)


def test_junk_rows_have_two_fields(ja_style, de_style):
    for style in (ja_style, de_style):
        for name, value in style.junk_table_rows:
            assert name and value
