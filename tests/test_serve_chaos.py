"""Chaos acceptance for the serve daemon.

The contract under test: with slow models, corrupt payloads and
workers dying mid-request injected by a seeded
:class:`~repro.runtime.faults.FaultPlan`, **every** request receives a
structured response — served, degraded, shed, quarantined or timed
out — with no hung connections and no crashes; and the circuit
breaker demonstrably steps down the degradation ladder and recovers
once the faults stop.

Run directly via ``make serve-chaos``.
"""

import http.client
import json
import threading
import time

import pytest

from repro.config import ServeConfig
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.serve import (
    ERROR_STATUS,
    ExtractionService,
    ModelRegistry,
    publish_bundle,
    start_server,
)

pytestmark = pytest.mark.usefixtures("watchdog")

#: Statuses a chaos request may legitimately receive.
STRUCTURED_STATUSES = frozenset({200}) | frozenset(ERROR_STATUS.values())


@pytest.fixture
def registry(tmp_path, serve_model):
    tagger, dictionary = serve_model
    root = tmp_path / "registry"
    publish_bundle(root, "v1", tagger, dictionary, "ja")
    publish_bundle(root, "v2", tagger, dictionary, "ja")
    registry = ModelRegistry(root)
    registry.activate("v1")
    registry.activate("v2")  # v1 stays resident as the previous rung
    return registry


def _post(server, body: bytes, timeout: float = 20.0):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            "POST", "/extract", body,
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def test_concurrent_chaos_yields_only_structured_responses(
    tmp_path, registry
):
    """Mixed faults under concurrency: every request gets a structured
    answer, nothing hangs, the ledgers account for the damage."""
    plan = FaultPlan(
        [
            FaultSpec(stage="serve_tag", kind="worker_death", times=4),
            FaultSpec(
                stage="serve_payload", kind="corrupt_payload", times=3
            ),
            FaultSpec(
                stage="serve_tag", kind="delay",
                delay_seconds=0.05, times=5,
            ),
        ],
        seed=13,
    )
    service = ExtractionService(
        registry,
        ServeConfig(
            queue_capacity=32,  # shedding is covered deterministically
            deadline_seconds=5.0,  # in test_serve_server
            breaker_threshold=3,
            breaker_cooldown_seconds=0.5,
        ),
        faults=plan,
        quarantine_path=tmp_path / "chaos_quarantine.jsonl",
    )
    server, thread = start_server(service, "127.0.0.1", 0)
    try:
        bodies = []
        for index in range(40):
            if index % 10 == 7:  # sprinkle gate-tripping HTML inputs
                bodies.append(
                    json.dumps(
                        {
                            "product_id": f"dirty{index}",
                            "html": "<p>iro wa ao desu�</p>",
                        }
                    ).encode()
                )
            else:
                bodies.append(
                    json.dumps(
                        {
                            "product_id": f"p{index}",
                            "text": "iro wa aka desu soshite "
                            "juryo wa 3 kg desu",
                        }
                    ).encode()
                )

        results: list[tuple[int, dict]] = []
        errors: list[Exception] = []
        lock = threading.Lock()

        def client(chunk):
            for body in chunk:
                try:
                    result = _post(server, body)
                except Exception as error:  # a hang/crash fails the test
                    with lock:
                        errors.append(error)
                else:
                    with lock:
                        results.append(result)

        workers = [
            threading.Thread(target=client, args=(bodies[i::8],))
            for i in range(8)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert not worker.is_alive(), "client thread hung"

        assert not errors, f"non-structured outcomes: {errors}"
        assert len(results) == len(bodies)
        for status, payload in results:
            assert status in STRUCTURED_STATUSES, (status, payload)
            assert payload.get("status") in ("ok", "error")
            if payload["status"] == "error":
                assert payload["code"] in ERROR_STATUS

        stats = service.stats()
        by_code = {}
        for status, payload in results:
            key = (
                "ok"
                if payload["status"] == "ok"
                else payload["code"]
            )
            by_code[key] = by_code.get(key, 0) + 1
        # The injected damage is visible and accounted for. All 3
        # corrupt_payload faults became structured 400s; each dirty
        # HTML input was either quarantined or (if a payload fault
        # mangled it first) rejected at the protocol layer.
        assert plan.injected.get(("serve_payload", "corrupt_payload")) == 3
        assert by_code.get("bad_request", 0) == 3
        quarantined = by_code.get("quarantined", 0)
        assert 1 <= quarantined <= 4
        assert (
            by_code["ok"] + by_code["bad_request"] + quarantined
            == len(bodies)
        )
        assert stats["counters"]["served"] == by_code["ok"]
        assert stats["quarantine_appended"] == quarantined
        ledger = (
            (tmp_path / "chaos_quarantine.jsonl")
            .read_text().strip().splitlines()
        )
        assert len(ledger) == quarantined
        assert all(
            json.loads(line)["source"] == "serve" for line in ledger
        )
    finally:
        server.shutdown()
        thread.join(timeout=5)
        service.close()


def test_breaker_steps_down_ladder_and_recovers(tmp_path, registry):
    """Sustained worker death walks the ladder down rung by rung
    (full → previous → dictionary), then probes climb it back."""
    plan = FaultPlan(
        [FaultSpec(stage="serve_tag", kind="worker_death", times=24)],
        seed=3,
    )
    service = ExtractionService(
        registry,
        ServeConfig(
            breaker_threshold=2,
            breaker_cooldown_seconds=0.3,
            batch_max_wait_seconds=0.0,
        ),
        faults=plan,
    )
    body = json.dumps(
        {"product_id": "c", "text": "iro wa aka desu"}
    ).encode()
    try:
        degradations = []
        for _ in range(6):
            status, payload, _ = service.handle_extract(body)
            assert status == 200  # degraded, never failed
            degradations.append(payload["degradation"])
        # Early requests fell through both model rungs in-request
        # (worker death at full AND previous), landing on dictionary.
        assert degradations[0] == "dictionary"
        ladder = service.ladder.stats()
        assert ladder["breakers"]["full"]["state"] == "open"
        assert ladder["breakers"]["previous"]["state"] == "open"
        assert ladder["served_at_level"]["dictionary"] == 6
        # Dictionary answers still carry real content.
        assert {"attribute": "iro", "value": "aka"} in payload["triples"]

        # Faults exhausted + cooldown elapsed: probes recover to full.
        while plan.injected.get(("serve_tag", "worker_death"), 0) < 24:
            service.handle_extract(body)
        time.sleep(0.4)
        status, payload, _ = service.handle_extract(body)
        assert status == 200
        assert payload["degradation"] == "full"
        assert payload["served_by"] == "v2"
        assert service.ladder.current_level() == 0
        assert service.ladder.recoveries >= 1
    finally:
        service.close()


def test_previous_rung_actually_serves_when_only_full_trips(
    tmp_path, registry
):
    """A fault plan that only kills the *active* version's requests:
    the ladder steps exactly one rung down, to the previous version."""
    # Exactly 2 worker deaths: the first request consumes both at the
    # full rung (combined attempt + isolated retry), tripping its
    # 1-strike breaker, and falls through to the previous rung with
    # the plan exhausted — so the previous rung never sees a fault.
    plan = FaultPlan(
        [FaultSpec(stage="serve_tag", kind="worker_death", times=2)],
        seed=9,
    )
    service = ExtractionService(
        registry,
        ServeConfig(
            breaker_threshold=1,
            breaker_cooldown_seconds=30.0,  # full stays open
            batch_max_wait_seconds=0.0,
        ),
        faults=plan,
    )
    body = json.dumps(
        {"product_id": "c", "text": "iro wa kuro desu"}
    ).encode()
    try:
        status, payload, _ = service.handle_extract(body)
        assert status == 200
        assert payload["degradation"] == "previous"
        assert payload["fallbacks"][0]["error"] == "WorkerDeathError"
        status, payload, _ = service.handle_extract(body)
        assert status == 200
        assert payload["degradation"] == "previous"
        assert payload["served_by"] == "v1"
        ladder = service.ladder.stats()
        assert ladder["breakers"]["full"]["state"] == "open"
        assert ladder["breakers"]["previous"]["state"] == "closed"
    finally:
        service.close()
