"""Unit tests for the shared value types."""

import pytest

from repro.types import (
    AttributeValuePair,
    Dataset,
    Extraction,
    Sentence,
    TaggedSentence,
    Token,
    Triple,
    unique_triples,
)


def test_token_numeric_and_symbol_flags():
    assert Token("5", "NUM").is_numeric()
    assert not Token("kg", "UNIT").is_numeric()
    assert Token(".", "SYM").is_symbol()
    assert not Token("aka", "NN").is_symbol()


def test_triple_exposes_its_pair():
    triple = Triple("p1", "iro", "aka")
    assert triple.pair == AttributeValuePair("iro", "aka")


def test_triples_are_hashable_and_value_equal():
    assert Triple("p", "a", "v") == Triple("p", "a", "v")
    assert len({Triple("p", "a", "v"), Triple("p", "a", "v")}) == 1


def test_sentence_accessors(make_sentence):
    sentence = make_sentence("iro wa aka desu")
    assert sentence.texts() == ("iro", "wa", "aka", "desu")
    assert len(sentence.pos_tags()) == 4
    assert len(sentence) == 4
    assert [token.text for token in sentence] == list(sentence.texts())


def test_tagged_sentence_rejects_label_mismatch(make_sentence):
    sentence = make_sentence("iro wa aka desu")
    with pytest.raises(ValueError):
        TaggedSentence(sentence, ("O", "O"))


def test_tagged_sentence_with_labels(make_tagged):
    tagged = make_tagged("iro wa aka desu", "aka", "iro")
    relabelled = tagged.with_labels(["O"] * len(tagged))
    assert relabelled.labels == ("O",) * len(tagged)
    assert relabelled.sentence is tagged.sentence


def test_tagged_sentence_product_id(make_tagged):
    tagged = make_tagged("iro wa aka desu", "aka", "iro", product_id="px")
    assert tagged.product_id == "px"


def test_extraction_projects_to_triple():
    extraction = Extraction("p1", "juryo", "2 kg", 3, 4, 6)
    assert extraction.triple == Triple("p1", "juryo", "2 kg")
    assert extraction.token_count == 2


def test_unique_triples_deduplicates():
    extractions = [
        Extraction("p1", "iro", "aka", 0, 1, 2),
        Extraction("p1", "iro", "aka", 5, 0, 1),
        Extraction("p2", "iro", "aka", 0, 1, 2),
    ]
    assert unique_triples(extractions) == {
        Triple("p1", "iro", "aka"),
        Triple("p2", "iro", "aka"),
    }


def test_dataset_counts_labelled_tokens(make_tagged):
    tagged = make_tagged("juryo wa 2 kg desu", "2 kg", "juryo")
    dataset = Dataset(tagged=[tagged], attributes=("juryo",))
    assert len(dataset) == 1
    assert dataset.labelled_token_count() == 2
