"""Unit tests for the marketplace facade and datasets."""

import pytest

from repro.corpus import Marketplace, category_names, get_schema
from repro.corpus.categories import (
    CORE_JA_CATEGORIES,
    GERMAN_CATEGORIES,
    HETEROGENEOUS_UNIONS,
)
from repro.errors import SchemaError


def test_registry_matches_paper_inventory():
    names = category_names()
    # 18 Japanese + 3 German + 2 heterogeneous-study subcategories.
    assert len(names) == 23
    assert set(CORE_JA_CATEGORIES) <= set(names)
    assert set(GERMAN_CATEGORIES) <= set(names)


def test_generation_is_deterministic():
    first = Marketplace(seed=5).generate("tennis", 15)
    second = Marketplace(seed=5).generate("tennis", 15)
    assert [p.page.html for p in first.pages] == [
        p.page.html for p in second.pages
    ]
    assert first.correct_triples == second.correct_triples


def test_different_seeds_differ():
    first = Marketplace(seed=5).generate("tennis", 15)
    second = Marketplace(seed=6).generate("tennis", 15)
    assert [p.page.html for p in first.pages] != [
        p.page.html for p in second.pages
    ]


def test_rejects_nonpositive_size():
    with pytest.raises(SchemaError):
        Marketplace().generate("tennis", 0)


def test_unknown_category_raises():
    with pytest.raises(KeyError):
        Marketplace().generate("unknown_category", 5)


def test_product_ids_unique(small_vacuum_dataset):
    ids = [p.page.product_id for p in small_vacuum_dataset.pages]
    assert len(set(ids)) == len(ids)


def test_alias_map_covers_all_surface_names(small_vacuum_dataset):
    mapping = small_vacuum_dataset.alias_map
    for schema in small_vacuum_dataset.schemas:
        for attribute in schema.attributes:
            for name in attribute.all_names():
                assert mapping[name] == attribute.name


def test_union_mixes_subcategories():
    dataset = Marketplace(seed=3).generate("baby_goods", 12)
    assert len(dataset.schemas) == len(
        HETEROGENEOUS_UNIONS["baby_goods"]
    )
    assert len(dataset) == 12
    # Union attribute names cover every subschema.
    subschema_attrs = {
        attribute.name
        for member in HETEROGENEOUS_UNIONS["baby_goods"]
        for attribute in get_schema(member).attributes
    }
    assert set(dataset.attribute_names) == subschema_attrs


def test_query_log_contains_popular_values(small_vacuum_dataset):
    log = small_vacuum_dataset.query_log
    assert len(log) > 10
    # The most popular stated values should almost surely be present.
    from collections import Counter

    popularity = Counter(
        triple.value for triple in small_vacuum_dataset.correct_triples
    )
    top_values = [value for value, _ in popularity.most_common(3)]
    assert any(log.contains(value) for value in top_values)


def test_correct_triples_are_aggregated(small_vacuum_dataset):
    union = set()
    for page in small_vacuum_dataset.pages:
        union |= page.correct_triples
    assert small_vacuum_dataset.correct_triples == frozenset(union)


def test_pair_validator_accepts_stated_pairs(small_vacuum_dataset):
    validator = small_vacuum_dataset.pair_validator
    for triple in list(small_vacuum_dataset.correct_triples)[:50]:
        assert validator.is_valid(triple.attribute, triple.value)
