"""Satellite robustness tests around the serve daemon's shared layers.

Covers the pieces the daemon leans on from other subsystems:

* the ingest gate's parse budget degrading to a wall-clock soft check
  off the main thread (SIGALRM is main-thread-only);
* the on-disk quarantine ledger staying line-atomic under concurrent
  writers and stamping ``source="serve"``;
* ``retry_backoff`` jitter determinism under concurrent callers (the
  shed Retry-After contract).
"""

import json
import threading
import time

import pytest

from repro.config import IngestConfig
from repro.ingest import IngestGate, QuarantineEntry, QuarantineLog
from repro.runtime.jobs import retry_backoff
from repro.types import ProductPage

pytestmark = pytest.mark.usefixtures("watchdog")


# -- soft parse budget off the main thread -----------------------------


def _slow_parse(monkeypatch, seconds):
    import repro.ingest.gate as gate_module

    real_parse = gate_module.parse_token_stream

    def slow(tokens, **kwargs):
        time.sleep(seconds)
        return real_parse(tokens, **kwargs)

    monkeypatch.setattr(gate_module, "parse_token_stream", slow)


def test_parse_budget_degrades_to_soft_check_off_main_thread(
    monkeypatch,
):
    """Satellite: on a worker thread the gate must not crash trying to
    install SIGALRM — it times the parse and rejects post hoc."""
    _slow_parse(monkeypatch, 0.15)
    gate = IngestGate(
        IngestConfig(policy="drop", parse_budget_seconds=0.05)
    )
    page = ProductPage("slow1", "cat", "<p>ok</p>", "ja")
    outcome = {}

    def run():
        outcome["result"] = gate.process([page])

    worker = threading.Thread(target=run)
    worker.start()
    worker.join(timeout=10)
    assert not worker.is_alive()
    result = outcome["result"]
    # The page was rejected (after the fact) and the degradation was
    # counted, not silently swallowed and not a crash.
    assert result.pages == []
    assert result.quarantine.counts_by_check() == {"parse_seconds": 1}
    assert result.warnings == {"parse_budget_soft": 1}


def test_parse_budget_on_main_thread_does_not_count_soft(monkeypatch):
    _slow_parse(monkeypatch, 0.15)
    gate = IngestGate(
        IngestConfig(policy="drop", parse_budget_seconds=0.05)
    )
    result = gate.process([ProductPage("slow2", "cat", "<p>x</p>", "ja")])
    assert result.quarantine.counts_by_check() == {"parse_seconds": 1}
    # The hard (SIGALRM) budget fired: no soft-fallback warning.
    assert result.warnings == {}


def test_fast_parse_off_main_thread_passes_clean():
    gate = IngestGate(
        IngestConfig(policy="drop", parse_budget_seconds=2.0)
    )
    page = ProductPage("fast1", "cat", "<p>iro wa aka desu</p>", "ja")
    outcome = {}

    def run():
        outcome["result"] = gate.process([page])

    worker = threading.Thread(target=run)
    worker.start()
    worker.join(timeout=10)
    result = outcome["result"]
    assert len(result.pages) == 1
    assert result.warnings == {}


# -- concurrent quarantine ledger --------------------------------------


def test_quarantine_log_interleaves_whole_lines(tmp_path):
    """Satellite: many threads appending concurrently must never tear
    a line — every row parses and every entry survives."""
    path = tmp_path / "ledger.jsonl"
    log = QuarantineLog(path, source="serve")
    writers, per_writer = 8, 50

    def write(worker_id):
        for index in range(per_writer):
            log.append(
                QuarantineEntry(
                    page_id=f"w{worker_id}-p{index}",
                    check="mojibake",
                    error="PageQuarantinedError",
                    detail="x" * 120,  # long enough to tear if unsafe
                )
            )

    threads = [
        threading.Thread(target=write, args=(i,)) for i in range(writers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    log.close()

    lines = path.read_text().strip().splitlines()
    assert len(lines) == writers * per_writer
    ids = set()
    for line in lines:
        record = json.loads(line)  # would raise on a torn line
        assert record["source"] == "serve"
        ids.add(record["page_id"])
    assert len(ids) == writers * per_writer
    assert log.appended == writers * per_writer


def test_quarantine_log_roundtrips_through_load(tmp_path):
    path = tmp_path / "ledger.jsonl"
    with QuarantineLog(path, source="serve") as log:
        entry = log.append(
            QuarantineEntry(
                page_id="p1",
                check="page_bytes",
                error="page_bytes",
                detail="too big",
            )
        )
    assert entry.source == "serve"
    ledger = QuarantineLog.load(path)
    assert len(ledger) == 1
    assert ledger.entries[0] == entry


def test_quarantine_log_load_missing_file_is_empty(tmp_path):
    ledger = QuarantineLog.load(tmp_path / "absent.jsonl")
    assert len(ledger) == 0


# -- deterministic backoff under concurrency ---------------------------


def test_retry_backoff_identical_across_concurrent_callers():
    """Satellite: the shed Retry-After hint must be a pure function of
    (job_name, attempt) — concurrent callers observe identical values."""
    attempts = [1, 2, 3, 4, 5, 6]
    expected = {a: retry_backoff("serve-shed", a) for a in attempts}
    observed: list[tuple[int, float]] = []
    lock = threading.Lock()
    start = threading.Barrier(8)

    def hammer():
        start.wait()
        for _ in range(200):
            for attempt in attempts:
                value = retry_backoff("serve-shed", attempt)
                with lock:
                    observed.append((attempt, value))

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert len(observed) == 8 * 200 * len(attempts)
    for attempt, value in observed:
        assert value == expected[attempt]
    # And the schedule escalates: later attempts never back off less.
    values = [expected[a] for a in attempts]
    assert values == sorted(values)
