"""Tests for the hot-path perf layer: caching, interning, bucketing.

Every optimisation here must be *invisible* in the output — the core
assertions are equalities between the fast paths and the plain ones,
capped by a pipeline-level bit-identity check on two seeds.
"""

import numpy as np
import pytest

from repro import PAEPipeline, PipelineConfig
from repro.config import CrfConfig, SemanticConfig
from repro.corpus import Marketplace
from repro.errors import EmbeddingError
from repro.embeddings import Word2Vec
from repro.ml import CrfTagger, FeatureExtractor, FeatureIndexer
from repro.perf.bucketing import length_buckets
from repro.perf.cache import FeatureCache, FeatureInterner


# -- length bucketing ---------------------------------------------------------


def test_length_buckets_partition_every_index_once():
    lengths = [5, 1, 3, 3, 9, 2, 7, 1]
    buckets = length_buckets(lengths, batch_size=3)
    flat = [index for bucket in buckets for index in bucket]
    assert sorted(flat) == list(range(len(lengths)))
    assert all(len(bucket) <= 3 for bucket in buckets)


def test_length_buckets_sorted_and_stable():
    lengths = [4, 2, 4, 2, 4]
    flat = [
        index
        for bucket in length_buckets(lengths, batch_size=2)
        for index in bucket
    ]
    # Ordered by length; ties keep original order (stable sort).
    assert flat == [1, 3, 0, 2, 4]


def test_length_buckets_rejects_bad_batch_size():
    with pytest.raises(ValueError):
        length_buckets([1, 2], batch_size=0)


def test_length_buckets_empty():
    assert length_buckets([], batch_size=4) == []


# -- interner and cache -------------------------------------------------------


def test_interner_ids_are_stable_and_reversible():
    interner = FeatureInterner()
    a = interner.intern("w0=kg")
    b = interner.intern("p0=NUM")
    assert interner.intern("w0=kg") == a  # idempotent
    assert interner.token_of(a) == "w0=kg"
    assert interner.token_of(b) == "p0=NUM"
    assert len(interner) == 2
    assert "w0=kg" in interner
    assert "w0=g" not in interner


def test_cache_hits_on_repeated_content(make_sentence):
    cache = FeatureCache(window=2)
    first = cache.rows(make_sentence("juryo wa 2 kg desu"))
    again = cache.rows(make_sentence("juryo wa 2 kg desu"))
    other = cache.rows(make_sentence("aka desu"))
    assert again is first
    assert cache.hits == 1 and cache.misses == 2
    assert cache.stats()["entries"] == 2
    assert len(other) == 2  # positions


def test_cache_key_distinguishes_sentence_buckets(make_sentence):
    cache = FeatureCache(window=0)
    early = cache.rows(make_sentence("aka desu", index=0))
    late = cache.rows(make_sentence("aka desu", index=4))
    assert cache.misses == 2  # sent=N feature differs -> distinct keys
    assert early is not late
    # Past the bucket cap the key collapses -> a hit.
    cache.rows(make_sentence("aka desu", index=42))
    cache.rows(make_sentence("aka desu", index=99))
    assert cache.hits == 1


def test_cached_rows_match_string_extraction(make_sentence):
    cache = FeatureCache(window=2)
    sentence = make_sentence("juryo wa 2 kg desu")
    interned = cache.rows(sentence)
    string_rows = FeatureExtractor(window=2).extract(sentence)
    rebuilt = []
    cursor = 0
    for size in interned.row_sizes:
        rebuilt.append(
            [
                cache.interner.token_of(feature_id)
                for feature_id in interned.ids[cursor:cursor + size]
            ]
        )
        cursor += size
    assert rebuilt == string_rows


# -- interned indexer paths ---------------------------------------------------


def test_interned_design_matrix_equals_string_path(make_sentence):
    sentences = [
        make_sentence("juryo wa 2 kg desu"),
        make_sentence("aka desu"),
        make_sentence("juryo wa 2 kg desu", index=1),
    ]
    extractor = FeatureExtractor(window=2)
    string_rows = [extractor.extract(s) for s in sentences]
    string_indexer = FeatureIndexer().fit(string_rows)
    string_matrix = string_indexer.design_matrix(string_rows)

    cache = FeatureCache(window=2)
    interned_rows = cache.rows_for(sentences)
    interned_indexer = FeatureIndexer().fit_interned(
        interned_rows, cache.interner
    )
    interned_matrix = interned_indexer.design_matrix_interned(
        interned_rows
    )

    assert len(interned_indexer) == len(string_indexer)
    assert interned_matrix.shape == string_matrix.shape
    assert (interned_matrix != string_matrix).nnz == 0


# -- bucketed tagging ---------------------------------------------------------


def _training_set(make_tagged):
    return [
        make_tagged("juryo wa 2 kg desu", "2 kg", "weight"),
        make_tagged("omosa wa 3 kg", "3 kg", "weight"),
        make_tagged("iro wa aka desu", "aka", "color"),
        make_tagged("iro wa ao", "ao", "color"),
    ]


def test_tag_batch_size_is_output_identical(make_tagged, make_sentence):
    dataset = _training_set(make_tagged)
    to_tag = [
        make_sentence("juryo wa 5 kg desu"),
        make_sentence("iro wa aka"),
        make_sentence("kore wa 7 kg no aka desu"),
        make_sentence(""),
        make_sentence("ao"),
    ]
    monolithic = CrfTagger(
        CrfConfig(tag_batch_size=10**9)
    ).train(dataset).tag(to_tag)
    tiny_batches = CrfTagger(
        CrfConfig(tag_batch_size=1)
    ).train(dataset).tag(to_tag)
    assert tiny_batches == monolithic


def test_string_path_tagger_is_output_identical(
    make_tagged, make_sentence
):
    """feature_cache=False (no caching at all) changes nothing."""
    dataset = _training_set(make_tagged)
    to_tag = [
        make_sentence("juryo wa 5 kg desu"),
        make_sentence("iro wa aka"),
    ]
    cached = CrfTagger(CrfConfig()).train(dataset).tag(to_tag)
    uncached = CrfTagger(
        CrfConfig(), feature_cache=False
    ).train(dataset).tag(to_tag)
    assert uncached == cached


def test_shared_cache_across_taggers_hits(make_tagged, make_sentence):
    dataset = _training_set(make_tagged)
    to_tag = [make_sentence("juryo wa 5 kg desu")]
    cache = FeatureCache(window=2)
    CrfTagger(CrfConfig(), feature_cache=cache).train(dataset).tag(to_tag)
    assert cache.misses > 0
    misses_after_first = cache.misses
    # A second tagger sharing the cache re-extracts nothing.
    CrfTagger(CrfConfig(), feature_cache=cache).train(dataset).tag(to_tag)
    assert cache.misses == misses_after_first
    assert cache.hits >= misses_after_first


# -- warm-start embeddings ----------------------------------------------------

_CORPUS = [
    ["aka", "kaban", "desu"],
    ["ao", "kaban", "desu"],
    ["aka", "kutsu", "2", "kg"],
    ["ao", "kutsu", "3", "kg"],
] * 4


def test_warm_start_is_deterministic():
    donor = Word2Vec(dim=8, seed=3).train(_CORPUS)
    one = Word2Vec(dim=8, seed=3).train(_CORPUS, warm_start_from=donor)
    two = Word2Vec(dim=8, seed=3).train(_CORPUS, warm_start_from=donor)
    for word in ("aka", "kaban", "kg"):
        np.testing.assert_array_equal(one.vector(word), two.vector(word))


def test_warm_start_rejects_dim_mismatch():
    donor = Word2Vec(dim=8, seed=3).train(_CORPUS)
    with pytest.raises(EmbeddingError):
        Word2Vec(dim=16, seed=3).train(_CORPUS, warm_start_from=donor)


def test_negative_table_reused_on_identical_counts():
    donor = Word2Vec(dim=8, seed=3).train(_CORPUS)
    warm = Word2Vec(dim=8, seed=3).train(_CORPUS, warm_start_from=donor)
    assert warm._negative_probabilities is donor._negative_probabilities
    # A different count profile must recompute.
    other = Word2Vec(dim=8, seed=3).train(
        _CORPUS + [["atarashii", "kotoba"]], warm_start_from=donor
    )
    assert other._negative_probabilities is not donor._negative_probabilities


# -- pipeline bit-identity ----------------------------------------------------


def _triples(result):
    return sorted(
        (t.product_id, t.attribute, t.value) for t in result.triples
    )


@pytest.mark.parametrize("seed", [1, 7])
def test_pipeline_bit_identical_with_and_without_fast_paths(seed):
    """Cache + bucketing change wall-clock, never the output."""
    dataset = Marketplace(seed=seed).generate("vacuum_cleaner", 30)
    fast = PAEPipeline(
        PipelineConfig(iterations=2, seed=seed)
    ).run(dataset.product_pages, dataset.query_log)
    plain = PAEPipeline(
        PipelineConfig(
            iterations=2,
            seed=seed,
            enable_feature_cache=False,
            crf=CrfConfig(tag_batch_size=10**9),
        )
    ).run(dataset.product_pages, dataset.query_log)
    assert _triples(fast) == _triples(plain)
    counters = fast.perf_counters()["feature_cache"]
    assert counters["hits"] > 0
    assert plain.perf_counters()["feature_cache"] == {
        "hits": 0,
        "misses": 0,
    }


def test_warm_start_embeddings_pipeline_is_deterministic():
    """Warm-start runs are reproducible run-to-run."""
    dataset = Marketplace(seed=7).generate("tennis", 30)
    config = PipelineConfig(
        iterations=2,
        semantic=SemanticConfig(warm_start_embeddings=True),
    )
    one = PAEPipeline(config).run(
        dataset.product_pages, dataset.query_log
    )
    two = PAEPipeline(config).run(
        dataset.product_pages, dataset.query_log
    )
    assert _triples(one) == _triples(two)
