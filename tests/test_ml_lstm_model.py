"""Tests for the BiLSTM tagger."""

import random

import pytest

from repro.config import LstmConfig
from repro.errors import NotFittedError, TrainingError
from repro.ml import LstmTagger
from repro.nlp import get_locale
from repro.nlp.bio import is_valid_bio
from repro.types import Sentence, TaggedSentence


def _make_dataset(count=150, seed=0):
    ja = get_locale("ja")
    rng = random.Random(seed)
    colors = ["aka", "ao", "shiro", "kuro"]
    data = []
    for index in range(count):
        color = rng.choice(colors)
        tokens = ja.tokens(f"iro wa {color} desu")
        labels = ["O", "O", "B-iro", "O"]
        data.append(
            TaggedSentence(
                Sentence(f"p{index}", 0, tokens), tuple(labels)
            )
        )
    return data, ja


def test_training_on_empty_dataset_raises():
    with pytest.raises(TrainingError):
        LstmTagger().train([])


def test_tagging_before_training_raises(make_sentence):
    with pytest.raises(NotFittedError):
        LstmTagger().tag([make_sentence("x")])


def test_learns_simple_pattern():
    data, ja = _make_dataset()
    tagger = LstmTagger(LstmConfig(epochs=4)).train(data)
    predictions = tagger.tag([tagged.sentence for tagged in data[:30]])
    token_accuracy = sum(
        label == gold
        for prediction, tagged in zip(predictions, data[:30])
        for label, gold in zip(prediction.labels, tagged.labels)
    ) / sum(len(tagged) for tagged in data[:30])
    assert token_accuracy > 0.9


def test_output_is_valid_bio():
    data, ja = _make_dataset(count=80)
    tagger = LstmTagger(LstmConfig(epochs=2)).train(data)
    for prediction in tagger.tag(
        [tagged.sentence for tagged in data[:20]]
    ):
        assert is_valid_bio(prediction.labels)


def test_deterministic_given_seed():
    data, _ = _make_dataset(count=60)
    first = LstmTagger(LstmConfig(epochs=2, seed=9)).train(data)
    second = LstmTagger(LstmConfig(epochs=2, seed=9)).train(data)
    sentences = [tagged.sentence for tagged in data[:15]]
    assert [p.labels for p in first.tag(sentences)] == [
        p.labels for p in second.tag(sentences)
    ]


def test_empty_sentence_handled():
    data, _ = _make_dataset(count=40)
    tagger = LstmTagger(LstmConfig(epochs=1)).train(data)
    (prediction,) = tagger.tag([Sentence("p", 0, ())])
    assert prediction.labels == ()


def test_label_inventory():
    data, _ = _make_dataset(count=40)
    tagger = LstmTagger(LstmConfig(epochs=1)).train(data)
    assert set(tagger.labels) == {"O", "B-iro"}


def test_unseen_characters_do_not_crash():
    data, ja = _make_dataset(count=40)
    tagger = LstmTagger(LstmConfig(epochs=1)).train(data)
    sentence = Sentence("p", 0, ja.tokens("未知 の 単語 ÜÄ"))
    (prediction,) = tagger.tag([sentence])
    assert len(prediction.labels) == len(sentence)
