"""Tests for attribute-partition optimization (§VIII-D future work)."""

import pytest

from repro.extensions import optimize_partition
from repro.extensions.partition import PartitionScore, _normalize


def _fake_evaluator(objective_by_partition):
    """Evaluator stub scoring partitions from a lookup table."""

    def evaluate(partition):
        normalized = _normalize(partition)
        objective = objective_by_partition.get(normalized, 0.0)
        return PartitionScore(
            partition=normalized,
            objective=objective,
            mean_precision=objective,
            mean_coverage=objective,
        )

    return evaluate


def test_rejects_empty_attributes():
    with pytest.raises(ValueError):
        optimize_partition([], [], None, None, evaluator=lambda p: None)


def test_greedy_merges_toward_better_partition():
    # Global model (one block) is best; greedy must climb to it.
    scores = {
        ((("a",), ("b",), ("c",))): 0.2,
        ((("a", "b"), ("c",))): 0.5,
        ((("a", "c"), ("b",))): 0.3,
        ((("b", "c"), ("a",))): 0.1,
        ((("a", "b", "c"),)): 0.9,
    }
    result = optimize_partition(
        ["a", "b", "c"], [], None, None,
        evaluator=_fake_evaluator(scores),
    )
    assert result.blocks == (("a", "b", "c"),)
    assert result.best.objective == 0.9
    assert len(result.history) == 3  # singletons -> pair -> all


def test_greedy_stops_when_no_merge_helps():
    # Singletons are optimal.
    scores = {
        ((("a",), ("b",))): 0.8,
        ((("a", "b"),)): 0.3,
    }
    result = optimize_partition(
        ["a", "b"], [], None, None, evaluator=_fake_evaluator(scores)
    )
    assert result.blocks == (("a",), ("b",))
    assert len(result.history) == 1


def test_duplicate_attributes_deduplicated():
    scores = {((("a",), ("b",))): 0.5, ((("a", "b"),)): 0.4}
    result = optimize_partition(
        ["a", "b", "a"], [], None, None,
        evaluator=_fake_evaluator(scores),
    )
    assert result.blocks == (("a",), ("b",))


def test_end_to_end_on_tiny_category(small_vacuum_dataset):
    """Real evaluation on a pair of attributes (single greedy step)."""
    from repro import PipelineConfig
    from repro.evaluation import build_truth_sample

    truth = build_truth_sample(small_vacuum_dataset)
    result = optimize_partition(
        ["taipu", "shujin hoshiki"],
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
        truth,
        PipelineConfig(iterations=1),
    )
    # Either outcome is legitimate; the result must be a partition of
    # exactly the requested attributes.
    flattened = sorted(
        name for block in result.blocks for name in block
    )
    assert flattened == ["shujin hoshiki", "taipu"]
    assert 0.0 <= result.best.mean_precision <= 1.0
    assert 0.0 <= result.best.mean_coverage <= 1.0
