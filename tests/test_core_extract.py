"""Tests for extraction <-> tagged-sentence conversion."""

from repro.core.cleaning import extractions_from_tagged, rebuild_tagged
from repro.types import Extraction


def test_extractions_from_tagged(make_tagged):
    tagged = make_tagged("juryo wa 2 . 5 kg desu", "2 . 5 kg", "juryo")
    (extraction,) = extractions_from_tagged([tagged])
    assert extraction.attribute == "juryo"
    assert extraction.value == "2 . 5 kg"
    assert (extraction.start, extraction.end) == (2, 6)
    assert extraction.product_id == "p0"


def test_multiple_spans_per_sentence(make_sentence):
    from repro.types import TaggedSentence

    sentence = make_sentence("aka to ao desu")
    tagged = TaggedSentence(
        sentence, ("B-iro", "O", "B-iro", "O")
    )
    extractions = extractions_from_tagged([tagged])
    assert [e.value for e in extractions] == ["aka", "ao"]


def test_rebuild_keeps_only_surviving_spans(make_tagged):
    tagged = make_tagged("iro wa aka desu", "aka", "iro")
    extraction = extractions_from_tagged([tagged])[0]
    (rebuilt,) = rebuild_tagged([tagged], [extraction])
    assert rebuilt.labels == tagged.labels


def test_rebuild_drops_sentences_without_survivors(make_tagged):
    tagged = make_tagged("iro wa aka desu", "aka", "iro")
    rebuilt = rebuild_tagged([tagged], [])
    assert rebuilt == []


def test_rebuild_can_keep_all_o_sentences(make_tagged):
    tagged = make_tagged("iro wa aka desu", "aka", "iro")
    rebuilt = rebuild_tagged([tagged], [], drop_unlabelled=False)
    assert len(rebuilt) == 1
    assert all(label == "O" for label in rebuilt[0].labels)


def test_rebuild_matches_by_sentence_identity(make_tagged):
    first = make_tagged("iro wa aka desu", "aka", "iro", index=0)
    second = make_tagged("iro wa ao desu", "ao", "iro", index=1)
    extractions = extractions_from_tagged([first, second])
    kept = [e for e in extractions if e.value == "ao"]
    (rebuilt,) = rebuild_tagged([first, second], kept)
    assert rebuilt.sentence.index == 1
