"""Tests for corpus profiling."""

import pytest

from repro.corpus.statistics import profile_pages
from repro.types import ProductPage


def _page(product_id, body, locale="ja"):
    return ProductPage(
        product_id, "cat", f"<html><body>{body}</body></html>", locale
    )


TABLE = (
    "<table><tr><td>iro</td><td>aka</td></tr>"
    "<tr><td>juryo</td><td>2.5kg</td></tr></table>"
)


def test_profile_counts_tables_and_rows():
    pages = [
        _page("p1", TABLE + "<p>a。b。</p>"),
        _page("p2", "<p>no table here。</p>"),
    ]
    profile = profile_pages(pages)
    assert profile.page_count == 2
    assert profile.pages_with_tables == 1
    assert profile.table_rows == 2
    assert profile.table_coverage == 0.5


def test_profile_attribute_support_counts_pages():
    pages = [
        _page("p1", TABLE),
        _page("p2", TABLE),
    ]
    profile = profile_pages(pages)
    assert profile.attribute_support["iro"] == 2
    assert profile.attribute_support["juryo"] == 2


def test_profile_value_shapes():
    profile = profile_pages([_page("p1", TABLE)])
    assert profile.value_shapes.get("NN") == 1               # aka
    assert profile.value_shapes.get("NUM SYM NUM UNIT") == 1  # 2.5kg


def test_profile_text_statistics():
    profile = profile_pages(
        [_page("p1", "<p>hito futa mitsu。yon go。</p>")]
    )
    assert profile.sentences_per_page >= 2
    assert profile.tokens_per_page > 4


def test_warnings_on_tableless_corpus():
    pages = [_page(f"p{i}", "<p>text。</p>") for i in range(10)]
    warnings = profile_pages(pages).seed_viability_warnings()
    assert warnings
    assert any("dictionary tables" in warning for warning in warnings)


def test_no_warnings_on_healthy_synthetic_category(
    small_vacuum_dataset,
):
    profile = profile_pages(list(small_vacuum_dataset.product_pages))
    assert profile.seed_viability_warnings() == []
    assert 0.05 < profile.table_coverage < 0.9


def test_format_is_printable(small_vacuum_dataset):
    profile = profile_pages(
        list(small_vacuum_dataset.product_pages)[:20]
    )
    text = profile.format()
    assert "pages:" in text
    assert "value shapes" in text


def test_empty_collection():
    profile = profile_pages([])
    assert profile.page_count == 0
    assert profile.table_coverage == 0.0


def test_cli_profile_category(capsys):
    from repro.cli import main

    assert main(
        ["profile", "--category", "tennis", "--products", "30"]
    ) == 0
    out = capsys.readouterr().out
    assert "pages:" in out


def test_cli_profile_real_pages(tmp_path, capsys):
    import json

    from repro.cli import main

    records = [
        {"product_id": "r1", "html": f"<html><body>{TABLE}</body></html>"}
        for _ in range(3)
    ]
    path = tmp_path / "pages.jsonl"
    path.write_text(
        "\n".join(json.dumps(record) for record in records) + "\n"
    )
    assert main(["profile", "--pages", str(path)]) == 0
    out = capsys.readouterr().out
    assert "with dict tables" in out