"""Tests for dictionary-table candidate discovery."""

from repro.core.preprocess import discover_candidates
from repro.core.preprocess.candidate_discovery import pages_with_tables
from repro.types import ProductPage


def _page(product_id, body, locale="ja"):
    return ProductPage(
        product_id, "cat", f"<html><body>{body}</body></html>", locale
    )


def test_extracts_rows_from_dictionary_table():
    page = _page(
        "p1",
        "<table><tr><td>iro</td><td>aka</td></tr>"
        "<tr><td>juryo</td><td>2.5kg</td></tr></table>",
    )
    candidates = discover_candidates([page])
    assert {(c.attribute, c.value_key) for c in candidates} == {
        ("iro", "aka"),
        ("juryo", "2 . 5 kg"),
    }
    assert all(c.product_id == "p1" for c in candidates)


def test_value_tokens_split_from_key():
    page = _page(
        "p1", "<table><tr><td>juryo</td><td>2.5kg</td></tr></table>"
    )
    (candidate,) = discover_candidates([page])
    assert candidate.value_tokens == ("2", ".", "5", "kg")


def test_page_without_tables_yields_nothing():
    page = _page("p1", "<p>juryo wa 2kg desu。</p>")
    assert discover_candidates([page]) == []


def test_non_dictionary_tables_ignored():
    page = _page(
        "p1",
        "<table><tr><td>a</td><td>b</td><td>c</td></tr>"
        "<tr><td>d</td><td>e</td><td>f</td></tr>"
        "<tr><td>g</td><td>h</td><td>i</td></tr></table>",
    )
    assert discover_candidates([page]) == []


def test_duplicate_rows_within_page_kept_once():
    page = _page(
        "p1",
        "<table><tr><td>iro</td><td>aka</td></tr>"
        "<tr><td>iro</td><td>aka</td></tr></table>",
    )
    assert len(discover_candidates([page])) == 1


def test_same_row_on_two_pages_counts_twice():
    pages = [
        _page("p1", "<table><tr><td>iro</td><td>aka</td></tr></table>"),
        _page("p2", "<table><tr><td>iro</td><td>aka</td></tr></table>"),
    ]
    assert len(discover_candidates(pages)) == 2


def test_german_pages_use_german_tokenizer():
    page = _page(
        "p1",
        "<table><tr><td>Gewicht</td><td>2,5 kg</td></tr></table>",
        locale="de",
    )
    (candidate,) = discover_candidates([page])
    assert candidate.value_key == "2,5 kg"


def test_pages_with_tables_helper():
    pages = [
        _page("p1", "<table><tr><td>iro</td><td>aka</td></tr></table>"),
        _page("p2", "<p>no table</p>"),
    ]
    assert pages_with_tables(discover_candidates(pages)) == {"p1"}


def test_multiword_attribute_names_normalized():
    page = _page(
        "p1",
        "<table><tr><td>shatta  supido</td><td>1/4000 byo</td></tr>"
        "</table>",
    )
    (candidate,) = discover_candidates([page])
    assert candidate.attribute == "shatta supido"
