"""Tests for offset-preserving tokenization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp import get_locale


def test_offsets_point_at_surfaces(ja):
    text = "juryo wa 2.5kg desu"
    for token, start, end in ja.tokenizer.tokenize_with_offsets(text):
        assert text[start:end] == token


def test_offsets_agree_with_plain_tokenize(ja, de):
    text = "Gewicht 1,5 kg — 重量 2.5kg"
    for bundle in (ja, de):
        plain = bundle.tokenizer.tokenize(text)
        with_offsets = [
            token
            for token, _, _ in bundle.tokenizer.tokenize_with_offsets(text)
        ]
        assert plain == with_offsets


def test_offsets_are_monotone(ja):
    spans = ja.tokenizer.tokenize_with_offsets("a b 1.5 kg c")
    previous_end = 0
    for _, start, end in spans:
        assert start >= previous_end
        assert end > start
        previous_end = end


@given(st.text(max_size=120))
@settings(max_examples=80)
def test_offsets_substring_property(text):
    for locale in ("ja", "de"):
        tokenizer = get_locale(locale).tokenizer
        for token, start, end in tokenizer.tokenize_with_offsets(text):
            assert text[start:end] == token


def test_empty_text(ja):
    assert ja.tokenizer.tokenize_with_offsets("") == []


def test_ja_decimal_split_offsets(ja):
    """Paper footnote 3: ja lexes ``1.5`` as three tokens — and the
    offsets must cover each character exactly."""
    assert ja.tokenizer.tokenize_with_offsets("1.5") == [
        ("1", 0, 1),
        (".", 1, 2),
        ("5", 2, 3),
    ]


def test_de_decimal_stays_one_token_with_span(de):
    assert de.tokenizer.tokenize_with_offsets("1,5 kg") == [
        ("1,5", 0, 3),
        ("kg", 4, 6),
    ]


def test_register_locale_roundtrip():
    """A registered custom bundle is retrievable, listed, and offset-
    tokenizes through the same plumbing as the built-ins."""
    import re

    from repro.nlp import available_locales, register_locale
    from repro.nlp.pos import PosTagger
    from repro.nlp.tokenizer import _REGISTRY, LocaleNlp, Tokenizer

    bundle = LocaleNlp(
        locale="zz",
        tokenizer=Tokenizer(re.compile(r"[a-z]+|[0-9]+|\S"), "zz-test"),
        pos_tagger=PosTagger(
            units=frozenset({"kg"}),
            function_words=frozenset(),
            single_token_decimals=True,
        ),
        sentence_terminators=frozenset({"."}),
    )
    assert "zz" not in available_locales()
    register_locale(bundle)
    try:
        assert "zz" in available_locales()
        assert get_locale("zz") is bundle
        spans = bundle.tokenizer.tokenize_with_offsets("ab 12kg")
        assert spans == [("ab", 0, 2), ("12", 3, 5), ("kg", 5, 7)]
        tokens = get_locale("zz").tokens("ab 12 kg")
        assert [token.text for token in tokens] == ["ab", "12", "kg"]
    finally:
        # prep_digest keys on available_locales(); never leak the test
        # locale into other tests' cache keys.
        _REGISTRY.pop("zz", None)
    assert "zz" not in available_locales()


def test_tokens_memo_returns_shared_tuple(ja):
    first = ja.tokens("juryo wa 2.5 kg desu")
    second = ja.tokens("juryo wa 2.5 kg desu")
    assert first is second  # memoized, not recomputed
