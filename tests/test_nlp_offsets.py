"""Tests for offset-preserving tokenization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp import get_locale


def test_offsets_point_at_surfaces(ja):
    text = "juryo wa 2.5kg desu"
    for token, start, end in ja.tokenizer.tokenize_with_offsets(text):
        assert text[start:end] == token


def test_offsets_agree_with_plain_tokenize(ja, de):
    text = "Gewicht 1,5 kg — 重量 2.5kg"
    for bundle in (ja, de):
        plain = bundle.tokenizer.tokenize(text)
        with_offsets = [
            token
            for token, _, _ in bundle.tokenizer.tokenize_with_offsets(text)
        ]
        assert plain == with_offsets


def test_offsets_are_monotone(ja):
    spans = ja.tokenizer.tokenize_with_offsets("a b 1.5 kg c")
    previous_end = 0
    for _, start, end in spans:
        assert start >= previous_end
        assert end > start
        previous_end = end


@given(st.text(max_size=120))
@settings(max_examples=80)
def test_offsets_substring_property(text):
    for locale in ("ja", "de"):
        tokenizer = get_locale(locale).tokenizer
        for token, start, end in tokenizer.tokenize_with_offsets(text):
            assert text[start:end] == token


def test_empty_text(ja):
    assert ja.tokenizer.tokenize_with_offsets("") == []
