"""Tests for the assembled Seed object and build_seed chain."""

import pytest

from repro.config import SeedConfig
from repro.core.preprocess import build_seed, discover_candidates
from repro.types import AttributeValuePair, ProductPage


def _page(product_id, rows, extra=""):
    table = "".join(
        f"<tr><td>{name}</td><td>{value}</td></tr>"
        for name, value in rows
    )
    return ProductPage(
        product_id, "cat",
        f"<html><body><table>{table}</table>{extra}</body></html>",
        "ja",
    )


@pytest.fixture
def pages():
    rows = [("iro", "aka"), ("juryo", "2kg")]
    return [
        _page(f"p{index}", rows + ([("juryo", "2.5kg")] if index == 0 else []))
        for index in range(4)
    ]


@pytest.fixture
def config():
    return SeedConfig(min_attribute_pages=1, min_value_page_frequency=2)


@pytest.fixture
def empty_log():
    from collections import Counter

    from repro.corpus.querylog import QueryLog

    return QueryLog(Counter())


def test_seed_contains_frequent_pairs(pages, config, empty_log):
    seed = build_seed(pages, empty_log, config)
    assert AttributeValuePair("iro", "aka") in seed
    assert AttributeValuePair("juryo", "2 kg") in seed
    assert seed.attributes == ("iro", "juryo")


def test_value_keys_accessor(pages, config, empty_log):
    seed = build_seed(pages, empty_log, config)
    assert "aka" in seed.value_keys("iro")
    assert seed.value_keys("ghost") == frozenset()


def test_diversification_restores_rare_shape(pages, config, empty_log):
    # "2 . 5 kg" occurs on one page only (below min frequency) but its
    # decimal shape is among the top PoS sequences.
    with_div = build_seed(
        pages, empty_log, config, enable_diversification=True
    )
    without_div = build_seed(
        pages, empty_log, config, enable_diversification=False
    )
    assert AttributeValuePair("juryo", "2 . 5 kg") in with_div
    assert AttributeValuePair("juryo", "2 . 5 kg") not in without_div


def test_table_triples_projected_through_seed(pages, config, empty_log):
    seed = build_seed(pages, empty_log, config)
    products = {triple.product_id for triple in seed.table_triples}
    assert products == {"p0", "p1", "p2", "p3"}
    assert all(
        triple.value in seed.value_keys(triple.attribute)
        for triple in seed.table_triples
    )


def test_stats_fields(pages, config, empty_log):
    seed = build_seed(pages, empty_log, config)
    assert seed.raw_candidate_count == sum(
        1 for _ in discover_candidates(pages)
    )
    assert seed.cleaned_value_count <= len(seed.pairs())


def test_precomputed_candidates_shortcut(pages, config, empty_log):
    candidates = discover_candidates(pages)
    direct = build_seed(pages, empty_log, config)
    via_candidates = build_seed(
        pages, empty_log, config, candidates=candidates
    )
    assert direct.pairs() == via_candidates.pairs()
