"""Fuzz the ingest path with seeded byte-mutants of real pages.

Every mutant must either pass the gate, be quarantined, or raise one of
the *typed* containment errors — never an arbitrary exception and never
a hang (the watchdog fixture converts a hang into a hard failure).
"""

import random
import time

import pytest

from repro.config import IngestConfig
from repro.corpus import Marketplace
from repro.errors import HtmlParseError, PageQuarantinedError
from repro.html import extract_dictionary_tables, parse_html
from repro.ingest import IngestGate
from repro.types import ProductPage

pytestmark = pytest.mark.usefixtures("watchdog")

#: HtmlLimitError subclasses HtmlParseError, so two types cover the
#: whole html layer; PageQuarantinedError covers the strict gate.
ALLOWED = (HtmlParseError, PageQuarantinedError)

N_MUTANTS = 200

_MUTATIONS = ("delete", "insert", "smash", "splice", "repeat")
_NASTY = "<>&;\"'\x00�="


def _seed_pages() -> list[str]:
    dataset = Marketplace(seed=13).generate("digital_cameras", 8)
    return [generated.page.html for generated in dataset.pages]


def _mutate(html: str, rng: random.Random) -> str:
    """Apply 1-4 random byte/string-level mutations."""
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice(_MUTATIONS)
        if not html:
            return "<" * rng.randint(1, 50)
        pos = rng.randrange(len(html))
        if kind == "delete":
            length = rng.randint(1, min(200, len(html) - pos))
            html = html[:pos] + html[pos + length:]
        elif kind == "insert":
            junk = "".join(
                rng.choice(_NASTY) for _ in range(rng.randint(1, 40))
            )
            html = html[:pos] + junk + html[pos:]
        elif kind == "smash":
            raw = bytearray(html.encode("utf-8"))
            for _ in range(rng.randint(1, 64)):
                raw[rng.randrange(len(raw))] = rng.randrange(256)
            html = raw.decode("utf-8", errors="replace")
        elif kind == "splice":
            other_pos = rng.randrange(len(html))
            lo, hi = sorted((pos, other_pos))
            html = html[:lo] + html[hi:] + html[lo:hi]
        elif kind == "repeat":
            chunk = html[pos : pos + rng.randint(1, 30)]
            html = html[:pos] + chunk * rng.randint(2, 20) + html[pos:]
    return html


def _mutants(count: int) -> list[tuple[int, str]]:
    pages = _seed_pages()
    out = []
    for index in range(count):
        rng = random.Random(1000 + index)
        out.append((index, _mutate(rng.choice(pages), rng)))
    return out


MUTANTS = _mutants(N_MUTANTS)


@pytest.mark.parametrize("policy", ["strict", "repair", "drop"])
def test_gate_contains_all_mutants(policy):
    """No mutant escapes the typed-exception contract, any policy."""
    gate = IngestGate(IngestConfig(policy=policy))
    for index, html in MUTANTS:
        page = ProductPage(f"fuzz-{index}", "digital_cameras", html, "ja")
        try:
            result = gate.process([page])
        except ALLOWED:
            assert policy == "strict"
            continue
        assert len(result.pages) + len(result.quarantine) == 1


def test_parser_contains_all_mutants():
    """parse_html + table extraction on raw mutants: typed errors only."""
    for _, html in MUTANTS:
        try:
            root = parse_html(html, max_depth=100)
        except ALLOWED:
            continue
        extract_dictionary_tables(root)


def test_gated_mutants_parse_within_budget():
    """Whatever the repair gate lets through must parse fast."""
    gate = IngestGate(IngestConfig(policy="repair"))
    pages = [
        ProductPage(f"fuzz-{index}", "digital_cameras", html, "ja")
        for index, html in MUTANTS
    ]
    result = gate.process(pages)
    assert result.pages, "gate rejected every mutant — fuzzer too hot"
    for page in result.pages:
        start = time.perf_counter()
        parse_html(page.html, max_depth=100)
        assert time.perf_counter() - start < 5.0


def test_hostile_specials_never_hang():
    """Handcrafted adversarial pages, beyond random mutation."""
    specials = [
        "<" * 10_000,
        "</" + "a" * 10_000,
        "<div " + "a=b " * 5_000 + ">",
        "&" * 10_000,
        "&#" * 5_000,
        "<table>" * 200,
        "<!--" + "x" * 10_000,
        "\x00" * 1_000 + "<p>x</p>",
        "<p>" + "�" * 1_000 + "</p>",
        "<![CDATA[" + "<div>" * 1_000,
    ]
    gate = IngestGate(IngestConfig(policy="drop"))
    for index, html in enumerate(specials):
        result = gate.process(
            [ProductPage(f"special-{index}", "digital_cameras", html, "ja")]
        )
        assert len(result.pages) + len(result.quarantine) == 1
