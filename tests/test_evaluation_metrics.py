"""Tests for the paper's metrics."""

import pytest

from repro.evaluation import (
    attribute_coverage,
    coverage,
    pair_precision,
    precision,
)
from repro.evaluation.metrics import triple_coverage, triples_per_product
from repro.evaluation.truth import TruthSample
from repro.types import AttributeValuePair, Triple


@pytest.fixture
def truth():
    return TruthSample(
        correct=frozenset(
            {
                Triple("p1", "iro", "aka"),
                Triple("p2", "iro", "ao"),
                Triple("p2", "juryo", "2 kg"),
            }
        ),
        incorrect=frozenset({Triple("p3", "iro", "shiro")}),
        alias_map={"iro": "iro", "karaa": "iro", "juryo": "juryo"},
    )


class TestPrecision:
    def test_all_correct(self, truth):
        breakdown = precision([Triple("p1", "iro", "aka")], truth)
        assert breakdown.correct == 1
        assert breakdown.precision == 1.0

    def test_incorrect_counts_against(self, truth):
        breakdown = precision(
            [Triple("p1", "iro", "aka"), Triple("p3", "iro", "shiro")],
            truth,
        )
        assert breakdown.incorrect == 1
        assert breakdown.precision == 0.5

    def test_maybe_incorrect_value_disagreement(self, truth):
        # p1 has iro=aka in truth; system says kuro.
        breakdown = precision([Triple("p1", "iro", "kuro")], truth)
        assert breakdown.maybe_incorrect == 1
        assert breakdown.precision == 0.0

    def test_spurious_counts_against(self, truth):
        breakdown = precision([Triple("p9", "iro", "aka")], truth)
        assert breakdown.spurious == 1
        assert breakdown.precision == 0.0

    def test_alias_canonicalized_before_matching(self, truth):
        breakdown = precision([Triple("p1", "karaa", "aka")], truth)
        assert breakdown.correct == 1

    def test_empty_system_output(self, truth):
        breakdown = precision([], truth)
        assert breakdown.precision == 0.0
        assert breakdown.judged == 0

    def test_duplicates_collapse(self, truth):
        breakdown = precision(
            [Triple("p1", "iro", "aka"), Triple("p1", "karaa", "aka")],
            truth,
        )
        assert breakdown.correct == 1
        assert breakdown.total == 1


class TestCoverage:
    def test_counts_distinct_products(self):
        triples = [
            Triple("p1", "iro", "aka"),
            Triple("p1", "juryo", "2 kg"),
            Triple("p2", "iro", "ao"),
        ]
        assert coverage(triples, 4) == 0.5

    def test_zero_products(self):
        assert coverage([], 0) == 0.0

    def test_triple_coverage(self, truth):
        found = [Triple("p1", "iro", "aka"), Triple("p9", "x", "y")]
        assert triple_coverage(found, truth) == pytest.approx(1 / 3)

    def test_attribute_coverage_uses_alias_map(self, truth):
        triples = [
            Triple("p1", "karaa", "aka"),
            Triple("p2", "iro", "ao"),
        ]
        by_attribute = attribute_coverage(
            triples, 4, truth.alias_map
        )
        assert by_attribute == {"iro": 0.5}

    def test_triples_per_product(self):
        triples = {
            Triple("p1", "iro", "aka"),
            Triple("p1", "juryo", "2 kg"),
        }
        assert triples_per_product(triples, 2) == 1.0


class TestPairPrecision:
    def test_structural_judgement(self, small_vacuum_dataset):
        validator = small_vacuum_dataset.pair_validator
        pairs = [
            AttributeValuePair("juryo", "2 kg"),       # valid
            AttributeValuePair("juryo", "aka"),        # wrong shape
            AttributeValuePair("sonota", "―"),         # unknown attr
            AttributeValuePair("omosa", "3 kg"),       # alias, valid
        ]
        score = pair_precision(
            pairs, validator, small_vacuum_dataset.alias_map
        )
        assert score == 0.5

    def test_empty_pairs(self, small_vacuum_dataset):
        assert pair_precision(
            [], small_vacuum_dataset.pair_validator
        ) == 0.0
