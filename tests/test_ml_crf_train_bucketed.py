"""Tests for the bucketed trainer rebuild.

Covers the three determinism-critical guarantees of the packed
E-step pipeline — objective/gradient bit-identity for any bucket
partition, trained-weight bit-identity across worker fan-out, and the
direct ``setulb`` driver matching ``scipy.optimize.minimize`` — plus
the degraded-line-search handling and the opt-in SGD mode.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import TrainingError
from repro.ml.crf import train as train_mod
from repro.ml.crf.train import (
    CrfProblem,
    _LBFGS_HISTORY,
    _Workspace,
    _minimize_lbfgs_direct,
    _objective,
    train_crf,
)

_UNBUCKETED = 10**9


def _problem_from_lengths(lengths, seed=0, labels=3, features=9):
    """A random CrfProblem with an exact, adversarial length mix."""
    rng = np.random.default_rng(seed)
    lengths = np.asarray(lengths, dtype=np.int64)
    rows = int(lengths.sum())
    indices = []
    indptr = [0]
    for _ in range(rows):
        indices.extend(rng.choice(features, size=2, replace=False))
        indptr.append(len(indices))
    design = sparse.csr_matrix(
        (np.ones(len(indices)), np.array(indices), np.array(indptr)),
        shape=(rows, features),
    )
    gold = rng.integers(0, labels, size=rows)
    return CrfProblem(design, gold, lengths, labels)


# Adversarial length mixes for the bucket partitioner: uniform
# minimal sentences, one long outlier among many shorts, and a
# dataset of a single sentence.
LENGTH_MIXES = {
    "all_length_one": [1] * 14,
    "long_outlier": [2, 3, 2, 2, 3, 2, 31, 2, 3, 2],
    "single_sentence": [7],
}


@pytest.mark.parametrize("mix", sorted(LENGTH_MIXES))
@pytest.mark.parametrize("batch_size", [8, 1])
def test_objective_bit_identical_across_buckets(mix, batch_size):
    problem = _problem_from_lengths(LENGTH_MIXES[mix], seed=2)
    n_params = (
        problem.design.shape[1] * problem.n_labels + problem.n_labels ** 2
    )
    weights = np.random.default_rng(7).normal(scale=0.4, size=n_params)
    value_mono, grad_mono = _objective(
        weights, _Workspace(problem, batch_size=_UNBUCKETED), 0.05, 0.05
    )
    grad_mono = grad_mono.copy()
    value, grad = _objective(
        weights, _Workspace(problem, batch_size=batch_size), 0.05, 0.05
    )
    assert value == value_mono
    assert np.array_equal(grad, grad_mono)


@pytest.mark.parametrize("mix", sorted(LENGTH_MIXES))
def test_trained_weights_bit_identical_across_buckets(mix):
    problem = _problem_from_lengths(LENGTH_MIXES[mix], seed=3)
    unary_mono, trans_mono = train_crf(
        problem, 0.05, 0.05, 25, batch_size=_UNBUCKETED
    )
    for kwargs in (
        {"batch_size": 4},
        {"batch_size": 4, "estep_workers": 2},
    ):
        unary, trans = train_crf(problem, 0.05, 0.05, 25, **kwargs)
        assert np.array_equal(unary, unary_mono), kwargs
        assert np.array_equal(trans, trans_mono), kwargs


def test_direct_lbfgs_driver_matches_scipy_minimize():
    from scipy import optimize

    problem = _problem_from_lengths([3, 5, 2, 4, 1, 5], seed=4)
    workspace = _Workspace(problem)
    start = np.zeros(workspace.n_params)
    direct = _minimize_lbfgs_direct(
        start, workspace, 0.05, 0.05, 30, _LBFGS_HISTORY
    )
    assert direct is not None
    reference = optimize.minimize(
        _objective,
        np.zeros(workspace.n_params),
        args=(workspace, 0.05, 0.05),
        method="L-BFGS-B",
        jac=True,
        options={"maxiter": 30, "maxcor": _LBFGS_HISTORY},
    )
    assert np.array_equal(direct.x, reference.x)
    assert direct.nfev == reference.nfev
    assert direct.nit == reference.nit


class _FakeResult:
    def __init__(self, message):
        self.success = False
        self.message = message
        self.x = np.arange(4.0)


def test_lnsrch_abort_degrades_to_warning(monkeypatch):
    problem = _problem_from_lengths([2, 3], seed=5, labels=1, features=3)
    monkeypatch.setattr(
        train_mod,
        "_minimize_lbfgs_direct",
        lambda *a, **k: _FakeResult("ABNORMAL_TERMINATION_IN_LNSRCH"),
    )
    diagnostics = {}
    unary, trans = train_crf(
        problem, 0.05, 0.05, 10, diagnostics=diagnostics
    )
    # Best-so-far weights are kept, and the abort is counted.
    assert np.array_equal(
        np.concatenate([unary.ravel(), trans.ravel()]), np.arange(4.0)
    )
    assert diagnostics == {"lbfgs_abnormal": 1}


def test_fatal_optimizer_failure_still_raises(monkeypatch):
    problem = _problem_from_lengths([2, 3], seed=5, labels=1, features=3)
    monkeypatch.setattr(
        train_mod,
        "_minimize_lbfgs_direct",
        lambda *a, **k: _FakeResult("ROUNDING ERRORS PREVENT PROGRESS"),
    )
    with pytest.raises(TrainingError):
        train_crf(problem, 0.05, 0.05, 10)


def test_iteration_cap_is_not_a_failure(monkeypatch):
    problem = _problem_from_lengths([2, 3], seed=5, labels=1, features=3)
    monkeypatch.setattr(
        train_mod,
        "_minimize_lbfgs_direct",
        lambda *a, **k: _FakeResult(
            "STOP: TOTAL NO. OF ITERATIONS REACHED LIMIT"
        ),
    )
    diagnostics = {}
    train_crf(problem, 0.05, 0.05, 10, diagnostics=diagnostics)
    assert diagnostics == {}


def test_sgd_reduces_nll():
    problem = _problem_from_lengths(
        [4, 3, 5, 2, 4, 3, 5, 4, 2, 3], seed=6
    )
    unary, trans = train_crf(
        problem, 0.01, 0.01, 30, trainer="sgd", sgd_batch_size=4
    )
    workspace = _Workspace(problem)
    trained = np.concatenate([unary.ravel(), trans.ravel()])
    nll_zero, _ = _objective(
        np.zeros(trained.size), workspace, 0.0, 0.0
    )
    nll_sgd, _ = _objective(trained, workspace, 0.0, 0.0)
    assert nll_sgd < nll_zero


def test_unknown_trainer_rejected():
    problem = _problem_from_lengths([2, 3], seed=7)
    with pytest.raises(TrainingError):
        train_crf(problem, 0.05, 0.05, 10, trainer="adam")
