"""Tests for dataset serialization."""

import json

import pytest

from repro.corpus import Marketplace
from repro.corpus.io import load_dataset, load_pages, save_dataset
from repro.errors import ReproError


@pytest.fixture(scope="module")
def dataset():
    return Marketplace(seed=17).generate("tennis", 25)


def test_round_trip_preserves_everything(dataset, tmp_path):
    save_dataset(dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")
    assert loaded.name == dataset.name
    assert loaded.locale == dataset.locale
    assert [p.page.html for p in loaded.pages] == [
        p.page.html for p in dataset.pages
    ]
    assert loaded.correct_triples == dataset.correct_triples
    assert loaded.incorrect_triples == dataset.incorrect_triples
    assert loaded.query_log.counts == dataset.query_log.counts
    assert [s.name for s in loaded.schemas] == [
        s.name for s in dataset.schemas
    ]


def test_loaded_dataset_supports_evaluation(dataset, tmp_path):
    from repro.evaluation import build_truth_sample

    save_dataset(dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")
    truth = build_truth_sample(loaded)
    assert truth.correct == dataset.correct_triples
    # Validators came back via the schema registry.
    sample = next(iter(loaded.correct_triples))
    assert loaded.pair_validator.is_valid(sample.attribute, sample.value)


def test_load_missing_directory(tmp_path):
    with pytest.raises(ReproError):
        load_dataset(tmp_path / "missing")


def test_load_rejects_unknown_version(dataset, tmp_path):
    save_dataset(dataset, tmp_path / "ds")
    meta_path = tmp_path / "ds" / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["format_version"] = 99
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(ReproError):
        load_dataset(tmp_path / "ds")


def test_load_pages_schema_free(dataset, tmp_path):
    save_dataset(dataset, tmp_path / "ds")
    pages, query_log = load_pages(tmp_path / "ds")
    assert len(pages) == len(dataset)
    assert query_log.counts == dataset.query_log.counts


def test_load_pages_from_bare_jsonl(tmp_path):
    records = [
        {"product_id": "r1", "html": "<p>x</p>"},
        {"product_id": "r2", "html": "<p>y</p>", "locale": "de"},
    ]
    path = tmp_path / "pages.jsonl"
    path.write_text(
        "\n".join(json.dumps(record) for record in records) + "\n"
    )
    pages, query_log = load_pages(path)
    assert [page.product_id for page in pages] == ["r1", "r2"]
    assert pages[0].locale == "ja"  # default
    assert pages[1].locale == "de"
    assert len(query_log) == 0


def test_loaded_pages_run_through_pipeline(dataset, tmp_path):
    from repro import PAEPipeline, PipelineConfig

    save_dataset(dataset, tmp_path / "ds")
    pages, query_log = load_pages(tmp_path / "ds")
    from repro.config import SeedConfig

    config = PipelineConfig(
        iterations=1,
        seed_config=SeedConfig(
            min_attribute_pages=1, min_value_page_frequency=1
        ),
    )
    result = PAEPipeline(config).run(pages, query_log)
    assert len(result.triples) > 0
