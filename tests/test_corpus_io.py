"""Tests for dataset serialization."""

import json

import pytest

from repro.corpus import Marketplace
from repro.corpus.io import load_dataset, load_pages, save_dataset
from repro.errors import ReproError


@pytest.fixture(scope="module")
def dataset():
    return Marketplace(seed=17).generate("tennis", 25)


def test_round_trip_preserves_everything(dataset, tmp_path):
    save_dataset(dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")
    assert loaded.name == dataset.name
    assert loaded.locale == dataset.locale
    assert [p.page.html for p in loaded.pages] == [
        p.page.html for p in dataset.pages
    ]
    assert loaded.correct_triples == dataset.correct_triples
    assert loaded.incorrect_triples == dataset.incorrect_triples
    assert loaded.query_log.counts == dataset.query_log.counts
    assert [s.name for s in loaded.schemas] == [
        s.name for s in dataset.schemas
    ]


def test_loaded_dataset_supports_evaluation(dataset, tmp_path):
    from repro.evaluation import build_truth_sample

    save_dataset(dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")
    truth = build_truth_sample(loaded)
    assert truth.correct == dataset.correct_triples
    # Validators came back via the schema registry.
    sample = next(iter(loaded.correct_triples))
    assert loaded.pair_validator.is_valid(sample.attribute, sample.value)


def test_load_missing_directory(tmp_path):
    with pytest.raises(ReproError):
        load_dataset(tmp_path / "missing")


def test_load_rejects_unknown_version(dataset, tmp_path):
    save_dataset(dataset, tmp_path / "ds")
    meta_path = tmp_path / "ds" / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["format_version"] = 99
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(ReproError):
        load_dataset(tmp_path / "ds")


def test_load_pages_schema_free(dataset, tmp_path):
    save_dataset(dataset, tmp_path / "ds")
    pages, query_log = load_pages(tmp_path / "ds")
    assert len(pages) == len(dataset)
    assert query_log.counts == dataset.query_log.counts


def test_load_pages_from_bare_jsonl(tmp_path):
    records = [
        {"product_id": "r1", "html": "<p>x</p>"},
        {"product_id": "r2", "html": "<p>y</p>", "locale": "de"},
    ]
    path = tmp_path / "pages.jsonl"
    path.write_text(
        "\n".join(json.dumps(record) for record in records) + "\n"
    )
    pages, query_log = load_pages(path)
    assert [page.product_id for page in pages] == ["r1", "r2"]
    assert pages[0].locale == "ja"  # default
    assert pages[1].locale == "de"
    assert len(query_log) == 0


def test_loaded_pages_run_through_pipeline(dataset, tmp_path):
    from repro import PAEPipeline, PipelineConfig

    save_dataset(dataset, tmp_path / "ds")
    pages, query_log = load_pages(tmp_path / "ds")
    from repro.config import SeedConfig

    config = PipelineConfig(
        iterations=1,
        seed_config=SeedConfig(
            min_attribute_pages=1, min_value_page_frequency=1
        ),
    )
    result = PAEPipeline(config).run(pages, query_log)
    assert len(result.triples) > 0


# -- malformed rows under the ingest-policy vocabulary -------------------


def _write_jsonl(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


@pytest.fixture()
def dirty_jsonl(tmp_path):
    path = tmp_path / "pages.jsonl"
    _write_jsonl(
        path,
        [
            json.dumps({"product_id": "ok1", "html": "<p>a</p>"}),
            '{"product_id": "broken",',  # truncated JSON
            json.dumps(["not", "an", "object"]),
            json.dumps({"html": "<p>no id</p>"}),  # missing key
            json.dumps({"product_id": 7, "html": "<p>x</p>"}),  # non-str
            json.dumps({"product_id": "ok2", "html": "<p>b</p>"}),
        ],
    )
    return path


def test_strict_raises_located_dataset_error(dirty_jsonl):
    from repro.errors import DatasetError

    with pytest.raises(DatasetError) as excinfo:
        load_pages(dirty_jsonl)
    assert excinfo.value.path == str(dirty_jsonl)
    assert excinfo.value.line == 2
    assert f"{dirty_jsonl}:2" in str(excinfo.value)


@pytest.mark.parametrize("policy", ["repair", "drop"])
def test_skip_policies_drop_bad_rows_into_quarantine(dirty_jsonl, policy):
    from repro.ingest import Quarantine

    ledger = Quarantine()
    pages, _ = load_pages(dirty_jsonl, policy=policy, quarantine=ledger)
    assert [page.product_id for page in pages] == ["ok1", "ok2"]
    assert len(ledger) == 4
    assert ledger.counts_by_check() == {"jsonl": 4}
    assert [entry.line for entry in ledger] == [2, 3, 4, 5]
    assert all(entry.source == str(dirty_jsonl) for entry in ledger)
    assert all(entry.error == "DatasetError" for entry in ledger)
    assert ledger.page_ids() == {
        "line-2", "line-3", "line-4", "line-5",
    }


def test_skip_policy_works_without_a_ledger(dirty_jsonl):
    pages, _ = load_pages(dirty_jsonl, policy="drop")
    assert len(pages) == 2


def test_load_dataset_honors_policy(dataset, tmp_path):
    from repro.errors import DatasetError
    from repro.ingest import Quarantine

    save_dataset(dataset, tmp_path / "ds")
    jsonl = tmp_path / "ds" / "pages.jsonl"
    jsonl.write_text(
        "not json at all\n" + jsonl.read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    with pytest.raises(DatasetError) as excinfo:
        load_dataset(tmp_path / "ds")
    assert excinfo.value.line == 1
    ledger = Quarantine()
    loaded = load_dataset(
        tmp_path / "ds", policy="drop", quarantine=ledger
    )
    assert len(loaded.pages) == len(dataset.pages)
    assert len(ledger) == 1


def test_unknown_policy_rejected(dirty_jsonl):
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        load_pages(dirty_jsonl, policy="lenient")


# -- the streaming row iterator -----------------------------------------


def test_iter_page_rows_is_lazy(tmp_path):
    from repro.corpus.io import iter_page_rows

    path = tmp_path / "pages.jsonl"
    rows = [
        {"product_id": f"p{number}", "html": "<p>x</p>"}
        for number in range(4)
    ]
    path.write_text(
        "".join(json.dumps(row) + "\n" for row in rows), encoding="utf-8"
    )
    iterator = iter_page_rows(path, ("product_id", "html"))
    first = next(iterator)
    assert first["product_id"] == "p0"
    # Nothing beyond the consumed prefix has been parsed yet; the rest
    # still arrives on demand.
    assert [row["product_id"] for row in iterator] == ["p1", "p2", "p3"]


def test_iter_page_rows_honours_policy(tmp_path):
    from repro.corpus.io import iter_page_rows
    from repro.errors import DatasetError
    from repro.ingest import Quarantine

    path = tmp_path / "pages.jsonl"
    path.write_text(
        json.dumps({"product_id": "a", "html": "<p/>"})
        + "\n{broken\n"
        + json.dumps({"product_id": "b", "html": "<p/>"})
        + "\n",
        encoding="utf-8",
    )
    with pytest.raises(DatasetError):
        list(iter_page_rows(path, ("product_id", "html")))
    ledger = Quarantine()
    kept = list(
        iter_page_rows(
            path, ("product_id", "html"), policy="drop", quarantine=ledger
        )
    )
    assert [row["product_id"] for row in kept] == ["a", "b"]
    assert len(ledger) == 1
