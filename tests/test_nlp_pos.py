"""Unit tests for the rule-based PoS tagger."""

import pytest

from repro.nlp.pos import PosTagger


@pytest.fixture
def tagger():
    return PosTagger(
        units={"kg", "cm"},
        function_words={"wa", "no"},
        single_token_decimals=False,
    )


@pytest.fixture
def de_tagger():
    return PosTagger(
        units={"kg"},
        function_words={"der"},
        single_token_decimals=True,
    )


def test_number(tagger):
    assert tagger.tag_one("42") == "NUM"


def test_unit_case_insensitive(tagger):
    assert tagger.tag_one("KG") == "UNIT"
    assert tagger.tag_one("kg") == "UNIT"


def test_function_word(tagger):
    assert tagger.tag_one("wa") == "FW"


def test_plain_word_is_noun(tagger):
    assert tagger.tag_one("kamera") == "NN"


def test_unicode_word_is_noun(tagger):
    assert tagger.tag_one("重量") == "NN"


def test_symbol(tagger):
    assert tagger.tag_one(";") == "SYM"
    assert tagger.tag_one("。") == "SYM"


def test_alphanumeric_model_code(tagger):
    assert tagger.tag_one("X100") == "AN"


def test_decimal_single_token_only_in_de(tagger, de_tagger):
    assert de_tagger.tag_one("1,5") == "NUM"
    assert de_tagger.tag_one("2.430") == "NUM"
    # The ja tokenizer never produces these, but the tagger must not
    # claim NUM for them either.
    assert tagger.tag_one("1,5") != "NUM"


def test_tag_sequence_matches_per_token(tagger):
    surfaces = ["juryo", "wa", "2", "kg"]
    assert tagger.tag(surfaces) == [
        tagger.tag_one(surface) for surface in surfaces
    ]


def test_symbol_cluster(tagger):
    assert tagger.tag_one("***") == "SYM"


def test_digit_symbol_mix(tagger):
    assert tagger.tag_one("1/2") == "SYM"
