"""Tests for the CRF feature template and indexer."""

import pytest

from repro.ml import FeatureExtractor, FeatureIndexer


def test_window_word_and_pos_features(make_sentence):
    sentence = make_sentence("juryo wa 2 kg desu")
    rows = FeatureExtractor(window=2).extract(sentence)
    middle = rows[2]  # the token "2"
    assert "w0=2" in middle
    assert "p0=NUM" in middle
    assert "w-1=wa" in middle
    assert "w+1=kg" in middle
    assert "p+1=UNIT" in middle
    assert "w-2=juryo" in middle
    assert "w+2=desu" in middle


def test_pos_concatenation_feature(make_sentence):
    sentence = make_sentence("juryo wa 2 kg desu")
    rows = FeatureExtractor(window=1).extract(sentence)
    assert "pcat=FW|NUM|UNIT" in rows[2]


def test_boundary_padding(make_sentence):
    sentence = make_sentence("aka desu")
    rows = FeatureExtractor(window=2).extract(sentence)
    first = rows[0]
    assert "w-1=<s>" in first
    assert "p-1=BOS" in first
    last = rows[-1]
    assert "w+1=</s>" in last
    assert "p+1=EOS" in last


def test_sentence_number_feature(ja):
    from repro.types import Sentence

    extractor = FeatureExtractor(window=0)
    late = Sentence("p", 4, ja.tokens("aka"))
    assert "sent=4" in extractor.extract(late)[0]


def test_sentence_number_is_bucketed(ja):
    from repro.types import Sentence

    extractor = FeatureExtractor(window=0)
    very_late = Sentence("p", 42, ja.tokens("aka"))
    assert "sent=9" in extractor.extract(very_late)[0]


def test_zero_window_has_no_neighbours(make_sentence):
    rows = FeatureExtractor(window=0).extract(
        make_sentence("aka desu")
    )
    assert not any(
        feature.startswith(("w-", "w+")) for feature in rows[0]
    )


def test_extractor_rejects_negative_window():
    with pytest.raises(ValueError):
        FeatureExtractor(window=-1)


def test_indexer_design_matrix_shape(make_sentence):
    extractor = FeatureExtractor(window=1)
    rows = [
        extractor.extract(make_sentence("aka desu")),
        extractor.extract(make_sentence("juryo wa 2 kg")),
    ]
    indexer = FeatureIndexer().fit(rows)
    matrix = indexer.design_matrix(rows)
    assert matrix.shape == (6, len(indexer))
    # Every position activates every one of its known features once.
    assert matrix.sum() == sum(len(row) for block in rows for row in block)


def test_indexer_min_count_prunes(make_sentence):
    extractor = FeatureExtractor(window=0)
    rows = [
        extractor.extract(make_sentence("aka aka")),
        extractor.extract(make_sentence("ao")),
    ]
    indexer = FeatureIndexer(min_count=2).fit(rows)
    matrix = indexer.design_matrix(rows)
    # 'w0=ao' appears once and is pruned; row for 'ao' keeps only
    # features shared with other tokens (p0=NN, sent=0).
    assert matrix[2].sum() < matrix[0].sum()


def test_indexer_unknown_features_dropped_at_transform(make_sentence):
    extractor = FeatureExtractor(window=0)
    train_rows = [extractor.extract(make_sentence("aka"))]
    indexer = FeatureIndexer().fit(train_rows)
    test_rows = [extractor.extract(make_sentence("mimizuku"))]
    matrix = indexer.design_matrix(test_rows)
    assert matrix.shape[0] == 1
    # Unknown word feature contributes nothing.
    assert matrix.sum() < len(test_rows[0][0])


def test_indexer_rejects_bad_min_count():
    with pytest.raises(ValueError):
        FeatureIndexer(min_count=0)
