"""Tests for model save/load round-trips."""

import random

import numpy as np
import pytest

from repro.config import CrfConfig, LstmConfig
from repro.errors import ModelError, NotFittedError
from repro.ml import CrfTagger, LstmTagger
from repro.ml.persistence import load_crf, load_lstm, save_crf, save_lstm
from repro.nlp import get_locale
from repro.types import Sentence, TaggedSentence


@pytest.fixture(scope="module")
def training_data():
    ja = get_locale("ja")
    rng = random.Random(0)
    colors = ["aka", "ao", "shiro", "kuro"]
    data = []
    for index in range(120):
        color = rng.choice(colors)
        tokens = ja.tokens(f"iro wa {color} desu")
        data.append(
            TaggedSentence(
                Sentence(f"p{index}", 0, tokens),
                ("O", "O", "B-iro", "O"),
            )
        )
    return data


@pytest.fixture(scope="module")
def sentences(training_data):
    return [tagged.sentence for tagged in training_data[:20]]


class TestCrfPersistence:
    def test_round_trip_predictions_identical(
        self, training_data, sentences, tmp_path
    ):
        original = CrfTagger(CrfConfig(max_iterations=30)).train(
            training_data
        )
        save_crf(original, tmp_path / "crf")
        loaded = load_crf(tmp_path / "crf")
        assert [p.labels for p in original.tag(sentences)] == [
            p.labels for p in loaded.tag(sentences)
        ]

    def test_config_restored(self, training_data, tmp_path):
        original = CrfTagger(
            CrfConfig(window=1, max_iterations=20)
        ).train(training_data)
        save_crf(original, tmp_path / "crf")
        loaded = load_crf(tmp_path / "crf")
        assert loaded.config == original.config
        assert loaded.labels == original.labels
        assert loaded.feature_count == original.feature_count

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_crf(CrfTagger(), tmp_path / "crf")

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ModelError):
            load_crf(tmp_path / "nothing-here")

    def test_load_wrong_kind_raises(
        self, training_data, tmp_path
    ):
        lstm = LstmTagger(LstmConfig(epochs=1)).train(training_data)
        save_lstm(lstm, tmp_path / "model")
        with pytest.raises(ModelError):
            load_crf(tmp_path / "model")


class TestLstmPersistence:
    def test_round_trip_predictions_identical(
        self, training_data, sentences, tmp_path
    ):
        original = LstmTagger(LstmConfig(epochs=2)).train(training_data)
        save_lstm(original, tmp_path / "lstm")
        loaded = load_lstm(tmp_path / "lstm")
        assert [p.labels for p in original.tag(sentences)] == [
            p.labels for p in loaded.tag(sentences)
        ]

    def test_weights_identical(self, training_data, tmp_path):
        original = LstmTagger(LstmConfig(epochs=1)).train(training_data)
        save_lstm(original, tmp_path / "lstm")
        loaded = load_lstm(tmp_path / "lstm")
        assert np.array_equal(
            original._word_embedding, loaded._word_embedding
        )
        for layer in original._params:
            for name in original._params[layer]:
                assert np.array_equal(
                    original._params[layer][name],
                    loaded._params[layer][name],
                ), (layer, name)

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_lstm(LstmTagger(), tmp_path / "lstm")

    def test_unseen_words_after_load(
        self, training_data, tmp_path
    ):
        ja = get_locale("ja")
        original = LstmTagger(LstmConfig(epochs=1)).train(training_data)
        save_lstm(original, tmp_path / "lstm")
        loaded = load_lstm(tmp_path / "lstm")
        sentence = Sentence("x", 0, ja.tokens("mimizuku ga naku"))
        assert len(loaded.tag([sentence])[0].labels) == 3
