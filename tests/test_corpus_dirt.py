"""Tests for the seeded dirty-corpus generator (``repro.corpus.dirt``)."""

import pytest

from repro.config import IngestConfig
from repro.corpus import (
    DIRT_CHECKS,
    DIRT_KINDS,
    Marketplace,
    dirty_pages,
)
from repro.corpus.dirt import REPAIRABLE_KINDS
from repro.errors import ConfigError
from repro.ingest import FIXABLE_CHECKS, IngestGate


@pytest.fixture(scope="module")
def clean():
    return [
        g.page for g in Marketplace(seed=7).generate("tennis", 40).pages
    ]


def test_same_seed_same_corpus(clean):
    first, first_report = dirty_pages(clean, rate=0.3, seed=11)
    second, second_report = dirty_pages(clean, rate=0.3, seed=11)
    assert first == second
    assert first_report == second_report
    other, other_report = dirty_pages(clean, rate=0.3, seed=12)
    assert other != first or other_report != first_report


def test_rate_zero_is_a_noop(clean):
    dirty, report = dirty_pages(clean, rate=0.0, seed=5)
    assert dirty == clean
    assert report.total == 0
    assert report.counts() == {}
    assert report.expected_checks() == {}


def test_rate_one_corrupts_every_page(clean):
    dirty, report = dirty_pages(clean, rate=1.0, seed=5)
    assert report.total == len(clean)
    # duplicate_id appends copies, so the corpus grows by that count.
    duplicated = len(report.applied.get("duplicate_id", ()))
    assert len(dirty) == len(clean) + duplicated


def test_round_robin_covers_every_kind(clean):
    _, report = dirty_pages(clean, rate=0.5, seed=3)
    assert report.counts().keys() == set(DIRT_KINDS)
    # 20 victims over 6 kinds: every kind gets 3 or 4.
    assert all(count in (3, 4) for count in report.counts().values())


def test_kind_subset_respected(clean):
    _, report = dirty_pages(
        clean, rate=0.5, seed=3, kinds=("truncate", "mojibake")
    )
    assert set(report.counts()) == {"truncate", "mojibake"}


def test_validation():
    with pytest.raises(ConfigError):
        dirty_pages([], rate=1.5)
    with pytest.raises(ConfigError):
        dirty_pages([], rate=-0.1)
    with pytest.raises(ConfigError):
        dirty_pages([], rate=0.5, kinds=("truncate", "bitrot"))
    with pytest.raises(ConfigError):
        dirty_pages([], rate=0.5, kinds=())


def test_dirt_checks_mapping_is_total():
    assert set(DIRT_CHECKS) == set(DIRT_KINDS)
    assert REPAIRABLE_KINDS < set(DIRT_KINDS)
    assert {DIRT_CHECKS[kind] for kind in REPAIRABLE_KINDS} == set(
        FIXABLE_CHECKS
    )


@pytest.mark.parametrize("kind", [k for k in DIRT_KINDS])
def test_each_kind_trips_exactly_its_check(clean, kind):
    """The core dirt↔gate contract, one kind at a time."""
    dirty, report = dirty_pages(clean, rate=0.2, seed=9, kinds=(kind,))
    assert report.counts() == {kind: 8}
    result = IngestGate(IngestConfig(policy="drop")).process(dirty)
    assert (
        result.quarantine.counts_by_check() == report.expected_checks()
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_full_ledger_contract_under_both_policies(clean, seed):
    """Injection ledger == gate ledger, for drop and for repair."""
    dirty, report = dirty_pages(clean, rate=0.3, seed=seed)
    expected = report.expected_checks()

    dropped = IngestGate(IngestConfig(policy="drop")).process(dirty)
    assert dropped.quarantine.counts_by_check() == expected
    assert len(dropped.pages) == len(dirty) - report.total

    repaired = IngestGate(IngestConfig(policy="repair")).process(dirty)
    observed = dict(repaired.quarantine.counts_by_check())
    for check, count in repaired.repaired.items():
        observed[check] = observed.get(check, 0) + count
    assert observed == expected
    assert set(repaired.repaired) <= set(FIXABLE_CHECKS)
    unfixable = {
        DIRT_CHECKS[kind]
        for kind in report.counts()
        if kind not in REPAIRABLE_KINDS
    }
    assert set(repaired.quarantine.counts_by_check()) == unfixable


def test_quarantined_ids_match_injected_ids(clean):
    dirty, report = dirty_pages(
        clean, rate=0.2, seed=4, kinds=("megapage", "duplicate_id")
    )
    result = IngestGate(IngestConfig(policy="drop")).process(dirty)
    injected = {
        pid for ids in report.applied.values() for pid in ids
    }
    assert set(result.quarantine.page_ids()) == injected
