"""Direct tests for the DOM node types."""

from repro.html import Element, Text


def test_text_content_of_text_node():
    assert Text("hello").text_content() == "hello"


def test_element_text_content_concatenates_descendants():
    root = Element("div")
    root.append(Text("a"))
    child = Element("b")
    child.append(Text("c"))
    root.append(child)
    root.append(Text("d"))
    assert root.text_content() == "acd"


def test_find_all_includes_self():
    root = Element("table")
    inner = Element("table")
    root.append(inner)
    assert root.find_all("table") == [root, inner]


def test_direct_children_excludes_grandchildren():
    root = Element("ul")
    li = Element("li")
    nested = Element("li")
    li.append(nested)
    root.append(li)
    assert root.direct_children("li") == [li]


def test_direct_children_skips_text_nodes():
    root = Element("tr")
    root.append(Text("whitespace"))
    cell = Element("td")
    root.append(cell)
    assert root.direct_children("td") == [cell]


def test_find_returns_first_in_document_order():
    root = Element("div")
    first = Element("p")
    second = Element("p")
    root.append(first)
    root.append(second)
    assert root.find("p") is first


def test_attrs_default_to_empty_dict():
    first = Element("a")
    second = Element("a")
    first.attrs["href"] = "x"
    assert second.attrs == {}
