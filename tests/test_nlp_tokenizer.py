"""Unit tests for the locale tokenizers and bundles."""

import pytest

from repro.errors import UnknownLocaleError
from repro.nlp import available_locales, get_locale
from repro.nlp.tokenizer import LocaleNlp, register_locale


def test_available_locales():
    assert set(available_locales()) >= {"ja", "de"}


def test_unknown_locale_raises():
    with pytest.raises(UnknownLocaleError) as excinfo:
        get_locale("fr")
    assert "fr" in str(excinfo.value)


def test_ja_splits_decimal_numbers(ja):
    """The paper's footnote 3: 1.5 becomes three tokens."""
    assert ja.tokenizer.tokenize("1.5kg") == ["1", ".", "5", "kg"]


def test_ja_splits_thousands_separator(ja):
    assert ja.tokenizer.tokenize("2,430") == ["2", ",", "430"]


def test_de_keeps_decimal_as_one_token(de):
    assert de.tokenizer.tokenize("1,5 kg") == ["1,5", "kg"]
    assert de.tokenizer.tokenize("2.430") == ["2.430"]


def test_ja_word_with_trailing_digits(ja):
    assert ja.tokenizer.tokenize("X100") == ["X100"]


def test_de_hyphenated_compound(de):
    assert de.tokenizer.tokenize("Edelstahl-Gehäuse") == [
        "Edelstahl-Gehäuse"
    ]


def test_symbols_are_single_tokens(ja):
    assert ja.tokenizer.tokenize("a;b*c") == ["a", ";", "b", "*", "c"]


def test_ja_handles_cjk_characters(ja):
    tokens = ja.tokenizer.tokenize("重量 は 2kg")
    assert "重量" in tokens
    assert "2" in tokens


def test_tokens_pairs_surface_and_pos(ja):
    tokens = ja.tokens("juryo wa 2 kg desu")
    assert [token.text for token in tokens] == [
        "juryo", "wa", "2", "kg", "desu",
    ]
    assert [token.pos for token in tokens] == [
        "NN", "FW", "NUM", "UNIT", "FW",
    ]


def test_ja_period_not_a_sentence_terminator(ja):
    # "." must stay available as the decimal point (footnote 3).
    assert "." not in ja.sentence_terminators
    assert "。" in ja.sentence_terminators


def test_de_period_is_a_terminator(de):
    assert "." in de.sentence_terminators


def test_register_custom_locale(ja):
    custom = LocaleNlp(
        locale="xx-test",
        tokenizer=ja.tokenizer,
        pos_tagger=ja.pos_tagger,
        sentence_terminators=frozenset({"."}),
    )
    register_locale(custom)
    assert get_locale("xx-test") is custom
