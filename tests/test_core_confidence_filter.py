"""Tests for the confidence-filter bootstrap knob."""

import pytest

from repro import PAEPipeline, PipelineConfig
from repro.errors import ConfigError


def test_rejects_out_of_range_threshold():
    with pytest.raises(ConfigError):
        PipelineConfig(min_confidence=1.0)
    with pytest.raises(ConfigError):
        PipelineConfig(min_confidence=-0.1)


def test_zero_threshold_is_identity(small_vacuum_dataset):
    pages = list(small_vacuum_dataset.product_pages)
    baseline = PAEPipeline(
        PipelineConfig(iterations=1, min_confidence=0.0)
    ).run(pages, small_vacuum_dataset.query_log)
    # Confidence path with an always-passing threshold yields the same
    # extraction set (labels are identical; only the code path differs).
    low = PAEPipeline(
        PipelineConfig(iterations=1, min_confidence=1e-9)
    ).run(pages, small_vacuum_dataset.query_log)
    assert low.triples == baseline.triples


def test_high_threshold_prunes_extractions(small_vacuum_dataset):
    pages = list(small_vacuum_dataset.product_pages)
    baseline = PAEPipeline(
        PipelineConfig(iterations=1)
    ).run(pages, small_vacuum_dataset.query_log)
    strict = PAEPipeline(
        PipelineConfig(iterations=1, min_confidence=0.95)
    ).run(pages, small_vacuum_dataset.query_log)
    assert len(strict.triples) <= len(baseline.triples)
    assert strict.seed_triples == baseline.seed_triples


def test_confidence_filter_is_precision_positive(
    small_vacuum_dataset,
):
    from repro.evaluation import build_truth_sample, precision

    truth = build_truth_sample(small_vacuum_dataset)
    pages = list(small_vacuum_dataset.product_pages)
    baseline = PAEPipeline(PipelineConfig(iterations=1)).run(
        pages, small_vacuum_dataset.query_log
    )
    strict = PAEPipeline(
        PipelineConfig(iterations=1, min_confidence=0.9)
    ).run(pages, small_vacuum_dataset.query_log)
    assert (
        precision(strict.triples, truth).precision
        >= precision(baseline.triples, truth).precision - 0.02
    )


def test_lstm_backend_ignores_threshold(small_vacuum_dataset):
    """The knob is CRF-only; the LSTM path must still run."""
    config = PipelineConfig(
        iterations=1, tagger="lstm", min_confidence=0.9
    )
    result = PAEPipeline(config).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    assert result.triples >= result.seed_triples