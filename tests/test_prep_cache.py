"""Cross-run shard-prep artifact cache (:mod:`repro.perf.prep_cache`).

The contract under test: cached streamed runs are bit-identical to
uncached ones (cache on, off, warm, tampered, bypassed), the disk tier
self-validates via its checksummed sidecars, and page-corrupting fault
plans never touch the cache in either direction.
"""

import gzip
import json

import pytest

from repro import PAEPipeline, PipelineConfig
from repro.config import IngestConfig
from repro.corpus import Marketplace, MaterializedPageSource
from repro.perf.prep_cache import (
    PREP_FORMAT_VERSION,
    DiskPrepCache,
    MemoryPrepCache,
    PrepStore,
    ShardPrep,
    memory_prep_cache,
    prep_cache_key,
    prep_digest,
)
from repro.runtime import FaultPlan, FaultSpec, PipelineTrace

pytestmark = pytest.mark.usefixtures("watchdog")

CONFIG = PipelineConfig(iterations=1)


@pytest.fixture(scope="module")
def vacuum():
    return Marketplace(seed=7).generate("vacuum_cleaner", 40)


def _source(vacuum, shard_size=10):
    return MaterializedPageSource(
        vacuum.product_pages, shard_size=shard_size
    )


def _assert_same_output(left, right):
    assert left.triples == right.triples
    assert left.seed_triples == right.seed_triples
    assert left.attributes == right.attributes
    if left.quarantine is not None or right.quarantine is not None:
        assert (
            left.quarantine.to_payload() == right.quarantine.to_payload()
        )


# -- key and digest ------------------------------------------------------


def test_prep_digest_tracks_gate_config():
    base = prep_digest(IngestConfig())
    assert base == prep_digest(IngestConfig())
    assert base != prep_digest(None)
    assert base != prep_digest(IngestConfig(max_page_bytes=123))


def test_prep_cache_key_shape():
    digest = prep_digest(IngestConfig())
    key = prep_cache_key("f" * 64, digest)
    assert key == f"{digest[:16]}_{'f' * 16}"


# -- memory tier ---------------------------------------------------------


def _prep(pages=4):
    return ShardPrep(outcomes=[], warnings={}, lines=["{}\n"] * pages)


def test_memory_cache_evicts_least_recently_used():
    cache = MemoryPrepCache(max_pages=10)
    cache.put(("a",), _prep(), cost=4)
    cache.put(("b",), _prep(), cost=4)
    assert cache.get(("a",)) is not None  # refresh "a"
    cache.put(("c",), _prep(), cost=4)  # over budget: evicts "b"
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) is not None
    assert cache.get(("c",)) is not None
    assert cache.pages == 8


def test_memory_cache_rejects_oversized_entry():
    cache = MemoryPrepCache(max_pages=5)
    cache.put(("big",), _prep(6), cost=6)
    assert len(cache) == 0
    assert cache.get(("big",)) is None


def test_memory_cache_replaces_existing_key():
    cache = MemoryPrepCache(max_pages=10)
    cache.put(("a",), _prep(), cost=4)
    cache.put(("a",), _prep(), cost=6)
    assert len(cache) == 1
    assert cache.pages == 6


# -- disk tier -----------------------------------------------------------


def _write_shard(cache, index=0, line='{"pid": "p1"}\n'):
    path = cache.shard_path(index)
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write(line)
    return path


def test_disk_cache_roundtrips_outcomes(tmp_path):
    cache = DiskPrepCache(tmp_path, "key")
    _write_shard(cache)
    cache.store(
        0, [["k", "p1", "ja", [], []]], {"parse_budget_soft": 1}
    )
    loaded = cache.load(0)
    assert loaded is not None
    assert loaded.outcomes == [("k", "p1", "ja", [], [])]
    assert loaded.warnings == {"parse_budget_soft": 1}


def test_disk_cache_checksum_mismatch_misses(tmp_path):
    cache = DiskPrepCache(tmp_path, "key")
    path = _write_shard(cache)
    cache.store(0, [], {})
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write('{"pid": "tampered"}\n')
    assert cache.load(0) is None


def test_disk_cache_format_mismatch_misses(tmp_path):
    cache = DiskPrepCache(tmp_path, "key")
    _write_shard(cache)
    cache.store(0, [], {})
    meta_path = cache.meta_path(0)
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    meta["format"] = PREP_FORMAT_VERSION + 1
    meta_path.write_text(json.dumps(meta), encoding="utf-8")
    assert cache.load(0) is None


def test_disk_cache_missing_sidecar_misses(tmp_path):
    cache = DiskPrepCache(tmp_path, "key")
    _write_shard(cache)
    assert cache.load(0) is None


def test_disk_cache_prunes_sibling_keys(tmp_path):
    stale = tmp_path / "stale_key"
    stale.mkdir()
    (stale / "shard_0000.jsonl.gz").write_bytes(b"x")
    DiskPrepCache(tmp_path, "fresh_key")
    assert not stale.exists()
    assert (tmp_path / "fresh_key").is_dir()


# -- streamed runs against the cache -------------------------------------


def test_warm_run_hits_every_shard_and_matches_cold(vacuum, tmp_path):
    source = _source(vacuum)
    pipeline = PAEPipeline(CONFIG)
    cold = pipeline.run_streamed(
        source, vacuum.query_log, cache_dir=str(tmp_path)
    )
    assert cold.perf_counters()["prep_cache"] == {
        "hits": 0, "misses": source.shard_count,
    }
    warm = pipeline.run_streamed(
        source, vacuum.query_log, cache_dir=str(tmp_path)
    )
    assert warm.perf_counters()["prep_cache"] == {
        "hits": source.shard_count, "misses": 0,
    }
    _assert_same_output(warm, cold)


def test_cache_disabled_matches_cached_run(vacuum, tmp_path):
    source = _source(vacuum)
    cached = PAEPipeline(CONFIG).run_streamed(
        source, vacuum.query_log, cache_dir=str(tmp_path)
    )
    uncached = PAEPipeline(
        PipelineConfig(iterations=1, enable_prep_cache=False)
    ).run_streamed(source, vacuum.query_log)
    assert uncached.perf_counters()["prep_cache"] == {
        "hits": 0, "misses": 0,
    }
    _assert_same_output(uncached, cached)


def test_memory_tier_serves_repeat_run_in_process(vacuum):
    memory_prep_cache().clear()
    source = _source(vacuum)
    pipeline = PAEPipeline(CONFIG)
    first = pipeline.run_streamed(source, vacuum.query_log)
    assert first.perf_counters()["prep_cache"] == {
        "hits": 0, "misses": source.shard_count,
    }
    second = pipeline.run_streamed(source, vacuum.query_log)
    assert second.perf_counters()["prep_cache"] == {
        "hits": source.shard_count, "misses": 0,
    }
    _assert_same_output(second, first)


def test_checkpoint_retains_prep_cache_across_restart(vacuum, tmp_path):
    source = _source(vacuum)
    pipeline = PAEPipeline(CONFIG)
    first = pipeline.run_streamed(
        source, vacuum.query_log, checkpoint_dir=str(tmp_path)
    )
    prep_root = tmp_path / "prep_cache"
    assert list(prep_root.glob("*/shard_*.meta.json"))
    # resume=False wipes the snapshots (CheckpointStore.begin) but the
    # prep artifacts survive and serve the restarted run.
    trace = PipelineTrace()
    second = pipeline.run_streamed(
        source,
        vacuum.query_log,
        checkpoint_dir=str(tmp_path),
        resume=False,
        trace=trace,
    )
    assert trace.counter_totals("prep_cache") == {
        "hits": source.shard_count, "misses": 0,
    }
    _assert_same_output(second, first)


def test_tampered_artifact_degrades_to_reprep(vacuum, tmp_path):
    source = _source(vacuum)
    pipeline = PAEPipeline(CONFIG)
    first = pipeline.run_streamed(
        source, vacuum.query_log, cache_dir=str(tmp_path)
    )
    [keyed] = [path for path in tmp_path.iterdir() if path.is_dir()]
    (keyed / "shard_0001.jsonl.gz").write_bytes(b"not a gzip file")
    again = pipeline.run_streamed(
        source, vacuum.query_log, cache_dir=str(tmp_path)
    )
    assert again.perf_counters()["prep_cache"] == {
        "hits": source.shard_count - 1, "misses": 1,
    }
    _assert_same_output(again, first)


def test_config_change_invalidates_cache_key(vacuum, tmp_path):
    source = _source(vacuum)
    PAEPipeline(CONFIG).run_streamed(
        source, vacuum.query_log, cache_dir=str(tmp_path)
    )
    changed = PipelineConfig(
        iterations=1,
        ingest=IngestConfig(max_page_bytes=500_000),
    )
    result = PAEPipeline(changed).run_streamed(
        source, vacuum.query_log, cache_dir=str(tmp_path)
    )
    # New digest -> new keyed directory, all shards re-prepped (and the
    # stale key pruned so the root holds one prep set).
    assert result.perf_counters()["prep_cache"] == {
        "hits": 0, "misses": source.shard_count,
    }
    assert len([p for p in tmp_path.iterdir() if p.is_dir()]) == 1


def test_page_faults_bypass_cache_in_both_directions(vacuum, tmp_path):
    source = _source(vacuum)
    plan = FaultPlan(
        [
            FaultSpec(
                stage="corpus", kind="dirt", corrupt_fraction=0.2
            )
        ],
        seed=3,
    )
    result = PAEPipeline(CONFIG).run_streamed(
        source, vacuum.query_log, cache_dir=str(tmp_path), faults=plan
    )
    # Nothing recorded (no sidecars), nothing served (no counters).
    assert result.perf_counters()["prep_cache"] == {
        "hits": 0, "misses": 0,
    }
    assert not list(tmp_path.rglob("*.meta.json"))
    assert plan.injected.get(("corpus", "dirt_pages"), 0) > 0
    # And a later clean run must not be poisoned by the faulted one.
    clean = PAEPipeline(CONFIG).run_streamed(
        source, vacuum.query_log, cache_dir=str(tmp_path)
    )
    reference = PAEPipeline(
        PipelineConfig(iterations=1, enable_prep_cache=False)
    ).run_streamed(source, vacuum.query_log)
    _assert_same_output(clean, reference)


# -- concurrency and hostile-environment behaviour -----------------------


def test_prune_tolerates_concurrent_deleter(tmp_path, monkeypatch):
    """A sibling key vanishing between the listing and the removal is
    another run winning the same cleanup race, not an error."""
    import pathlib
    import shutil

    stale = tmp_path / "stale_key"
    stale.mkdir()
    (stale / "shard_0000.jsonl.gz").write_bytes(b"x")
    real_iterdir = pathlib.Path.iterdir

    def racing_iterdir(self):
        children = list(real_iterdir(self))
        shutil.rmtree(stale, ignore_errors=True)  # the deleter wins
        return iter(children)

    monkeypatch.setattr(pathlib.Path, "iterdir", racing_iterdir)
    cache = DiskPrepCache(tmp_path, "fresh_key")
    cache.close()
    assert not stale.exists()
    assert (tmp_path / "fresh_key").is_dir()


def test_prune_survives_root_vanishing(tmp_path):
    import shutil

    root = tmp_path / "root"
    cache = DiskPrepCache(root, "key")
    shutil.rmtree(root)
    cache._prune()  # no raise: the whole root raced away
    cache.close()


def test_second_cache_handle_reports_contention(tmp_path):
    first = DiskPrepCache(tmp_path, "key")
    assert not first.contended
    second = DiskPrepCache(tmp_path, "key")
    assert second.contended
    second.close()
    first.close()
    third = DiskPrepCache(tmp_path, "key")
    assert not third.contended
    third.close()


def test_store_write_failure_disables_further_stores(tmp_path):
    """The first classified write failure turns the cache off for the
    run — later shards skip the (known-failing) disk entirely."""
    plan = FaultPlan(
        [FaultSpec(stage="prep_cache_write", kind="disk_full", times=None)]
    )
    disk = DiskPrepCache(tmp_path, "key", faults=plan)
    store = PrepStore(
        cache_dir=str(disk.directory),
        source_fingerprint="f",
        digest="d",
        disk=disk,
    )
    _write_shard(disk)
    store.store(0, [], {})
    assert store.disabled
    assert store.write_failures == 1
    store.store(1, [], {})  # no-op, no second failure recorded
    assert store.write_failures == 1
    assert disk.load(0) is None  # nothing was sealed
    disk.close()
