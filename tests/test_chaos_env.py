"""Environment-fault acceptance suite (``make chaos-env``).

The hostile-machine contract, end to end through ``run_streamed``:

* a SIGKILLed shard worker is detected, respawned and its shard
  requeued — final triples bit-identical to a fault-free run;
* a shard that kills every worker it touches is quarantined as
  ``poisoned_shard`` and the run completes on the survivors (or raises
  under the strict ingest policy);
* ``ENOSPC`` during prep-cache or checkpoint writes degrades to
  cache-off / checkpoint-less with counted warnings — never a crash,
  never different triples;
* two runs duelling over one cache directory serialize via the
  advisory lock: the loser falls back to a private scratch cache and
  still produces identical output;
* memory pressure throttles the fan-out and is counted, without
  changing the output.

Every scenario is seeded (fault plans are deterministic) and sized for
a 1-CPU box: 40 pages, 2 iterations, at most 2 workers.
"""

import pytest

from repro import IngestConfig, PAEPipeline, PipelineConfig
from repro.corpus import Marketplace, MaterializedPageSource
from repro.errors import PoisonedShardError
from repro.perf.prep_cache import (
    DiskPrepCache,
    prep_cache_key,
    prep_digest,
)
from repro.runtime import FaultPlan, FaultSpec

pytestmark = pytest.mark.usefixtures("watchdog")

CONFIG = PipelineConfig(iterations=2)
SHARD_SIZE = 10  # 40 pages -> 4 shards


@pytest.fixture(autouse=True)
def _cold_prep():
    """Each scenario preps from scratch: a warm process-global memory
    cache would skip the prep fan-out and the faults aimed at it."""
    from repro.perf.prep_cache import memory_prep_cache

    memory_prep_cache().clear()
    yield


@pytest.fixture(scope="module")
def vacuum():
    return Marketplace(seed=7).generate("vacuum_cleaner", 40)


@pytest.fixture(scope="module")
def baseline(vacuum):
    """Fault-free monolithic reference."""
    return PAEPipeline(CONFIG).run(
        vacuum.product_pages, vacuum.query_log
    )


def _source(vacuum):
    return MaterializedPageSource(
        vacuum.product_pages, shard_size=SHARD_SIZE
    )


def _run(vacuum, *, faults=None, workers=1, config=CONFIG, **kwargs):
    return PAEPipeline(config).run_streamed(
        _source(vacuum),
        vacuum.query_log,
        faults=faults,
        shard_workers=workers,
        **kwargs,
    )


# -- worker SIGKILL ------------------------------------------------------


def test_sigkilled_workers_respawn_requeue_bit_identical(
    vacuum, baseline
):
    """The headline acceptance: real SIGKILLs mid-prep and mid-tag,
    detected via the exitcode sentinel, leave the output bit-identical
    to a fault-free run."""
    plan = FaultPlan(
        [
            FaultSpec(stage="shard_prep:0001", kind="worker_kill"),
            FaultSpec(stage="shard_tag:0002", kind="worker_kill"),
        ]
    )
    result = _run(vacuum, faults=plan, workers=2)
    assert result.triples == baseline.triples
    assert result.quarantine is None or len(result.quarantine) == 0
    pool = result.resilience_counters()["pool"]
    # One prep kill + one tag kill per iteration (attempt counters are
    # per wave, and times=1 condemns each shard's first attempt).
    assert pool["injected_kills"] == 1 + CONFIG.iterations
    assert pool["deaths"] >= pool["injected_kills"]
    assert pool["requeues"] >= pool["injected_kills"]
    assert pool["respawns"] >= 1
    assert pool.get("poisoned", 0) == 0


def test_poisoned_shard_quarantined_run_completes_on_survivors(vacuum):
    """A shard that kills every worker (times=None) exhausts its
    retries, lands in the quarantine ledger, and the run completes
    with exactly the survivors' triples."""
    plan = FaultPlan(
        [
            FaultSpec(
                stage="shard_prep:0001", kind="worker_kill", times=None
            )
        ]
    )
    result = _run(vacuum, faults=plan)
    survivors = (
        vacuum.product_pages[:SHARD_SIZE]
        + vacuum.product_pages[2 * SHARD_SIZE :]
    )
    expected = PAEPipeline(CONFIG).run(survivors, vacuum.query_log)
    assert result.triples == expected.triples
    assert result.quarantine is not None
    entries = [
        entry
        for entry in result.quarantine
        if entry.check == "poisoned_shard"
    ]
    assert len(entries) == 1
    assert entries[0].page_id == "shard-0001"
    assert entries[0].source == "pool"
    assert result.resilience_counters()["pool"]["poisoned"] == 1


def test_strict_policy_raises_on_poisoned_shard(vacuum):
    config = PipelineConfig(
        iterations=2, ingest=IngestConfig(policy="strict")
    )
    plan = FaultPlan(
        [
            FaultSpec(
                stage="shard_prep:0000", kind="worker_kill", times=None
            )
        ]
    )
    with pytest.raises(PoisonedShardError) as excinfo:
        _run(vacuum, faults=plan, config=config)
    assert excinfo.value.stage == "shard_prep"
    assert excinfo.value.shard_index == 0


# -- full disk -----------------------------------------------------------


def test_prep_cache_enospc_degrades_to_cache_off(
    vacuum, baseline, tmp_path
):
    """Every prep-cache sidecar write hits ENOSPC: the run turns the
    cache off after the first failure, counts it, and completes with
    identical triples."""
    plan = FaultPlan(
        [
            FaultSpec(
                stage="prep_cache_write", kind="disk_full", times=None
            )
        ]
    )
    result = _run(vacuum, faults=plan, cache_dir=str(tmp_path))
    assert result.triples == baseline.triples
    counters = result.resilience_counters()
    assert counters["prep_cache_disabled"] == 1
    # A later clean run over the same directory simply re-preps.
    clean = _run(vacuum, cache_dir=str(tmp_path))
    assert clean.triples == baseline.triples


def test_checkpoint_enospc_degrades_to_checkpoint_less(
    vacuum, baseline, tmp_path
):
    """Every checkpoint write hits ENOSPC: snapshots are abandoned
    with a counted warning and the run completes unscathed."""
    plan = FaultPlan(
        [
            FaultSpec(
                stage="checkpoint_write", kind="disk_full", times=None
            )
        ]
    )
    result = _run(vacuum, faults=plan, checkpoint_dir=str(tmp_path))
    assert result.triples == baseline.triples
    assert result.resilience_counters()["checkpoint_disabled"] >= 1
    # Nothing torn was published under a snapshot name.
    assert list(tmp_path.glob("iteration_*.json.gz")) == []


# -- contended cache directory -------------------------------------------


def test_dueling_runs_fall_back_to_private_cache(
    vacuum, baseline, tmp_path
):
    """While another live run holds the cache lock, a second run must
    not interleave writes: it falls back to a private scratch cache,
    counts the contention, and produces identical output."""
    digest = prep_digest(
        CONFIG.ingest if CONFIG.ingest.enabled else None
    )
    key = prep_cache_key(_source(vacuum).fingerprint(), digest)
    holder = DiskPrepCache(tmp_path, key)
    assert not holder.contended
    try:
        contended = _run(vacuum, cache_dir=str(tmp_path))
    finally:
        holder.close()
    assert contended.triples == baseline.triples
    assert contended.resilience_counters()["prep_cache_contended"] == 1
    # The keyed directory gained no shard artifacts from the loser.
    assert list((tmp_path / key).glob("shard_*")) == []
    # With the lock released the next run owns the cache normally.
    owner = _run(vacuum, cache_dir=str(tmp_path))
    assert owner.triples == baseline.triples
    assert owner.resilience_counters()["prep_cache_contended"] == 0
    assert list((tmp_path / key).glob("shard_*.meta.json"))


# -- memory pressure -----------------------------------------------------


def test_memory_pressure_throttles_and_counts(vacuum, baseline):
    plan = FaultPlan(
        [
            FaultSpec(
                stage="shard_prep",
                kind="mem_pressure",
                pressure_bytes=1 << 40,
                times=None,
            )
        ]
    )
    result = _run(vacuum, faults=plan, workers=2)
    assert result.triples == baseline.triples
    pressure = result.resilience_counters()["memory_pressure"]
    assert pressure["samples"] >= 1
    assert pressure["events"] >= 1


# -- clean-pool smoke ----------------------------------------------------


def test_clean_pooled_run_bit_identical_to_monolithic(vacuum, baseline):
    """The no-fault guardrail: moving the fan-out onto the supervised
    pool changed nothing about a healthy run's output."""
    result = _run(vacuum, workers=2)
    assert result.triples == baseline.triples
    assert result.seed_triples == baseline.seed_triples
    counters = result.resilience_counters()
    assert counters["pool"] == {}
    assert counters["checkpoint_disabled"] == 0
    assert counters["prep_cache_disabled"] == 0
