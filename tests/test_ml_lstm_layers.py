"""Numerical gradient checks for the numpy neural layers."""

import numpy as np
import pytest

from repro.ml.lstm import layers


def numerical_gradient(function, array, epsilon=1e-6):
    gradient = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + epsilon
        up = function()
        array[index] = original - epsilon
        down = function()
        array[index] = original
        gradient[index] = (up - down) / (2 * epsilon)
        iterator.iternext()
    return gradient


def test_lstm_gradients_match_numerical():
    rng = np.random.default_rng(0)
    params = layers.init_lstm(rng, input_dim=3, hidden=4)
    inputs = rng.normal(size=(5, 2, 3))
    target = rng.normal(size=(5, 2, 4))

    def loss():
        outputs, _ = layers.lstm_forward(params, inputs)
        return float(((outputs - target) ** 2).sum() / 2)

    outputs, cache = layers.lstm_forward(params, inputs)
    d_outputs = outputs - target
    d_inputs, grads = layers.lstm_backward(params, cache, d_outputs)

    for key in ("wx", "wh", "b"):
        numerical = numerical_gradient(loss, params[key])
        assert np.allclose(grads[key], numerical, atol=1e-5), key

    numerical_inputs = numerical_gradient(loss, inputs)
    assert np.allclose(d_inputs, numerical_inputs, atol=1e-5)


def test_dense_gradients_match_numerical():
    rng = np.random.default_rng(1)
    params = layers.init_dense(rng, 4, 3)
    inputs = rng.normal(size=(6, 4))
    target = rng.normal(size=(6, 3))

    def loss():
        return float(
            ((layers.dense_forward(params, inputs) - target) ** 2).sum()
            / 2
        )

    outputs = layers.dense_forward(params, inputs)
    d_inputs, grads = layers.dense_backward(
        params, inputs, outputs - target
    )
    assert np.allclose(
        grads["w"], numerical_gradient(loss, params["w"]), atol=1e-5
    )
    assert np.allclose(
        grads["b"], numerical_gradient(loss, params["b"]), atol=1e-5
    )
    assert np.allclose(
        d_inputs, numerical_gradient(loss, inputs), atol=1e-5
    )


def test_softmax_cross_entropy_gradient():
    rng = np.random.default_rng(2)
    logits = rng.normal(size=(5, 4))
    targets = rng.integers(0, 4, size=5)

    def loss():
        value, _, _ = layers.softmax_cross_entropy(logits, targets)
        return value

    _, probabilities, d_logits = layers.softmax_cross_entropy(
        logits, targets
    )
    assert np.allclose(
        d_logits, numerical_gradient(loss, logits), atol=1e-6
    )
    assert np.allclose(probabilities.sum(axis=1), 1.0)


def test_softmax_loss_is_nll():
    logits = np.log(np.array([[0.7, 0.2, 0.1]]))
    loss, _, _ = layers.softmax_cross_entropy(logits, np.array([0]))
    assert loss == pytest.approx(-np.log(0.7))


def test_forget_bias_initialized_to_one():
    params = layers.init_lstm(np.random.default_rng(0), 2, 3)
    assert np.all(params["b"][3:6] == 1.0)
    assert np.all(params["b"][:3] == 0.0)


def test_dropout_scales_kept_units():
    rng = np.random.default_rng(3)
    inputs = np.ones((1000,))
    outputs, mask = layers.dropout_forward(rng, inputs, 0.5)
    kept = outputs[outputs > 0]
    assert np.allclose(kept, 2.0)  # inverted dropout
    assert 300 < kept.size < 700


def test_dropout_rate_zero_is_identity():
    rng = np.random.default_rng(4)
    inputs = np.ones((10,))
    outputs, mask = layers.dropout_forward(rng, inputs, 0.0)
    assert outputs is inputs
    assert mask is None
    assert layers.dropout_backward(inputs, None) is inputs


def test_sgd_update_clips_gradients():
    params = {"w": np.zeros(4)}
    huge = {"w": np.full(4, 1e6)}
    layers.sgd_update(params, huge, learning_rate=1.0, clip=1.0)
    assert np.linalg.norm(params["w"]) == pytest.approx(1.0)


def test_sgd_update_moves_against_gradient():
    params = {"w": np.zeros(2)}
    layers.sgd_update(
        params, {"w": np.array([1.0, -1.0])}, learning_rate=0.1
    )
    assert params["w"][0] < 0 < params["w"][1]
