"""Tests for the PipelineTrace stage-timing API."""

import json
import pickle
import time

import pytest

from repro import PAEPipeline, PipelineConfig
from repro.runtime import PipelineTrace, StageEvent


def test_stage_records_duration_and_counters():
    trace = PipelineTrace(label="unit")
    with trace.stage("work") as stage:
        time.sleep(0.01)
        stage.add(items=3)
        stage.add(items=2, other=1)
    assert len(trace.events) == 1
    event = trace.events[0]
    assert event.stage == "work"
    assert event.seconds >= 0.01
    assert event.iteration is None
    assert event.counters == {"items": 5, "other": 1}


def test_stage_recorded_even_when_body_raises():
    trace = PipelineTrace()
    with pytest.raises(ValueError):
        with trace.stage("boom", iteration=1):
            raise ValueError("nope")
    assert [event.stage for event in trace.events] == ["boom"]
    assert trace.events[0].iteration == 1


def test_count_event_is_zero_duration():
    trace = PipelineTrace()
    trace.count("seen", iteration=2, pages=7)
    assert trace.events[0].seconds == 0.0
    assert trace.events[0].counters == {"pages": 7}


def test_aggregations():
    trace = PipelineTrace()
    with trace.stage("train", iteration=1):
        pass
    with trace.stage("train", iteration=2):
        pass
    with trace.stage("tag", iteration=1):
        pass
    with trace.stage("seed"):
        pass
    assert set(trace.stage_totals()) == {"train", "tag", "seed"}
    assert trace.iterations() == [1, 2]
    assert [e.stage for e in trace.iteration_events(1)] == ["train", "tag"]
    assert [e.stage for e in trace.iteration_events(None)] == ["seed"]
    assert trace.total_seconds == pytest.approx(
        sum(event.seconds for event in trace.events)
    )


def test_json_roundtrip():
    trace = PipelineTrace(label="roundtrip")
    with trace.stage("a", iteration=1) as stage:
        stage.add(n=4)
    payload = json.loads(trace.to_json())
    rebuilt = PipelineTrace.from_dict(payload)
    assert rebuilt.label == "roundtrip"
    assert rebuilt.events == trace.events
    assert isinstance(rebuilt.events[0], StageEvent)


def test_trace_is_picklable():
    trace = PipelineTrace(label="pickle")
    with trace.stage("a") as stage:
        stage.add(n=1)
    clone = pickle.loads(pickle.dumps(trace))
    assert clone.events == trace.events
    assert clone.label == "pickle"


def test_pipeline_populates_trace(small_vacuum_dataset):
    trace = PipelineTrace(label="vacuum_cleaner")
    result = PAEPipeline(PipelineConfig(iterations=2)).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
        trace=trace,
    )
    assert result.trace is trace
    stages = set(trace.stage_totals())
    # Seed-phase stages plus every per-iteration stage.
    assert {
        "tokenize",
        "candidate_discovery",
        "seed_build",
        "training_material",
        "tagger_train",
        "tagger_tag",
        "veto",
        "semantic_clean",
        "fold_dataset",
    } <= stages
    assert trace.iterations() == [1, 2]
    # Each cycle trained and tagged exactly once.
    for iteration in (1, 2):
        names = [e.stage for e in trace.iteration_events(iteration)]
        assert names.count("tagger_train") == 1
        assert names.count("tagger_tag") == 1


def test_pipeline_creates_trace_when_omitted(small_vacuum_dataset):
    result = PAEPipeline(PipelineConfig(iterations=1)).run(
        list(small_vacuum_dataset.product_pages),
        small_vacuum_dataset.query_log,
    )
    assert result.trace is not None
    assert result.trace.total_seconds > 0
