"""Structured error analysis — the paper's Section VIII as an API.

:func:`error_buckets` classifies every system triple against a truth
sample into the four evaluation buckets and keeps the witnesses, so
callers (the error-analysis example, notebooks, regression dashboards)
can inspect *which* values drive which error class — the paper's
observation being that "precision figures are often affected not by a
large number of different errors, but a few errors that affect many
items".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..types import Triple
from .truth import TruthSample


@dataclass(frozen=True)
class ErrorBuckets:
    """System triples classified against a truth sample.

    All triples are canonicalized (alias-mapped) forms.
    """

    correct: frozenset[Triple]
    incorrect: frozenset[Triple]
    maybe_incorrect: frozenset[Triple]
    spurious: frozenset[Triple]

    @property
    def total(self) -> int:
        return (
            len(self.correct)
            + len(self.incorrect)
            + len(self.maybe_incorrect)
            + len(self.spurious)
        )

    def errors_by_attribute(self) -> dict[str, Counter]:
        """Error-class counts per attribute (concentration view)."""
        by_attribute: dict[str, Counter] = {}
        for bucket_name in ("incorrect", "maybe_incorrect", "spurious"):
            for triple in getattr(self, bucket_name):
                by_attribute.setdefault(triple.attribute, Counter())[
                    bucket_name
                ] += 1
        return by_attribute

    def dominant_error_values(
        self, attribute: str, limit: int = 5
    ) -> list[tuple[str, int]]:
        """The most repeated wrong values of one attribute."""
        counter: Counter = Counter()
        for bucket in (self.incorrect, self.maybe_incorrect, self.spurious):
            for triple in bucket:
                if triple.attribute == attribute:
                    counter[triple.value] += 1
        return counter.most_common(limit)

    def concentration(self) -> float:
        """Share of all errors carried by the single worst attribute.

        High concentration is the paper's "few errors affect many
        items" pattern — fixable by one heuristic or one human pass.
        """
        by_attribute = self.errors_by_attribute()
        if not by_attribute:
            return 0.0
        totals = [
            sum(counter.values()) for counter in by_attribute.values()
        ]
        return max(totals) / sum(totals)


def error_buckets(
    system_triples: Iterable[Triple],
    truth: TruthSample,
) -> ErrorBuckets:
    """Classify system triples into the four evaluation buckets."""
    canonical = truth.canonicalize_all(system_triples)
    correct_keys = truth.correct_keys()
    correct: set[Triple] = set()
    incorrect: set[Triple] = set()
    maybe: set[Triple] = set()
    spurious: set[Triple] = set()
    for triple in canonical:
        if triple in truth.correct:
            correct.add(triple)
        elif triple in truth.incorrect:
            incorrect.add(triple)
        elif (triple.product_id, triple.attribute) in correct_keys:
            maybe.add(triple)
        else:
            spurious.add(triple)
    return ErrorBuckets(
        correct=frozenset(correct),
        incorrect=frozenset(incorrect),
        maybe_incorrect=frozenset(maybe),
        spurious=frozenset(spurious),
    )
