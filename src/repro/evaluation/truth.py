"""Truth samples: what the paper's annotators produced, reconstructed.

The paper's protocol (Section VI-B): run an early system version, hand
its triples to annotators, record correct / incorrect. The sample is
therefore *stated-triple complete* but recall-biased. With a synthetic
corpus we can reproduce exactly that — every triple stated on some page
is annotated by the generator itself — and additionally build the
unbiased full truth (including attributes products have but never
state), which the paper explicitly could not afford.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..corpus.marketplace import CategoryDataset
from ..types import Triple


@dataclass(frozen=True)
class TruthSample:
    """An annotated triple collection.

    Attributes:
        correct: triples marked correct by annotation.
        incorrect: triples marked incorrect.
        alias_map: surface attribute name → canonical name; system
            output is canonicalized through it before matching, exactly
            as an annotator reads 製造元 and メーカー as the same
            attribute.
    """

    correct: frozenset[Triple]
    incorrect: frozenset[Triple]
    alias_map: Mapping[str, str] = field(default_factory=dict)

    def canonicalize(self, triple: Triple) -> Triple:
        """Map a system triple's attribute to its canonical name."""
        canonical = self.alias_map.get(triple.attribute)
        if canonical is None or canonical == triple.attribute:
            return triple
        return Triple(triple.product_id, canonical, triple.value)

    def canonicalize_all(
        self, triples: Iterable[Triple]
    ) -> frozenset[Triple]:
        """Canonicalize a triple collection."""
        return frozenset(self.canonicalize(triple) for triple in triples)

    @property
    def size(self) -> int:
        return len(self.correct) + len(self.incorrect)

    def correct_keys(self) -> frozenset[tuple[str, str]]:
        """(product, attribute) pairs having a correct triple."""
        return frozenset(
            (triple.product_id, triple.attribute)
            for triple in self.correct
        )


def build_truth_sample(dataset: CategoryDataset) -> TruthSample:
    """The paper-protocol truth sample for a generated dataset.

    Correct = triples stated truthfully on pages; incorrect = stated
    but wrong (negations, secondary products, junk and variant table
    rows). Both are what annotators reviewing system output would see.
    """
    return TruthSample(
        correct=dataset.correct_triples,
        incorrect=dataset.incorrect_triples,
        alias_map=dataset.alias_map,
    )


def full_truth_sample(dataset: CategoryDataset) -> TruthSample:
    """Unbiased truth: adds each product's full attribute assignment.

    Useful for recall-style diagnostics; the paper's evaluation (and
    all reproduction benches) use :func:`build_truth_sample` instead.
    """
    assignment_triples = {
        Triple(generated.page.product_id, attribute, value_key)
        for generated in dataset.pages
        for attribute, value_key in generated.assignment.items()
    }
    return TruthSample(
        correct=frozenset(assignment_triples | set(dataset.correct_triples)),
        incorrect=dataset.incorrect_triples,
        alias_map=dataset.alias_map,
    )
