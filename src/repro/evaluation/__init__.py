"""Evaluation: the paper's truth-sample protocol and metrics.

Section VI-B/C: a truth sample of annotated triples (built from an
early system version, so recall-biased), precision over
correct / incorrect / maybe-incorrect triples, and product *coverage*
as the recall surrogate.

Because our corpus is synthetic, the generator's exact ground truth is
also available; :func:`build_truth_sample` reproduces the paper's biased
protocol on top of it, and :class:`TruthSample` can alternatively be
built from the full ground truth for unbiased diagnostics the paper
could not run.
"""

from .analysis import ErrorBuckets, error_buckets
from .metrics import (
    PrecisionBreakdown,
    attribute_coverage,
    coverage,
    pair_precision,
    precision,
    triples_per_product,
)
from .report import format_table, iteration_report
from .truth import TruthSample, build_truth_sample, full_truth_sample

__all__ = [
    "ErrorBuckets",
    "PrecisionBreakdown",
    "TruthSample",
    "attribute_coverage",
    "build_truth_sample",
    "coverage",
    "error_buckets",
    "format_table",
    "full_truth_sample",
    "iteration_report",
    "pair_precision",
    "precision",
    "triples_per_product",
]
