"""The paper's metrics (Section VI-C).

Precision buckets a system triple as:

* **correct** — occurs in the truth sample marked correct;
* **incorrect** — occurs in the truth sample marked incorrect;
* **maybe incorrect** — the product and attribute coincide with some
  correct triple but the value disagrees ("we assume it is wrong");
* **spurious** — anything else. The paper has no such bucket because
  its truth sample was annotated *from* system output, so annotators
  judged every triple; with a pre-generated synthetic truth, a system
  triple matching nothing was never truthfully stated anywhere and is
  therefore wrong by construction. It counts against precision like
  the other error buckets, and is reported separately for diagnosis.

``precision = correct / (correct + incorrect + maybe_incorrect +
spurious)``.

Coverage is the paper's recall surrogate: the fraction of input
products for which at least one triple was produced.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..corpus.validity import PairValidator
from ..types import AttributeValuePair, Triple
from .truth import TruthSample


@dataclass(frozen=True, slots=True)
class PrecisionBreakdown:
    """Counts behind one precision figure."""

    correct: int
    incorrect: int
    maybe_incorrect: int
    spurious: int

    @property
    def judged(self) -> int:
        return (
            self.correct
            + self.incorrect
            + self.maybe_incorrect
            + self.spurious
        )

    @property
    def precision(self) -> float:
        """The paper's precision; 0.0 when nothing was judged."""
        if self.judged == 0:
            return 0.0
        return self.correct / self.judged

    @property
    def total(self) -> int:
        return self.judged


def precision(
    system_triples: Iterable[Triple],
    truth: TruthSample,
) -> PrecisionBreakdown:
    """Bucket system triples against a truth sample.

    System attribute names are canonicalized through the sample's alias
    map first (annotators treat alias names as the same attribute).
    """
    canonical = truth.canonicalize_all(system_triples)
    correct_keys = truth.correct_keys()
    correct = incorrect = maybe = spurious = 0
    for triple in canonical:
        if triple in truth.correct:
            correct += 1
        elif triple in truth.incorrect:
            incorrect += 1
        elif (triple.product_id, triple.attribute) in correct_keys:
            maybe += 1
        else:
            spurious += 1
    return PrecisionBreakdown(correct, incorrect, maybe, spurious)


def pair_precision(
    pairs: Iterable[AttributeValuePair],
    validator: PairValidator,
    alias_map: Mapping[str, str] | None = None,
) -> float:
    """Fraction of ``<attribute, value>`` pairs that are valid
    associations (Table I's "Precision Pairs").

    Args:
        pairs: distinct system pairs.
        validator: structural validity judge.
        alias_map: optional surface → canonical attribute map.
    """
    alias_map = alias_map or {}
    total = 0
    valid = 0
    for pair in pairs:
        total += 1
        attribute = alias_map.get(pair.attribute, pair.attribute)
        if validator.is_valid(attribute, pair.value):
            valid += 1
    if total == 0:
        return 0.0
    return valid / total


def coverage(
    system_triples: Iterable[Triple],
    product_count: int,
) -> float:
    """Fraction of products with at least one triple."""
    if product_count == 0:
        return 0.0
    covered = {triple.product_id for triple in system_triples}
    return len(covered) / product_count


def triple_coverage(
    system_triples: Iterable[Triple],
    truth: TruthSample,
) -> float:
    """Fraction of the truth sample's correct triples the system found
    (Table I's "Coverage Triples")."""
    if not truth.correct:
        return 0.0
    canonical = truth.canonicalize_all(system_triples)
    return len(canonical & truth.correct) / len(truth.correct)


def attribute_coverage(
    system_triples: Iterable[Triple],
    product_count: int,
    alias_map: Mapping[str, str] | None = None,
) -> dict[str, float]:
    """Per-attribute product coverage (Figures 7 and 8).

    Returns canonical attribute → fraction of products carrying a
    triple for that attribute.
    """
    alias_map = alias_map or {}
    products: dict[str, set[str]] = defaultdict(set)
    for triple in system_triples:
        attribute = alias_map.get(triple.attribute, triple.attribute)
        products[attribute].add(triple.product_id)
    if product_count == 0:
        return {attribute: 0.0 for attribute in products}
    return {
        attribute: len(ids) / product_count
        for attribute, ids in products.items()
    }


def triples_per_product(
    system_triples: Sequence[Triple] | frozenset[Triple],
    product_count: int,
) -> float:
    """Average triples per input product (Figure 4)."""
    if product_count == 0:
        return 0.0
    return len(set(system_triples)) / product_count
