"""Plain-text reporting helpers shared by benches and examples."""

from __future__ import annotations

from typing import Sequence

from ..core.bootstrap import BootstrapResult
from .metrics import coverage, precision
from .truth import TruthSample


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table (the benches print these)."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    text_rows = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in text_rows))
        if text_rows
        else len(headers[column])
        for column in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def iteration_report(
    result: BootstrapResult,
    truth: TruthSample,
    product_count: int,
) -> str:
    """Per-iteration precision/coverage table for one bootstrap run."""
    rows: list[list[object]] = []
    for iteration in range(len(result.iterations) + 1):
        triples = result.triples_after(iteration)
        breakdown = precision(triples, truth)
        rows.append(
            [
                iteration,
                len(triples),
                100.0 * breakdown.precision,
                100.0 * coverage(triples, product_count),
            ]
        )
    return format_table(
        ["iteration", "#triples", "precision%", "coverage%"], rows
    )
