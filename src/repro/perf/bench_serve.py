"""Serve-path benchmark (``make bench-serve``).

Stands up a real daemon — trained CRF bundle, warm registry, full
robustness pipeline, stdlib HTTP — and measures it from the outside
with concurrent HTTP clients:

* ``throughput`` — N concurrent clients (default 8) hammering
  ``POST /extract`` with clean text requests: p50/p90/p99 latency and
  requests/second;
* ``overload`` — the same burst against a deliberately tiny admission
  capacity, counting shed (429) responses and verifying load-shedding
  latency stays flat;
* ``chaos`` — a seeded fault plan (worker deaths, corrupt payloads,
  dirty HTML) driven concurrently, recording the shed/quarantine/
  breaker counters the daemon accumulated.

Usage::

    PYTHONPATH=src python -m repro.perf.bench_serve --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import statistics
import tempfile
import threading
import time


def _train_bundle(root: str) -> None:
    """Publish a small trained bundle on the synthetic ja task."""
    import random

    from ..config import CrfConfig
    from ..ml.crf import CrfTagger
    from ..nlp import get_locale
    from ..serve import publish_bundle
    from ..types import Sentence, TaggedSentence

    ja = get_locale("ja")
    colors = ["aka", "ao", "shiro", "kuro", "midori"]
    weights = ["2 kg", "3 kg", "5 kg", "1 . 5 kg"]
    rng = random.Random(0)
    data = []
    for index in range(150):
        color = rng.choice(colors)
        weight = rng.choice(weights)
        tokens = ja.tokens(
            f"iro wa {color} desu soshite juryo wa {weight} desu"
        )
        texts = [token.text for token in tokens]
        labels = ["O"] * len(tokens)
        labels[texts.index(color)] = "B-iro"
        weight_tokens = weight.split()
        for start in range(len(texts)):
            if texts[start:start + len(weight_tokens)] == weight_tokens:
                labels[start] = "B-juryo"
                for offset in range(1, len(weight_tokens)):
                    labels[start + offset] = "I-juryo"
                break
        data.append(
            TaggedSentence(Sentence(f"p{index}", 0, tokens), tuple(labels))
        )
    tagger = CrfTagger(CrfConfig(max_iterations=40)).train(data)
    dictionary = {"iro": colors, "juryo": weights}
    publish_bundle(root, "v1", tagger, dictionary, "ja")


def _drive(
    server, bodies: list[bytes], clients: int
) -> tuple[list[float], dict[int, int]]:
    """Fan ``bodies`` over ``clients`` threads; return latencies + statuses."""
    host, port = server.server_address[:2]
    latencies: list[float] = []
    statuses: dict[int, int] = {}
    lock = threading.Lock()
    start = threading.Barrier(clients)

    def client(chunk: list[bytes]) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=30)
        start.wait()
        try:
            for body in chunk:
                began = time.perf_counter()
                connection.request(
                    "POST", "/extract", body,
                    {"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                elapsed = time.perf_counter() - began
                with lock:
                    latencies.append(elapsed)
                    statuses[response.status] = (
                        statuses.get(response.status, 0) + 1
                    )
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(bodies[i::clients],))
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, statuses


def _latency_summary(latencies: list[float]) -> dict:
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "count": len(ordered),
        "p50_ms": round(1000 * statistics.median(ordered), 3),
        "p90_ms": round(1000 * pct(0.90), 3),
        "p99_ms": round(1000 * pct(0.99), 3),
        "max_ms": round(1000 * ordered[-1], 3),
    }


def _clean_bodies(count: int) -> list[bytes]:
    return [
        json.dumps(
            {
                "product_id": f"bench{index}",
                "text": "iro wa aka desu soshite juryo wa 3 kg desu",
            }
        ).encode()
        for index in range(count)
    ]


def run_bench(clients: int, requests: int) -> dict:
    from ..config import ServeConfig
    from ..runtime.faults import FaultPlan, FaultSpec
    from ..serve import ExtractionService, ModelRegistry, start_server

    result: dict = {
        "config": {"clients": clients, "requests": requests},
    }
    with tempfile.TemporaryDirectory() as root:
        train_started = time.perf_counter()
        _train_bundle(root)
        registry = ModelRegistry(root)
        registry.activate_latest()
        result["setup"] = {
            "train_and_publish_seconds": round(
                time.perf_counter() - train_started, 3
            ),
            "warmup_seconds": round(registry.last_warmup_seconds, 6),
        }

        # Phase 1: clean throughput at N concurrent clients.
        service = ExtractionService(
            registry, ServeConfig(queue_capacity=max(64, 2 * clients))
        )
        server, thread = start_server(service)
        began = time.perf_counter()
        latencies, statuses = _drive(
            server, _clean_bodies(requests), clients
        )
        wall = time.perf_counter() - began
        server.shutdown()
        thread.join(timeout=5)
        service.close()
        assert statuses.get(200, 0) == requests, statuses
        result["throughput"] = {
            "latency": _latency_summary(latencies),
            "wall_seconds": round(wall, 3),
            "requests_per_second": round(requests / wall, 1),
            "statuses": statuses,
            "batches": service.batcher.batches,
            "batched_jobs": service.batcher.batched_jobs,
        }

        # Phase 2: overload a tiny admission capacity; shed must be
        # fast and structured, never queued.
        service = ExtractionService(registry, ServeConfig(queue_capacity=2))
        server, thread = start_server(service)
        began = time.perf_counter()
        latencies, statuses = _drive(
            server, _clean_bodies(requests), clients
        )
        wall = time.perf_counter() - began
        server.shutdown()
        thread.join(timeout=5)
        service.close()
        admission = service.admission.stats()
        result["overload"] = {
            "latency": _latency_summary(latencies),
            "statuses": statuses,
            "shed": admission["shed"],
            "admitted": admission["admitted"],
            "wall_seconds": round(wall, 3),
        }

        # Phase 3: seeded chaos — the counters the ISSUE asks for.
        plan = FaultPlan(
            [
                FaultSpec(
                    stage="serve_tag", kind="worker_death", times=6
                ),
                FaultSpec(
                    stage="serve_payload", kind="corrupt_payload",
                    times=5,
                ),
            ],
            seed=29,
        )
        service = ExtractionService(
            registry,
            ServeConfig(
                queue_capacity=max(64, 2 * clients),
                breaker_threshold=3,
                breaker_cooldown_seconds=0.2,
            ),
            faults=plan,
        )
        server, thread = start_server(service)
        bodies = _clean_bodies(requests)
        for index in range(0, len(bodies), 10):
            bodies[index] = json.dumps(
                {
                    "product_id": f"dirty{index}",
                    "html": "<p>iro wa ao desu�</p>",
                }
            ).encode()
        latencies, statuses = _drive(server, bodies, clients)
        server.shutdown()
        thread.join(timeout=5)
        stats = service.stats()
        service.close()
        result["chaos"] = {
            "latency": _latency_summary(latencies),
            "statuses": statuses,
            "injected": {
                f"{stage}:{kind}": count
                for (stage, kind), count in plan.injected.items()
            },
            "counters": stats["counters"],
            "ladder": stats["ladder"],
            "quarantined_by_check": stats["quarantined_by_check"],
        }
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the serve daemon over real HTTP."
    )
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent HTTP clients (default 8)",
    )
    parser.add_argument(
        "--requests", type=int, default=400,
        help="total requests per phase (default 400)",
    )
    args = parser.parse_args(argv)
    result = run_bench(args.clients, args.requests)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    throughput = result["throughput"]
    print(
        f"throughput: {throughput['requests_per_second']} req/s "
        f"p50={throughput['latency']['p50_ms']}ms "
        f"p99={throughput['latency']['p99_ms']}ms "
        f"({args.clients} clients)"
    )
    print(
        f"overload:   shed={result['overload']['shed']} "
        f"statuses={result['overload']['statuses']}"
    )
    print(
        f"chaos:      statuses={result['chaos']['statuses']} "
        f"counters={result['chaos']['counters']}"
    )
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
