"""Streamed-bootstrap scale benchmark (``make bench-scale``).

Measures the sharded, bounded-memory pipeline
(:meth:`~repro.core.pipeline.PAEPipeline.run_streamed`) at increasing
corpus sizes — 1k / 10k / 100k pages by default — and writes a JSON
artifact recording pages/sec, peak RSS, shard counts and per-stage
wall-clock shares at every scale. Each scale runs in a **fresh child
process**: Linux's ``VmHWM`` is a lifetime high-water mark, so sharing
one process across scales would report the largest scale's peak for
all of them.

Every scale is measured twice against one prep-cache directory:

* **cold** — empty cache; pays full ``shard_prep`` and seeds the
  cache (:mod:`repro.perf.prep_cache`);
* **warm** — same source, same cache; ``shard_prep`` degenerates to
  artifact replay. This is the steady state of iterative/resumed runs,
  so the headline ``pages_per_second`` and the ``next_target`` stage
  accounting are read off the warm run. Corpus/query-log generation is
  accounted as a ``querylog`` pseudo-stage so it can surface as the
  next target instead of hiding outside the stage ledger.

The two phases run in **separate child processes** sharing the cache
directory: ``VmHWM`` is a process-lifetime high-water mark, so a
shared process would report the cold run's (larger) peak as the warm
run's too. Each phase record carries its own honest peak; the scale's
headline ``peak_rss_mb`` is the warm phase's. The parent cross-checks
a digest of each phase's final triples, so the cached replay is still
proven bit-identical to the cold run despite the process split.

Two auxiliary modes:

* ``--one N --phase cold|warm --cache-dir DIR`` — the child entry
  point: run a single scale's single phase in this process and write
  its JSON record to ``--out``.
* ``--smoke`` — the pre-merge gate (wired into ``make verify``): run
  the 120-product bench corpus monolithically and through the sharded
  path — prep cache cold, prep cache warm, and prep cache disabled —
  and exit non-zero unless every streamed run produced bit-identical
  triples and per-iteration records.

Usage::

    PYTHONPATH=src python -m repro.perf.bench_scale --out BENCH_scale.json
    PYTHONPATH=src python -m repro.perf.bench_scale --smoke

With ``--profile``, each child folds its cProfile top functions (by
cumulative time) into the record. The profile covers the whole warm
run **in the parent process only** — shard prep and tagging execute in
worker processes, which cProfile cannot see; treat it as a map of the
parent-side merge/train/reduce cost, not of worker CPU.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time

#: Scales above this run without the word2vec semantic-drift filter:
#: its training corpus is O(pages) token sentences held at once, which
#: is exactly the unbounded-memory pattern this bench exists to avoid.
SEMANTIC_CUTOFF = 10_000

#: Labeled-sentence cap for scale runs: keeps CRF training cost flat
#: as the corpus grows, so the measured scaling is the per-page work
#: (ingest, tokenize, tag) rather than a quadratically fattening
#: training set. Recorded in the artifact.
SCALE_LABEL_CAP = 2_000

#: Functions kept from a ``--profile`` run, by cumulative time.
PROFILE_TOP_N = 15


def _profile_rows(profiler, top_n: int = PROFILE_TOP_N) -> list[dict]:
    """Top ``top_n`` profiled functions by cumulative time, as dicts."""
    import pstats

    stats = pstats.Stats(profiler)
    ranked = sorted(
        stats.stats.items(),
        key=lambda item: item[1][3],
        reverse=True,
    )
    rows = []
    for (filename, line, name), entry in ranked[:top_n]:
        _, ncalls, tottime, cumtime, _ = entry
        rows.append(
            {
                "function": f"{filename}:{line}:{name}",
                "calls": ncalls,
                "cumulative_seconds": round(cumtime, 4),
                "internal_seconds": round(tottime, 4),
            }
        )
    return rows


def _measured_run(
    config,
    source,
    query_log,
    cache_dir: str,
    label: str,
    profile: bool = False,
):
    """One streamed run; returns ``(result, record, profile_rows)``."""
    from ..core.pipeline import PAEPipeline
    from ..runtime.trace import PipelineTrace

    trace = PipelineTrace(label=label)
    profiler = None
    if profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    start = time.perf_counter()
    result = PAEPipeline(config).run_streamed(
        source, query_log, trace=trace, cache_dir=cache_dir
    )
    wall = time.perf_counter() - start
    if profiler is not None:
        profiler.disable()
    stage_totals = trace.stage_totals()
    stage_sum = sum(stage_totals.values()) or 1e-9
    prep_cache = result.perf_counters()["prep_cache"]
    record = {
        "wall_seconds": wall,
        "pages_per_second": source.page_count / max(wall, 1e-9),
        "prep_cache": prep_cache,
        "stage_seconds": {
            stage: seconds
            for stage, seconds in sorted(stage_totals.items())
        },
        "stage_share": {
            stage: seconds / stage_sum
            for stage, seconds in sorted(stage_totals.items())
        },
    }
    rows = _profile_rows(profiler) if profiler is not None else None
    return result, record, rows


def _triples_digest(triples) -> str:
    """Order-insensitive digest of a run's final triples."""
    import hashlib

    canonical = "\n".join(sorted(map(repr, triples)))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_phase(
    pages: int,
    shard_size: int,
    iterations: int,
    seed: int,
    category: str,
    semantic: bool,
    label_cap: int | None,
    phase: str,
    cache_dir: str,
    profile: bool = False,
) -> dict:
    """Run one scale's cold *or* warm phase in this process.

    The parent runs each phase in its own child against a shared
    ``cache_dir`` (cold seeds it, warm replays it) precisely so this
    process's ``peak_rss_bytes`` covers exactly one phase — the
    high-water mark cannot be confounded by the other phase's
    footprint. ``triples_digest`` lets the parent assert cold/warm
    bit-identity across the process boundary.
    """
    from ..config import PipelineConfig
    from ..corpus.stream import GeneratedPageSource

    config = PipelineConfig(
        iterations=iterations,
        seed=seed,
        enable_semantic_cleaning=semantic,
        max_labeled_sentences=label_cap,
    )
    source = GeneratedPageSource(
        category, pages, shard_size=shard_size, seed=seed
    )
    build_start = time.perf_counter()
    query_log = source.build_query_log()
    querylog_seconds = time.perf_counter() - build_start
    result, record, profile_top = _measured_run(
        config, source, query_log, cache_dir,
        label=f"scale-{pages}-{phase}",
        profile=profile and phase == "warm",
    )
    peak = result.resilience_counters()["peak_rss_bytes"]
    record.update(
        {
            "phase": phase,
            "pages": pages,
            "shard_size": shard_size,
            "shard_count": source.shard_count,
            "iterations": iterations,
            "semantic_cleaning": semantic,
            "max_labeled_sentences": label_cap,
            "querylog_seconds": querylog_seconds,
            "peak_rss_bytes": peak,
            "peak_rss_mb": peak / (1024 * 1024),
            "triples": len(result.triples),
            "coverage": result.coverage(),
            "triples_digest": _triples_digest(result.triples),
        }
    )
    if profile_top is not None:
        record["profile"] = {
            "scope": "warm run, parent process only",
            "top_cumulative": profile_top,
        }
    return record


def _next_target(record: dict) -> dict:
    """The next optimisation target for one scale record.

    Candidates are the warm run's traced stages **plus** corpus/query-
    log generation (``querylog``), which runs before the pipeline and
    is invisible to the stage trace.
    """
    candidates = dict(record["warm"]["stage_seconds"])
    candidates["querylog"] = record["querylog_seconds"]
    total = sum(candidates.values()) or 1e-9
    stage, seconds = max(candidates.items(), key=lambda item: item[1])
    return {"stage": stage, "share": seconds / total}


def run_scales(
    scales: list[int],
    shard_size: int,
    iterations: int,
    seed: int,
    category: str,
    profile: bool = False,
) -> dict:
    """Run every scale in a fresh child process; return the payload."""
    import os

    def child_record(
        pages: int, semantic: bool, phase: str, cache_dir: str
    ) -> dict:
        with tempfile.NamedTemporaryFile(
            mode="r", suffix=".json", delete=False
        ) as handle:
            child_out = handle.name
        command = [
            sys.executable, "-m", "repro.perf.bench_scale",
            "--one", str(pages),
            "--phase", phase,
            "--cache-dir", cache_dir,
            "--out", child_out,
            "--shard-size", str(shard_size),
            "--iterations", str(iterations),
            "--seed", str(seed),
            "--category", category,
        ]
        if not semantic:
            command.append("--no-semantic")
        if profile and phase == "warm":
            command.append("--profile")
        subprocess.run(command, check=True)
        with open(child_out, encoding="utf-8") as handle:
            record = json.load(handle)
        os.unlink(child_out)
        return record

    records: dict[str, dict] = {}
    for pages in scales:
        semantic = pages <= SEMANTIC_CUTOFF
        print(
            f"running scale {pages} "
            f"(semantic={'on' if semantic else 'off'}) ...",
            flush=True,
        )
        # One child process per phase, sharing the prep-cache
        # directory: each child's VmHWM then measures exactly its own
        # phase instead of inheriting the cold run's high-water mark.
        with tempfile.TemporaryDirectory(
            prefix="bench-prep-"
        ) as cache_dir:
            cold = child_record(pages, semantic, "cold", cache_dir)
            warm = child_record(pages, semantic, "warm", cache_dir)
        if warm["triples_digest"] != cold["triples_digest"]:
            raise AssertionError(
                f"scale {pages}: warm (cached) run diverged from "
                "cold run"
            )
        record = {
            "pages": pages,
            "shard_size": shard_size,
            "shard_count": warm["shard_count"],
            "iterations": iterations,
            "semantic_cleaning": semantic,
            "max_labeled_sentences": warm["max_labeled_sentences"],
            "querylog_seconds": warm["querylog_seconds"],
            # Headline throughput and peak: the warm (steady-state)
            # run, measured in its own process.
            "wall_seconds": warm["wall_seconds"],
            "pages_per_second": warm["pages_per_second"],
            "cold": cold,
            "warm": warm,
            "warm_speedup": (
                cold["wall_seconds"] / max(warm["wall_seconds"], 1e-9)
            ),
            "peak_rss_bytes": warm["peak_rss_bytes"],
            "peak_rss_mb": warm["peak_rss_mb"],
            "triples": warm["triples"],
            "coverage": warm["coverage"],
        }
        if "profile" in warm:
            record["profile"] = warm["profile"]
        records[str(pages)] = record
        print(
            f"  {pages} pages: cold {record['cold']['wall_seconds']:.1f}s"
            f" / warm {record['warm']['wall_seconds']:.1f}s"
            f" ({record['warm_speedup']:.2f}x), "
            f"{record['pages_per_second']:.1f} pages/s warm, "
            f"peak warm {record['peak_rss_mb']:.0f} MB / "
            f"cold {record['cold']['peak_rss_mb']:.0f} MB, "
            f"{record['shard_count']} shards",
            flush=True,
        )
    largest = records[str(max(scales))]
    return {
        "schema": 3,
        "config": {
            "scales": scales,
            "shard_size": shard_size,
            "iterations": iterations,
            "seed": seed,
            "category": category,
            "semantic_cutoff": SEMANTIC_CUTOFF,
            "max_labeled_sentences": SCALE_LABEL_CAP,
        },
        "cpu_count": os.cpu_count(),
        "scales": records,
        # The next perf target, read off the largest scale's warm
        # (cached steady-state) run: the stage — including querylog
        # generation — holding the biggest share of wall clock.
        "next_target": _next_target(largest),
    }


def run_smoke(products: int = 120, iterations: int = 2) -> int:
    """Assert sharded == monolithic on the bench corpus; 0 on success.

    Streamed runs cover three prep-cache regimes — cold (seeding the
    cache), warm (replaying it; must record hits for every shard) and
    disabled (``enable_prep_cache=False``) — so the bit-identity gate
    holds with the cache on and off.
    """
    from ..config import PipelineConfig
    from ..core.pipeline import PAEPipeline
    from ..corpus import Marketplace
    from ..corpus.stream import MaterializedPageSource

    category, seed = "vacuum_cleaner", 7
    dataset = Marketplace(seed=seed).generate(category, products)
    monolithic = PAEPipeline(
        PipelineConfig(iterations=iterations, seed=seed)
    ).run(dataset.product_pages, dataset.query_log)

    def check(streamed, label: str) -> bool:
        if streamed.triples != monolithic.triples:
            print(f"SMOKE FAIL ({label}): final triples differ")
            return False
        if streamed.seed_triples != monolithic.seed_triples:
            print(f"SMOKE FAIL ({label}): seed triples differ")
            return False
        for mono_it, stream_it in zip(
            monolithic.bootstrap.iterations,
            streamed.bootstrap.iterations,
        ):
            if (
                mono_it.new_triples != stream_it.new_triples
                or mono_it.candidate_extractions
                != stream_it.candidate_extractions
                or mono_it.veto_stats != stream_it.veto_stats
                or mono_it.semantic_stats != stream_it.semantic_stats
                or mono_it.dataset_sentences
                != stream_it.dataset_sentences
            ):
                print(
                    f"SMOKE FAIL ({label}): iteration "
                    f"{mono_it.iteration} records differ"
                )
                return False
        print(
            f"smoke ok ({label}): {len(streamed.triples)} triples "
            f"bit-identical to monolithic"
        )
        return True

    checks = 0
    # Cached path: a cold run seeding the prep cache, then a warm run
    # replaying it — both must be bit-identical to monolithic, and the
    # warm one must actually have hit the cache for every shard.
    shard_size, workers = 60, 1
    cached = PAEPipeline(PipelineConfig(iterations=iterations, seed=seed))
    source = MaterializedPageSource(
        dataset.product_pages, shard_size=shard_size, category=category
    )
    with tempfile.TemporaryDirectory(prefix="smoke-prep-") as cache_dir:
        for phase in ("cache-cold", "cache-warm"):
            streamed = cached.run_streamed(
                source,
                dataset.query_log,
                shard_workers=workers,
                cache_dir=cache_dir,
            )
            label = f"shard_size={shard_size} workers={workers} {phase}"
            if not check(streamed, label):
                return 1
            checks += 1
        hits = streamed.perf_counters()["prep_cache"]["hits"]
        if hits != source.shard_count:
            print(
                f"SMOKE FAIL (cache-warm): expected "
                f"{source.shard_count} prep-cache hits, got {hits}"
            )
            return 1
    # Uncached path: the cache disabled outright.
    shard_size, workers = 25, 2
    uncached = PAEPipeline(
        PipelineConfig(
            iterations=iterations, seed=seed, enable_prep_cache=False
        )
    )
    streamed = uncached.run_streamed(
        MaterializedPageSource(
            dataset.product_pages,
            shard_size=shard_size,
            category=category,
        ),
        dataset.query_log,
        shard_workers=workers,
    )
    if not check(
        streamed, f"shard_size={shard_size} workers={workers} no-cache"
    ):
        return 1
    checks += 1
    print(f"SMOKE OK: {checks} streamed runs bit-identical")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the streamed bootstrap at paper scale."
    )
    parser.add_argument("--out", default="BENCH_scale.json", metavar="PATH")
    parser.add_argument(
        "--scales", default="1000,10000,100000",
        help="comma-separated page counts (default 1000,10000,100000)",
    )
    parser.add_argument("--shard-size", type=int, default=1000)
    # Two iterations: one is all-prep, two shows the cross-iteration
    # shape (tagging repeats, prep does not) the cache targets.
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--category", default="vacuum_cleaner")
    parser.add_argument(
        "--one", type=int, default=None, metavar="PAGES",
        help="child mode: run a single scale's single phase in this "
        "process (requires --phase and --cache-dir)",
    )
    parser.add_argument(
        "--phase", choices=("cold", "warm"), default=None,
        help="child mode: which prep-cache phase this process measures",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="child mode: shared prep-cache directory (cold seeds it, "
        "warm replays it)",
    )
    parser.add_argument(
        "--no-semantic", action="store_true",
        help="child mode: disable the semantic-drift filter",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "fold each scale's cProfile top functions (cumulative, "
            "parent process, warm run) into the record"
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the sharded-vs-monolithic bit-identity gate and exit",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    if args.one is not None:
        if args.phase is None or args.cache_dir is None:
            parser.error("--one requires --phase and --cache-dir")
        record = run_phase(
            args.one,
            args.shard_size,
            args.iterations,
            args.seed,
            args.category,
            semantic=not args.no_semantic,
            label_cap=SCALE_LABEL_CAP,
            phase=args.phase,
            cache_dir=args.cache_dir,
            profile=args.profile,
        )
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        return 0
    scales = [
        int(value.strip())
        for value in args.scales.split(",")
        if value.strip()
    ]
    payload = run_scales(
        scales,
        args.shard_size,
        args.iterations,
        args.seed,
        args.category,
        profile=args.profile,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    largest = payload["scales"][str(max(scales))]
    print(
        f"largest scale: {largest['pages']} pages at "
        f"{largest['pages_per_second']:.1f} pages/s warm "
        f"({largest['warm_speedup']:.2f}x over cold), "
        f"peak {largest['peak_rss_mb']:.0f} MB; next target: "
        f"{payload['next_target']['stage']} "
        f"({payload['next_target']['share']:.0%})"
    )
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
