"""Streamed-bootstrap scale benchmark (``make bench-scale``).

Measures the sharded, bounded-memory pipeline
(:meth:`~repro.core.pipeline.PAEPipeline.run_streamed`) at increasing
corpus sizes — 1k / 10k / 100k pages by default — and writes a JSON
artifact recording pages/sec, peak RSS, shard counts and per-stage
wall-clock shares at every scale. Each scale runs in a **fresh child
process**: Linux's ``VmHWM`` is a lifetime high-water mark, so sharing
one process across scales would report the largest scale's peak for
all of them.

Two auxiliary modes:

* ``--one N`` — the child entry point: run a single scale in this
  process and write its JSON record to ``--out``.
* ``--smoke`` — the pre-merge gate (wired into ``make verify``): run
  the 120-product bench corpus monolithically and through the sharded
  path at two shard-size/worker-count combinations and exit non-zero
  unless all three produced bit-identical triples and per-iteration
  records.

Usage::

    PYTHONPATH=src python -m repro.perf.bench_scale --out BENCH_scale.json
    PYTHONPATH=src python -m repro.perf.bench_scale --smoke

The headline numbers are ``pages_per_second`` (throughput) and
``peak_rss_mb`` (memory boundedness) per scale; ``stage_share`` makes
the next optimisation target auditable from the artifact alone.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time

#: Scales above this run without the word2vec semantic-drift filter:
#: its training corpus is O(pages) token sentences held at once, which
#: is exactly the unbounded-memory pattern this bench exists to avoid.
SEMANTIC_CUTOFF = 10_000

#: Labeled-sentence cap for scale runs: keeps CRF training cost flat
#: as the corpus grows, so the measured scaling is the per-page work
#: (ingest, tokenize, tag) rather than a quadratically fattening
#: training set. Recorded in the artifact.
SCALE_LABEL_CAP = 2_000


def run_one(
    pages: int,
    shard_size: int,
    iterations: int,
    seed: int,
    category: str,
    semantic: bool,
    label_cap: int | None,
) -> dict:
    """Run one streamed bootstrap at ``pages`` scale; return its record."""
    from ..config import PipelineConfig
    from ..core.pipeline import PAEPipeline
    from ..corpus.stream import GeneratedPageSource
    from ..runtime.trace import PipelineTrace

    config = PipelineConfig(
        iterations=iterations,
        seed=seed,
        enable_semantic_cleaning=semantic,
        max_labeled_sentences=label_cap,
    )
    source = GeneratedPageSource(
        category, pages, shard_size=shard_size, seed=seed
    )
    build_start = time.perf_counter()
    query_log = source.build_query_log()
    querylog_seconds = time.perf_counter() - build_start
    trace = PipelineTrace(label=f"scale-{pages}")
    start = time.perf_counter()
    result = PAEPipeline(config).run_streamed(
        source, query_log, trace=trace
    )
    wall = time.perf_counter() - start
    stage_totals = trace.stage_totals()
    stage_sum = sum(stage_totals.values()) or 1e-9
    peak = result.resilience_counters()["peak_rss_bytes"]
    return {
        "pages": pages,
        "shard_size": shard_size,
        "shard_count": source.shard_count,
        "iterations": iterations,
        "semantic_cleaning": semantic,
        "max_labeled_sentences": label_cap,
        "wall_seconds": wall,
        "querylog_seconds": querylog_seconds,
        "pages_per_second": pages / max(wall, 1e-9),
        "peak_rss_bytes": peak,
        "peak_rss_mb": peak / (1024 * 1024),
        "stage_seconds": {
            stage: seconds
            for stage, seconds in sorted(stage_totals.items())
        },
        "stage_share": {
            stage: seconds / stage_sum
            for stage, seconds in sorted(stage_totals.items())
        },
        "triples": len(result.triples),
        "coverage": result.coverage(),
    }


def run_scales(
    scales: list[int],
    shard_size: int,
    iterations: int,
    seed: int,
    category: str,
) -> dict:
    """Run every scale in a fresh child process; return the payload."""
    import os

    records: dict[str, dict] = {}
    for pages in scales:
        semantic = pages <= SEMANTIC_CUTOFF
        print(
            f"running scale {pages} "
            f"(semantic={'on' if semantic else 'off'}) ...",
            flush=True,
        )
        with tempfile.NamedTemporaryFile(
            mode="r", suffix=".json", delete=False
        ) as handle:
            child_out = handle.name
        command = [
            sys.executable, "-m", "repro.perf.bench_scale",
            "--one", str(pages),
            "--out", child_out,
            "--shard-size", str(shard_size),
            "--iterations", str(iterations),
            "--seed", str(seed),
            "--category", category,
        ]
        if not semantic:
            command.append("--no-semantic")
        subprocess.run(command, check=True)
        with open(child_out, encoding="utf-8") as handle:
            record = json.load(handle)
        os.unlink(child_out)
        records[str(pages)] = record
        print(
            f"  {pages} pages: {record['wall_seconds']:.1f}s, "
            f"{record['pages_per_second']:.1f} pages/s, "
            f"peak {record['peak_rss_mb']:.0f} MB, "
            f"{record['shard_count']} shards",
            flush=True,
        )
    largest = records[str(max(scales))]
    top_stage = max(
        largest["stage_share"].items(), key=lambda item: item[1]
    )
    return {
        "schema": 1,
        "config": {
            "scales": scales,
            "shard_size": shard_size,
            "iterations": iterations,
            "seed": seed,
            "category": category,
            "semantic_cutoff": SEMANTIC_CUTOFF,
            "max_labeled_sentences": SCALE_LABEL_CAP,
        },
        "cpu_count": os.cpu_count(),
        "scales": records,
        # The next perf target, read off the largest scale: the stage
        # holding the biggest share of traced wall clock.
        "next_target": {
            "stage": top_stage[0],
            "share": top_stage[1],
        },
    }


def run_smoke(products: int = 120, iterations: int = 2) -> int:
    """Assert sharded == monolithic on the bench corpus; 0 on success."""
    from ..config import PipelineConfig
    from ..core.pipeline import PAEPipeline
    from ..corpus import Marketplace
    from ..corpus.stream import MaterializedPageSource

    category, seed = "vacuum_cleaner", 7
    dataset = Marketplace(seed=seed).generate(category, products)
    pipeline = PAEPipeline(
        PipelineConfig(iterations=iterations, seed=seed)
    )
    monolithic = pipeline.run(dataset.product_pages, dataset.query_log)
    combos = [(60, 1), (25, 2)]
    for shard_size, workers in combos:
        source = MaterializedPageSource(
            dataset.product_pages,
            shard_size=shard_size,
            category=category,
        )
        streamed = pipeline.run_streamed(
            source, dataset.query_log, shard_workers=workers
        )
        label = f"shard_size={shard_size} workers={workers}"
        if streamed.triples != monolithic.triples:
            print(f"SMOKE FAIL ({label}): final triples differ")
            return 1
        if streamed.seed_triples != monolithic.seed_triples:
            print(f"SMOKE FAIL ({label}): seed triples differ")
            return 1
        for mono_it, stream_it in zip(
            monolithic.bootstrap.iterations,
            streamed.bootstrap.iterations,
        ):
            if (
                mono_it.new_triples != stream_it.new_triples
                or mono_it.candidate_extractions
                != stream_it.candidate_extractions
                or mono_it.veto_stats != stream_it.veto_stats
                or mono_it.semantic_stats != stream_it.semantic_stats
                or mono_it.dataset_sentences
                != stream_it.dataset_sentences
            ):
                print(
                    f"SMOKE FAIL ({label}): iteration "
                    f"{mono_it.iteration} records differ"
                )
                return 1
        print(
            f"smoke ok ({label}): {len(streamed.triples)} triples "
            f"bit-identical to monolithic"
        )
    print(f"SMOKE OK: {len(combos)} combos bit-identical")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the streamed bootstrap at paper scale."
    )
    parser.add_argument("--out", default="BENCH_scale.json", metavar="PATH")
    parser.add_argument(
        "--scales", default="1000,10000,100000",
        help="comma-separated page counts (default 1000,10000,100000)",
    )
    parser.add_argument("--shard-size", type=int, default=1000)
    parser.add_argument("--iterations", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--category", default="vacuum_cleaner")
    parser.add_argument(
        "--one", type=int, default=None, metavar="PAGES",
        help="child mode: run a single scale in this process",
    )
    parser.add_argument(
        "--no-semantic", action="store_true",
        help="child mode: disable the semantic-drift filter",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the sharded-vs-monolithic bit-identity gate and exit",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    if args.one is not None:
        record = run_one(
            args.one,
            args.shard_size,
            args.iterations,
            args.seed,
            args.category,
            semantic=not args.no_semantic,
            label_cap=SCALE_LABEL_CAP,
        )
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        return 0
    scales = [
        int(value.strip())
        for value in args.scales.split(",")
        if value.strip()
    ]
    payload = run_scales(
        scales,
        args.shard_size,
        args.iterations,
        args.seed,
        args.category,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    largest = payload["scales"][str(max(scales))]
    print(
        f"largest scale: {largest['pages']} pages at "
        f"{largest['pages_per_second']:.1f} pages/s, "
        f"peak {largest['peak_rss_mb']:.0f} MB; next target: "
        f"{payload['next_target']['stage']} "
        f"({payload['next_target']['share']:.0%})"
    )
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
