"""Cross-iteration feature caching for the bootstrap loop.

:meth:`~repro.ml.features.FeatureExtractor.extract` is a pure function
of a sentence's tokens and (bucketed) sentence number, yet the loop
re-runs it over the unchanged unlabeled corpus every iteration. A
:class:`FeatureCache` memoizes the extracted rows keyed by a content
digest of the sentence, with the feature strings *interned* to stable
integer ids so the design matrix can be assembled by array lookups
instead of per-call string hashing (see
:meth:`~repro.ml.features.FeatureIndexer.design_matrix_interned`).

One cache serves one :meth:`Bootstrapper.run`: the interner only ever
grows, so ids handed out in iteration 1 stay valid in iteration 5.
Caching is invisible in the output — a hit returns exactly the rows a
miss would recompute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..types import Sentence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # repro.ml's __init__ pulls in the CRF model, which imports this
    # module; the runtime import happens lazily in FeatureCache.
    from ..ml.features import FeatureExtractor


class FeatureInterner:
    """A stable feature-string → integer-id mapping that only grows."""

    __slots__ = ("_ids", "_tokens")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._tokens: list[str] = []

    def intern(self, feature: str) -> int:
        """The id of ``feature``, assigning the next free one if new."""
        feature_id = self._ids.get(feature)
        if feature_id is None:
            feature_id = len(self._tokens)
            self._ids[feature] = feature_id
            self._tokens.append(feature)
        return feature_id

    def token_of(self, feature_id: int) -> str:
        return self._tokens[feature_id]

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, feature: str) -> bool:
        return feature in self._ids


@dataclass(frozen=True)
class InternedRows:
    """One sentence's extracted features as interned ids.

    Attributes:
        ids: flat int64 array of feature ids, position-major.
        row_sizes: int64 array — features per position; ``ids`` split
            at its cumulative sums recovers the per-position rows.
    """

    ids: np.ndarray
    row_sizes: np.ndarray

    def __len__(self) -> int:
        """Number of token positions."""
        return len(self.row_sizes)


class FeatureCache:
    """Memoized, interned feature extraction for one bootstrap run.

    The cache key is a content digest — the sentence-number bucket the
    extractor actually uses plus every ``(text, pos)`` token pair — so
    two pages sharing boilerplate sentences hit the same entry even
    within a single iteration.

    Args:
        window: feature window of the owned extractor (must match the
            CRF config of every tagger sharing this cache).
        extractor: optionally, an existing extractor to wrap instead.
    """

    def __init__(
        self,
        window: int = 2,
        extractor: "FeatureExtractor | None" = None,
    ):
        from ..ml.features import FeatureExtractor

        self.extractor = extractor or FeatureExtractor(window=window)
        self.interner = FeatureInterner()
        self.hits = 0
        self.misses = 0
        self._rows: dict[tuple, InternedRows] = {}

    @staticmethod
    def content_key(sentence: Sentence) -> tuple:
        """The digest of everything ``extract`` reads from a sentence."""
        from ..ml.features import _MAX_SENTENCE_BUCKET

        return (
            min(sentence.index, _MAX_SENTENCE_BUCKET),
            tuple((token.text, token.pos) for token in sentence.tokens),
        )

    def rows(self, sentence: Sentence) -> InternedRows:
        """Extracted, interned feature rows for ``sentence``."""
        key = self.content_key(sentence)
        cached = self._rows.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        intern = self.interner.intern
        string_rows = self.extractor.extract(sentence)
        flat = [
            intern(feature) for row in string_rows for feature in row
        ]
        interned = InternedRows(
            ids=np.asarray(flat, dtype=np.int64),
            row_sizes=np.asarray(
                [len(row) for row in string_rows], dtype=np.int64
            ),
        )
        self._rows[key] = interned
        return interned

    def rows_for(self, sentences) -> list[InternedRows]:
        """Rows for a sentence collection, in order."""
        return [self.rows(sentence) for sentence in sentences]

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters (for the trace and the bench)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._rows),
            "features": len(self.interner),
        }
