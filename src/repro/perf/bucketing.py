"""Length bucketing and packed layouts for batched sequence inference.

Padding a batch to its longest member costs ``B * (T_max - T_i)``
wasted positions; sorting by length first makes every bucket nearly
rectangular. The traversal is a pure reordering — each sentence is
decoded independently of its batch peers — so bucketed tagging is
bit-identical to one monolithic batch (see ``docs/architecture.md``,
Performance).

:class:`PackedLayout` goes one step further for training: instead of
padding at all, the rows of a bucket are laid out *time-major* — all
t=0 positions first, then all t=1 positions, and so on. Sentences are
rank-ordered by descending length (stable), so the rows at step ``t``
are exactly the first ``n_t`` ranks and each recursion step operates
on one contiguous prefix slice with zero padding and zero gathers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def length_buckets(
    lengths: Sequence[int], batch_size: int
) -> list[list[int]]:
    """Partition indices into length-sorted buckets of bounded size.

    Args:
        lengths: per-item sequence lengths, in original order.
        batch_size: maximum items per bucket (>= 1).

    Returns:
        A list of index buckets. Concatenated, the buckets visit every
        index exactly once, ordered by ``(length, original index)`` —
        a *stable* sort, so equal-length items keep their relative
        order and the traversal is deterministic.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = sorted(range(len(lengths)), key=lambda index: lengths[index])
    return [
        order[start:start + batch_size]
        for start in range(0, len(order), batch_size)
    ]


class PackedLayout:
    """Packed time-major layout for one bucket of sentences.

    Sentences are rank-ordered by ``(-length, position)`` (stable), so
    the number of sentences still alive at step ``t`` — ``counts[t]``
    — shrinks monotonically and the rows of step ``t`` occupy the
    contiguous slice ``[offsets[t], offsets[t] + counts[t])``. The
    predecessor of packed row ``(t, rank)`` is ``(t - 1, rank)``,
    itself a prefix of the previous step's slice, so the forward and
    backward recursions never gather.

    Attributes:
        sent_ids: original sentence index per rank.
        lens: sentence lengths per rank (descending).
        n_sent: sentences in the bucket.
        max_len: longest sentence (the number of steps ``T``).
        counts: per-step live-sentence counts (plain ints).
        offsets: per-step slice starts, with ``offsets[T] == rows``.
        rows: total packed rows (``sum(lens)`` — no padding).
        last: packed row of each rank's final token.
        rank_of_row: rank of every packed row (for per-sentence
            lookups such as ``log_z[rank_of_row]``).
        tmask: 1.0 at rows with ``t >= 1``, else 0.0 (the transition
            count per row, used for max-shift bookkeeping).
        o1: first row of step 1 (``rows`` when ``max_len == 1``).
        prev: for every row at ``t >= 1``, the packed row of the same
            rank at ``t - 1``.
        groups: ``(rank_start, rank_end, length)`` runs of exactly
            equal length — contiguous because ranks sort by length.
    """

    __slots__ = (
        "sent_ids", "lens", "n_sent", "max_len", "counts", "offsets",
        "rows", "last", "rank_of_row", "tmask", "o1", "prev", "groups",
    )

    def __init__(
        self,
        lengths: Sequence[int] | np.ndarray,
        indices: Sequence[int] | np.ndarray | None = None,
    ):
        lengths = np.asarray(lengths, dtype=np.int64)
        if indices is None:
            indices = np.arange(len(lengths), dtype=np.int64)
        else:
            indices = np.asarray(indices, dtype=np.int64)
        if len(indices) == 0:
            raise ValueError("a packed layout needs at least one sentence")
        member = lengths[indices]
        if (member < 1).any():
            raise ValueError("packed layouts require non-empty sentences")
        order = np.argsort(-member, kind="stable")
        self.sent_ids = indices[order]
        self.lens = member[order]
        self.n_sent = int(len(order))
        self.max_len = int(self.lens[0])
        steps = self.max_len
        counts = [int((self.lens > t).sum()) for t in range(steps)]
        offsets = [0]
        for count in counts:
            offsets.append(offsets[-1] + count)
        self.counts = counts
        self.offsets = offsets
        self.rows = offsets[-1]
        offs = np.asarray(offsets, dtype=np.int64)
        self.last = offs[self.lens - 1] + np.arange(self.n_sent)
        self.rank_of_row = np.concatenate(
            [np.arange(count) for count in counts]
        )
        tmask = np.zeros(self.rows, dtype=np.float64)
        if steps > 1:
            tmask[offsets[1]:] = 1.0
        self.tmask = tmask
        self.o1 = offsets[1] if steps > 1 else self.rows
        self.prev = (
            np.concatenate(
                [
                    offsets[t - 1] + np.arange(counts[t])
                    for t in range(1, steps)
                ]
            )
            if steps > 1
            else np.empty(0, dtype=np.int64)
        )
        groups = []
        start = 0
        for rank in range(1, self.n_sent + 1):
            if rank == self.n_sent or self.lens[rank] != self.lens[start]:
                groups.append((start, rank, int(self.lens[start])))
                start = rank
        self.groups = groups

    def flat_rows(self, starts: np.ndarray) -> np.ndarray:
        """Sentence-major flat row index of every packed row.

        Args:
            starts: first flat row of every *original* sentence index
                (i.e. indexed by ``sent_ids`` values).
        """
        flat = np.empty(self.rows, dtype=np.int64)
        for t in range(self.max_len):
            count, offset = self.counts[t], self.offsets[t]
            flat[offset:offset + count] = starts[self.sent_ids[:count]] + t
        return flat
