"""Length bucketing for batched sequence inference.

Padding a batch to its longest member costs ``B * (T_max - T_i)``
wasted positions; sorting by length first makes every bucket nearly
rectangular. The traversal is a pure reordering — each sentence is
decoded independently of its batch peers — so bucketed tagging is
bit-identical to one monolithic batch (see ``docs/architecture.md``,
Performance).
"""

from __future__ import annotations

from typing import Sequence


def length_buckets(
    lengths: Sequence[int], batch_size: int
) -> list[list[int]]:
    """Partition indices into length-sorted buckets of bounded size.

    Args:
        lengths: per-item sequence lengths, in original order.
        batch_size: maximum items per bucket (>= 1).

    Returns:
        A list of index buckets. Concatenated, the buckets visit every
        index exactly once, ordered by ``(length, original index)`` —
        a *stable* sort, so equal-length items keep their relative
        order and the traversal is deterministic.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = sorted(range(len(lengths)), key=lambda index: lengths[index])
    return [
        order[start:start + batch_size]
        for start in range(0, len(order), batch_size)
    ]
