"""Per-stage pipeline benchmark harness (``make bench-pipeline``).

Runs the full pipeline over a fixed category set twice — once with
the hot-path optimisations disabled (no feature cache, one monolithic
tag batch) and once with the optimised defaults — and writes a JSON
artifact with per-stage wall-clock,
per-iteration seconds, feature-cache hit/miss counters and the
uncached→optimised speedup. Because the optimisations are
determinism-preserving, the harness also asserts both modes produced
identical triples and records the verdict in the artifact.

Usage::

    PYTHONPATH=src python -m repro.perf.bench --out BENCH_pipeline.json
    # compare against a previously saved artifact:
    PYTHONPATH=src python -m repro.perf.bench --out BENCH_pipeline.json \
        --compare old_BENCH_pipeline.json

The headline number is ``speedup.iter2plus`` — iterations 2+ are where
cross-iteration caching pays (iteration 1 must fill the cache).
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace

from ..config import PipelineConfig
from ..core.pipeline import PAEPipeline
from ..corpus import Marketplace
from ..runtime.trace import PipelineTrace

#: One monolithic batch — effectively disables length bucketing.
_UNBUCKETED = 10**9


def _mode_config(base: PipelineConfig, optimized: bool) -> PipelineConfig:
    # "optimized" is exactly the shipped defaults (shared feature
    # cache, bucketed tagging/training); warm-start embeddings stay
    # off in both modes because that opt-in flag may change the (still
    # deterministic) output, and the bench asserts bit-identity. Both
    # modes keep the exact lbfgs trainer — train_batch_size is
    # output-identical by construction, so forcing it monolithic in
    # the uncached mode exercises the bit-identity claim end-to-end.
    if optimized:
        return replace(base, enable_feature_cache=True)
    return replace(
        base,
        enable_feature_cache=False,
        crf=replace(
            base.crf,
            tag_batch_size=_UNBUCKETED,
            train_batch_size=_UNBUCKETED,
        ),
    )


def _iteration_seconds(trace: PipelineTrace) -> dict[int, float]:
    seconds: dict[int, float] = {}
    for event in trace.events:
        if event.iteration is not None:
            seconds[event.iteration] = (
                seconds.get(event.iteration, 0.0) + event.seconds
            )
    return seconds


def run_mode(
    categories: list[str],
    products: int,
    iterations: int,
    seed: int,
    optimized: bool,
) -> dict:
    """Run every category in one mode; return timings and triples."""
    config = _mode_config(
        PipelineConfig(iterations=iterations, seed=seed), optimized
    )
    stage_totals: dict[str, float] = {}
    per_iteration: dict[int, float] = {}
    cache = {"hits": 0, "misses": 0}
    containment: dict[str, dict[str, int]] = {
        "quarantined": {},
        "repaired": {},
        "circuit_breaker": {},
    }
    triples = []
    start = time.perf_counter()
    for category in categories:
        dataset = Marketplace(seed=seed).generate(category, products)
        trace = PipelineTrace(label=category)
        result = PAEPipeline(config).run(
            dataset.product_pages, dataset.query_log, trace=trace
        )
        for stage, seconds in trace.stage_totals().items():
            stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds
        for iteration, seconds in _iteration_seconds(trace).items():
            per_iteration[iteration] = (
                per_iteration.get(iteration, 0.0) + seconds
            )
        counters = result.perf_counters()["feature_cache"]
        cache["hits"] += counters["hits"]
        cache["misses"] += counters["misses"]
        resilience = result.resilience_counters()
        for key, bucket in containment.items():
            for name, count in resilience.get(key, {}).items():
                bucket[name] = bucket.get(name, 0) + count
        triples.append(
            sorted(
                (t.product_id, t.attribute, t.value)
                for t in result.triples
            )
        )
    total = time.perf_counter() - start
    return {
        "total_seconds": total,
        "stage_totals": stage_totals,
        "per_iteration_seconds": {
            str(iteration): seconds
            for iteration, seconds in sorted(per_iteration.items())
        },
        "iter2plus_seconds": sum(
            seconds
            for iteration, seconds in per_iteration.items()
            if iteration >= 2
        ),
        "cache": cache,
        # Dirty-input containment counters (all empty on the clean
        # bench corpus — their presence is the regression guard: a
        # default-config bench that quarantines pages or trips the
        # circuit breaker is measuring a different pipeline).
        "containment": containment,
        "triples": triples,
    }


def run_bench(
    categories: list[str],
    products: int,
    iterations: int,
    seed: int,
    compare_path: str | None = None,
    repeats: int = 1,
) -> dict:
    """The full before/after benchmark; returns the JSON payload.

    Modes are interleaved and each keeps its best-of-``repeats``
    timing: on a shared box, back-to-back runs drift (allocator and
    frequency warm-up), so a single uncached-then-optimized pass
    systematically flatters whichever mode runs second.
    """
    import os

    modes: dict[str, dict] = {}
    for repeat in range(max(1, repeats)):
        for name, optimized in (("uncached", False), ("optimized", True)):
            print(
                f"running mode {name} (pass {repeat + 1}) ...", flush=True
            )
            candidate = run_mode(
                categories, products, iterations, seed, optimized
            )
            best = modes.get(name)
            if best is None or (
                candidate["iter2plus_seconds"]
                < best["iter2plus_seconds"]
            ):
                modes[name] = candidate
            print(
                f"  {name}: {candidate['total_seconds']:.2f}s total, "
                f"{candidate['iter2plus_seconds']:.2f}s iterations 2+",
                flush=True,
            )
    identical = modes["uncached"]["triples"] == modes["optimized"]["triples"]
    for mode in modes.values():
        del mode["triples"]
    optimized_stages = modes["optimized"]["stage_totals"]
    stage_sum = sum(optimized_stages.values()) or 1e-9
    payload = {
        "schema": 1,
        # Per-stage share of traced wall clock in the optimized mode —
        # makes "stage X is N% of the run" claims auditable.
        "stage_share": {
            stage: seconds / stage_sum
            for stage, seconds in sorted(optimized_stages.items())
        },
        "config": {
            "categories": categories,
            "products": products,
            "iterations": iterations,
            "seed": seed,
            "repeats": max(1, repeats),
        },
        "cpu_count": os.cpu_count(),
        "modes": modes,
        "speedup": {
            "total": (
                modes["uncached"]["total_seconds"]
                / max(modes["optimized"]["total_seconds"], 1e-9)
            ),
            "iter2plus": (
                modes["uncached"]["iter2plus_seconds"]
                / max(modes["optimized"]["iter2plus_seconds"], 1e-9)
            ),
        },
        "identical_results": identical,
    }
    if compare_path:
        with open(compare_path, encoding="utf-8") as handle:
            previous = json.load(handle)
        previous_iter2plus = (
            previous.get("modes", {})
            .get("optimized", previous.get("modes", {}).get("uncached", {}))
            .get("iter2plus_seconds")
            or previous.get("iter2plus_seconds")
        )
        if previous_iter2plus:
            payload["vs_previous"] = {
                "path": compare_path,
                "previous_iter2plus_seconds": previous_iter2plus,
                "iter2plus_speedup": (
                    previous_iter2plus
                    / max(
                        modes["optimized"]["iter2plus_seconds"], 1e-9
                    )
                ),
            }
            previous_stages = (
                previous.get("modes", {})
                .get("optimized", {})
                .get("stage_totals", {})
            )
            if previous_stages:
                payload["vs_previous"]["stage_speedups"] = {
                    stage: previous_seconds
                    / max(optimized_stages.get(stage, 0.0), 1e-9)
                    for stage, previous_seconds in sorted(
                        previous_stages.items()
                    )
                }
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the pipeline's hot paths per stage."
    )
    parser.add_argument(
        "--out", default="BENCH_pipeline.json", metavar="PATH"
    )
    parser.add_argument(
        "--compare", default=None, metavar="PATH",
        help="a previous artifact; records the old-vs-new iteration-2+ "
        "speedup under 'vs_previous'",
    )
    parser.add_argument(
        "--categories", default="vacuum_cleaner,tennis",
        help="comma-separated category list",
    )
    parser.add_argument("--products", type=int, default=120)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="interleaved passes per mode; each mode keeps its best "
        "timing (default 3)",
    )
    args = parser.parse_args(argv)
    categories = [
        name.strip()
        for name in args.categories.split(",")
        if name.strip()
    ]
    payload = run_bench(
        categories,
        args.products,
        args.iterations,
        args.seed,
        compare_path=args.compare,
        repeats=args.repeats,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(
        f"speedup: {payload['speedup']['total']:.2f}x total, "
        f"{payload['speedup']['iter2plus']:.2f}x iterations 2+; "
        f"identical_results={payload['identical_results']}"
    )
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
