"""Trainer-only micro-benchmark (``make bench-train``).

Captures the *real* CRF training problems a small pipeline run
produces (by recording every ``train_crf`` call), then times each
trainer mode on those problems in isolation:

* ``lbfgs_monolithic`` — exact L-BFGS, one pad-free packed bucket;
* ``lbfgs_bucketed``   — exact L-BFGS over default length buckets;
* ``lbfgs_workers2``   — the bucketed E-step fanned over 2 worker
  processes (deterministic merge);
* ``sgd``              — the opt-in minibatch Adagrad-SGD mode.

Because the three exact modes are bit-identical by construction, the
harness trains each once, asserts the weight arrays are equal, and
records the verdict — a fast regression trip-wire for the
bucket-invariance guarantee that doesn't need the full pipeline bench.

Usage::

    PYTHONPATH=src python -m repro.perf.bench_train --out BENCH_train.json
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

#: One monolithic batch — effectively disables length bucketing.
_UNBUCKETED = 10**9


def capture_problems(
    categories: list[str], products: int, iterations: int, seed: int
) -> list:
    """Run a small pipeline per category, recording every CrfProblem.

    The recording wrapper is installed on the *model module's*
    reference (the name ``CrfTagger.train`` actually calls) and always
    restored, so capture cannot leak into later timing runs.
    """
    from ..config import PipelineConfig
    from ..core.pipeline import PAEPipeline
    from ..corpus import Marketplace
    from ..ml.crf import model as model_mod

    captured: list = []
    original = model_mod.train_crf

    def recording(problem, *args, **kwargs):
        captured.append(problem)
        return original(problem, *args, **kwargs)

    model_mod.train_crf = recording
    try:
        for category in categories:
            dataset = Marketplace(seed=seed).generate(category, products)
            PAEPipeline(
                PipelineConfig(iterations=iterations, seed=seed)
            ).run(dataset.product_pages, dataset.query_log)
    finally:
        model_mod.train_crf = original
    return captured


def _time_mode(problems, repeats: int, **train_kwargs) -> float:
    """Best-of-``repeats`` seconds to train every captured problem."""
    from ..ml.crf.train import train_crf

    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        for problem in problems:
            train_crf(problem, 0.05, 0.05, 60, **train_kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(
    categories: list[str],
    products: int,
    iterations: int,
    seed: int,
    repeats: int = 2,
) -> dict:
    """Capture problems, time every trainer mode, verify bit-identity."""
    from ..ml.crf.train import train_crf

    print("capturing training problems ...", flush=True)
    problems = capture_problems(categories, products, iterations, seed)
    if not problems:
        raise RuntimeError("pipeline produced no training problems")

    modes = {
        "lbfgs_monolithic": {"batch_size": _UNBUCKETED},
        "lbfgs_bucketed": {},
        "lbfgs_workers2": {"estep_workers": 2},
        "sgd": {"trainer": "sgd"},
    }
    seconds: dict[str, float] = {}
    for name, kwargs in modes.items():
        print(f"timing {name} ...", flush=True)
        seconds[name] = _time_mode(problems, repeats, **kwargs)

    # Exact-path invariance: identical weights however the E-step is
    # partitioned or fanned out.
    largest = max(problems, key=lambda p: p.design.shape[0])
    reference = train_crf(largest, 0.05, 0.05, 60, batch_size=_UNBUCKETED)
    bit_identical = True
    for kwargs in ({}, {"estep_workers": 2}):
        unary, trans = train_crf(largest, 0.05, 0.05, 60, **kwargs)
        if not (
            np.array_equal(unary, reference[0])
            and np.array_equal(trans, reference[1])
        ):
            bit_identical = False
    return {
        "schema": 1,
        "config": {
            "categories": categories,
            "products": products,
            "iterations": iterations,
            "seed": seed,
            "repeats": max(1, repeats),
        },
        "problems": [
            {
                "rows": int(p.design.shape[0]),
                "features": int(p.design.shape[1]),
                "sentences": int(len(p.lengths)),
                "labels": int(p.n_labels),
            }
            for p in problems
        ],
        "seconds": seconds,
        "speedup_vs_monolithic": {
            name: seconds["lbfgs_monolithic"] / max(value, 1e-9)
            for name, value in seconds.items()
        },
        "exact_modes_bit_identical": bit_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the CRF trainer modes on captured problems."
    )
    parser.add_argument("--out", default="BENCH_train.json", metavar="PATH")
    parser.add_argument(
        "--categories", default="vacuum_cleaner,tennis",
        help="comma-separated category list",
    )
    parser.add_argument("--products", type=int, default=80)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)
    categories = [
        name.strip() for name in args.categories.split(",") if name.strip()
    ]
    payload = run_bench(
        categories, args.products, args.iterations, args.seed,
        repeats=args.repeats,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    for name, value in payload["seconds"].items():
        print(f"  {name}: {value:.3f}s")
    print(
        "exact_modes_bit_identical="
        f"{payload['exact_modes_bit_identical']}"
    )
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
