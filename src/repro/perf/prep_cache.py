"""Cross-run shard-prep artifact cache.

One level above :mod:`repro.perf.cache`'s ``FeatureCache``: where the
feature cache memoizes per-sentence CRF features *within* a run, this
module caches the entire output of shard prep — the gate/tokenize/mine
pass of :mod:`repro.core.sharded` — *across* runs. Prep output is
iteration-invariant (only seeds and tagging change between bootstrap
iterations) and fully determined by the page bytes and the gate +
tokenizer configuration, so it is keyed by::

    (source fingerprint, shard index, prep digest)

where the prep digest (:func:`prep_digest`) covers the
:class:`~repro.config.IngestConfig`, the registered locale codes and a
format version. Two tiers:

* :class:`MemoryPrepCache` — a bounded process-global LRU holding each
  shard's outcomes plus the raw cache-file lines. Serves small runs
  (no checkpoint, no explicit cache dir): a second run over the same
  source in the same process skips ``shard_prep`` entirely.
* :class:`DiskPrepCache` — checksummed artifacts under
  ``<root>/<key>/``: the shard's gzip-JSONL cache file (used directly
  as the run's shard-cache directory) plus a ``.meta.json`` sidecar
  carrying the replay outcomes, warnings and the SHA-256 of the gzip
  bytes. Serves streamed runs with a checkpoint (root
  ``<checkpoint>/prep_cache``, deliberately *not* wiped by
  ``CheckpointStore.begin``) or an explicit ``cache_dir``; a resumed —
  or simply repeated — run reloads instead of re-prepping. A checksum
  or format mismatch silently degrades to re-prepping that shard.

Bit-identity contract: a cache hit replays the exact per-page outcomes
the worker returned when the shard was first prepped, and the parent's
sequential merge (global dedup, ledger order, strict escalation) runs
unchanged on top — so results are bit-identical to an uncached run for
any shard size, worker count and cache on/off combination. Runs with
page-corruption fault specs bypass the cache entirely in both
directions (corrupted prep must never be recorded as clean, nor masked
by a clean hit).
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import pathlib
import shutil
import threading
from dataclasses import asdict, dataclass, field

from ..config import IngestConfig

#: Bumped whenever the shard cache record layout or outcome shapes
#: change; part of the prep digest, so stale artifacts simply miss.
PREP_FORMAT_VERSION = 1

#: Default page budget for the process-global memory tier (~tens of MB
#: of cached JSONL at typical page sizes).
MEMORY_CACHE_MAX_PAGES = 20_000


def prep_digest(ingest: IngestConfig | None) -> str:
    """Digest of everything (besides the pages) that shapes prep output.

    Args:
        ingest: the gate configuration in effect, or None when the
            gate is disabled (pass exactly what prep will use).
    """
    from ..nlp.tokenizer import available_locales

    payload = {
        "format": PREP_FORMAT_VERSION,
        "ingest": asdict(ingest) if ingest is not None else None,
        "locales": list(available_locales()),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def prep_cache_key(source_fingerprint: str, digest: str) -> str:
    """Directory-name-safe key for one (source, prep config) pair."""
    return f"{digest[:16]}_{source_fingerprint[:16]}"


def shard_cache_path(cache_dir: str | os.PathLike, index: int) -> pathlib.Path:
    """Path of one shard's gzip-JSONL cache file (shared convention
    with :mod:`repro.core.sharded`)."""
    return pathlib.Path(cache_dir) / f"shard_{index:04d}.jsonl.gz"


def _sha256_file(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class ShardPrep:
    """One shard's cached prep output.

    Attributes:
        outcomes: the per-page outcome tuples ``_prep_shard`` returned
            (``("row", …)`` / ``("q", …)`` / ``("k", …)``), in shard
            page order — everything the parent's deterministic replay
            needs.
        warnings: the worker's counted degradations
            (``parse_budget_soft``).
        lines: raw cache-file lines (memory tier only; the disk tier
            keeps the gzip file itself).
    """

    outcomes: list
    warnings: dict[str, int]
    lines: list[str] | None = None


class MemoryPrepCache:
    """Process-global bounded LRU of shard prep artifacts.

    Entries are charged by cached line (= kept page) count; inserting
    past ``max_pages`` evicts least-recently-used entries. Thread-safe
    (runs may prep from worker threads in embedders/tests).
    """

    def __init__(self, max_pages: int = MEMORY_CACHE_MAX_PAGES):
        self.max_pages = max_pages
        self._lock = threading.Lock()
        self._entries: dict[tuple, tuple[ShardPrep, int]] = {}
        self._pages = 0

    def get(self, key: tuple) -> ShardPrep | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            # Re-insert to mark most-recently-used.
            del self._entries[key]
            self._entries[key] = entry
            return entry[0]

    def put(self, key: tuple, prep: ShardPrep, cost: int) -> None:
        with self._lock:
            if cost > self.max_pages:
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._pages -= old[1]
            self._entries[key] = (prep, cost)
            self._pages += cost
            while self._pages > self.max_pages and self._entries:
                oldest = next(iter(self._entries))
                _, old_cost = self._entries.pop(oldest)
                self._pages -= old_cost

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pages = 0

    @property
    def pages(self) -> int:
        with self._lock:
            return self._pages

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_MEMORY_CACHE: MemoryPrepCache | None = None
_MEMORY_CACHE_LOCK = threading.Lock()


def memory_prep_cache() -> MemoryPrepCache:
    """The process-global memory tier (created on first use)."""
    global _MEMORY_CACHE
    with _MEMORY_CACHE_LOCK:
        if _MEMORY_CACHE is None:
            _MEMORY_CACHE = MemoryPrepCache()
        return _MEMORY_CACHE


class DiskPrepCache:
    """Checksummed on-disk prep artifacts under ``<root>/<key>/``.

    The keyed directory doubles as the run's live shard-cache
    directory: workers write ``shard_NNNN.jsonl.gz`` there as always,
    and :meth:`store` seals each file with a ``shard_NNNN.meta.json``
    sidecar (format version, outcomes, warnings, SHA-256 of the gzip
    bytes). :meth:`load` returns the replay outcomes only when the
    sidecar validates against the file on disk. Sibling keys under the
    same root belong to older configs or other sources and are pruned
    on construction, bounding disk growth at one prep set per root.

    Concurrency: construction takes a non-blocking ``fcntl.flock``
    advisory lock on the keyed directory. When another live run
    already holds it, :attr:`contended` is True and the caller must
    not use this cache (the sharded bootstrap falls back to a private
    scratch directory instead of interleaving writes with the other
    run). Call :meth:`close` when the run is done to release the lock.

    Args:
        root: persistent artifact root (``<checkpoint>/prep_cache`` or
            an explicit ``cache_dir``).
        key: the run's ``prep_cache_key``.
        faults: optional plan whose ``disk_full``/``slow_disk`` specs
            fire inside sidecar writes (op ``"prep_cache_write"``).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        key: str,
        *,
        faults=None,
    ):
        from ..runtime.storage import DirectoryLock

        self.root = pathlib.Path(root)
        self.key = key
        self.faults = faults
        self.directory = self.root / key
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = DirectoryLock(self.directory, ".cache.lock")
        self.contended = not self._lock.try_acquire()
        if not self.contended:
            self._prune()

    def close(self) -> None:
        """Release the advisory cache lock (idempotent)."""
        self._lock.release()

    def _prune(self) -> None:
        """Delete sibling keys (older configs/sources) under the root.

        Tolerates a concurrent deleter: every entry that vanishes
        between listing and removal is simply skipped — another
        process beat us to the same cleanup.
        """
        try:
            children = list(self.root.iterdir())
        except FileNotFoundError:  # root itself raced away
            return
        for child in children:
            try:
                if (
                    child.is_dir()
                    and child.name != self.key
                    and not child.name.startswith(".")
                ):
                    shutil.rmtree(child, ignore_errors=True)
            except FileNotFoundError:
                continue

    def shard_path(self, index: int) -> pathlib.Path:
        return shard_cache_path(self.directory, index)

    def meta_path(self, index: int) -> pathlib.Path:
        return self.directory / f"shard_{index:04d}.meta.json"

    def load(self, index: int) -> ShardPrep | None:
        """Validated prep artifact for one shard, or None to re-prep."""
        meta_path = self.meta_path(index)
        cache_file = self.shard_path(index)
        if not meta_path.exists() or not cache_file.exists():
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            return None
        if (
            meta.get("format") != PREP_FORMAT_VERSION
            or meta.get("shard") != index
        ):
            return None
        if _sha256_file(cache_file) != meta.get("cache_sha256"):
            return None
        outcomes = [tuple(outcome) for outcome in meta["outcomes"]]
        return ShardPrep(
            outcomes=outcomes, warnings=dict(meta.get("warnings", {}))
        )

    def store(
        self, index: int, outcomes: list, warnings: dict[str, int]
    ) -> None:
        """Seal the already-written shard cache file with its sidecar.

        Raises:
            StorageError: the sidecar write hit a classified
                environment failure (disk full, I/O error) — the
                caller degrades to cache-off for the rest of the run.
        """
        from ..runtime.storage import atomic_write_text

        cache_file = self.shard_path(index)
        if not cache_file.exists():  # pragma: no cover - defensive
            return
        meta = {
            "format": PREP_FORMAT_VERSION,
            "shard": index,
            "cache_sha256": _sha256_file(cache_file),
            "outcomes": outcomes,
            "warnings": warnings,
        }
        atomic_write_text(
            self.meta_path(index),
            json.dumps(meta, ensure_ascii=False),
            faults=self.faults,
            op="prep_cache_write",
        )


@dataclass
class PrepStore:
    """One run's handle on the prep cache: exactly one tier is active.

    ``cache_dir`` is the run's live shard-cache directory. With a disk
    tier that *is* the keyed artifact directory, so hits need no file
    copy; with the memory tier, hits rewrite the cached lines into the
    (temporary) cache dir so downstream shard iteration is unchanged.
    """

    cache_dir: str
    source_fingerprint: str
    digest: str
    disk: DiskPrepCache | None = None
    memory: MemoryPrepCache | None = None
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)
    #: Set when a store hit a classified environment failure
    #: (:class:`~repro.errors.StorageError`): writes stop for the rest
    #: of the run (reads of already-sealed artifacts stay valid).
    disabled: bool = field(default=False, init=False)
    write_failures: int = field(default=0, init=False)

    def _memory_key(self, index: int) -> tuple:
        return (self.source_fingerprint, self.digest, index)

    def load(self, index: int) -> tuple[list, dict[str, int]] | None:
        """Cached (outcomes, warnings) for a shard, with the cache file
        guaranteed present in ``cache_dir``; None on a miss."""
        if self.disk is not None:
            prep = self.disk.load(index)
            if prep is not None:
                self.hits += 1
                return prep.outcomes, prep.warnings
        elif self.memory is not None:
            prep = self.memory.get(self._memory_key(index))
            if prep is not None and prep.lines is not None:
                final = shard_cache_path(self.cache_dir, index)
                temp = final.parent / f".{final.name}.tmp"
                try:
                    with gzip.open(
                        temp, "wt", encoding="utf-8", compresslevel=1
                    ) as handle:
                        handle.writelines(prep.lines)
                    os.replace(temp, final)
                except OSError:
                    # Could not materialize the cached lines (full
                    # disk?): treat as a miss, the worker re-preps.
                    self.misses += 1
                    return None
                self.hits += 1
                return prep.outcomes, prep.warnings
        self.misses += 1
        return None

    def store(
        self, index: int, outcomes: list, warnings: dict[str, int]
    ) -> None:
        """Record a freshly-prepped shard (cache file already written).

        A classified environment failure (:class:`~repro.errors.
        StorageError`) disables further stores for the run instead of
        propagating — losing cache artifacts costs re-prep time on the
        next run, never this run's output.
        """
        if self.disabled:
            return
        if self.disk is not None:
            from ..errors import StorageError

            try:
                self.disk.store(index, outcomes, warnings)
            except StorageError:
                self.write_failures += 1
                self.disabled = True
        elif self.memory is not None:
            path = shard_cache_path(self.cache_dir, index)
            try:
                with gzip.open(path, "rt", encoding="utf-8") as handle:
                    lines = handle.readlines()
            except OSError:  # pragma: no cover - defensive
                return
            self.memory.put(
                self._memory_key(index),
                ShardPrep(
                    outcomes=outcomes, warnings=warnings, lines=lines
                ),
                cost=len(lines),
            )
