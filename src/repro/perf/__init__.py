"""Hot-path performance layer: caching, batching, benchmarking.

Everything in this package is determinism-preserving: the feature
cache memoizes a pure function, length-bucketed tagging decodes each
sentence independently of its batch, and the benchmark harness only
measures. Pipeline output with these optimisations enabled is
bit-identical to the unoptimised path (asserted in
``tests/test_perf_cache.py``).
"""

from .bucketing import length_buckets
from .cache import FeatureCache, FeatureInterner, InternedRows

__all__ = [
    "FeatureCache",
    "FeatureInterner",
    "InternedRows",
    "length_buckets",
]
