"""Command-line interface.

Subcommands::

    repro-pae categories
        List the shipped category schemas.

    repro-pae run --category vacuum_cleaner --products 220
        Generate a synthetic catalog, run the full pipeline and print
        the per-iteration precision/coverage report. A comma-separated
        ``--category`` list sweeps many categories in parallel
        (``--workers``); ``--trace trace.json`` dumps per-stage,
        per-iteration wall-clock timings. ``--checkpoint-dir`` makes
        the run crash-safe (per-iteration snapshots; re-invoke with
        ``--resume`` to continue a killed run bit-identically), and
        ``--job-timeout`` bounds each sweep job's wall-clock so a hung
        category degrades to a structured Timeout failure.

    repro-pae run --category tennis --products 100000 --stream
        Bounded-memory scale mode: the category streams through the
        sharded bootstrap shard by shard (``--shard-size``,
        ``--shard-workers``) instead of materializing every page; the
        report adds throughput and peak RSS.

    repro-pae experiment --name table1
        Regenerate one of the paper's tables/figures (same runners the
        benchmarks use).

Installed as ``repro-pae`` via the package's console-script entry, or
runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import PAEPipeline, PipelineConfig
from .corpus import Marketplace, category_names
from .corpus.categories import HETEROGENEOUS_UNIONS
from .evaluation import build_truth_sample, precision
from .evaluation.report import iteration_report

_EXPERIMENTS = {
    "table1": ("table1", "run"),
    "table2": ("table2_3", "run"),
    "table3": ("table2_3", "run"),
    "table4": ("table4", "run"),
    "figure3": ("figure3", "run"),
    "figure4": ("figure4_6", "run_figure4"),
    "figure5": ("figure5", "run"),
    "figure6": ("figure4_6", "run_figure6"),
    "figure7": ("figure7_8", "run_figure7"),
    "figure8": ("figure7_8", "run_figure8"),
    "german": ("german", "run"),
    "diversification": ("diversification", "run"),
    "cleaning": ("cleaning_impact", "run"),
    "per_attribute": ("per_attribute", "run"),
    "heterogeneous": ("heterogeneous", "run"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pae",
        description=(
            "Bootstrapped product attribute extraction "
            "(ICDE 2019 reproduction)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "categories", help="list the shipped category schemas"
    )

    run = commands.add_parser(
        "run", help="run the pipeline on one or more synthetic categories"
    )
    run.add_argument(
        "--category", required=True,
        help="a category name, or a comma-separated list for a "
        "parallel multi-category sweep (see `categories`)",
    )
    run.add_argument("--products", type=int, default=220)
    run.add_argument("--iterations", type=int, default=5)
    run.add_argument(
        "--tagger", choices=("crf", "lstm", "ensemble"), default="crf"
    )
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--no-cleaning", action="store_true",
        help="disable veto rules and the semantic filter",
    )
    run.add_argument(
        "--no-diversification", action="store_true",
        help="disable seed value diversification",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for multi-category sweeps "
        "(default: CPUs visible to the process)",
    )
    run.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write per-stage, per-iteration wall-clock timings "
        "to this JSON file",
    )
    run.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="write crash-safe per-iteration snapshots here (one "
        "subdirectory per category in a sweep); a killed run "
        "re-invoked with --resume continues from the last completed "
        "iteration",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="resume from snapshots in --checkpoint-dir instead of "
        "starting over (bit-identical output to an uninterrupted run)",
    )
    run.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget in sweeps; a hung category "
        "becomes a structured Timeout failure instead of a stuck sweep",
    )
    run.add_argument(
        "--tag-batch-size", type=int, default=None, metavar="N",
        help="sentences per padded Viterbi batch at tag time "
        "(output-identical for any N >= 1; default 64)",
    )
    run.add_argument(
        "--trainer", choices=("lbfgs", "sgd"), default=None,
        help="CRF trainer: lbfgs (exact, the paper's crfsuite "
        "setting; default) or sgd (opt-in minibatch Adagrad fast "
        "mode — deterministic but approximate)",
    )
    run.add_argument(
        "--estep-workers", type=int, default=None, metavar="N",
        help="worker processes for the CRF training E-step fan-out "
        "(output-identical for any N >= 1; default 1)",
    )
    run.add_argument(
        "--bench-out", metavar="PATH", default=None,
        help="write per-stage wall-clock timings and feature-cache "
        "hit/miss counters to this JSON file",
    )
    run.add_argument(
        "--ingest-policy", choices=("strict", "repair", "drop"),
        default=None,
        help="how the ingest gate treats pages that fail validation: "
        "strict raises, repair fixes fixable damage in place, drop "
        "quarantines them (default: repair)",
    )
    run.add_argument(
        "--max-page-bytes", type=int, default=None, metavar="N",
        help="ingest-gate page size bound; larger pages are "
        "quarantined (default: 1000000)",
    )
    run.add_argument(
        "--stream", action="store_true",
        help="bounded-memory scale mode: generate and process the "
        "category shard by shard through the sharded bootstrap "
        "instead of materializing every page (single category only; "
        "pages come from per-page RNG substreams, so the corpus "
        "differs from the materialized one and the report skips the "
        "ground-truth precision sample)",
    )
    run.add_argument(
        "--shard-size", type=int, default=1000, metavar="N",
        help="pages per shard in --stream mode (default: 1000)",
    )
    run.add_argument(
        "--shard-workers", type=int, default=None, metavar="N",
        help="worker processes per shard fan-out in --stream mode "
        "(output-identical for any N >= 1; default: CPUs visible "
        "to the process)",
    )
    run.add_argument(
        "--memory-budget", type=int, default=None, metavar="MB",
        help="soft RSS ceiling in MiB for --stream mode; crossing it "
        "throttles shard fan-out and releases tokenizer memos "
        "(output-identical; default: no governor)",
    )
    run.add_argument(
        "--pool-workers", type=int, default=None, metavar="N",
        help="worker processes for the supervised shard pool in "
        "--stream mode (output-identical for any N >= 1; default: "
        "CPUs visible to the process; --shard-workers wins when both "
        "are given)",
    )
    run.add_argument(
        "--no-prep-cache", action="store_true",
        help="disable the cross-run shard-prep artifact cache in "
        "--stream mode (output-identical either way; prep is "
        "recomputed from scratch)",
    )
    run.add_argument(
        "--dirt-rate", type=float, default=0.0, metavar="FRACTION",
        help="corrupt this fraction of generated pages (truncation, "
        "unclosed tags, entity garbage, mojibake, duplicate ids, "
        "megapages) before the run — a seeded end-to-end exercise of "
        "the ingest gate; the containment summary is printed after "
        "the report",
    )

    serve = commands.add_parser(
        "serve",
        help="run the online extraction daemon against a model registry",
    )
    serve.add_argument(
        "--registry", required=True, metavar="DIR",
        help="registry directory of published model bundles "
        "(one subdirectory per version)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--bootstrap", metavar="CATEGORY[:PRODUCTS]", default=None,
        help="when the registry is empty, train a CRF on this "
        "synthetic category and publish it as v1 before serving",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="concurrent requests admitted before load shedding "
        "(default: 32)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline (default: 5.0)",
    )
    serve.add_argument(
        "--memory-budget", type=int, default=None, metavar="MB",
        help="soft RSS ceiling in MiB; under pressure admission "
        "control halves its effective capacity until RSS recovers "
        "(default: off)",
    )
    serve.add_argument(
        "--quarantine-log", metavar="PATH", default=None,
        help="JSONL ledger for ingest-gate rejections "
        "(default: <registry>/quarantine.jsonl)",
    )

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument(
        "--name", required=True, choices=sorted(_EXPERIMENTS),
    )
    experiment.add_argument("--products", type=int, default=None)
    experiment.add_argument("--iterations", type=int, default=5)
    experiment.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the experiment's bootstrap sweep "
        "(default: CPUs visible to the process)",
    )

    profile = commands.add_parser(
        "profile",
        help="profile a page collection (synthetic category or a "
        "pages.jsonl of real data) for seed viability",
    )
    source = profile.add_mutually_exclusive_group(required=True)
    source.add_argument("--category", help="a shipped category name")
    source.add_argument(
        "--pages", help="path to pages.jsonl (or its directory)"
    )
    profile.add_argument("--products", type=int, default=220)
    profile.add_argument("--seed", type=int, default=7)
    return parser


def _command_categories() -> int:
    for name in category_names():
        print(name)
    for union in sorted(HETEROGENEOUS_UNIONS):
        members = ", ".join(HETEROGENEOUS_UNIONS[union])
        print(f"{union} (heterogeneous union of: {members})")
    return 0


def _write_trace(path: str, payload: dict) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"trace written to {path}")


def _print_category_report(
    category: str, dataset, result
) -> None:
    truth = build_truth_sample(dataset)
    breakdown = precision(result.triples, truth)
    print(f"category:   {category} ({dataset.locale})")
    print(f"attributes: {', '.join(result.attributes)}")
    print(f"triples:    {len(result.triples)}")
    print(f"precision:  {100 * breakdown.precision:.2f}%")
    print(f"coverage:   {100 * result.coverage():.2f}%")
    print()
    print(iteration_report(result.bootstrap, truth, len(dataset)))


def _write_bench(path: str, payloads: dict) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payloads, handle, indent=2)
        handle.write("\n")
    print(f"bench counters written to {path}")


def _dirt_plan(args: argparse.Namespace):
    """A fresh per-run FaultPlan for --dirt-rate, or None."""
    if not args.dirt_rate:
        return None
    from .runtime.faults import FaultPlan, FaultSpec

    return FaultPlan(
        [
            FaultSpec(
                stage="corpus",
                kind="dirt",
                corrupt_fraction=args.dirt_rate,
            )
        ],
        seed=args.seed,
    )


def _print_containment(result) -> None:
    """Print the gate/breaker summary when a run contained anything."""
    counters = result.resilience_counters()
    quarantined = counters.get("quarantined", {})
    repaired = counters.get("repaired", {})
    breaker = counters.get("circuit_breaker", {})
    if not (quarantined or repaired or breaker):
        return
    print("containment:")
    if quarantined:
        total = sum(quarantined.values())
        checks = ", ".join(
            f"{check}={count}"
            for check, count in sorted(quarantined.items())
        )
        print(f"  quarantined: {total} page(s) ({checks})")
    if repaired:
        total = sum(repaired.values())
        checks = ", ".join(
            f"{check}={count}"
            for check, count in sorted(repaired.items())
        )
        print(f"  repaired:    {total} page(s) ({checks})")
    if breaker:
        reasons = ", ".join(sorted(breaker))
        print(f"  circuit breaker tripped: {reasons}")
    print()


def _command_run(args: argparse.Namespace) -> int:
    from .config import CrfConfig, IngestConfig

    categories = [
        name.strip() for name in args.category.split(",") if name.strip()
    ]
    # Bad CRF knobs (--tag-batch-size, --trainer, --estep-workers)
    # raise ConfigError right here, before any dataset generation.
    crf_kwargs = {}
    if args.tag_batch_size is not None:
        crf_kwargs["tag_batch_size"] = args.tag_batch_size
    if args.trainer is not None:
        crf_kwargs["trainer"] = args.trainer
    if args.estep_workers is not None:
        crf_kwargs["estep_workers"] = args.estep_workers
    crf = CrfConfig(**crf_kwargs)
    ingest_kwargs = {}
    if args.ingest_policy is not None:
        ingest_kwargs["policy"] = args.ingest_policy
    if args.max_page_bytes is not None:
        ingest_kwargs["max_page_bytes"] = args.max_page_bytes
    config = PipelineConfig(
        iterations=args.iterations,
        tagger=args.tagger,
        enable_syntactic_cleaning=not args.no_cleaning,
        enable_semantic_cleaning=not args.no_cleaning,
        enable_diversification=not args.no_diversification,
        enable_prep_cache=not args.no_prep_cache,
        memory_budget_mb=args.memory_budget,
        pool_workers=args.pool_workers,
        crf=crf,
        ingest=IngestConfig(**ingest_kwargs),
    )
    if args.stream:
        return _run_streamed(categories, config, args)
    if len(categories) == 1:
        from .runtime import PipelineTrace

        category = categories[0]
        dataset = Marketplace(seed=args.seed).generate(
            category, args.products
        )
        trace = PipelineTrace(label=category)
        result = PAEPipeline(config).run(
            dataset.product_pages,
            dataset.query_log,
            trace=trace,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            faults=_dirt_plan(args),
        )
        _print_category_report(category, dataset, result)
        _print_containment(result)
        if args.trace:
            _write_trace(args.trace, trace.to_dict())
        if args.bench_out:
            _write_bench(
                args.bench_out, {category: result.perf_counters()}
            )
        return 0
    return _run_sweep(categories, config, args)


def _run_streamed(
    categories: list[str],
    config: PipelineConfig,
    args: argparse.Namespace,
) -> int:
    """The bounded-memory single-category path (``run --stream``)."""
    import time

    from .corpus import GeneratedPageSource
    from .runtime import PipelineTrace

    if len(categories) != 1:
        print(
            "--stream runs one category at a time; use a plain sweep "
            "for multi-category runs",
            file=sys.stderr,
        )
        return 1
    category = categories[0]
    source = GeneratedPageSource(
        category,
        args.products,
        shard_size=args.shard_size,
        seed=args.seed,
    )
    query_log = source.build_query_log()
    trace = PipelineTrace(label=category)
    start = time.perf_counter()
    result = PAEPipeline(config).run_streamed(
        source,
        query_log,
        trace=trace,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        faults=_dirt_plan(args),
        shard_workers=args.shard_workers,
    )
    wall = time.perf_counter() - start
    peak = result.resilience_counters()["peak_rss_bytes"]
    print(f"category:   {category} ({source.locale}, streamed)")
    print(f"attributes: {', '.join(result.attributes)}")
    print(f"triples:    {len(result.triples)}")
    print(f"coverage:   {100 * result.coverage():.2f}%")
    print(
        f"throughput: {args.products / max(wall, 1e-9):.1f} pages/s "
        f"({args.products} pages, {source.shard_count} shard(s), "
        f"{wall:.1f}s)"
    )
    if peak:
        print(f"peak rss:   {peak / (1024 * 1024):.0f} MB")
    print()
    _print_containment(result)
    if args.trace:
        _write_trace(args.trace, trace.to_dict())
    if args.bench_out:
        _write_bench(args.bench_out, {category: result.perf_counters()})
    return 0


def _run_sweep(
    categories: list[str],
    config: PipelineConfig,
    args: argparse.Namespace,
) -> int:
    """Fan a multi-category sweep out over a CategoryRunner."""
    import os
    from dataclasses import replace

    from .runtime import CategoryRunner, RunnerJob, summarize_outcomes

    jobs = [
        RunnerJob.generate(
            category,
            args.products,
            config,
            data_seed=args.seed,
            checkpoint_dir=(
                os.path.join(args.checkpoint_dir, category)
                if args.checkpoint_dir
                else None
            ),
            resume=args.resume,
        )
        for category in categories
    ]
    if args.dirt_rate:
        # Each job gets its own plan: FaultPlan state mutates as it
        # fires, and every worker must make independent, seeded
        # corruption decisions.
        jobs = [replace(job, faults=_dirt_plan(args)) for job in jobs]
    runner = CategoryRunner(
        workers=args.workers, job_timeout=args.job_timeout
    )
    outcomes = runner.run(jobs)
    traces: dict[str, dict] = {}
    bench: dict[str, dict] = {}
    failures = 0
    for outcome in outcomes:
        if not outcome.ok:
            failures += 1
            print(f"category:   {outcome.job_name}  FAILED")
            print(f"  {outcome.failure}")
            print()
            continue
        dataset = Marketplace(seed=args.seed).generate(
            outcome.job_name, args.products
        )
        _print_category_report(
            outcome.job_name, dataset, outcome.result
        )
        _print_containment(outcome.result)
        print(f"wall-clock: {outcome.seconds:.2f}s")
        print()
        if outcome.trace is not None:
            traces[outcome.job_name] = outcome.trace.to_dict()
        bench[outcome.job_name] = outcome.result.perf_counters()
    summary = summarize_outcomes(outcomes)
    print(
        f"sweep:      {summary['succeeded']}/{summary['jobs']} jobs "
        "succeeded"
    )
    if summary["quarantined"]:
        total = sum(summary["quarantined"].values())
        print(f"  quarantined across jobs: {total} page(s)")
    if summary["halted_jobs"]:
        for halted in summary["halted_jobs"]:
            print(
                f"  {halted['job']}: circuit breaker halted at "
                f"iteration {halted['iteration']} "
                f"({halted['reason']})"
            )
    for line in summary["failures"]:
        print(f"  FAILED {line}")
    if args.trace:
        _write_trace(args.trace, {"categories": traces})
    if args.bench_out:
        _write_bench(args.bench_out, bench)
    return 1 if failures else 0


def _command_serve(args: argparse.Namespace) -> int:
    import os

    from .config import ServeConfig
    from .serve import (
        ExtractionService,
        ModelRegistry,
        start_server,
        train_and_publish,
    )

    serve_kwargs = {"host": args.host, "port": args.port}
    if args.queue_capacity is not None:
        serve_kwargs["queue_capacity"] = args.queue_capacity
    if args.deadline is not None:
        serve_kwargs["deadline_seconds"] = args.deadline
    if args.memory_budget is not None:
        serve_kwargs["memory_budget_mb"] = args.memory_budget
    config = ServeConfig(**serve_kwargs)

    registry = ModelRegistry(
        args.registry,
        drain_timeout_seconds=config.drain_timeout_seconds,
    )
    if not registry.versions():
        if args.bootstrap is None:
            print(
                f"registry {args.registry} has no published versions; "
                "use --bootstrap CATEGORY to train one",
                file=sys.stderr,
            )
            return 1
        category, _, products = args.bootstrap.partition(":")
        print(f"bootstrapping registry from category {category!r} ...")
        train_and_publish(
            args.registry,
            category,
            int(products) if products else 120,
        )
    version = registry.activate_latest().version
    quarantine_path = args.quarantine_log or os.path.join(
        args.registry, "quarantine.jsonl"
    )
    service = ExtractionService(
        registry, config, quarantine_path=quarantine_path
    )
    server, thread = start_server(service, config.host, config.port)
    host, port = server.server_address[:2]
    print(f"serving version {version} on http://{host}:{port}")
    print(f"  POST /extract     {{'product_id', 'text'|'html', ...}}")
    print(f"  GET  /healthz     liveness + degradation level")
    print(f"  GET  /stats       full pipeline counters")
    print(f"  POST /admin/swap  hot-swap to a new version")
    try:
        thread.join()
    except KeyboardInterrupt:
        print("\nshutting down ...")
        server.shutdown()
        service.close()
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    import importlib
    import os

    from .experiments import ExperimentSettings

    if args.workers is not None:
        # prefetch_runs / parallel_map resolve their pool size from
        # REPRO_WORKERS via repro.runtime.default_workers.
        os.environ["REPRO_WORKERS"] = str(args.workers)
    module_name, function_name = _EXPERIMENTS[args.name]
    module = importlib.import_module(
        f"repro.experiments.{module_name}"
    )
    settings_kwargs = {"iterations": args.iterations}
    if args.products is not None:
        settings_kwargs["products"] = args.products
    settings = ExperimentSettings(**settings_kwargs)
    result = getattr(module, function_name)(settings)
    if args.name == "table2":
        print(result.format_precision())
    elif args.name == "table3":
        print(result.format_coverage())
    elif args.name in ("figure7", "figure8"):
        print(result.format(args.name.capitalize()))
    else:
        print(result.format())
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    from .corpus.statistics import profile_pages

    if args.category:
        dataset = Marketplace(seed=args.seed).generate(
            args.category, args.products
        )
        pages = list(dataset.product_pages)
    else:
        from .corpus.io import load_pages

        pages, _ = load_pages(args.pages)
    profile = profile_pages(pages)
    print(profile.format())
    warnings = profile.seed_viability_warnings()
    if warnings:
        print("\nWARNINGS:")
        for warning in warnings:
            print(f"  ! {warning}")
    else:
        print("\nseed viability: OK")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "categories":
        return _command_categories()
    if args.command == "run":
        return _command_run(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "profile":
        return _command_profile(args)
    return _command_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
