"""The NeuroNER-style char+word BiLSTM tagger.

Architecture per token (Section VI-D of the paper):

1. a character-level BiLSTM reads the token's characters; the final
   forward and backward states form the char representation;
2. the token's word embedding is appended ("word level representation
   is appended to the BiLSTM output to enhance the embedding layer");
3. a word-level BiLSTM over the sentence computes "both previous and
   forward context";
4. a feed-forward layer + softmax yields label probabilities.

Training is per-sentence SGD with dropout; characters of one sentence
are processed as one padded batch for speed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...config import LstmConfig
from ...errors import NotFittedError, TrainingError
from ...nlp.bio import OUTSIDE, repair_bio
from ...nlp.vocab import Vocabulary
from ...perf.bucketing import length_buckets
from ...types import Sentence, TaggedSentence
from . import layers


class LstmTagger:
    """Char+word BiLSTM tagger implementing the SequenceTagger protocol.

    Args:
        config: hyperparameters; the paper contrasts ``epochs=2``
            (stable) against ``epochs=10`` (overfits).
    """

    def __init__(self, config: LstmConfig | None = None):
        self.config = config or LstmConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._words: Vocabulary | None = None
        self._chars: Vocabulary | None = None
        self._labels: list[str] = []
        self._label_index: dict[str, int] = {}
        self._params: dict[str, dict[str, np.ndarray]] = {}
        self._word_embedding: np.ndarray | None = None
        self._char_embedding: np.ndarray | None = None

    # -- protocol ----------------------------------------------------------

    def train(self, dataset: Sequence[TaggedSentence]) -> "LstmTagger":
        """Fit on BIO-labelled sentences."""
        usable = [tagged for tagged in dataset if len(tagged) > 0]
        if not usable:
            raise TrainingError("cannot train the LSTM on an empty dataset")
        self._build_vocabularies(usable)
        self._init_params()
        order = np.arange(len(usable))
        for epoch in range(self.config.epochs):
            self._rng.shuffle(order)
            learning_rate = self.config.learning_rate / (1.0 + 0.5 * epoch)
            for index in order:
                self._train_sentence(usable[int(index)], learning_rate)
        return self

    #: Sentences per length bucket at tag time (see ``_tag_one``).
    TAG_BUCKET_SIZE = 64

    def tag(self, sentences: Sequence[Sentence]) -> list[TaggedSentence]:
        """Predict BIO labels (argmax per token, scheme-repaired).

        Sentences are visited in length-bucketed order so the padded
        char batches of neighbouring sentences share shapes (fewer
        allocator misses); evaluation consumes no RNG (dropout is
        inactive), so the traversal order cannot affect the output,
        which is restored to input order.
        """
        if self._word_embedding is None:
            raise NotFittedError("LstmTagger")
        results: list[TaggedSentence | None] = [None] * len(sentences)
        nonempty: list[int] = []
        for index, sentence in enumerate(sentences):
            if len(sentence) == 0:
                results[index] = TaggedSentence(sentence, ())
            else:
                nonempty.append(index)
        buckets = length_buckets(
            [len(sentences[index]) for index in nonempty],
            self.TAG_BUCKET_SIZE,
        )
        for bucket in buckets:
            for position in bucket:
                index = nonempty[position]
                results[index] = self._tag_one(sentences[index])
        return [result for result in results if result is not None]

    def _tag_one(self, sentence: Sentence) -> TaggedSentence:
        logits = self._forward(sentence, train=False)[0]
        indices = logits.argmax(axis=1)
        labels = repair_bio(
            [self._labels[int(i)] for i in indices]
        )
        return TaggedSentence(sentence, tuple(labels))

    # -- setup --------------------------------------------------------------

    def _build_vocabularies(self, dataset: Sequence[TaggedSentence]) -> None:
        words = Vocabulary()
        chars = Vocabulary()
        label_set = {OUTSIDE}
        for tagged in dataset:
            for token in tagged.sentence:
                words.add(token.text)
                chars.add_all(token.text)
            label_set.update(tagged.labels)
        self._words = words.freeze()
        self._chars = chars.freeze()
        self._labels = sorted(label_set)
        self._label_index = {
            label: index for index, label in enumerate(self._labels)
        }

    def _init_params(self) -> None:
        assert self._words is not None and self._chars is not None
        config = self.config
        rng = self._rng
        self._word_embedding = (
            rng.standard_normal((len(self._words), config.word_dim)) * 0.1
        )
        self._char_embedding = (
            rng.standard_normal((len(self._chars), config.char_dim)) * 0.1
        )
        token_dim = 2 * config.char_hidden + config.word_dim
        self._params = {
            "char_fwd": layers.init_lstm(rng, config.char_dim, config.char_hidden),
            "char_bwd": layers.init_lstm(rng, config.char_dim, config.char_hidden),
            "word_fwd": layers.init_lstm(rng, token_dim, config.word_hidden),
            "word_bwd": layers.init_lstm(rng, token_dim, config.word_hidden),
            "output": layers.init_dense(
                rng, 2 * config.word_hidden, len(self._labels)
            ),
        }

    # -- forward / backward ----------------------------------------------------

    def _char_batch(
        self, sentence: Sentence
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Char-id tensors for one sentence.

        Returns ``(forward_ids, backward_ids, last_index)`` where both
        id arrays are (max_chars, n_tokens) with left-aligned padding
        (pad id 0 = <unk>), the backward array holds reversed
        characters, and ``last_index[j]`` is the final valid step of
        token j.
        """
        assert self._chars is not None
        token_chars = [
            [self._chars.id_of(char) for char in token.text]
            for token in sentence
        ]
        n_tokens = len(token_chars)
        max_chars = max(len(ids) for ids in token_chars)
        forward = np.zeros((max_chars, n_tokens), dtype=np.int64)
        backward = np.zeros((max_chars, n_tokens), dtype=np.int64)
        last = np.empty(n_tokens, dtype=np.int64)
        for j, ids in enumerate(token_chars):
            forward[: len(ids), j] = ids
            backward[: len(ids), j] = ids[::-1]
            last[j] = len(ids) - 1
        return forward, backward, last

    def _forward(self, sentence: Sentence, train: bool) -> tuple[np.ndarray, dict]:
        """Compute logits (n_tokens, n_labels); cache when training."""
        assert self._word_embedding is not None
        assert self._char_embedding is not None
        config = self.config
        n_tokens = len(sentence)
        word_ids = np.asarray(
            [self._words.id_of(token.text) for token in sentence],  # type: ignore[union-attr]
            dtype=np.int64,
        )

        fwd_ids, bwd_ids, last = self._char_batch(sentence)
        char_in_fwd = self._char_embedding[fwd_ids]   # (C, N, char_dim)
        char_in_bwd = self._char_embedding[bwd_ids]
        out_fwd, cache_fwd = layers.lstm_forward(
            self._params["char_fwd"], char_in_fwd
        )
        out_bwd, cache_bwd = layers.lstm_forward(
            self._params["char_bwd"], char_in_bwd
        )
        token_range = np.arange(n_tokens)
        char_repr = np.concatenate(
            [out_fwd[last, token_range], out_bwd[last, token_range]], axis=1
        )  # (N, 2*char_hidden)

        token_repr = np.concatenate(
            [char_repr, self._word_embedding[word_ids]], axis=1
        )
        rate = config.dropout if train else 0.0
        token_repr, drop_mask_in = layers.dropout_forward(
            self._rng, token_repr, rate
        )

        word_input = token_repr[:, None, :]  # (T, 1, D)
        word_out_fwd, word_cache_fwd = layers.lstm_forward(
            self._params["word_fwd"], word_input
        )
        word_out_bwd, word_cache_bwd = layers.lstm_forward(
            self._params["word_bwd"], word_input[::-1]
        )
        context = np.concatenate(
            [word_out_fwd[:, 0, :], word_out_bwd[::-1][:, 0, :]], axis=1
        )  # (T, 2*word_hidden)
        context, drop_mask_out = layers.dropout_forward(
            self._rng, context, rate
        )
        logits = layers.dense_forward(self._params["output"], context)

        cache = {
            "word_ids": word_ids,
            "fwd_ids": fwd_ids,
            "bwd_ids": bwd_ids,
            "last": last,
            "cache_fwd": cache_fwd,
            "cache_bwd": cache_bwd,
            "out_shape": out_fwd.shape,
            "word_cache_fwd": word_cache_fwd,
            "word_cache_bwd": word_cache_bwd,
            "context": context,
            "drop_mask_in": drop_mask_in,
            "drop_mask_out": drop_mask_out,
        }
        return logits, cache

    def _train_sentence(
        self, tagged: TaggedSentence, learning_rate: float
    ) -> float:
        assert self._word_embedding is not None
        assert self._char_embedding is not None
        config = self.config
        logits, cache = self._forward(tagged.sentence, train=True)
        targets = np.asarray(
            [self._label_index[label] for label in tagged.labels],
            dtype=np.int64,
        )
        loss, _, d_logits = layers.softmax_cross_entropy(logits, targets)

        d_context, grads_out = layers.dense_backward(
            self._params["output"], cache["context"], d_logits
        )
        d_context = layers.dropout_backward(
            d_context, cache["drop_mask_out"]
        )
        half = config.word_hidden
        d_word_fwd = d_context[:, :half][:, None, :]
        d_word_bwd = d_context[:, half:][::-1][:, None, :]
        d_in_fwd, grads_wf = layers.lstm_backward(
            self._params["word_fwd"], cache["word_cache_fwd"], d_word_fwd
        )
        d_in_bwd, grads_wb = layers.lstm_backward(
            self._params["word_bwd"], cache["word_cache_bwd"], d_word_bwd
        )
        d_token = d_in_fwd[:, 0, :] + d_in_bwd[::-1][:, 0, :]
        d_token = layers.dropout_backward(d_token, cache["drop_mask_in"])

        char_width = 2 * config.char_hidden
        d_char_repr = d_token[:, :char_width]
        d_word_embed = d_token[:, char_width:]

        n_tokens = d_token.shape[0]
        token_range = np.arange(n_tokens)
        d_out_fwd = np.zeros(cache["out_shape"])
        d_out_bwd = np.zeros(cache["out_shape"])
        d_out_fwd[cache["last"], token_range] = (
            d_char_repr[:, : config.char_hidden]
        )
        d_out_bwd[cache["last"], token_range] = (
            d_char_repr[:, config.char_hidden:]
        )
        d_char_in_fwd, grads_cf = layers.lstm_backward(
            self._params["char_fwd"], cache["cache_fwd"], d_out_fwd
        )
        d_char_in_bwd, grads_cb = layers.lstm_backward(
            self._params["char_bwd"], cache["cache_bwd"], d_out_bwd
        )

        layers.sgd_update(self._params["output"], grads_out, learning_rate)
        layers.sgd_update(self._params["word_fwd"], grads_wf, learning_rate)
        layers.sgd_update(self._params["word_bwd"], grads_wb, learning_rate)
        layers.sgd_update(self._params["char_fwd"], grads_cf, learning_rate)
        layers.sgd_update(self._params["char_bwd"], grads_cb, learning_rate)

        np.add.at(
            self._word_embedding,
            cache["word_ids"],
            -learning_rate * d_word_embed,
        )
        np.add.at(
            self._char_embedding,
            cache["fwd_ids"].ravel(),
            -learning_rate * d_char_in_fwd.reshape(-1, config.char_dim),
        )
        np.add.at(
            self._char_embedding,
            cache["bwd_ids"].ravel(),
            -learning_rate * d_char_in_bwd.reshape(-1, config.char_dim),
        )
        return loss

    # -- introspection --------------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        """The learned label inventory (empty before training)."""
        return tuple(self._labels)
