"""Char+word BiLSTM sequence tagger, built from scratch in numpy.

Equivalent to the paper's NeuroNER setup (Section VI-D): a character-
level BiLSTM produces a per-token representation, the token's word
embedding is appended, a word-level BiLSTM computes forward and backward
context, and a feed-forward layer yields per-token label probabilities.
Training is plain SGD with dropout regularisation; the paper's 2-epoch
vs 10-epoch contrast is just the ``epochs`` hyperparameter.
"""

from .model import LstmTagger

__all__ = ["LstmTagger"]
