"""Neural layers with explicit forward/backward passes.

Everything operates on time-major float arrays: an LSTM consumes
``(T, B, D_in)`` and produces ``(T, B, H)``. Parameters live in plain
dicts of numpy arrays so the optimizer can treat them uniformly.

Weight layout for the LSTM follows the fused convention: one input
matrix ``wx`` of shape ``(D_in, 4H)`` and one recurrent matrix ``wh`` of
``(H, 4H)``, gates ordered ``[input, forget, output, candidate]``; the
forget-gate bias is initialized to 1 (standard practice, keeps long
memories trainable from the start).
"""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


# -- parameter initialisation ------------------------------------------


def glorot(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    bound = np.sqrt(6.0 / (rows + cols))
    return rng.uniform(-bound, bound, size=(rows, cols))


def init_lstm(
    rng: np.random.Generator, input_dim: int, hidden: int
) -> dict[str, np.ndarray]:
    """Fresh LSTM parameters (fused 4-gate layout)."""
    bias = np.zeros(4 * hidden)
    bias[hidden:2 * hidden] = 1.0  # forget gate
    return {
        "wx": glorot(rng, input_dim, 4 * hidden),
        "wh": glorot(rng, hidden, 4 * hidden),
        "b": bias,
    }


def init_dense(
    rng: np.random.Generator, input_dim: int, output_dim: int
) -> dict[str, np.ndarray]:
    """Fresh dense-layer parameters."""
    return {
        "w": glorot(rng, input_dim, output_dim),
        "b": np.zeros(output_dim),
    }


# -- LSTM ----------------------------------------------------------------


def lstm_forward(
    params: dict[str, np.ndarray], inputs: np.ndarray
) -> tuple[np.ndarray, list]:
    """Run an LSTM over ``inputs`` of shape (T, B, D_in).

    Returns:
        ``(hidden_states, cache)`` where hidden_states is (T, B, H) and
        cache holds per-step intermediates for the backward pass.
    """
    steps, batch, _ = inputs.shape
    hidden = params["wh"].shape[0]
    h = np.zeros((batch, hidden))
    c = np.zeros((batch, hidden))
    outputs = np.empty((steps, batch, hidden))
    cache: list = []
    for t in range(steps):
        x = inputs[t]
        z = x @ params["wx"] + h @ params["wh"] + params["b"]
        i = sigmoid(z[:, :hidden])
        f = sigmoid(z[:, hidden:2 * hidden])
        o = sigmoid(z[:, 2 * hidden:3 * hidden])
        g = np.tanh(z[:, 3 * hidden:])
        c_prev = c
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h_prev = h
        h = o * tanh_c
        outputs[t] = h
        cache.append((x, h_prev, c_prev, i, f, o, g, tanh_c))
    return outputs, cache


def lstm_backward(
    params: dict[str, np.ndarray],
    cache: list,
    d_outputs: np.ndarray,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Backprop through an LSTM.

    Args:
        params: the layer's parameters.
        cache: from :func:`lstm_forward`.
        d_outputs: gradient of the loss w.r.t. the hidden states,
            shape (T, B, H).

    Returns:
        ``(d_inputs, grads)`` — gradient w.r.t. the inputs (T, B, D_in)
        and a parameter-gradient dict matching ``params``.
    """
    steps = len(cache)
    hidden = params["wh"].shape[0]
    input_dim = params["wx"].shape[0]
    batch = d_outputs.shape[1]
    grads = {
        "wx": np.zeros_like(params["wx"]),
        "wh": np.zeros_like(params["wh"]),
        "b": np.zeros_like(params["b"]),
    }
    d_inputs = np.empty((steps, batch, input_dim))
    dh_next = np.zeros((batch, hidden))
    dc_next = np.zeros((batch, hidden))
    for t in range(steps - 1, -1, -1):
        x, h_prev, c_prev, i, f, o, g, tanh_c = cache[t]
        dh = d_outputs[t] + dh_next
        do = dh * tanh_c
        dc = dh * o * (1.0 - tanh_c * tanh_c) + dc_next
        df = dc * c_prev
        di = dc * g
        dg = dc * i
        dc_next = dc * f
        dz = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                do * o * (1.0 - o),
                dg * (1.0 - g * g),
            ],
            axis=1,
        )
        grads["wx"] += x.T @ dz
        grads["wh"] += h_prev.T @ dz
        grads["b"] += dz.sum(axis=0)
        d_inputs[t] = dz @ params["wx"].T
        dh_next = dz @ params["wh"].T
    return d_inputs, grads


# -- dense / softmax ------------------------------------------------------


def dense_forward(
    params: dict[str, np.ndarray], inputs: np.ndarray
) -> np.ndarray:
    """Affine map over the last axis."""
    return inputs @ params["w"] + params["b"]


def dense_backward(
    params: dict[str, np.ndarray],
    inputs: np.ndarray,
    d_outputs: np.ndarray,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Backprop through the affine map (2-D inputs)."""
    grads = {
        "w": inputs.T @ d_outputs,
        "b": d_outputs.sum(axis=0),
    }
    return d_outputs @ params["w"].T, grads


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Mean CE loss over rows.

    Args:
        logits: (N, L).
        targets: (N,) int class indices.

    Returns:
        ``(loss, probabilities, d_logits)``.
    """
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probabilities = exp / exp.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    log_likelihood = -np.log(
        np.maximum(probabilities[np.arange(n), targets], 1e-12)
    )
    loss = float(log_likelihood.mean())
    d_logits = probabilities.copy()
    d_logits[np.arange(n), targets] -= 1.0
    d_logits /= n
    return loss, probabilities, d_logits


# -- dropout ---------------------------------------------------------------


def dropout_forward(
    rng: np.random.Generator, inputs: np.ndarray, rate: float
) -> tuple[np.ndarray, np.ndarray | None]:
    """Inverted dropout; returns (outputs, mask). No-op when rate==0."""
    if rate <= 0.0:
        return inputs, None
    mask = (rng.random(inputs.shape) >= rate) / (1.0 - rate)
    return inputs * mask, mask


def dropout_backward(
    d_outputs: np.ndarray, mask: np.ndarray | None
) -> np.ndarray:
    """Backprop through dropout."""
    if mask is None:
        return d_outputs
    return d_outputs * mask


# -- optimizer --------------------------------------------------------------


def sgd_update(
    params: dict[str, np.ndarray],
    grads: dict[str, np.ndarray],
    learning_rate: float,
    clip: float = 5.0,
) -> None:
    """In-place SGD step with per-tensor norm clipping."""
    for key, gradient in grads.items():
        norm = float(np.linalg.norm(gradient))
        if norm > clip:
            gradient = gradient * (clip / norm)
        params[key] -= learning_rate * gradient
