"""The tagger protocol shared by CRF and BiLSTM backends."""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from ..types import Sentence, TaggedSentence


@runtime_checkable
class SequenceTagger(Protocol):
    """Anything that can be trained on BIO data and tag new sentences."""

    def train(self, dataset: Sequence[TaggedSentence]) -> "SequenceTagger":
        """Fit the model on labelled sentences; returns self."""
        ...

    def tag(self, sentences: Sequence[Sentence]) -> list[TaggedSentence]:
        """Predict BIO labels for unlabelled sentences."""
        ...
