"""Model persistence: save and load trained taggers and embeddings.

A production pipeline trains once and tags many times; these helpers
serialize the from-scratch models without pickle (no arbitrary code
execution on load — a deliberate choice for artifacts that may be
shared). Format: one directory per model, ``meta.json`` for structure
and a ``weights.npz`` for arrays.

Supported: :class:`~repro.ml.crf.CrfTagger`,
:class:`~repro.ml.lstm.LstmTagger`,
:class:`~repro.embeddings.word2vec.Word2Vec`.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict

import numpy as np

from ..config import CrfConfig, LstmConfig
from ..errors import ModelError, NotFittedError
from ..nlp.vocab import Vocabulary
from .crf import CrfTagger
from .lstm import LstmTagger

_FORMAT_VERSION = 1


def _write(directory: pathlib.Path, meta: dict, arrays: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    meta = dict(meta, format_version=_FORMAT_VERSION)
    (directory / "meta.json").write_text(
        json.dumps(meta, ensure_ascii=False, indent=1)
    )
    np.savez(directory / "weights.npz", **arrays)


def _read(directory: pathlib.Path) -> tuple[dict, dict]:
    directory = pathlib.Path(directory)
    meta_path = directory / "meta.json"
    weights_path = directory / "weights.npz"
    if not meta_path.exists() or not weights_path.exists():
        raise ModelError(f"no saved model at {directory}")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format {meta.get('format_version')!r}"
        )
    arrays = dict(np.load(weights_path, allow_pickle=False))
    return meta, arrays


# -- CRF ---------------------------------------------------------------


def save_crf(tagger: CrfTagger, directory: str | pathlib.Path) -> None:
    """Persist a trained CRF (feature index, labels, weights)."""
    if tagger._unary is None or tagger._indexer is None:
        raise NotFittedError("CrfTagger")
    features = [""] * len(tagger._indexer)
    for feature, column in tagger._indexer._index.items():
        features[column] = feature
    _write(
        pathlib.Path(directory),
        meta={
            "kind": "crf",
            "config": asdict(tagger.config),
            "labels": list(tagger.labels),
            "features": features,
        },
        arrays={
            "unary": tagger._unary,
            "transitions": tagger._transitions,
        },
    )


def load_crf(directory: str | pathlib.Path) -> CrfTagger:
    """Load a CRF saved by :func:`save_crf`."""
    meta, arrays = _read(pathlib.Path(directory))
    if meta.get("kind") != "crf":
        raise ModelError(f"not a CRF model: {meta.get('kind')!r}")
    tagger = CrfTagger(CrfConfig(**meta["config"]))
    tagger._labels = list(meta["labels"])
    tagger._label_index = {
        label: index for index, label in enumerate(tagger._labels)
    }
    from .features import FeatureIndexer

    indexer = FeatureIndexer(min_count=tagger.config.min_feature_count)
    indexer._index = {
        feature: column
        for column, feature in enumerate(meta["features"])
    }
    # Re-intern the restored features into the fresh tagger's cache so
    # the interned decode path works post-load.
    indexer.attach_interner(tagger._cache.interner)
    tagger._indexer = indexer
    tagger._unary = arrays["unary"]
    tagger._transitions = arrays["transitions"]
    return tagger


# -- LSTM --------------------------------------------------------------


def _vocabulary_to_list(vocabulary: Vocabulary) -> list[str]:
    return [vocabulary.token_of(i) for i in range(len(vocabulary))]


def _vocabulary_from_list(tokens: list[str]) -> Vocabulary:
    return Vocabulary.from_ordered_tokens(tokens)


def save_lstm(tagger: LstmTagger, directory: str | pathlib.Path) -> None:
    """Persist a trained BiLSTM tagger."""
    if tagger._word_embedding is None:
        raise NotFittedError("LstmTagger")
    arrays: dict = {
        "word_embedding": tagger._word_embedding,
        "char_embedding": tagger._char_embedding,
    }
    for layer, params in tagger._params.items():
        for name, array in params.items():
            arrays[f"{layer}__{name}"] = array
    _write(
        pathlib.Path(directory),
        meta={
            "kind": "lstm",
            "config": asdict(tagger.config),
            "labels": list(tagger.labels),
            "words": _vocabulary_to_list(tagger._words),
            "chars": _vocabulary_to_list(tagger._chars),
        },
        arrays=arrays,
    )


def load_lstm(directory: str | pathlib.Path) -> LstmTagger:
    """Load a BiLSTM tagger saved by :func:`save_lstm`."""
    meta, arrays = _read(pathlib.Path(directory))
    if meta.get("kind") != "lstm":
        raise ModelError(f"not an LSTM model: {meta.get('kind')!r}")
    tagger = LstmTagger(LstmConfig(**meta["config"]))
    tagger._labels = list(meta["labels"])
    tagger._label_index = {
        label: index for index, label in enumerate(tagger._labels)
    }
    tagger._words = _vocabulary_from_list(meta["words"])
    tagger._chars = _vocabulary_from_list(meta["chars"])
    tagger._word_embedding = arrays.pop("word_embedding")
    tagger._char_embedding = arrays.pop("char_embedding")
    params: dict[str, dict[str, np.ndarray]] = {}
    for key, array in arrays.items():
        layer, _, name = key.partition("__")
        params.setdefault(layer, {})[name] = array
    tagger._params = params
    return tagger
