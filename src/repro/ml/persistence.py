"""Model persistence: save and load trained taggers and embeddings.

A production pipeline trains once and tags many times; these helpers
serialize the from-scratch models without pickle (no arbitrary code
execution on load — a deliberate choice for artifacts that may be
shared). Format: one directory per model, ``meta.json`` for structure
and a ``weights.npz`` for arrays.

Supported: :class:`~repro.ml.crf.CrfTagger`,
:class:`~repro.ml.lstm.LstmTagger`,
:class:`~repro.embeddings.word2vec.Word2Vec`.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import asdict

import numpy as np

from ..config import CrfConfig, LstmConfig
from ..errors import ModelError, NotFittedError
from ..nlp.vocab import Vocabulary
from .crf import CrfTagger
from .lstm import LstmTagger

_FORMAT_VERSION = 1

#: Files every saved model consists of (manifest-covered by default).
MODEL_FILES = ("meta.json", "weights.npz")

MANIFEST_NAME = "MANIFEST.json"


def _write(directory: pathlib.Path, meta: dict, arrays: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    meta = dict(meta, format_version=_FORMAT_VERSION)
    (directory / "meta.json").write_text(
        json.dumps(meta, ensure_ascii=False, indent=1)
    )
    np.savez(directory / "weights.npz", **arrays)


def _read(directory: pathlib.Path) -> tuple[dict, dict]:
    directory = pathlib.Path(directory)
    meta_path = directory / "meta.json"
    weights_path = directory / "weights.npz"
    if not meta_path.exists() or not weights_path.exists():
        raise ModelError(f"no saved model at {directory}")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format {meta.get('format_version')!r}"
        )
    arrays = dict(np.load(weights_path, allow_pickle=False))
    return meta, arrays


# -- checksummed manifests ---------------------------------------------


def _file_digest(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _combined_digest(files: dict[str, str]) -> str:
    text = "".join(
        f"{name}:{files[name]}\n" for name in sorted(files)
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def write_manifest(
    directory: str | pathlib.Path,
    extra_files: tuple[str, ...] = (),
) -> str:
    """Write a checksum manifest next to a saved model.

    Covers :data:`MODEL_FILES` plus ``extra_files`` with per-file
    SHA-256 digests and one combined digest — the identity a registry
    pins so a corrupted or half-written bundle can never be marked
    live.

    Returns:
        The combined digest.
    """
    directory = pathlib.Path(directory)
    files: dict[str, str] = {}
    for name in (*MODEL_FILES, *extra_files):
        path = directory / name
        if not path.exists():
            raise ModelError(f"cannot manifest missing file {path}")
        files[name] = _file_digest(path)
    digest = _combined_digest(files)
    (directory / MANIFEST_NAME).write_text(
        json.dumps(
            {
                "format_version": _FORMAT_VERSION,
                "files": files,
                "digest": digest,
            },
            indent=1,
            sort_keys=True,
        )
    )
    return digest


def verify_manifest(directory: str | pathlib.Path) -> str:
    """Re-hash a saved model against its manifest.

    Raises:
        ModelError: when the manifest is missing/garbled or any
            covered file is missing or fails its checksum.

    Returns:
        The verified combined digest.
    """
    directory = pathlib.Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise ModelError(f"no manifest at {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
        files = dict(manifest["files"])
        recorded = manifest["digest"]
    except (ValueError, KeyError, TypeError) as error:
        raise ModelError(
            f"garbled manifest at {manifest_path}: {error}"
        ) from error
    observed: dict[str, str] = {}
    for name, expected in files.items():
        path = directory / name
        if not path.exists():
            raise ModelError(f"manifested file missing: {path}")
        actual = _file_digest(path)
        if actual != expected:
            raise ModelError(
                f"checksum mismatch for {path}: "
                f"expected {expected[:12]}…, got {actual[:12]}…"
            )
        observed[name] = actual
    digest = _combined_digest(observed)
    if digest != recorded:
        raise ModelError(
            f"manifest digest mismatch at {directory}"
        )
    return digest


def model_kind(directory: str | pathlib.Path) -> str:
    """The saved model's kind (``"crf"`` or ``"lstm"``) without loading."""
    meta_path = pathlib.Path(directory) / "meta.json"
    if not meta_path.exists():
        raise ModelError(f"no saved model at {directory}")
    try:
        return str(json.loads(meta_path.read_text()).get("kind"))
    except ValueError as error:
        raise ModelError(
            f"garbled meta.json at {directory}: {error}"
        ) from error


def load_tagger(directory: str | pathlib.Path) -> CrfTagger | LstmTagger:
    """Load a saved tagger of either kind (dispatch on ``meta.json``)."""
    kind = model_kind(directory)
    if kind == "crf":
        return load_crf(directory)
    if kind == "lstm":
        return load_lstm(directory)
    raise ModelError(f"unknown saved model kind {kind!r} at {directory}")


# -- CRF ---------------------------------------------------------------


def save_crf(tagger: CrfTagger, directory: str | pathlib.Path) -> None:
    """Persist a trained CRF (feature index, labels, weights)."""
    if tagger._unary is None or tagger._indexer is None:
        raise NotFittedError("CrfTagger")
    features = [""] * len(tagger._indexer)
    for feature, column in tagger._indexer._index.items():
        features[column] = feature
    _write(
        pathlib.Path(directory),
        meta={
            "kind": "crf",
            "config": asdict(tagger.config),
            "labels": list(tagger.labels),
            "features": features,
        },
        arrays={
            "unary": tagger._unary,
            "transitions": tagger._transitions,
        },
    )


def load_crf(directory: str | pathlib.Path) -> CrfTagger:
    """Load a CRF saved by :func:`save_crf`."""
    meta, arrays = _read(pathlib.Path(directory))
    if meta.get("kind") != "crf":
        raise ModelError(f"not a CRF model: {meta.get('kind')!r}")
    tagger = CrfTagger(CrfConfig(**meta["config"]))
    tagger._labels = list(meta["labels"])
    tagger._label_index = {
        label: index for index, label in enumerate(tagger._labels)
    }
    from .features import FeatureIndexer

    indexer = FeatureIndexer(min_count=tagger.config.min_feature_count)
    indexer._index = {
        feature: column
        for column, feature in enumerate(meta["features"])
    }
    # Re-intern the restored features into the fresh tagger's cache so
    # the interned decode path works post-load.
    indexer.attach_interner(tagger._cache.interner)
    tagger._indexer = indexer
    tagger._unary = arrays["unary"]
    tagger._transitions = arrays["transitions"]
    return tagger


# -- LSTM --------------------------------------------------------------


def _vocabulary_to_list(vocabulary: Vocabulary) -> list[str]:
    return [vocabulary.token_of(i) for i in range(len(vocabulary))]


def _vocabulary_from_list(tokens: list[str]) -> Vocabulary:
    return Vocabulary.from_ordered_tokens(tokens)


def save_lstm(tagger: LstmTagger, directory: str | pathlib.Path) -> None:
    """Persist a trained BiLSTM tagger."""
    if tagger._word_embedding is None:
        raise NotFittedError("LstmTagger")
    arrays: dict = {
        "word_embedding": tagger._word_embedding,
        "char_embedding": tagger._char_embedding,
    }
    for layer, params in tagger._params.items():
        for name, array in params.items():
            arrays[f"{layer}__{name}"] = array
    _write(
        pathlib.Path(directory),
        meta={
            "kind": "lstm",
            "config": asdict(tagger.config),
            "labels": list(tagger.labels),
            "words": _vocabulary_to_list(tagger._words),
            "chars": _vocabulary_to_list(tagger._chars),
        },
        arrays=arrays,
    )


def load_lstm(directory: str | pathlib.Path) -> LstmTagger:
    """Load a BiLSTM tagger saved by :func:`save_lstm`."""
    meta, arrays = _read(pathlib.Path(directory))
    if meta.get("kind") != "lstm":
        raise ModelError(f"not an LSTM model: {meta.get('kind')!r}")
    tagger = LstmTagger(LstmConfig(**meta["config"]))
    tagger._labels = list(meta["labels"])
    tagger._label_index = {
        label: index for index, label in enumerate(tagger._labels)
    }
    tagger._words = _vocabulary_from_list(meta["words"])
    tagger._chars = _vocabulary_from_list(meta["chars"])
    tagger._word_embedding = arrays.pop("word_embedding")
    tagger._char_embedding = arrays.pop("char_embedding")
    params: dict[str, dict[str, np.ndarray]] = {}
    for key, array in arrays.items():
        layer, _, name = key.partition("__")
        params.setdefault(layer, {})[name] = array
    tagger._params = params
    return tagger
