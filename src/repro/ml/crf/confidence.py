"""Span confidence from CRF posterior marginals.

The paper's related work (Pasca et al., Gupta & Manning) scores
candidate extractions to fight drift; a linear-chain CRF supports a
principled version for free: the posterior probability of a decoded
span is computable from constrained forward-backward quantities. We
use the cheap, standard approximation — the geometric mean of the
per-token posterior marginals of the span's labels — which is exact
for length-1 spans and a tight lower-bound proxy otherwise.

Used by :meth:`repro.ml.crf.model.CrfTagger.tag_with_confidence` and
the confidence-filter extension.
"""

from __future__ import annotations

import numpy as np

from .inference import ForwardBackward


def span_confidences(
    marginals: np.ndarray,
    spans: list[tuple[int, int, str]],
    label_index: dict[str, int],
) -> list[float]:
    """Score decoded spans from per-token posterior marginals.

    Args:
        marginals: (T, L) posterior P(y_t = l) for one sentence.
        spans: decoded ``(start, end, attribute)`` spans.
        label_index: label string → column index.

    Returns:
        One confidence in [0, 1] per span: the geometric mean of the
        marginals of the span's B-/I- labels.
    """
    confidences: list[float] = []
    for start, end, attribute in spans:
        probabilities = []
        for position in range(start, end):
            prefix = "B" if position == start else "I"
            label = f"{prefix}-{attribute}"
            column = label_index.get(label)
            if column is None:
                # Label never seen in training (e.g. an I- for a
                # single-token attribute); be conservative.
                probabilities.append(0.0)
                continue
            probabilities.append(float(marginals[position, column]))
        if not probabilities or min(probabilities) <= 0.0:
            confidences.append(0.0)
            continue
        log_mean = float(np.mean(np.log(probabilities)))
        confidences.append(float(np.exp(log_mean)))
    return confidences
