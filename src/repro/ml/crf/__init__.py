"""Linear-chain Conditional Random Field, built from scratch.

Equivalent to the paper's crfsuite setup: limited-memory BFGS training
with L1+L2 (elastic-net) regularisation and the standard window feature
template from :mod:`repro.ml.features`.

Structure:

* :mod:`inference` — batched log-space forward/backward, posterior
  marginals and Viterbi decoding over padded tensors;
* :mod:`train` — the regularized negative log-likelihood objective and
  its analytic gradient, minimized with scipy's L-BFGS-B;
* :mod:`model` — the :class:`CrfTagger` facade implementing the
  :class:`~repro.ml.base.SequenceTagger` protocol.
"""

from .model import CrfTagger

__all__ = ["CrfTagger"]
