"""The :class:`CrfTagger` facade.

Ties together feature extraction, indexing, training and Viterbi
decoding behind the two-method :class:`~repro.ml.base.SequenceTagger`
protocol the bootstrap loop consumes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...config import CrfConfig
from ...errors import ModelError, NotFittedError, TrainingError
from ...nlp.bio import OUTSIDE, repair_bio
from ...perf.bucketing import length_buckets
from ...perf.cache import FeatureCache
from ...types import Sentence, TaggedSentence
from ..features import FeatureExtractor, FeatureIndexer
from .inference import InferenceScratch, viterbi
from .train import CrfProblem, train_crf


class CrfTagger:
    """Linear-chain CRF sequence tagger (crfsuite-equivalent).

    Args:
        config: hyperparameters; defaults mirror the paper's
            out-of-the-box crfsuite configuration.
        feature_cache: optional shared :class:`FeatureCache` (the
            bootstrap loop passes one per run so iterations 2+ reuse
            iteration 1's extraction work). A private cache is created
            when omitted; ``False`` disables caching entirely and runs
            the reference string-feature path (re-extracting on every
            call — the benchmark's "uncached" mode). A supplied cache
            must match the configured feature window. Every choice is
            output-identical; only wall-clock differs.
    """

    def __init__(
        self,
        config: CrfConfig | None = None,
        feature_cache: FeatureCache | bool | None = None,
    ):
        self.config = config or CrfConfig()
        if feature_cache is False:
            self._cache: FeatureCache | None = None
            self._extractor = FeatureExtractor(window=self.config.window)
        else:
            if (
                feature_cache is not None
                and feature_cache.extractor.window != self.config.window
            ):
                raise ValueError(
                    "feature_cache window "
                    f"{feature_cache.extractor.window} does not match "
                    f"CrfConfig.window {self.config.window}"
                )
            self._cache = feature_cache or FeatureCache(
                window=self.config.window
            )
            self._extractor = self._cache.extractor
        self._scratch = InferenceScratch()
        self._indexer: FeatureIndexer | None = None
        self._labels: list[str] = []
        self._label_index: dict[str, int] = {}
        self._unary: np.ndarray | None = None
        self._transitions: np.ndarray | None = None
        #: Counted, non-fatal training warnings from the last
        #: ``train()`` call (e.g. a degraded L-BFGS line-search abort);
        #: surfaced through ``PipelineResult.resilience_counters()``.
        self.training_diagnostics: dict[str, int] = {}

    # -- protocol ---------------------------------------------------------

    def train(self, dataset: Sequence[TaggedSentence]) -> "CrfTagger":
        """Fit on BIO-labelled sentences.

        Raises:
            TrainingError: on an empty dataset.
        """
        if not dataset:
            raise TrainingError("cannot train a CRF on an empty dataset")
        label_set = {OUTSIDE}
        for tagged in dataset:
            label_set.update(tagged.labels)
        self._labels = sorted(label_set)
        self._label_index = {
            label: index for index, label in enumerate(self._labels)
        }

        if self._cache is None:
            string_rows = [
                self._extractor.extract(tagged.sentence)
                for tagged in dataset
            ]
            self._indexer = FeatureIndexer(
                min_count=self.config.min_feature_count
            ).fit(string_rows)
            design = self._indexer.design_matrix(string_rows)
        else:
            feature_rows = self._cache.rows_for(
                tagged.sentence for tagged in dataset
            )
            self._indexer = FeatureIndexer(
                min_count=self.config.min_feature_count
            ).fit_interned(feature_rows, self._cache.interner)
            design = self._indexer.design_matrix_interned(feature_rows)
        labels = np.asarray(
            [
                self._label_index[label]
                for tagged in dataset
                for label in tagged.labels
            ],
            dtype=np.int64,
        )
        lengths = np.asarray(
            [len(tagged) for tagged in dataset], dtype=np.int64
        )
        problem = CrfProblem(design, labels, lengths, len(self._labels))
        self.training_diagnostics = {}
        self._unary, self._transitions = train_crf(
            problem, self.config.l1, self.config.l2,
            self.config.max_iterations,
            trainer=self.config.trainer,
            batch_size=self.config.train_batch_size,
            estep_workers=self.config.estep_workers,
            sgd_batch_size=self.config.sgd_batch_size,
            sgd_learning_rate=self.config.sgd_learning_rate,
            diagnostics=self.training_diagnostics,
        )
        return self

    def tag(self, sentences: Sequence[Sentence]) -> list[TaggedSentence]:
        """Viterbi-decode BIO labels (scheme-repaired) for new sentences."""
        if self._unary is None or self._indexer is None:
            raise NotFittedError("CrfTagger")
        if not sentences:
            return []
        nonempty = [
            sentence for sentence in sentences if len(sentence) > 0
        ]
        decoded: dict[int, list[str]] = {}
        for chunk in self._tag_batches(nonempty):
            decoded_paths = self._decode(chunk)
            for sentence, path in zip(chunk, decoded_paths):
                decoded[id(sentence)] = path
        results: list[TaggedSentence] = []
        for sentence in sentences:
            if len(sentence) == 0:
                results.append(TaggedSentence(sentence, ()))
                continue
            # Strict lookup: a batching/decoding bug that dropped a
            # sentence must surface as an error here, not as silently
            # vanished extractions downstream.
            try:
                labels = decoded[id(sentence)]
            except KeyError:
                raise ModelError(
                    "CrfTagger.tag decoded no labels for non-empty "
                    f"sentence {sentence.product_id!r}"
                ) from None
            results.append(
                TaggedSentence(sentence, tuple(repair_bio(labels)))
            )
        return results

    def tag_with_confidence(
        self, sentences: Sequence[Sentence]
    ) -> list[tuple[TaggedSentence, list[float]]]:
        """Tag sentences and score every decoded span.

        Returns:
            For each sentence, ``(tagged, confidences)`` where
            ``confidences[i]`` belongs to the i-th span of
            ``decode_bio(tagged.labels)`` — the geometric mean of the
            span labels' posterior marginals (see
            :mod:`repro.ml.crf.confidence`).
        """
        if self._unary is None or self._indexer is None:
            raise NotFittedError("CrfTagger")
        from ...nlp.bio import decode_bio
        from .confidence import span_confidences
        from .inference import forward_backward

        results: list[tuple[TaggedSentence, list[float]]] = []
        nonempty = [s for s in sentences if len(s) > 0]
        scored: dict[int, tuple[list[str], list[float]]] = {}
        for chunk in self._tag_batches(nonempty):
            emissions, mask = self._emissions(chunk)
            paths = viterbi(
                emissions, mask, self._transitions,
                scratch=self._scratch,
            )
            fb = forward_backward(
                emissions, mask, self._transitions,
                scratch=self._scratch,
            )
            marginals = fb.unary_marginals()
            for index, sentence in enumerate(chunk):
                labels = repair_bio(
                    [self._labels[label] for label in paths[index]]
                )
                spans = decode_bio(labels)
                confidences = span_confidences(
                    marginals[index, : len(sentence)],
                    spans,
                    self._label_index,
                )
                scored[id(sentence)] = (labels, confidences)
        for sentence in sentences:
            if len(sentence) == 0:
                results.append((TaggedSentence(sentence, ()), []))
                continue
            try:
                labels, confidences = scored[id(sentence)]
            except KeyError:
                raise ModelError(
                    "CrfTagger.tag_with_confidence decoded no labels "
                    f"for non-empty sentence {sentence.product_id!r}"
                ) from None
            results.append(
                (TaggedSentence(sentence, tuple(labels)), confidences)
            )
        return results

    # -- internals ---------------------------------------------------------

    def _tag_batches(self, nonempty: list[Sentence]):
        """Length-bucketed sentence batches for decoding.

        Each bucket pads only to its own longest member; per-sentence
        decoding is independent of batch composition, so the bucketed
        traversal is output-identical to one monolithic batch.
        """
        if not nonempty:
            return
        buckets = length_buckets(
            [len(sentence) for sentence in nonempty],
            self.config.tag_batch_size,
        )
        for bucket in buckets:
            yield [nonempty[index] for index in bucket]

    def _emissions(
        self, sentences: Sequence[Sentence]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Padded emission scores and mask for non-empty sentences."""
        assert self._indexer is not None and self._unary is not None
        if self._cache is None:
            design = self._indexer.design_matrix(
                [self._extractor.extract(s) for s in sentences]
            )
        else:
            feature_rows = self._cache.rows_for(sentences)
            design = self._indexer.design_matrix_interned(feature_rows)
        scores_flat = design @ self._unary
        lengths = [len(sentence) for sentence in sentences]
        batch = len(sentences)
        max_len = max(lengths)
        n_labels = len(self._labels)
        emissions = np.zeros((batch, max_len, n_labels), dtype=np.float64)
        mask = np.zeros((batch, max_len), dtype=bool)
        offset = 0
        for index, length in enumerate(lengths):
            emissions[index, :length] = scores_flat[offset:offset + length]
            mask[index, :length] = True
            offset += length
        return emissions, mask

    def _decode(self, sentences: Sequence[Sentence]) -> list[list[str]]:
        assert self._transitions is not None
        emissions, mask = self._emissions(sentences)
        paths = viterbi(
            emissions, mask, self._transitions, scratch=self._scratch
        )
        return [
            [self._labels[label] for label in path] for path in paths
        ]

    # -- introspection ------------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        """The learned label inventory (empty before training)."""
        return tuple(self._labels)

    @property
    def feature_count(self) -> int:
        """Number of indexed features (0 before training)."""
        return len(self._indexer) if self._indexer is not None else 0
