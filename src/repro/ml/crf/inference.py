"""Batched log-space inference for the linear-chain CRF.

All routines operate on a padded batch:

* ``emissions``: float array (B, T, L) — unary scores, zero at padding;
* ``mask``: bool array (B, T) — True at real tokens (row-prefix form);
* ``transitions``: float array (L, L) — score of label j following i.

The forward/backward recursions use the carry trick at padded steps
(alpha is propagated unchanged), so ``alpha[:, -1]`` always holds the
value at each sequence's last real token.

Hot-path note: every recursion step needs a ``(B, L, L)`` score block;
allocating one (plus an ``exp`` temporary) per step dominated L-BFGS
wall-clock. The routines now write into preallocated scratch buffers
(:class:`InferenceScratch`) shared across steps and across objective
calls. The *sequence of floating-point operations is unchanged* —
identical elementwise ops on identically-shaped arrays, identical
reduction axes — so results are bit-for-bit equal to the allocating
implementation; only the memory traffic differs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class InferenceScratch:
    """Reusable named scratch buffers, keyed by shape.

    One instance per training workspace or tagger; a buffer is
    reallocated only when the requested shape changes (e.g. a new
    length bucket). Not thread-safe — share across sequential calls
    only.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def buffer(
        self, name: str, shape: tuple, dtype=np.float64
    ) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf


class PackedEstep:
    """Scaled-probability forward/backward over one packed bucket.

    The training E-step for a :class:`~repro.perf.bucketing.PackedLayout`
    bucket: forward/backward recursions in *probability space* with
    per-row normalization (the classic scaling trick), log-scales
    accumulated separately, and per-sentence expected transition
    counts via one batched matrix product per equal-length group.

    Determinism contract: every per-sentence quantity this class
    produces depends only on that sentence's own rows — the recursions
    use batched ``(1, L) @ (L, L)`` matmuls (one independent
    fixed-shape product per row, bit-identical for any batch slice or
    memory offset) and per-row ``np.einsum`` reductions, and the
    per-sentence transition products have fixed per-sentence shapes —
    so results are bit-identical no matter how sentences are
    partitioned into buckets or fanned across worker processes.
    Cross-sentence reductions are left to the caller, which must
    perform them in a canonical order.

    All buffers live in a per-bucket :class:`InferenceScratch` and the
    per-step slice views are prebuilt once, so an objective call is a
    straight sequence of C-level array ops.
    """

    def __init__(self, layout, n_labels, row_scale, scratch=None):
        """Bind buffers and per-step views for one bucket.

        Args:
            layout: the bucket's :class:`PackedLayout`.
            n_labels: label inventory size ``L``.
            row_scale: per-packed-row weight folded into the returned
                marginals and transition counts (sentence
                multiplicities from deduplication; pass ones for
                unweighted counts).
            scratch: per-bucket buffer pool (fresh one when omitted).
        """
        self.layout = layout
        self.n_labels = n_labels
        self.scratch = scratch if scratch is not None else InferenceScratch()
        labels = n_labels
        rows = layout.rows
        steps = layout.max_len
        n_sent = layout.n_sent
        buf = self.scratch.buffer
        self.alpha = buf("alpha", (rows, labels))
        self.beta = buf("beta", (rows, labels))
        self.emit = buf("emit", (rows, labels))
        # Forward/backward per-row normalizers. The backward pass never
        # writes the t=0 rows of `norm_b`; ones keep the full-array log
        # finite (the values are unused).
        self.norm_f = buf("norm_f", (rows,))
        self.norm_f.fill(1.0)
        self.norm_b = buf("norm_b", (rows,))
        self.norm_b.fill(1.0)
        self.scale_f = buf("scale_f", (rows,))
        self.scale_b = buf("scale_b", (rows,))
        self.cum_f = buf("cum_f", (rows,))
        self.cum_b = buf("cum_b", (rows,))
        self.max_adj = buf("max_adj", (rows,))
        self.factor = buf("factor", (rows,))
        self.wfactor = buf("wfactor", (rows,))
        self.log_z_row = buf("log_z_row", (rows,))
        self.marg = buf("marg", (rows, labels))
        self.log_z = buf("log_z", (n_sent,))
        self.prev_cum = buf("prev_cum", (rows - layout.o1,))
        grid_steps = max(steps - 1, 1)
        self.u_grid = buf("u_grid", (n_sent, grid_steps, labels))
        self.v_grid = buf("v_grid", (n_sent, grid_steps, labels))
        self.u_grid.fill(0.0)
        self.v_grid.fill(0.0)
        self.seq_trans = buf("seq_trans", (n_sent, labels, labels))
        self.trans_exp_t = buf("trans_exp_t", (labels, labels))
        self._inv_labels = 1.0 / labels
        self._log_labels = float(np.log(labels))
        self.row_scale = np.ascontiguousarray(row_scale, dtype=np.float64)
        self.row_scale_tail = self.row_scale[layout.o1:]
        # Tail views for the pairwise weight factor (t >= 1 rows).
        self.cum_b_tail = self.cum_b[layout.o1:]
        self.max_adj_tail = self.max_adj[layout.o1:]
        self.log_z_row_tail = self.log_z_row[layout.o1:]
        self.wfactor_tail = self.wfactor[layout.o1:]

        # ---- prebuilt per-step views (plain-int slicing, done once).
        # The recursion steps carry both the 2D row-block views and
        # their (n, 1, L) reshapes so `run` can hand them straight to
        # the batched matmul without per-call slicing.
        counts, offsets = layout.counts, layout.offsets
        n0 = counts[0]
        self.head = (
            self.alpha[:n0], self.emit[:n0],
            self.norm_f[:n0], self.norm_f[:n0, None],
            self.scale_f[:n0], self.cum_f[:n0],
        )
        self.fwd_steps = []
        self.fwd_accum = []
        self.pair_steps = []
        for t in range(1, steps):
            count = counts[t]
            offset = offsets[t]
            prev_offset = offsets[t - 1]
            cur = self.alpha[offset:offset + count]
            prev = self.alpha[prev_offset:prev_offset + count]
            self.fwd_steps.append((
                cur,
                cur[:, None, :],
                prev[:, None, :],
                self.emit[offset:offset + count],
                self.norm_f[offset:offset + count],
                self.norm_f[offset:offset + count, None],
            ))
            self.fwd_accum.append((
                self.cum_f[prev_offset:prev_offset + count],
                self.scale_f[offset:offset + count],
                self.cum_f[offset:offset + count],
            ))
            self.pair_steps.append((
                prev,
                self.wfactor[offset:offset + count, None],
                self.u_grid[:count, t - 1],
            ))
        self.bwd_steps = []
        self.bwd_accum = []
        for t in range(steps - 1, -1, -1):
            nxt = counts[t + 1] if t + 1 < steps else 0
            if not nxt:
                # Rows ending at t take the uniform tail value from the
                # whole-buffer fills in `run`; nothing to recurse.
                continue
            offset = offsets[t]
            nxt_offset = offsets[t + 1]
            v_rows = self.v_grid[:nxt, t]
            cur = self.beta[offset:offset + nxt]
            self.bwd_steps.append((
                self.emit[nxt_offset:nxt_offset + nxt],
                self.beta[nxt_offset:nxt_offset + nxt],
                v_rows,
                v_rows[:, None, :],
                cur,
                cur[:, None, :],
                self.norm_b[nxt_offset:nxt_offset + nxt],
                self.norm_b[nxt_offset:nxt_offset + nxt, None],
            ))
            self.bwd_accum.append((
                self.cum_b[nxt_offset:nxt_offset + nxt],
                self.scale_b[nxt_offset:nxt_offset + nxt],
                self.cum_b[offset:offset + nxt],
            ))
        self.trans_groups = []
        for rank_start, rank_end, length in layout.groups:
            out = self.seq_trans[rank_start:rank_end]
            if length == 1:
                self.trans_groups.append((None, None, out))
            else:
                self.trans_groups.append((
                    self.u_grid[rank_start:rank_end, :length - 1]
                    .transpose(0, 2, 1),
                    self.v_grid[rank_start:rank_end, :length - 1],
                    out,
                ))

    def run(self, scores, trans_exp, trans_max):
        """One weighted E-step over the bucket.

        Args:
            scores: (rows, L) packed-row emission scores.
            trans_exp: ``exp(transitions - trans_max)`` (L, L).
            trans_max: the transition-score maximum used above.

        Returns:
            ``(log_z, marginals, seq_trans)`` — per-rank log
            partitions (unweighted), per-row weighted unary posterior
            marginals, and per-rank weighted expected transition-count
            matrices *before* the ``trans_exp`` rescale (the caller
            multiplies after its canonical cross-sentence sum).
        """
        layout = self.layout
        steps = layout.max_len
        emit = self.emit
        scores.max(axis=1, out=self.max_adj)
        np.subtract(scores, self.max_adj[:, None], out=emit)
        np.exp(emit, out=emit)
        # One transition max-shift per recursion step (t >= 1 rows).
        max_adj = self.max_adj
        if trans_max:
            max_adj += np.multiply(layout.tmask, trans_max, out=self.factor)
        trans_exp_t = self.trans_exp_t
        np.copyto(trans_exp_t, trans_exp.T)

        # ---- forward: normalized probabilities, deferred log-scales ----
        head_alpha, head_emit, head_norm, head_norm_col, _, _ = self.head
        np.copyto(head_alpha, head_emit)
        np.einsum("bi->b", head_alpha, out=head_norm)
        head_alpha /= head_norm_col
        for cur, cur3, prev3, emit_t, norm, norm_col in self.fwd_steps:
            np.matmul(prev3, trans_exp, out=cur3)
            cur *= emit_t
            np.einsum("bi->b", cur, out=norm)
            cur /= norm_col
        scale_f = self.scale_f
        np.log(self.norm_f, out=scale_f)
        scale_f += max_adj
        np.copyto(self.head[5], self.head[4])
        for prev_cum, scale, cum in self.fwd_accum:
            np.add(prev_cum, scale, out=cum)
        np.take(self.cum_f, layout.last, out=self.log_z)

        # ---- backward. Rows that end a sentence take the uniform
        # 1/L tail value; one whole-buffer fill covers them all, and
        # the descending recursion overwrites every interior row
        # before reading it.
        self.beta.fill(self._inv_labels)
        for (emit_next, beta_next, v_rows, v3, cur, cur3,
                norm, norm_col) in self.bwd_steps:
            np.multiply(emit_next, beta_next, out=v_rows)
            np.matmul(v3, trans_exp_t, out=cur3)
            np.einsum("bi->b", cur, out=norm)
            cur /= norm_col
        scale_b = self.scale_b
        np.log(self.norm_b, out=scale_b)
        scale_b += max_adj
        self.cum_b.fill(self._log_labels)
        for cum_next, scale_next, cum_out in self.bwd_accum:
            np.add(cum_next, scale_next, out=cum_out)

        # ---- weighted unary marginals ----
        log_z_row = self.log_z_row
        np.take(self.log_z, layout.rank_of_row, out=log_z_row)
        factor = self.factor
        np.add(self.cum_f, self.cum_b, out=factor)
        factor -= log_z_row
        np.exp(factor, out=factor)
        factor *= self.row_scale
        marg = self.marg
        np.multiply(self.alpha, self.beta, out=marg)
        marg *= factor[:, None]

        # ---- weighted per-sentence expected transition counts ----
        if steps > 1:
            wfactor = self.wfactor_tail
            np.take(self.cum_f, layout.prev, out=self.prev_cum)
            np.add(self.prev_cum, self.cum_b_tail, out=wfactor)
            wfactor += self.max_adj_tail
            wfactor -= self.log_z_row_tail
            np.exp(wfactor, out=wfactor)
            wfactor *= self.row_scale_tail
            for prev_alpha, wcol, u_rows in self.pair_steps:
                np.multiply(prev_alpha, wcol, out=u_rows)
            for u_group, v_group, out in self.trans_groups:
                if u_group is None:
                    out[...] = 0.0
                else:
                    np.matmul(u_group, v_group, out=out)
        else:
            self.seq_trans[...] = 0.0
        return self.log_z, marg, self.seq_trans


def _logsumexp(
    values: np.ndarray, axis: int, work: np.ndarray | None = None
) -> np.ndarray:
    """Stabilized log-sum-exp along ``axis``.

    ``work`` (same shape as ``values``) receives the shifted
    exponentials, avoiding a fresh temporary per call; passing
    ``values`` itself is allowed and destroys it.
    """
    peak = values.max(axis=axis, keepdims=True)
    peak = np.where(np.isfinite(peak), peak, 0.0)
    if work is None:
        work = np.empty_like(values)
    np.subtract(values, peak, out=work)
    np.exp(work, out=work)
    total = work.sum(axis=axis)
    np.log(total, out=total)
    total += np.squeeze(peak, axis=axis)
    return total


@dataclass(frozen=True)
class ForwardBackward:
    """Cached quantities from one forward/backward pass.

    Attributes:
        log_alpha: (B, T, L) forward messages.
        log_beta: (B, T, L) backward messages.
        log_z: (B,) log partition per sequence.
    """

    log_alpha: np.ndarray
    log_beta: np.ndarray
    log_z: np.ndarray

    def unary_marginals(self) -> np.ndarray:
        """Posterior P(y_t = l) as a (B, T, L) array (junk at padding)."""
        logp = (
            self.log_alpha
            + self.log_beta
            - self.log_z[:, None, None]
        )
        return np.exp(np.clip(logp, -60.0, 0.0))


def forward_backward(
    emissions: np.ndarray,
    mask: np.ndarray,
    transitions: np.ndarray,
    scratch: InferenceScratch | None = None,
) -> ForwardBackward:
    """Run the forward and backward recursions over a padded batch.

    Padded steps are pure carries, so each step computes the ``(B_a,
    L, L)`` score block only for the rows still *active* there (the
    mask is row-prefix form: the active set shrinks monotonically with
    ``t``). Every op on an active row — the broadcast add, the per-row
    log-sum-exp reduction along a label axis — is independent of the
    other rows, so subsetting changes which rows are computed, never
    their values.
    """
    batch, steps, labels = emissions.shape
    scratch = scratch if scratch is not None else InferenceScratch()
    work = scratch.buffer("pair", (batch, labels, labels))
    small = scratch.buffer("unary", (batch, labels))
    log_alpha = np.empty((batch, steps, labels), dtype=np.float64)
    log_alpha[:, 0] = emissions[:, 0]
    for t in range(1, steps):
        active = np.flatnonzero(mask[:, t])
        if active.size == 0:
            log_alpha[:, t:] = log_alpha[:, t - 1][:, None, :]
            break
        if active.size == batch:
            np.add(
                log_alpha[:, t - 1][:, :, None],
                transitions[None, :, :],
                out=work,
            )
            updated = _logsumexp(work, axis=1, work=work)
            updated += emissions[:, t]
            log_alpha[:, t] = updated
            continue
        sub = work[: active.size]
        np.add(
            log_alpha[active, t - 1][:, :, None],
            transitions[None, :, :],
            out=sub,
        )
        updated = _logsumexp(sub, axis=1, work=sub)
        updated += emissions[active, t]
        log_alpha[:, t] = log_alpha[:, t - 1]
        log_alpha[active, t] = updated

    log_beta = np.zeros((batch, steps, labels), dtype=np.float64)
    for t in range(steps - 2, -1, -1):
        active = np.flatnonzero(mask[:, t + 1])
        if active.size == 0:
            continue
        if active.size == batch:
            np.add(emissions[:, t + 1], log_beta[:, t + 1], out=small)
            np.add(transitions[None, :, :], small[:, None, :], out=work)
            updated = _logsumexp(work, axis=2, work=work)
            log_beta[:, t] = updated
            continue
        sub = work[: active.size]
        gathered = emissions[active, t + 1] + log_beta[active, t + 1]
        np.add(transitions[None, :, :], gathered[:, None, :], out=sub)
        updated = _logsumexp(sub, axis=2, work=sub)
        log_beta[:, t] = log_beta[:, t + 1]
        log_beta[active, t] = updated

    log_z = _logsumexp(log_alpha[:, -1], axis=1, work=small)
    return ForwardBackward(log_alpha, log_beta, log_z)


def pairwise_expected_counts(
    fb: ForwardBackward,
    emissions: np.ndarray,
    mask: np.ndarray,
    transitions: np.ndarray,
    scratch: InferenceScratch | None = None,
) -> np.ndarray:
    """Sum of posterior pairwise marginals, an (L, L) matrix.

    Accumulated over every *valid* transition (t-1 → t where token t is
    real) of every sequence — this is the model-expectation term of the
    transition gradient.
    """
    labels = transitions.shape[0]
    batch, steps, _ = emissions.shape
    scratch = scratch if scratch is not None else InferenceScratch()
    # `pair` keeps the full (B, L, L) block whose axis-0 sum feeds the
    # accumulator — the cross-row reduction must keep its exact shape
    # (and hence summation tree) for bitwise reproducibility. The
    # per-row probability terms are computed in `pair_sub` for the
    # valid rows only and scattered in; rows that fall out of the
    # valid set are zeroed once (the set only shrinks with t) exactly
    # as the masked assignment zeroed them every step.
    work = scratch.buffer("pair", (batch, labels, labels))
    sub_full = scratch.buffer("pair_sub", (batch, labels, labels))
    expected = np.zeros((labels, labels), dtype=np.float64)
    previously_valid = np.ones(batch, dtype=bool)
    for t in range(1, steps):
        valid = mask[:, t]
        active = np.flatnonzero(valid)
        if active.size == 0:
            break
        newly_invalid = previously_valid & ~valid
        if newly_invalid.any():
            work[newly_invalid] = 0.0
        previously_valid = valid
        if active.size == batch:
            sub = work
            alpha = fb.log_alpha[:, t - 1]
            beta_term = emissions[:, t] + fb.log_beta[:, t]
            log_z = fb.log_z
        else:
            sub = sub_full[: active.size]
            alpha = fb.log_alpha[active, t - 1]
            beta_term = emissions[active, t] + fb.log_beta[active, t]
            log_z = fb.log_z[active]
        # Same left-to-right association as the expression form:
        # ((alpha + A) + (emit + beta)) - log_z.
        np.add(alpha[:, :, None], transitions[None, :, :], out=sub)
        sub += beta_term[:, None, :]
        sub -= log_z[:, None, None]
        np.clip(sub, -60.0, 0.0, out=sub)
        np.exp(sub, out=sub)
        if sub is not work:
            work[active] = sub
        expected += work.sum(axis=0)
    return expected


def viterbi(
    emissions: np.ndarray,
    mask: np.ndarray,
    transitions: np.ndarray,
    scratch: InferenceScratch | None = None,
) -> list[list[int]]:
    """Best label sequence per batch element.

    Returns:
        A list of per-sequence label-index lists, each trimmed to the
        sequence's real length.
    """
    batch, steps, labels = emissions.shape
    scratch = scratch if scratch is not None else InferenceScratch()
    work = scratch.buffer("pair", (batch, labels, labels))
    argmax = scratch.buffer("argmax", (batch, labels), dtype=np.intp)
    score = emissions[:, 0].copy()
    backpointers = np.zeros((batch, steps, labels), dtype=np.int32)
    for t in range(1, steps):
        np.add(score[:, :, None], transitions[None, :, :], out=work)
        best_prev = np.argmax(work, axis=1, out=argmax)
        updated = (
            np.take_along_axis(work, best_prev[:, None, :], axis=1)
            .squeeze(1)
            + emissions[:, t]
        )
        step_mask = mask[:, t][:, None]
        backpointers[:, t] = np.where(step_mask, best_prev, 0)
        score = np.where(step_mask, updated, score)

    lengths = mask.sum(axis=1).astype(np.int64)
    paths: list[list[int]] = []
    final_best = score.argmax(axis=1)
    for b in range(batch):
        length = int(lengths[b])
        label = int(final_best[b])
        path = [label]
        for t in range(length - 1, 0, -1):
            label = int(backpointers[b, t, label])
            path.append(label)
        path.reverse()
        paths.append(path)
    return paths
