"""Batched log-space inference for the linear-chain CRF.

All routines operate on a padded batch:

* ``emissions``: float array (B, T, L) — unary scores, zero at padding;
* ``mask``: bool array (B, T) — True at real tokens (row-prefix form);
* ``transitions``: float array (L, L) — score of label j following i.

The forward/backward recursions use the carry trick at padded steps
(alpha is propagated unchanged), so ``alpha[:, -1]`` always holds the
value at each sequence's last real token.

Hot-path note: every recursion step needs a ``(B, L, L)`` score block;
allocating one (plus an ``exp`` temporary) per step dominated L-BFGS
wall-clock. The routines now write into preallocated scratch buffers
(:class:`InferenceScratch`) shared across steps and across objective
calls. The *sequence of floating-point operations is unchanged* —
identical elementwise ops on identically-shaped arrays, identical
reduction axes — so results are bit-for-bit equal to the allocating
implementation; only the memory traffic differs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class InferenceScratch:
    """Reusable named scratch buffers, keyed by shape.

    One instance per training workspace or tagger; a buffer is
    reallocated only when the requested shape changes (e.g. a new
    length bucket). Not thread-safe — share across sequential calls
    only.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def buffer(
        self, name: str, shape: tuple, dtype=np.float64
    ) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf


def _logsumexp(
    values: np.ndarray, axis: int, work: np.ndarray | None = None
) -> np.ndarray:
    """Stabilized log-sum-exp along ``axis``.

    ``work`` (same shape as ``values``) receives the shifted
    exponentials, avoiding a fresh temporary per call; passing
    ``values`` itself is allowed and destroys it.
    """
    peak = values.max(axis=axis, keepdims=True)
    peak = np.where(np.isfinite(peak), peak, 0.0)
    if work is None:
        work = np.empty_like(values)
    np.subtract(values, peak, out=work)
    np.exp(work, out=work)
    total = work.sum(axis=axis)
    np.log(total, out=total)
    total += np.squeeze(peak, axis=axis)
    return total


@dataclass(frozen=True)
class ForwardBackward:
    """Cached quantities from one forward/backward pass.

    Attributes:
        log_alpha: (B, T, L) forward messages.
        log_beta: (B, T, L) backward messages.
        log_z: (B,) log partition per sequence.
    """

    log_alpha: np.ndarray
    log_beta: np.ndarray
    log_z: np.ndarray

    def unary_marginals(self) -> np.ndarray:
        """Posterior P(y_t = l) as a (B, T, L) array (junk at padding)."""
        logp = (
            self.log_alpha
            + self.log_beta
            - self.log_z[:, None, None]
        )
        return np.exp(np.clip(logp, -60.0, 0.0))


def forward_backward(
    emissions: np.ndarray,
    mask: np.ndarray,
    transitions: np.ndarray,
    scratch: InferenceScratch | None = None,
) -> ForwardBackward:
    """Run the forward and backward recursions over a padded batch.

    Padded steps are pure carries, so each step computes the ``(B_a,
    L, L)`` score block only for the rows still *active* there (the
    mask is row-prefix form: the active set shrinks monotonically with
    ``t``). Every op on an active row — the broadcast add, the per-row
    log-sum-exp reduction along a label axis — is independent of the
    other rows, so subsetting changes which rows are computed, never
    their values.
    """
    batch, steps, labels = emissions.shape
    scratch = scratch if scratch is not None else InferenceScratch()
    work = scratch.buffer("pair", (batch, labels, labels))
    small = scratch.buffer("unary", (batch, labels))
    log_alpha = np.empty((batch, steps, labels), dtype=np.float64)
    log_alpha[:, 0] = emissions[:, 0]
    for t in range(1, steps):
        active = np.flatnonzero(mask[:, t])
        if active.size == 0:
            log_alpha[:, t:] = log_alpha[:, t - 1][:, None, :]
            break
        if active.size == batch:
            np.add(
                log_alpha[:, t - 1][:, :, None],
                transitions[None, :, :],
                out=work,
            )
            updated = _logsumexp(work, axis=1, work=work)
            updated += emissions[:, t]
            log_alpha[:, t] = updated
            continue
        sub = work[: active.size]
        np.add(
            log_alpha[active, t - 1][:, :, None],
            transitions[None, :, :],
            out=sub,
        )
        updated = _logsumexp(sub, axis=1, work=sub)
        updated += emissions[active, t]
        log_alpha[:, t] = log_alpha[:, t - 1]
        log_alpha[active, t] = updated

    log_beta = np.zeros((batch, steps, labels), dtype=np.float64)
    for t in range(steps - 2, -1, -1):
        active = np.flatnonzero(mask[:, t + 1])
        if active.size == 0:
            continue
        if active.size == batch:
            np.add(emissions[:, t + 1], log_beta[:, t + 1], out=small)
            np.add(transitions[None, :, :], small[:, None, :], out=work)
            updated = _logsumexp(work, axis=2, work=work)
            log_beta[:, t] = updated
            continue
        sub = work[: active.size]
        gathered = emissions[active, t + 1] + log_beta[active, t + 1]
        np.add(transitions[None, :, :], gathered[:, None, :], out=sub)
        updated = _logsumexp(sub, axis=2, work=sub)
        log_beta[:, t] = log_beta[:, t + 1]
        log_beta[active, t] = updated

    log_z = _logsumexp(log_alpha[:, -1], axis=1, work=small)
    return ForwardBackward(log_alpha, log_beta, log_z)


def pairwise_expected_counts(
    fb: ForwardBackward,
    emissions: np.ndarray,
    mask: np.ndarray,
    transitions: np.ndarray,
    scratch: InferenceScratch | None = None,
) -> np.ndarray:
    """Sum of posterior pairwise marginals, an (L, L) matrix.

    Accumulated over every *valid* transition (t-1 → t where token t is
    real) of every sequence — this is the model-expectation term of the
    transition gradient.
    """
    labels = transitions.shape[0]
    batch, steps, _ = emissions.shape
    scratch = scratch if scratch is not None else InferenceScratch()
    # `pair` keeps the full (B, L, L) block whose axis-0 sum feeds the
    # accumulator — the cross-row reduction must keep its exact shape
    # (and hence summation tree) for bitwise reproducibility. The
    # per-row probability terms are computed in `pair_sub` for the
    # valid rows only and scattered in; rows that fall out of the
    # valid set are zeroed once (the set only shrinks with t) exactly
    # as the masked assignment zeroed them every step.
    work = scratch.buffer("pair", (batch, labels, labels))
    sub_full = scratch.buffer("pair_sub", (batch, labels, labels))
    expected = np.zeros((labels, labels), dtype=np.float64)
    previously_valid = np.ones(batch, dtype=bool)
    for t in range(1, steps):
        valid = mask[:, t]
        active = np.flatnonzero(valid)
        if active.size == 0:
            break
        newly_invalid = previously_valid & ~valid
        if newly_invalid.any():
            work[newly_invalid] = 0.0
        previously_valid = valid
        if active.size == batch:
            sub = work
            alpha = fb.log_alpha[:, t - 1]
            beta_term = emissions[:, t] + fb.log_beta[:, t]
            log_z = fb.log_z
        else:
            sub = sub_full[: active.size]
            alpha = fb.log_alpha[active, t - 1]
            beta_term = emissions[active, t] + fb.log_beta[active, t]
            log_z = fb.log_z[active]
        # Same left-to-right association as the expression form:
        # ((alpha + A) + (emit + beta)) - log_z.
        np.add(alpha[:, :, None], transitions[None, :, :], out=sub)
        sub += beta_term[:, None, :]
        sub -= log_z[:, None, None]
        np.clip(sub, -60.0, 0.0, out=sub)
        np.exp(sub, out=sub)
        if sub is not work:
            work[active] = sub
        expected += work.sum(axis=0)
    return expected


def viterbi(
    emissions: np.ndarray,
    mask: np.ndarray,
    transitions: np.ndarray,
    scratch: InferenceScratch | None = None,
) -> list[list[int]]:
    """Best label sequence per batch element.

    Returns:
        A list of per-sequence label-index lists, each trimmed to the
        sequence's real length.
    """
    batch, steps, labels = emissions.shape
    scratch = scratch if scratch is not None else InferenceScratch()
    work = scratch.buffer("pair", (batch, labels, labels))
    argmax = scratch.buffer("argmax", (batch, labels), dtype=np.intp)
    score = emissions[:, 0].copy()
    backpointers = np.zeros((batch, steps, labels), dtype=np.int32)
    for t in range(1, steps):
        np.add(score[:, :, None], transitions[None, :, :], out=work)
        best_prev = np.argmax(work, axis=1, out=argmax)
        updated = (
            np.take_along_axis(work, best_prev[:, None, :], axis=1)
            .squeeze(1)
            + emissions[:, t]
        )
        step_mask = mask[:, t][:, None]
        backpointers[:, t] = np.where(step_mask, best_prev, 0)
        score = np.where(step_mask, updated, score)

    lengths = mask.sum(axis=1).astype(np.int64)
    paths: list[list[int]] = []
    final_best = score.argmax(axis=1)
    for b in range(batch):
        length = int(lengths[b])
        label = int(final_best[b])
        path = [label]
        for t in range(length - 1, 0, -1):
            label = int(backpointers[b, t, label])
            path.append(label)
        path.reverse()
        paths.append(path)
    return paths
