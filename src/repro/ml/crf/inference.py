"""Batched log-space inference for the linear-chain CRF.

All routines operate on a padded batch:

* ``emissions``: float array (B, T, L) — unary scores, zero at padding;
* ``mask``: bool array (B, T) — True at real tokens (row-prefix form);
* ``transitions``: float array (L, L) — score of label j following i.

The forward/backward recursions use the carry trick at padded steps
(alpha is propagated unchanged), so ``alpha[:, -1]`` always holds the
value at each sequence's last real token.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    peak = values.max(axis=axis, keepdims=True)
    peak = np.where(np.isfinite(peak), peak, 0.0)
    return (
        np.log(np.exp(values - peak).sum(axis=axis))
        + np.squeeze(peak, axis=axis)
    )


@dataclass(frozen=True)
class ForwardBackward:
    """Cached quantities from one forward/backward pass.

    Attributes:
        log_alpha: (B, T, L) forward messages.
        log_beta: (B, T, L) backward messages.
        log_z: (B,) log partition per sequence.
    """

    log_alpha: np.ndarray
    log_beta: np.ndarray
    log_z: np.ndarray

    def unary_marginals(self) -> np.ndarray:
        """Posterior P(y_t = l) as a (B, T, L) array (junk at padding)."""
        logp = (
            self.log_alpha
            + self.log_beta
            - self.log_z[:, None, None]
        )
        return np.exp(np.clip(logp, -60.0, 0.0))


def forward_backward(
    emissions: np.ndarray,
    mask: np.ndarray,
    transitions: np.ndarray,
) -> ForwardBackward:
    """Run the forward and backward recursions over a padded batch."""
    batch, steps, labels = emissions.shape
    log_alpha = np.empty((batch, steps, labels), dtype=np.float64)
    log_alpha[:, 0] = emissions[:, 0]
    for t in range(1, steps):
        scores = (
            log_alpha[:, t - 1][:, :, None]
            + transitions[None, :, :]
        )
        updated = _logsumexp(scores, axis=1) + emissions[:, t]
        step_mask = mask[:, t][:, None]
        log_alpha[:, t] = np.where(step_mask, updated, log_alpha[:, t - 1])

    log_beta = np.zeros((batch, steps, labels), dtype=np.float64)
    for t in range(steps - 2, -1, -1):
        scores = (
            transitions[None, :, :]
            + (emissions[:, t + 1] + log_beta[:, t + 1])[:, None, :]
        )
        updated = _logsumexp(scores, axis=2)
        step_mask = mask[:, t + 1][:, None]
        log_beta[:, t] = np.where(step_mask, updated, log_beta[:, t + 1])

    log_z = _logsumexp(log_alpha[:, -1], axis=1)
    return ForwardBackward(log_alpha, log_beta, log_z)


def pairwise_expected_counts(
    fb: ForwardBackward,
    emissions: np.ndarray,
    mask: np.ndarray,
    transitions: np.ndarray,
) -> np.ndarray:
    """Sum of posterior pairwise marginals, an (L, L) matrix.

    Accumulated over every *valid* transition (t-1 → t where token t is
    real) of every sequence — this is the model-expectation term of the
    transition gradient.
    """
    labels = transitions.shape[0]
    expected = np.zeros((labels, labels), dtype=np.float64)
    steps = emissions.shape[1]
    for t in range(1, steps):
        valid = mask[:, t]
        if not valid.any():
            break
        log_pair = (
            fb.log_alpha[:, t - 1][:, :, None]
            + transitions[None, :, :]
            + (emissions[:, t] + fb.log_beta[:, t])[:, None, :]
            - fb.log_z[:, None, None]
        )
        pair = np.exp(np.clip(log_pair, -60.0, 0.0))
        pair[~valid] = 0.0
        expected += pair.sum(axis=0)
    return expected


def viterbi(
    emissions: np.ndarray,
    mask: np.ndarray,
    transitions: np.ndarray,
) -> list[list[int]]:
    """Best label sequence per batch element.

    Returns:
        A list of per-sequence label-index lists, each trimmed to the
        sequence's real length.
    """
    batch, steps, labels = emissions.shape
    score = emissions[:, 0].copy()
    backpointers = np.zeros((batch, steps, labels), dtype=np.int32)
    for t in range(1, steps):
        candidate = score[:, :, None] + transitions[None, :, :]
        best_prev = candidate.argmax(axis=1)
        updated = (
            np.take_along_axis(candidate, best_prev[:, None, :], axis=1)
            .squeeze(1)
            + emissions[:, t]
        )
        step_mask = mask[:, t][:, None]
        backpointers[:, t] = np.where(step_mask, best_prev, 0)
        score = np.where(step_mask, updated, score)

    lengths = mask.sum(axis=1).astype(np.int64)
    paths: list[list[int]] = []
    final_best = score.argmax(axis=1)
    for b in range(batch):
        length = int(lengths[b])
        label = int(final_best[b])
        path = [label]
        for t in range(length - 1, 0, -1):
            label = int(backpointers[b, t, label])
            path.append(label)
        path.reverse()
        paths.append(path)
    return paths
