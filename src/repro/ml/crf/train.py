"""CRF training: regularized NLL minimized with L-BFGS or minibatch SGD.

The parameter vector packs the unary weight matrix W (n_features × L)
followed by the transition matrix A (L × L). The objective is

    sum_i [ log Z(x_i) - score(x_i, y_i) ]
    + l1 * Σ sqrt(w² + ε)          (smoothed L1; scipy's L-BFGS-B
                                    needs a differentiable objective,
                                    unlike crfsuite's OWL-QN)
    + l2 * Σ w²

with the analytic gradient (expected minus empirical feature counts).

Hot-path layout. The old workspace padded every sentence to the single
global ``max_len``, so each objective call paid ``B × T_max × L`` on a
batch that was mostly padding. ``_Workspace`` now

* collapses byte-identical ``(features, labels)`` sentences into one
  weighted representative (bootstrap corpora repeat titles heavily —
  typically 30–50% of sentences are duplicates),
* partitions the unique sentences into length buckets
  (:func:`~repro.perf.bucketing.length_buckets`) and lays each bucket
  out packed time-major (:class:`~repro.perf.bucketing.PackedLayout`)
  — zero padding, contiguous prefix slices per recursion step,
* runs the E-step per bucket through
  :class:`~repro.ml.crf.inference.PackedEstep` (scaled probability
  space, per-bucket scratch buffers), optionally fanning buckets
  across forked worker processes.

Determinism contract: every per-sentence quantity is computed
independently of bucket composition, and all cross-sentence
reductions happen in one canonical order — sentence-major scatter of
the unique sentences, then a single sparse matmul / sum. The exact
L-BFGS path is therefore bit-identical for any ``batch_size`` and any
worker count. The opt-in ``trainer="sgd"`` mode trades that exactness
for speed (per-bucket Adagrad steps with a seeded shuffle — still
deterministic run-to-run, but a different optimum than L-BFGS).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from ...errors import TrainingError
from ...perf.bucketing import PackedLayout, length_buckets
from .inference import InferenceScratch, PackedEstep

_L1_EPSILON = 1e-8

#: Unique sentences per E-step bucket. Large enough that realistic
#: bootstrap problems form a single near-rectangular bucket; any value
#: is output-identical for the exact trainer (see module docstring).
DEFAULT_TRAIN_BATCH = 512

#: Supported ``trainer=`` modes.
TRAINERS = ("lbfgs", "sgd")

#: liblbfgs (and hence crfsuite) keeps m=6 correction pairs; scipy's
#: default is 10. Matching the reference implementation also shaves
#: measurable driver time per iteration.
_LBFGS_HISTORY = 6


@dataclass(frozen=True)
class CrfProblem:
    """A fully vectorized training problem.

    Attributes:
        design: CSR matrix (total_positions × n_features); rows are all
            sentence positions, sentence-major.
        labels: flat gold label indices aligned with design rows.
        lengths: tokens per sentence.
        n_labels: size of the label inventory.
    """

    design: sparse.csr_matrix
    labels: np.ndarray
    lengths: np.ndarray
    n_labels: int

    def __post_init__(self) -> None:
        if self.design.shape[0] != self.labels.shape[0]:
            raise TrainingError("design rows and labels misaligned")
        if int(self.lengths.sum()) != self.design.shape[0]:
            raise TrainingError("lengths do not sum to design rows")
        if (self.lengths < 1).any():
            raise TrainingError("empty sentences are not trainable")


class _Bucket:
    """One packed length bucket plus its E-step kernel."""

    __slots__ = (
        "layout", "flat", "design_pk", "estep", "sent_ids",
        "design_pk_t", "empirical_unary", "empirical_trans",
        "weight_rows",
    )

    def __init__(self, layout, flat, design_pk, estep):
        self.layout = layout
        self.flat = flat
        self.design_pk = design_pk
        self.estep = estep
        self.sent_ids = layout.sent_ids
        # SGD-only constants, built lazily by _Workspace._prepare_sgd.
        self.design_pk_t = None
        self.empirical_unary = None
        self.empirical_trans = None
        self.weight_rows = 0.0

    def run(self, unary, trans_exp, trans_max):
        scores = self.design_pk @ unary
        return self.estep.run(scores, trans_exp, trans_max)


#: Workspace inherited by forked E-step workers (set only around the
#: fork; workers read their copy-on-write snapshot).
_FORK_WORKSPACE: "_Workspace | None" = None


def _pool_estep(task):
    index, unary, trans_exp, trans_max = task
    assert _FORK_WORKSPACE is not None
    return _FORK_WORKSPACE.buckets[index].run(unary, trans_exp, trans_max)


class _Workspace:
    """Deduplicated, bucketed problem state reused every objective call."""

    def __init__(self, problem: CrfProblem, batch_size: int | None = None):
        self.problem = problem
        batch_size = batch_size or DEFAULT_TRAIN_BATCH
        design = problem.design
        labels = problem.labels
        lengths = np.asarray(problem.lengths, dtype=np.int64)
        n_labels = problem.n_labels
        self.n_labels = n_labels
        self.n_features = design.shape[1]
        self.n_params = self.n_features * n_labels + n_labels * n_labels
        batch = len(lengths)
        starts_full = np.zeros(batch, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts_full[1:])

        # ---- deduplicate byte-identical (features, labels) sentences ----
        indptr = design.indptr
        seen: dict[tuple, int] = {}
        unique_sentences: list[int] = []
        multiplicity: list[float] = []
        for b in range(batch):
            row0 = int(starts_full[b])
            row1 = row0 + int(lengths[b])
            key = (
                int(lengths[b]),
                labels[row0:row1].tobytes(),
                design.indices[indptr[row0]:indptr[row1]].tobytes(),
                design.data[indptr[row0]:indptr[row1]].tobytes(),
            )
            slot = seen.get(key)
            if slot is None:
                seen[key] = len(unique_sentences)
                unique_sentences.append(b)
                multiplicity.append(1.0)
            else:
                multiplicity[slot] += 1.0
        unique = np.asarray(unique_sentences, dtype=np.int64)
        self.w = np.asarray(multiplicity, dtype=np.float64)
        self.lens_u = lengths[unique]
        self.n_unique = len(unique)
        unique_rows = np.concatenate(
            [
                np.arange(starts_full[b], starts_full[b] + lengths[b])
                for b in unique
            ]
        )
        design_u = design[unique_rows].tocsr()
        self.labels_u = labels[unique_rows]
        self.rows_u = len(unique_rows)
        self.starts_u = np.zeros(self.n_unique, dtype=np.int64)
        np.cumsum(self.lens_u[:-1], out=self.starts_u[1:])
        w_row = np.repeat(self.w, self.lens_u)
        self.total_weight_rows = float(w_row.sum())

        # ---- empirical counts on the FULL original data (constants) ----
        rows = design.shape[0]
        one_hot = sparse.csr_matrix(
            (np.ones(rows), (np.arange(rows), labels)),
            shape=(rows, n_labels),
        )
        self.empirical_unary = (design.T @ one_hot).toarray()
        self.empirical_trans = np.zeros(
            (n_labels, n_labels), dtype=np.float64
        )
        offset = 0
        for length in lengths:
            length = int(length)
            gold = labels[offset:offset + length]
            np.add.at(self.empirical_trans, (gold[:-1], gold[1:]), 1.0)
            offset += length

        # ---- packed buckets over the unique sentences ----
        self.buckets: list[_Bucket] = []
        for indices in length_buckets(
            [int(v) for v in self.lens_u], batch_size
        ):
            layout = PackedLayout(self.lens_u, indices)
            flat = layout.flat_rows(self.starts_u)
            self.buckets.append(
                _Bucket(
                    layout,
                    flat,
                    design_u[flat].tocsr(),
                    PackedEstep(
                        layout, n_labels, w_row[flat],
                        scratch=InferenceScratch(),
                    ),
                )
            )
        self.design_u = design_u
        self.design_u_t = design_u.T.tocsr()
        self.w_row = w_row

        # ---- canonical (bucket-order-independent) accumulators ----
        self.expected_flat = np.empty((self.rows_u, n_labels))
        self.seq_trans = np.empty((self.n_unique, n_labels, n_labels))
        self.log_z = np.empty(self.n_unique)
        self.trans_exp = np.empty((n_labels, n_labels))
        # Canonical cross-sentence transition reduction as one
        # fixed-shape GEMV (ones @ seq_trans): the canonical array is
        # identical whatever the bucketing, so one fixed BLAS reduction
        # over it keeps the bucket-invariance guarantee.
        self._ones_u = np.ones(self.n_unique)
        self._seq_trans_2d = self.seq_trans.reshape(
            self.n_unique, n_labels * n_labels
        )
        self.expected_trans = np.empty(n_labels * n_labels)
        self.grad = np.empty(self.n_params)
        self._reg1 = np.empty(self.n_params)
        self._reg2 = np.empty(self.n_params)
        self._pool = None
        self._sgd_ready = False

    # -- E-step dispatch ---------------------------------------------------

    def estep(self, unary, trans_exp, trans_max):
        """Per-bucket E-step results, in bucket order.

        Runs serially, or across the attached worker pool; the merge
        (done by the caller's canonical scatters) is identical either
        way because every bucket's output is bucket-independent.
        """
        if self._pool is not None and len(self.buckets) > 1:
            return self._pool.map(
                _pool_estep,
                [
                    (index, unary, trans_exp, trans_max)
                    for index in range(len(self.buckets))
                ],
            )
        return [
            bucket.run(unary, trans_exp, trans_max)
            for bucket in self.buckets
        ]

    # -- SGD constants -----------------------------------------------------

    def _prepare_sgd(self) -> None:
        """Per-bucket empirical counts (lazily; SGD mode only)."""
        if self._sgd_ready:
            return
        n_labels = self.n_labels
        for bucket in self.buckets:
            flat = bucket.flat
            rows = len(flat)
            labels_pk = self.labels_u[flat]
            w_pk = self.w_row[flat]
            one_hot = sparse.csr_matrix(
                (w_pk, (np.arange(rows), labels_pk)),
                shape=(rows, n_labels),
            )
            bucket.design_pk_t = bucket.design_pk.T.tocsr()
            bucket.empirical_unary = (
                bucket.design_pk_t @ one_hot
            ).toarray()
            trans = np.zeros((n_labels, n_labels), dtype=np.float64)
            for sent in bucket.sent_ids:
                start = int(self.starts_u[sent])
                gold = self.labels_u[start:start + int(self.lens_u[sent])]
                weight = self.w[sent]
                np.add.at(trans, (gold[:-1], gold[1:]), weight)
            bucket.empirical_trans = trans
            bucket.weight_rows = float(w_pk.sum())
        self._sgd_ready = True


def _unpack(
    weights: np.ndarray, n_features: int, n_labels: int
) -> tuple[np.ndarray, np.ndarray]:
    unary = weights[: n_features * n_labels].reshape(n_features, n_labels)
    transitions = weights[n_features * n_labels:].reshape(
        n_labels, n_labels
    )
    return unary, transitions


def _objective(
    weights: np.ndarray,
    workspace: _Workspace,
    l1: float,
    l2: float,
) -> tuple[float, np.ndarray]:
    """Regularized NLL and gradient over all buckets (exact)."""
    n_features = workspace.n_features
    n_labels = workspace.n_labels
    unary, transitions = _unpack(weights, n_features, n_labels)
    trans_max = float(transitions.max())
    trans_exp = workspace.trans_exp
    np.subtract(transitions, trans_max, out=trans_exp)
    np.exp(trans_exp, out=trans_exp)

    # Scatter every bucket's per-sentence results into sentence-major
    # canonical arrays; the scatter targets are disjoint, so bucket
    # partitioning and worker scheduling cannot reorder anything.
    results = workspace.estep(unary, trans_exp, trans_max)
    for bucket, (log_z, marginals, seq_trans) in zip(
        workspace.buckets, results
    ):
        workspace.log_z[bucket.sent_ids] = log_z
        workspace.expected_flat[bucket.flat] = marginals
        workspace.seq_trans[bucket.sent_ids] = seq_trans

    grad = workspace.grad
    grad_unary = grad[: n_features * n_labels].reshape(
        n_features, n_labels
    )
    grad_unary[:] = workspace.design_u_t @ workspace.expected_flat
    grad_unary -= workspace.empirical_unary
    grad_trans = grad[n_features * n_labels:].reshape(n_labels, n_labels)
    np.matmul(
        workspace._ones_u,
        workspace._seq_trans_2d,
        out=workspace.expected_trans,
    )
    expected_trans = workspace.expected_trans.reshape(n_labels, n_labels)
    expected_trans *= trans_exp
    np.subtract(
        expected_trans, workspace.empirical_trans, out=grad_trans
    )

    # gold score via the constant empirical counts — exactly the
    # gradient's empirical term, so value and gradient stay consistent.
    gold = float(np.vdot(unary, workspace.empirical_unary)) + float(
        np.vdot(transitions, workspace.empirical_trans)
    )
    nll = float(np.dot(workspace.log_z, workspace.w)) - gold

    if l2:
        nll += float(l2 * (weights @ weights))
        np.multiply(weights, 2.0 * l2, out=workspace._reg2)
        grad += workspace._reg2
    if l1:
        smooth = workspace._reg1
        np.multiply(weights, weights, out=smooth)
        smooth += _L1_EPSILON
        np.sqrt(smooth, out=smooth)
        nll += float(l1 * smooth.sum())
        np.divide(weights, smooth, out=smooth)
        smooth *= l1
        grad += smooth
    return nll, grad


def _minimize_lbfgs_direct(
    x0: np.ndarray,
    workspace: _Workspace,
    l1: float,
    l2: float,
    maxiter: int,
    maxcor: int,
):
    """Drive the L-BFGS-B Fortran core (``setulb``) directly.

    ``scipy.optimize.minimize`` spends a measurable fraction of every
    evaluation in Python bookkeeping (ScalarFunction construction,
    memoized fun/grad plumbing, per-call array revalidation) — real
    money here because the bucketed objective itself is ~2ms. This
    replays the exact unbounded, jac=True call sequence scipy's
    ``_minimize_lbfgsb`` makes into ``setulb``, so the iterates, the
    stopping decisions and the final weights are identical to the
    public API; only the per-eval Python overhead is gone.

    Returns None when the private interface does not match this scipy
    version (the caller then falls back to ``optimize.minimize``).
    """
    try:
        from scipy.optimize import _lbfgsb
        from scipy.optimize._lbfgsb_py import (
            status_messages,
            task_messages,
        )
    except ImportError:  # pragma: no cover - scipy layout drift
        return None
    n = x0.shape[0]
    m = maxcor
    # scipy's defaults: ftol=2.220446049250313e-09 (factr=1e7), the
    # same pgtol/maxls _minimize_lbfgsb uses.
    factr = 2.2204460492503131e-09 / np.finfo(float).eps
    pgtol = 1e-5
    maxls = 20
    maxfun = 15000
    nbd = np.zeros(n, dtype=np.int32)
    low_bnd = np.zeros(n, dtype=np.float64)
    upper_bnd = np.zeros(n, dtype=np.float64)
    x = np.array(x0, dtype=np.float64)
    f = np.array(0.0, dtype=np.float64)
    g = np.zeros(n, dtype=np.float64)
    wa = np.zeros(2 * m * n + 5 * n + 11 * m * m + 8 * m)
    iwa = np.zeros(3 * n, dtype=np.int32)
    task = np.zeros(2, dtype=np.int32)
    ln_task = np.zeros(2, dtype=np.int32)
    lsave = np.zeros(4, dtype=np.int32)
    isave = np.zeros(44, dtype=np.int32)
    dsave = np.zeros(29, dtype=np.float64)
    nfev = 0
    n_iterations = 0
    while True:
        # Fresh copy each round, exactly as scipy's loop does — the
        # objective hands back a reused gradient buffer.
        g = g.astype(np.float64)
        try:
            _lbfgsb.setulb(
                m, x, low_bnd, upper_bnd, nbd, f, g, factr, pgtol,
                wa, iwa, task, lsave, isave, dsave, maxls, ln_task,
            )
        except (TypeError, ValueError):  # pragma: no cover - API drift
            return None
        if task[0] == 3:  # FG: wants f and g at the current x
            f, g = _objective(x, workspace, l1, l2)
            nfev += 1
        elif task[0] == 1:  # NEW_X: one iteration completed
            n_iterations += 1
            if n_iterations >= maxiter:
                task[0] = 5
                task[1] = 504
            elif nfev > maxfun:
                task[0] = 5
                task[1] = 502
        else:
            break
    if task[0] == 4:  # CONVERGENCE
        warnflag = 0
    elif nfev > maxfun or n_iterations >= maxiter:
        warnflag = 1
    else:
        warnflag = 2
    message = (
        status_messages.get(int(task[0]), "UNKNOWN")
        + ": "
        + task_messages.get(int(task[1]), "")
    )
    return optimize.OptimizeResult(
        fun=float(f), nfev=nfev, nit=n_iterations, status=warnflag,
        message=message, x=x, success=(warnflag == 0),
    )


def _open_pool(workspace: _Workspace, workers: int):
    """A fork-based worker pool over the workspace, or None.

    Workers inherit the workspace via copy-on-write fork memory, so
    nothing is pickled at setup; each task ships only the weight
    matrices. Platforms without fork (or fork failures) fall back to
    the serial path — the results are bit-identical either way.
    """
    if workers <= 1 or len(workspace.buckets) < 2:
        return None
    global _FORK_WORKSPACE
    try:
        context = multiprocessing.get_context("fork")
        _FORK_WORKSPACE = workspace
        return context.Pool(min(workers, len(workspace.buckets)))
    except (ValueError, OSError):
        return None
    finally:
        _FORK_WORKSPACE = None


def _train_sgd(
    workspace: _Workspace,
    l1: float,
    l2: float,
    epochs: int,
    learning_rate: float,
) -> np.ndarray:
    """Minibatch Adagrad-SGD over the length buckets.

    One update per bucket per epoch, buckets visited in a seeded
    shuffle — deterministic run-to-run, approximate by design (an
    opt-in fast mode for bootstrap iterations where exact L-BFGS
    convergence is wasted).
    """
    workspace._prepare_sgd()
    n_features = workspace.n_features
    n_labels = workspace.n_labels
    weights = np.zeros(workspace.n_params)
    accum = np.full(workspace.n_params, 1e-8)
    rng = np.random.default_rng(13)
    trans_exp = workspace.trans_exp
    total = workspace.total_weight_rows
    for _ in range(epochs):
        for index in rng.permutation(len(workspace.buckets)):
            bucket = workspace.buckets[index]
            unary, transitions = _unpack(weights, n_features, n_labels)
            trans_max = float(transitions.max())
            np.subtract(transitions, trans_max, out=trans_exp)
            np.exp(trans_exp, out=trans_exp)
            _, marginals, seq_trans = bucket.run(
                unary, trans_exp, trans_max
            )
            grad_unary = (
                bucket.design_pk_t @ marginals - bucket.empirical_unary
            )
            grad_trans = (
                seq_trans.sum(axis=0) * trans_exp
                - bucket.empirical_trans
            )
            grad = np.concatenate(
                [grad_unary.ravel(), grad_trans.ravel()]
            )
            share = bucket.weight_rows / total
            if l2:
                grad += (2.0 * l2 * share) * weights
            if l1:
                grad += (l1 * share) * weights / np.sqrt(
                    weights * weights + _L1_EPSILON
                )
            accum += grad * grad
            weights -= learning_rate * grad / np.sqrt(accum)
    return weights


def train_crf(
    problem: CrfProblem,
    l1: float,
    l2: float,
    max_iterations: int,
    *,
    trainer: str = "lbfgs",
    batch_size: int | None = None,
    estep_workers: int = 1,
    sgd_batch_size: int = 32,
    sgd_learning_rate: float = 0.5,
    diagnostics: dict | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fit CRF weights by L-BFGS (exact) or minibatch SGD (fast mode).

    Args:
        problem: the vectorized training problem.
        l1: smoothed-L1 strength.
        l2: L2 strength.
        max_iterations: L-BFGS iteration cap, or SGD epochs.
        trainer: ``"lbfgs"`` (default, exact) or ``"sgd"``.
        batch_size: unique sentences per E-step bucket
            (default :data:`DEFAULT_TRAIN_BATCH`); output-identical
            for the exact trainer.
        estep_workers: worker processes for the per-bucket E-step
            fan-out (deterministic merge; 1 = serial).
        sgd_batch_size: bucket size for ``trainer="sgd"``.
        sgd_learning_rate: Adagrad step size for ``trainer="sgd"``.
        diagnostics: optional dict that receives counted training
            warnings (e.g. ``"lbfgs_abnormal"`` when a line-search
            abort was degraded to best-so-far weights).

    Returns:
        ``(unary_weights, transition_weights)`` with shapes
        (n_features, L) and (L, L).

    Raises:
        TrainingError: on an unknown trainer, or if the optimizer
            reports a failure other than hitting the iteration cap or
            a line-search abort (which keeps the best-so-far weights
            and counts a warning instead).
    """
    if trainer not in TRAINERS:
        raise TrainingError(
            f"unknown trainer {trainer!r}; expected one of {TRAINERS}"
        )
    n_features = problem.design.shape[1]
    n_labels = problem.n_labels
    if trainer == "sgd":
        workspace = _Workspace(problem, batch_size=sgd_batch_size)
        weights = _train_sgd(
            workspace, l1, l2, max_iterations, sgd_learning_rate
        )
        return _unpack(weights, n_features, n_labels)

    workspace = _Workspace(problem, batch_size=batch_size)
    start = np.zeros(workspace.n_params, dtype=np.float64)
    pool = _open_pool(workspace, estep_workers)
    workspace._pool = pool
    try:
        result = _minimize_lbfgs_direct(
            start, workspace, l1, l2, max_iterations, _LBFGS_HISTORY
        )
        if result is None:  # private scipy interface didn't match
            result = optimize.minimize(
                _objective,
                start,
                args=(workspace, l1, l2),
                method="L-BFGS-B",
                jac=True,
                options={
                    "maxiter": max_iterations,
                    "maxcor": _LBFGS_HISTORY,
                },
            )
    finally:
        workspace._pool = None
        if pool is not None:
            pool.terminate()
            pool.join()
    if not result.success:
        message = str(result.message).upper()
        if "ITERATIONS" in message:
            pass  # hit the cap — expected under tight budgets
        elif "ABNORMAL" in message or "LNSRCH" in message:
            # Line-search abort (plausible with the smoothed-L1
            # objective near a kink): result.x still holds the best
            # point visited — keep it, count a warning, carry on.
            if diagnostics is not None:
                diagnostics["lbfgs_abnormal"] = (
                    diagnostics.get("lbfgs_abnormal", 0) + 1
                )
        else:
            raise TrainingError(f"L-BFGS failed: {result.message}")
    return _unpack(result.x, n_features, n_labels)
