"""CRF training: regularized NLL minimized with L-BFGS.

The parameter vector packs the unary weight matrix W (n_features × L)
followed by the transition matrix A (L × L). The objective is

    sum_i [ log Z(x_i) - score(x_i, y_i) ]
    + l1 * Σ sqrt(w² + ε)          (smoothed L1; scipy's L-BFGS-B
                                    needs a differentiable objective,
                                    unlike crfsuite's OWL-QN)
    + l2 * Σ w²

with the analytic gradient (expected minus empirical feature counts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from ...errors import TrainingError
from .inference import (
    InferenceScratch,
    forward_backward,
    pairwise_expected_counts,
)

_L1_EPSILON = 1e-8


@dataclass(frozen=True)
class CrfProblem:
    """A fully vectorized training problem.

    Attributes:
        design: CSR matrix (total_positions × n_features); rows are all
            sentence positions, sentence-major.
        labels: flat gold label indices aligned with design rows.
        lengths: tokens per sentence.
        n_labels: size of the label inventory.
    """

    design: sparse.csr_matrix
    labels: np.ndarray
    lengths: np.ndarray
    n_labels: int

    def __post_init__(self) -> None:
        if self.design.shape[0] != self.labels.shape[0]:
            raise TrainingError("design rows and labels misaligned")
        if int(self.lengths.sum()) != self.design.shape[0]:
            raise TrainingError("lengths do not sum to design rows")
        if (self.lengths < 1).any():
            raise TrainingError("empty sentences are not trainable")


class _Workspace:
    """Precomputed index structures reused on every objective call."""

    def __init__(self, problem: CrfProblem):
        self.problem = problem
        batch = len(problem.lengths)
        max_len = int(problem.lengths.max())
        self.batch = batch
        self.max_len = max_len
        # flat row -> slot in the padded (B*T) layout
        slots = []
        for b, length in enumerate(problem.lengths):
            base = b * max_len
            slots.extend(range(base, base + int(length)))
        self.flat_slots = np.asarray(slots, dtype=np.int64)
        self.mask = np.zeros((batch, max_len), dtype=bool)
        for b, length in enumerate(problem.lengths):
            self.mask[b, : int(length)] = True
        # empirical counts (constant across iterations)
        rows = problem.design.shape[0]
        one_hot = sparse.csr_matrix(
            (
                np.ones(rows),
                (np.arange(rows), problem.labels),
            ),
            shape=(rows, problem.n_labels),
        )
        self.empirical_unary = (problem.design.T @ one_hot).toarray()
        self.empirical_trans = np.zeros(
            (problem.n_labels, problem.n_labels), dtype=np.float64
        )
        offset = 0
        for length in problem.lengths:
            length = int(length)
            gold = problem.labels[offset:offset + length]
            np.add.at(self.empirical_trans, (gold[:-1], gold[1:]), 1.0)
            offset += length
        # gold-score bookkeeping
        self.gold_rows = np.arange(rows)
        self.design_t = problem.design.T.tocsr()
        # hot-loop buffers: the recursions' scratch space and the
        # padded emission block, allocated once per training problem.
        # Non-slot (padding) rows of `padded` are zero and never
        # written; slot rows are fully overwritten each objective call,
        # so reuse is invisible in the values.
        self.scratch = InferenceScratch()
        self.padded = np.zeros(
            (batch * max_len, problem.n_labels), dtype=np.float64
        )


def _unpack(
    weights: np.ndarray, n_features: int, n_labels: int
) -> tuple[np.ndarray, np.ndarray]:
    unary = weights[: n_features * n_labels].reshape(n_features, n_labels)
    transitions = weights[n_features * n_labels:].reshape(
        n_labels, n_labels
    )
    return unary, transitions


def _objective(
    weights: np.ndarray,
    workspace: _Workspace,
    l1: float,
    l2: float,
) -> tuple[float, np.ndarray]:
    problem = workspace.problem
    n_features = problem.design.shape[1]
    n_labels = problem.n_labels
    unary, transitions = _unpack(weights, n_features, n_labels)

    scores_flat = problem.design @ unary  # (rows, L)
    padded = workspace.padded
    padded[workspace.flat_slots] = scores_flat
    emissions = padded.reshape(workspace.batch, workspace.max_len, n_labels)

    fb = forward_backward(
        emissions, workspace.mask, transitions, scratch=workspace.scratch
    )

    gold_unary = scores_flat[workspace.gold_rows, problem.labels].sum()
    gold_trans = (workspace.empirical_trans * transitions).sum()
    nll = float(fb.log_z.sum() - gold_unary - gold_trans)

    posteriors = fb.unary_marginals().reshape(-1, n_labels)
    expected_flat = posteriors[workspace.flat_slots]
    grad_unary = (
        workspace.design_t @ expected_flat - workspace.empirical_unary
    )
    expected_trans = pairwise_expected_counts(
        fb, emissions, workspace.mask, transitions,
        scratch=workspace.scratch,
    )
    grad_trans = expected_trans - workspace.empirical_trans

    gradient = np.concatenate(
        [grad_unary.ravel(), grad_trans.ravel()]
    )

    if l2:
        nll += float(l2 * (weights @ weights))
        gradient += 2.0 * l2 * weights
    if l1:
        smooth = np.sqrt(weights * weights + _L1_EPSILON)
        nll += float(l1 * smooth.sum())
        gradient += l1 * weights / smooth
    return nll, gradient


def train_crf(
    problem: CrfProblem,
    l1: float,
    l2: float,
    max_iterations: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Fit CRF weights by L-BFGS.

    Returns:
        ``(unary_weights, transition_weights)`` with shapes
        (n_features, L) and (L, L).

    Raises:
        TrainingError: if the optimizer reports a failure other than
            hitting the iteration cap.
    """
    n_features = problem.design.shape[1]
    n_labels = problem.n_labels
    workspace = _Workspace(problem)
    start = np.zeros(
        n_features * n_labels + n_labels * n_labels, dtype=np.float64
    )
    result = optimize.minimize(
        _objective,
        start,
        args=(workspace, l1, l2),
        method="L-BFGS-B",
        jac=True,
        options={"maxiter": max_iterations, "maxcor": 10},
    )
    if not result.success and "ITERATIONS" not in str(result.message).upper():
        raise TrainingError(f"L-BFGS failed: {result.message}")
    return _unpack(result.x, n_features, n_labels)
