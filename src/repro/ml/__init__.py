"""Machine-learning substrates: the two taggers the paper evaluates.

Both taggers implement the same two-method protocol —
``train(tagged_sentences)`` and ``tag(sentences)`` — so the bootstrap
loop is agnostic to the backend (Section VI-D: "we used both systems out
of the box").

* :class:`~repro.ml.crf.CrfTagger` — linear-chain CRF, L-BFGS with
  L1+L2 regularisation, window features (crfsuite-equivalent).
* :class:`~repro.ml.lstm.LstmTagger` — char+word BiLSTM with SGD and
  dropout (NeuroNER-equivalent).
"""

from .base import SequenceTagger
from .crf import CrfTagger
from .features import FeatureExtractor, FeatureIndexer
from .lstm import LstmTagger

__all__ = [
    "CrfTagger",
    "FeatureExtractor",
    "FeatureIndexer",
    "LstmTagger",
    "SequenceTagger",
]
