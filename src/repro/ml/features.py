"""CRF feature extraction — the paper's exact template (Section VI-D).

For a token at position ``t`` the features are: the word ``w[t]``, the
words in a window of size K around it, the PoS tags of those words, the
concatenation of the window's PoS tags, and the sentence number. All
features are "general and standard" (the paper cites the crfsuite
tutorial) and contain nothing domain- or language-specific.

:class:`FeatureIndexer` maps feature strings to integer columns of a
sparse design matrix; unseen features at tag time are dropped (they have
no learned weight).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np
from scipy import sparse

from ..types import Sentence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..perf.cache import FeatureInterner, InternedRows

#: Sentence numbers are bucketed so the feature stays generic.
_MAX_SENTENCE_BUCKET = 9


class FeatureExtractor:
    """Produces per-position feature strings for a sentence.

    Args:
        window: K — how many tokens each side contribute word/PoS
            features (paper default used here: 2).
    """

    def __init__(self, window: int = 2):
        if window < 0:
            raise ValueError("window must be >= 0")
        self.window = window

    def extract(self, sentence: Sentence) -> list[list[str]]:
        """Feature strings for every position of ``sentence``."""
        words = sentence.texts()
        tags = sentence.pos_tags()
        length = len(words)
        bucket = min(sentence.index, _MAX_SENTENCE_BUCKET)
        sentence_feature = f"sent={bucket}"
        features: list[list[str]] = []
        for position in range(length):
            row = [f"w0={words[position]}", f"p0={tags[position]}"]
            pos_window: list[str] = []
            for offset in range(-self.window, self.window + 1):
                neighbour = position + offset
                if neighbour < 0:
                    word, tag = "<s>", "BOS"
                elif neighbour >= length:
                    word, tag = "</s>", "EOS"
                else:
                    word, tag = words[neighbour], tags[neighbour]
                if offset != 0:
                    row.append(f"w{offset:+d}={word}")
                    row.append(f"p{offset:+d}={tag}")
                pos_window.append(tag)
            row.append("pcat=" + "|".join(pos_window))
            row.append(sentence_feature)
            features.append(row)
        return features


class FeatureIndexer:
    """Feature-string → column-index mapping with frequency pruning.

    Args:
        min_count: features seen fewer times than this across the
            training corpus get no column (weight sharing with nothing —
            they are simply dropped).
    """

    def __init__(self, min_count: int = 1):
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self._min_count = min_count
        self._index: dict[str, int] = {}
        # interner-id -> column (-1 = dropped); only on the interned path
        self._interner: "FeatureInterner | None" = None
        self._lookup: np.ndarray | None = None

    def fit(
        self, feature_rows: Iterable[Sequence[Sequence[str]]]
    ) -> "FeatureIndexer":
        """Build the index from per-sentence, per-position features."""
        counts: Counter[str] = Counter()
        for sentence_features in feature_rows:
            for row in sentence_features:
                counts.update(row)
        kept = sorted(
            feature
            for feature, count in counts.items()
            if count >= self._min_count
        )
        self._index = {feature: column for column, feature in enumerate(kept)}
        return self

    def __len__(self) -> int:
        return len(self._index)

    def design_matrix(
        self, feature_rows: Sequence[Sequence[Sequence[str]]]
    ) -> sparse.csr_matrix:
        """Stack all positions of all sentences into one CSR matrix.

        Row order is sentence-major then position; callers keep the
        per-sentence lengths to slice it back apart.
        """
        indptr = [0]
        indices: list[int] = []
        for sentence_features in feature_rows:
            for row in sentence_features:
                for feature in row:
                    column = self._index.get(feature)
                    if column is not None:
                        indices.append(column)
                indptr.append(len(indices))
        data = np.ones(len(indices), dtype=np.float64)
        n_rows = len(indptr) - 1
        return sparse.csr_matrix(
            (data, np.asarray(indices, dtype=np.int64),
             np.asarray(indptr, dtype=np.int64)),
            shape=(n_rows, len(self._index)),
        )

    # -- interned (vectorized) path -------------------------------------

    def fit_interned(
        self,
        interned_rows: Sequence["InternedRows"],
        interner: "FeatureInterner",
    ) -> "FeatureIndexer":
        """Build the index from pre-interned feature rows.

        Produces exactly the mapping :meth:`fit` would for the same
        sentences: occurrences are counted per feature id in one
        ``bincount``, and the surviving features are column-numbered in
        lexicographic *string* order.
        """
        if interned_rows:
            flat = np.concatenate([rows.ids for rows in interned_rows])
            counts = np.bincount(flat, minlength=len(interner))
        else:
            counts = np.zeros(len(interner), dtype=np.int64)
        kept = sorted(
            interner.token_of(int(feature_id))
            for feature_id in np.nonzero(counts >= self._min_count)[0]
        )
        self._index = {feature: column for column, feature in enumerate(kept)}
        self._interner = interner
        lookup = np.full(len(interner), -1, dtype=np.int64)
        for feature, column in self._index.items():
            lookup[interner.intern(feature)] = column
        self._lookup = lookup
        return self

    def attach_interner(
        self, interner: "FeatureInterner"
    ) -> "FeatureIndexer":
        """Enable the interned path for an index built from strings.

        Used when a model is restored from disk: the saved
        feature → column map is interned into ``interner`` (normally
        the loaded tagger's fresh cache) and the id → column lookup
        rebuilt, so ``design_matrix_interned`` works after a load
        exactly as after :meth:`fit_interned`.
        """
        for feature in self._index:
            interner.intern(feature)
        lookup = np.full(len(interner), -1, dtype=np.int64)
        for feature, column in self._index.items():
            lookup[interner.intern(feature)] = column
        self._interner = interner
        self._lookup = lookup
        return self

    def _refreshed_lookup(self) -> np.ndarray:
        """The id → column array, padded as the interner has grown.

        Features interned after :meth:`fit_interned` (unseen at train
        time) have no learned column and map to -1, mirroring the
        string path's "unseen features are dropped" rule.
        """
        assert self._lookup is not None and self._interner is not None
        grown = len(self._interner) - len(self._lookup)
        if grown > 0:
            self._lookup = np.concatenate(
                [self._lookup, np.full(grown, -1, dtype=np.int64)]
            )
        return self._lookup

    def design_matrix_interned(
        self, interned_rows: Sequence["InternedRows"]
    ) -> sparse.csr_matrix:
        """Vectorized :meth:`design_matrix` over pre-interned rows.

        Builds the CSR arrays by mapping the flat id array through the
        id → column lookup — no per-feature dict probing. Requires a
        prior :meth:`fit_interned`; produces a matrix equal to the
        string path's for the same sentences.
        """
        if self._lookup is None:
            raise ValueError(
                "design_matrix_interned needs fit_interned first"
            )
        row_sizes = (
            np.concatenate([rows.row_sizes for rows in interned_rows])
            if interned_rows
            else np.zeros(0, dtype=np.int64)
        )
        n_rows = int(row_sizes.shape[0])
        if n_rows == 0:
            return sparse.csr_matrix((0, len(self._index)))
        flat = np.concatenate([rows.ids for rows in interned_rows])
        columns = self._refreshed_lookup()[flat]
        keep = columns >= 0
        starts = np.zeros(n_rows, dtype=np.int64)
        np.cumsum(row_sizes[:-1], out=starts[1:])
        kept_per_row = np.add.reduceat(keep.astype(np.int64), starts)
        # reduceat misreads zero-length rows (it sums from the next
        # start); positions always carry >= 4 features, but guard the
        # invariant rather than silently corrupting the matrix.
        if (row_sizes == 0).any():
            raise ValueError("interned rows contain an empty position")
        indices = columns[keep]
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(kept_per_row, out=indptr[1:])
        data = np.ones(indices.shape[0], dtype=np.float64)
        return sparse.csr_matrix(
            (data, indices, indptr),
            shape=(n_rows, len(self._index)),
        )
