"""CRF feature extraction — the paper's exact template (Section VI-D).

For a token at position ``t`` the features are: the word ``w[t]``, the
words in a window of size K around it, the PoS tags of those words, the
concatenation of the window's PoS tags, and the sentence number. All
features are "general and standard" (the paper cites the crfsuite
tutorial) and contain nothing domain- or language-specific.

:class:`FeatureIndexer` maps feature strings to integer columns of a
sparse design matrix; unseen features at tag time are dropped (they have
no learned weight).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from ..types import Sentence

#: Sentence numbers are bucketed so the feature stays generic.
_MAX_SENTENCE_BUCKET = 9


class FeatureExtractor:
    """Produces per-position feature strings for a sentence.

    Args:
        window: K — how many tokens each side contribute word/PoS
            features (paper default used here: 2).
    """

    def __init__(self, window: int = 2):
        if window < 0:
            raise ValueError("window must be >= 0")
        self.window = window

    def extract(self, sentence: Sentence) -> list[list[str]]:
        """Feature strings for every position of ``sentence``."""
        words = sentence.texts()
        tags = sentence.pos_tags()
        length = len(words)
        bucket = min(sentence.index, _MAX_SENTENCE_BUCKET)
        sentence_feature = f"sent={bucket}"
        features: list[list[str]] = []
        for position in range(length):
            row = [f"w0={words[position]}", f"p0={tags[position]}"]
            pos_window: list[str] = []
            for offset in range(-self.window, self.window + 1):
                neighbour = position + offset
                if neighbour < 0:
                    word, tag = "<s>", "BOS"
                elif neighbour >= length:
                    word, tag = "</s>", "EOS"
                else:
                    word, tag = words[neighbour], tags[neighbour]
                if offset != 0:
                    row.append(f"w{offset:+d}={word}")
                    row.append(f"p{offset:+d}={tag}")
                pos_window.append(tag)
            row.append("pcat=" + "|".join(pos_window))
            row.append(sentence_feature)
            features.append(row)
        return features


class FeatureIndexer:
    """Feature-string → column-index mapping with frequency pruning.

    Args:
        min_count: features seen fewer times than this across the
            training corpus get no column (weight sharing with nothing —
            they are simply dropped).
    """

    def __init__(self, min_count: int = 1):
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self._min_count = min_count
        self._index: dict[str, int] = {}

    def fit(
        self, feature_rows: Iterable[Sequence[Sequence[str]]]
    ) -> "FeatureIndexer":
        """Build the index from per-sentence, per-position features."""
        counts: Counter[str] = Counter()
        for sentence_features in feature_rows:
            for row in sentence_features:
                counts.update(row)
        kept = sorted(
            feature
            for feature, count in counts.items()
            if count >= self._min_count
        )
        self._index = {feature: column for column, feature in enumerate(kept)}
        return self

    def __len__(self) -> int:
        return len(self._index)

    def design_matrix(
        self, feature_rows: Sequence[Sequence[Sequence[str]]]
    ) -> sparse.csr_matrix:
        """Stack all positions of all sentences into one CSR matrix.

        Row order is sentence-major then position; callers keep the
        per-sentence lengths to slice it back apart.
        """
        indptr = [0]
        indices: list[int] = []
        for sentence_features in feature_rows:
            for row in sentence_features:
                for feature in row:
                    column = self._index.get(feature)
                    if column is not None:
                        indices.append(column)
                indptr.append(len(indices))
        data = np.ones(len(indices), dtype=np.float64)
        n_rows = len(indptr) - 1
        return sparse.csr_matrix(
            (data, np.asarray(indices, dtype=np.int64),
             np.asarray(indptr, dtype=np.int64)),
            shape=(n_rows, len(self._index)),
        )
