"""repro — reproduction of "Accurate Product Attribute Extraction on the
Field" (Alonso Alemany, Nio, Rezk, Zhang; IEEE ICDE 2019).

A bootstrapped, domain/language-independent product attribute-value
extraction system: seeds mined from dictionary-form HTML tables, CRF or
BiLSTM taggers, four syntactic veto rules, a word2vec semantic-drift
filter and value diversification — plus every substrate (HTML parsing,
tokenization, the ML models, embeddings, a synthetic marketplace) built
from scratch. See DESIGN.md for the full inventory and EXPERIMENTS.md
for paper-vs-measured results.

Quickstart::

    from repro import PAEPipeline, PipelineConfig
    from repro.corpus import Marketplace

    dataset = Marketplace(seed=1).generate("digital_cameras", 300)
    pipeline = PAEPipeline(PipelineConfig(iterations=5, tagger="crf"))
    result = pipeline.run(dataset.product_pages, dataset.query_log)
    print(len(result.triples), result.coverage())
"""

from .config import (
    CrfConfig,
    HealthConfig,
    IngestConfig,
    LstmConfig,
    PipelineConfig,
    SeedConfig,
    SemanticConfig,
    VetoConfig,
)
from .core import (
    BootstrapResult,
    Bootstrapper,
    IterationResult,
    PAEPipeline,
    PipelineResult,
)
from .errors import ReproError
from .ingest import IngestGate, Quarantine, QuarantineEntry
from .runtime import PipelineTrace
from .types import AttributeValuePair, Extraction, ProductPage, Triple

__version__ = "1.0.0"

__all__ = [
    "AttributeValuePair",
    "BootstrapResult",
    "Bootstrapper",
    "CrfConfig",
    "Extraction",
    "HealthConfig",
    "IngestConfig",
    "IngestGate",
    "IterationResult",
    "LstmConfig",
    "PAEPipeline",
    "PipelineConfig",
    "PipelineResult",
    "PipelineTrace",
    "ProductPage",
    "Quarantine",
    "QuarantineEntry",
    "ReproError",
    "SeedConfig",
    "SemanticConfig",
    "Triple",
    "VetoConfig",
    "__version__",
]
