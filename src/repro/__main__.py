"""``python -m repro`` — the same CLI as the ``repro-pae`` script."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
