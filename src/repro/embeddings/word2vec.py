"""Skip-gram word2vec with negative sampling, in numpy.

Mikolov-style SGNS: for each (center, context) pair drawn from a sliding
window, maximize ``log σ(u_ctx · v_center)`` plus ``k`` negative terms
``log σ(-u_neg · v_center)`` with negatives drawn from the unigram
distribution raised to 3/4. Training is mini-batched and fully
vectorized; determinism comes from a caller-supplied seed.

The semantic-cleaning module treats multiword values as single words by
pre-joining their tokens with ``_`` before calling :meth:`Word2Vec.train`
(the paper's step (i), "group multiword attribute values ... as a single
word").
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from ..errors import EmbeddingError
from ..nlp.vocab import Vocabulary


class Word2Vec:
    """Skip-gram negative-sampling embeddings.

    Args:
        dim: vector dimensionality.
        window: max distance between center and context token.
        negatives: negative samples per positive pair.
        epochs: passes over the pair list.
        learning_rate: initial SGD step size (linearly decayed).
        min_count: minimum token frequency to enter the vocabulary.
        seed: RNG seed.
        batch_size: pairs per vectorized SGD step.
        subsample: Mikolov frequent-word subsampling threshold ``t``
            (tokens with relative frequency ``f`` are dropped with
            probability ``1 - sqrt(t/f)``). Without it, product copy's
            ubiquitous particles ("wa", "desu") dominate every window
            and all content vectors collapse into one direction,
            breaking the semantic filter. 0 disables.
    """

    def __init__(
        self,
        dim: int = 32,
        window: int = 3,
        negatives: int = 4,
        epochs: int = 3,
        learning_rate: float = 0.05,
        min_count: int = 1,
        seed: int = 0,
        batch_size: int = 512,
        subsample: float = 1e-3,
    ):
        if dim < 1:
            raise EmbeddingError("dim must be >= 1")
        if window < 1:
            raise EmbeddingError("window must be >= 1")
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.min_count = min_count
        self.seed = seed
        self.batch_size = batch_size
        self.subsample = subsample
        self.vocab: Vocabulary | None = None
        self._input_vectors: np.ndarray | None = None
        self._output_vectors: np.ndarray | None = None
        self._negative_probabilities: np.ndarray | None = None
        self._negative_signature: str | None = None

    # -- training --------------------------------------------------------

    def train(
        self,
        sentences: Sequence[Sequence[str]],
        *,
        warm_start_from: "Word2Vec | None" = None,
    ) -> "Word2Vec":
        """Fit embeddings on tokenized sentences.

        Args:
            sentences: tokenized training corpus.
            warm_start_from: a previously fitted model to resume from.
                The RNG stream is *identical* to a cold start (vocab →
                pair collection → random init → SGD); after the random
                init, the rows of tokens shared with the donor's
                vocabulary are overwritten with the donor's vectors, so
                optimisation starts from the converged previous state
                rather than noise. Deterministic given the same donor.
                The donor's cached negative-sampling table is also
                reused when the vocabularies' count profiles match.

        Returns self for chaining.

        Raises:
            EmbeddingError: when the corpus yields no training pairs,
                or the warm-start donor's dimensionality differs.
        """
        if (
            warm_start_from is not None
            and warm_start_from.fitted
            and warm_start_from.dim != self.dim
        ):
            raise EmbeddingError(
                "warm_start_from has dim "
                f"{warm_start_from.dim}, expected {self.dim}"
            )
        vocab = Vocabulary(min_count=self.min_count)
        for sentence in sentences:
            vocab.add_all(sentence)
        vocab.freeze()
        if len(vocab) <= 1:
            raise EmbeddingError("empty corpus: nothing to embed")
        self.vocab = vocab

        rng = np.random.default_rng(self.seed)
        centers, contexts = self._collect_pairs(sentences, vocab, rng)
        if centers.size == 0 and self.subsample:
            # A corpus of a few uniform sentences can be subsampled to
            # nothing; fall back to the full pair set.
            centers, contexts = self._collect_pairs(
                sentences, vocab, rng, subsample=False
            )
        if centers.size == 0:
            raise EmbeddingError("corpus produced no (center, context) pairs")
        size = len(vocab)
        self._input_vectors = (
            rng.random((size, self.dim), dtype=np.float64) - 0.5
        ) / self.dim
        self._output_vectors = np.zeros((size, self.dim), dtype=np.float64)
        if warm_start_from is not None and warm_start_from.fitted:
            self._adopt_vectors(warm_start_from)
        negative_table = self._negative_table(vocab, warm_start_from)

        total_steps = max(1, self.epochs * (len(centers) // self.batch_size + 1))
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(len(centers))
            for start in range(0, len(centers), self.batch_size):
                batch = order[start:start + self.batch_size]
                lr = self.learning_rate * max(
                    0.1, 1.0 - step / total_steps
                )
                self._sgd_step(
                    centers[batch], contexts[batch], negative_table, rng, lr
                )
                step += 1
        return self

    def _collect_pairs(
        self,
        sentences: Sequence[Sequence[str]],
        vocab: Vocabulary,
        rng: np.random.Generator,
        subsample: bool | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if subsample is False:
            keep_probability = np.ones(len(vocab))
        else:
            keep_probability = self._keep_probabilities(vocab)
        centers: list[int] = []
        contexts: list[int] = []
        for sentence in sentences:
            ids = [vocab.id_of(token) for token in sentence]
            ids = [
                token_id
                for token_id in ids
                if token_id != 0
                and rng.random() < keep_probability[token_id]
            ]
            for index, center in enumerate(ids):
                low = max(0, index - self.window)
                high = min(len(ids), index + self.window + 1)
                for other in range(low, high):
                    if other != index:
                        centers.append(center)
                        contexts.append(ids[other])
        return (
            np.asarray(centers, dtype=np.int64),
            np.asarray(contexts, dtype=np.int64),
        )

    def _keep_probabilities(self, vocab: Vocabulary) -> np.ndarray:
        """Per-token keep probability under frequent-word subsampling."""
        counts = np.array(
            [
                max(vocab.count_of(vocab.token_of(i)), 1)
                for i in range(len(vocab))
            ],
            dtype=np.float64,
        )
        if not self.subsample:
            return np.ones_like(counts)
        frequency = counts / counts.sum()
        keep = np.sqrt(self.subsample / np.maximum(frequency, 1e-12))
        return np.minimum(keep, 1.0)

    def _adopt_vectors(self, donor: "Word2Vec") -> None:
        """Overwrite shared-token rows with the donor's trained vectors.

        Runs *after* the random init so the RNG stream matches a cold
        start draw-for-draw; tokens absent from the donor keep their
        fresh random rows.
        """
        assert self.vocab is not None and donor.vocab is not None
        assert self._input_vectors is not None
        assert donor._input_vectors is not None
        assert self._output_vectors is not None
        assert donor._output_vectors is not None
        ours: list[int] = []
        theirs: list[int] = []
        for token_id in range(1, len(self.vocab)):
            token = self.vocab.token_of(token_id)
            if token in donor.vocab:
                ours.append(token_id)
                theirs.append(donor.vocab.id_of(token))
        if ours:
            self._input_vectors[ours] = donor._input_vectors[theirs]
            self._output_vectors[ours] = donor._output_vectors[theirs]

    @staticmethod
    def _vocab_counts(vocab: Vocabulary) -> np.ndarray:
        counts = np.array(
            [
                max(vocab.count_of(vocab.token_of(i)), 1)
                for i in range(len(vocab))
            ],
            dtype=np.float64,
        )
        counts[0] = 0.0  # never sample <unk>
        return counts

    def _negative_table(
        self, vocab: Vocabulary, donor: "Word2Vec | None" = None
    ) -> np.ndarray:
        """The unigram^0.75 sampling distribution, cached by signature.

        The table depends only on the vocabulary's count profile, so a
        donor model trained on a corpus with identical counts (common
        between late bootstrap iterations, whose extraction sets have
        converged) can hand its table over instead of recomputing.
        """
        counts = self._vocab_counts(vocab)
        signature = hashlib.sha1(counts.tobytes()).hexdigest()
        if (
            donor is not None
            and donor._negative_signature == signature
            and donor._negative_probabilities is not None
        ):
            self._negative_probabilities = donor._negative_probabilities
            self._negative_signature = signature
            return self._negative_probabilities
        weights = counts ** 0.75
        table = weights / weights.sum()
        self._negative_probabilities = table
        self._negative_signature = signature
        return table

    def _sgd_step(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        negative_probabilities: np.ndarray,
        rng: np.random.Generator,
        lr: float,
    ) -> None:
        assert self._input_vectors is not None
        assert self._output_vectors is not None
        batch = centers.shape[0]
        negatives = rng.choice(
            negative_probabilities.shape[0],
            size=(batch, self.negatives),
            p=negative_probabilities,
        )
        v_center = self._input_vectors[centers]            # (B, D)
        u_context = self._output_vectors[contexts]         # (B, D)
        u_negative = self._output_vectors[negatives]       # (B, K, D)

        pos_score = _sigmoid((v_center * u_context).sum(axis=1))   # (B,)
        neg_score = _sigmoid(
            np.einsum("bd,bkd->bk", v_center, u_negative)
        )                                                   # (B, K)

        grad_pos = (pos_score - 1.0)[:, None]               # (B, 1)
        grad_neg = neg_score[:, :, None]                    # (B, K, 1)

        grad_center = (
            grad_pos * u_context
            + np.einsum("bk,bkd->bd", neg_score, u_negative)
        )

        # When the vocabulary is tiny (per-iteration product corpora can
        # be), one batch contains the same word many times; summing all
        # those contributions at the *stale* vector overshoots and the
        # embedding oscillates. Scaling each contribution by its index
        # multiplicity turns the accumulated step into a mean — for
        # large vocabularies the multiplicity is ~1 and nothing changes.
        size = self._input_vectors.shape[0]
        context_mult = np.bincount(contexts, minlength=size)[contexts]
        center_mult = np.bincount(centers, minlength=size)[centers]
        negative_flat = negatives.ravel()
        negative_mult = np.bincount(negative_flat, minlength=size)[
            negative_flat
        ].reshape(negatives.shape)

        np.add.at(
            self._output_vectors,
            contexts,
            -lr * grad_pos * v_center / context_mult[:, None],
        )
        np.add.at(
            self._output_vectors,
            negatives,
            -lr * grad_neg * v_center[:, None, :]
            / negative_mult[:, :, None],
        )
        np.add.at(
            self._input_vectors,
            centers,
            -lr * grad_center / center_mult[:, None],
        )

    # -- lookup ----------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self._input_vectors is not None

    def __contains__(self, word: str) -> bool:
        return (
            self.vocab is not None
            and self.vocab.frozen
            and word in self.vocab
        )

    def vector(self, word: str) -> np.ndarray | None:
        """The input vector of ``word``, or None if unknown/unfitted."""
        if self.vocab is None or self._input_vectors is None:
            return None
        if word not in self.vocab:
            return None
        return self._input_vectors[self.vocab.id_of(word)]

    def similarity(self, first: str, second: str) -> float:
        """Cosine similarity, 0.0 when either word is unknown."""
        a = self.vector(first)
        b = self.vector(second)
        if a is None or b is None:
            return 0.0
        denominator = float(np.linalg.norm(a) * np.linalg.norm(b))
        if denominator == 0.0:
            return 0.0
        return float(a @ b / denominator)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))
