"""Similarity utilities for the semantic-cleaning module.

The paper's footnote 4: a candidate value is scored by "the
multiplicative combination of the cosine similarities of all the
elements in the core set ∪ {value}". Raw cosine lives in [-1, 1], so
the multiplicative combination here shifts each cosine to [0, 1] first
and returns the geometric mean — monotone in the paper's product while
staying comparable across core sizes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Plain cosine similarity; 0.0 when either vector is zero."""
    denominator = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denominator == 0.0:
        return 0.0
    return float(a @ b / denominator)


def shifted_cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine mapped from [-1, 1] to [0, 1]."""
    return (cosine_similarity(a, b) + 1.0) / 2.0


def multiplicative_similarity(
    candidate: np.ndarray, core: Sequence[np.ndarray]
) -> float:
    """Geometric mean of shifted cosines between ``candidate`` and a core.

    Args:
        candidate: the new value's vector.
        core: vectors of the attribute's semantic-core values.

    Returns:
        A score in [0, 1]; 0.0 for an empty core (nothing to compare
        against — callers treat that as "skip cleaning").
    """
    if not core:
        return 0.0
    shifted = [shifted_cosine(candidate, member) for member in core]
    product = float(np.prod(shifted))
    return product ** (1.0 / len(shifted))


def average_pairwise_similarity(
    index: int, vectors: Sequence[np.ndarray]
) -> float:
    """Mean cosine of ``vectors[index]`` against every other vector.

    Used when pruning an attribute's value set down to its semantic
    core: the value with the lowest average similarity to the rest is
    discarded first.
    """
    if len(vectors) <= 1:
        return 0.0
    others = [
        cosine_similarity(vectors[index], vector)
        for position, vector in enumerate(vectors)
        if position != index
    ]
    return float(np.mean(others))
