"""Word embeddings for semantic cleaning.

The paper trains word2vec **per bootstrap iteration** on its own product
corpus: pretrained general-domain vectors cannot represent merchant
jargon, and vectors from earlier iterations miss newly discovered
entities (Section V-C). :class:`Word2Vec` is a numpy skip-gram
negative-sampling implementation sized for that per-iteration retraining.
"""

from .similarity import cosine_similarity, multiplicative_similarity
from .word2vec import Word2Vec

__all__ = ["Word2Vec", "cosine_similarity", "multiplicative_similarity"]
