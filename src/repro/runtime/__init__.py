"""Runtime subsystem: parallel category sweeps and per-stage tracing.

Public surface:

* :class:`PipelineTrace` / :class:`StageEvent` — per-stage wall-clock
  and counter events of one pipeline run (``trace.py``).
* :class:`RunnerJob` / :class:`JobOutcome` / :class:`JobFailure` — job
  specs and structured results of a sweep (``jobs.py``).
* :class:`CategoryRunner` / :func:`default_workers` — the
  ``concurrent.futures``-backed fan-out engine (``runner.py``).
* :class:`CheckpointStore` / :class:`ResumeState` — crash-safe
  per-iteration bootstrap snapshots and resume (``checkpoint.py``).
* :class:`FaultPlan` / :class:`FaultSpec` — deterministic fault
  injection at named pipeline stages (``faults.py``).
* :class:`ShardWorkerPool` / :class:`ShardFailure` — persistent
  supervised shard workers with death detection, respawn and
  poisoned-shard accounting (``pool.py``).
* :class:`MemoryGovernor` — RSS-budget backpressure (``memory.py``).
* :class:`DirectoryLock` / :func:`atomic_write_bytes` /
  :func:`atomic_write_text` / :func:`atomic_writer` — durable-write
  and advisory-locking primitives (``storage.py``).

Only the trace types are imported eagerly: ``repro.core.bootstrap``
instruments itself with :class:`PipelineTrace`, while the runner
imports ``repro.core.pipeline`` — loading everything at package import
time would be a cycle. The runner/job names resolve lazily via PEP 562
module ``__getattr__``.
"""

from __future__ import annotations

from .trace import PipelineTrace, StageEvent

_LAZY = {
    "RunnerJob": "jobs",
    "JobOutcome": "jobs",
    "JobFailure": "jobs",
    "execute_job": "jobs",
    "retry_backoff": "jobs",
    "CategoryRunner": "runner",
    "parallel_map": "runner",
    "default_workers": "runner",
    "summarize_outcomes": "runner",
    "CheckpointStore": "checkpoint",
    "ResumeState": "checkpoint",
    "run_fingerprint": "checkpoint",
    "seed_digest": "checkpoint",
    "FaultPlan": "faults",
    "FaultSpec": "faults",
    "Deadline": "jobs",
    "source_run_fingerprint": "checkpoint",
    "current_rss_bytes": "memory",
    "peak_rss_bytes": "memory",
    "children_peak_rss_bytes": "memory",
    "run_peak_rss_bytes": "memory",
    "MemoryGovernor": "memory",
    "ShardWorkerPool": "pool",
    "ShardFailure": "pool",
    "PoolReport": "pool",
    "DirectoryLock": "storage",
    "atomic_writer": "storage",
    "atomic_write_bytes": "storage",
    "atomic_write_text": "storage",
}

__all__ = [
    "PipelineTrace",
    "StageEvent",
    "RunnerJob",
    "JobOutcome",
    "JobFailure",
    "execute_job",
    "retry_backoff",
    "CategoryRunner",
    "parallel_map",
    "default_workers",
    "summarize_outcomes",
    "CheckpointStore",
    "ResumeState",
    "run_fingerprint",
    "seed_digest",
    "FaultPlan",
    "FaultSpec",
    "Deadline",
    "source_run_fingerprint",
    "current_rss_bytes",
    "peak_rss_bytes",
    "children_peak_rss_bytes",
    "run_peak_rss_bytes",
    "MemoryGovernor",
    "ShardWorkerPool",
    "ShardFailure",
    "PoolReport",
    "DirectoryLock",
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
]


def __getattr__(name: str):
    if name in _LAZY:
        from importlib import import_module

        module = import_module(f".{_LAZY[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
