"""The parallel multi-category sweep runner.

:class:`CategoryRunner` fans a list of :class:`~repro.runtime.jobs.
RunnerJob` out over a ``concurrent.futures`` pool and returns one
:class:`~repro.runtime.jobs.JobOutcome` per job **in submission
order**, regardless of completion order — sweeps must be reproducible
run-to-run and identical to serial execution.

Three execution modes:

* ``"process"`` (default) — real parallelism via
  ``ProcessPoolExecutor``; jobs and results cross the boundary by
  pickle, so generator-spec jobs (category name + scale) are preferred
  over shipping whole page corpora.
* ``"thread"`` — ``ThreadPoolExecutor``; useful when results must
  share memory with the caller or the platform cannot fork.
* ``"serial"`` — run inline, no pool. ``workers <= 1`` always takes
  this path, making the serial baseline exactly the parallel code
  minus the executor.

Failure semantics: ``execute_job`` converts in-job exceptions into
:class:`JobFailure` records after bounded retries; the runner
additionally catches pool-level faults (a worker killed by the OOM
killer, unpicklable results) and, rather than crashing the sweep,
retries the affected job inline before recording a failure.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Sequence

from .jobs import JobFailure, JobOutcome, RunnerJob, execute_job

_MODES = ("process", "thread", "serial")


def default_workers(job_count: int | None = None) -> int:
    """A sensible worker count: CPUs visible to this process, capped.

    Honours the ``REPRO_WORKERS`` environment variable when set;
    ``REPRO_WORKERS=0`` (or 1) forces serial execution.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        workers = max(1, int(env)) if env.strip() else 1
    else:
        try:
            cpus = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            cpus = os.cpu_count() or 1
        workers = max(1, cpus)
    if job_count is not None:
        workers = min(workers, max(1, job_count))
    return workers


def parallel_map(function, items, workers: int | None = None) -> list:
    """Order-preserving process-pool map with serial fallback.

    For fan-outs that are not full pipeline runs (seed-only sweeps,
    dataset generation). ``function`` and every item must be picklable;
    ``workers <= 1`` (the single-CPU default) runs inline. Any
    pool-level fault degrades to inline execution of the remaining
    items instead of crashing.
    """
    items = list(items)
    if not items:
        return []
    workers = (
        default_workers(len(items))
        if workers is None
        else min(workers, len(items))
    )
    if workers <= 1:
        return [function(item) for item in items]
    results: list = [None] * len(items)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (index, pool.submit(function, item))
                for index, item in enumerate(items)
            ]
            for index, future in futures:
                try:
                    results[index] = future.result()
                except Exception:  # noqa: BLE001 - degrade, don't crash
                    results[index] = function(items[index])
    except OSError:
        return [function(item) for item in items]
    return results


class CategoryRunner:
    """Run many category pipelines with bounded parallelism.

    Args:
        workers: pool size; None resolves via :func:`default_workers`
            at ``run()`` time. ``<= 1`` runs serially inline.
        mode: ``"process"``, ``"thread"`` or ``"serial"``.
        retries: extra in-worker attempts per failed job.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        mode: str = "process",
        retries: int = 1,
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.mode = mode
        self.retries = retries

    def run(self, jobs: Sequence[RunnerJob]) -> list[JobOutcome]:
        """Execute every job; outcomes come back in submission order."""
        jobs = list(jobs)
        if not jobs:
            return []
        workers = (
            default_workers(len(jobs))
            if self.workers is None
            else min(self.workers, len(jobs))
        )
        if self.mode == "serial" or workers <= 1:
            return [
                execute_job(index, job, self.retries)
                for index, job in enumerate(jobs)
            ]
        executor_type = (
            ProcessPoolExecutor
            if self.mode == "process"
            else ThreadPoolExecutor
        )
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        try:
            with executor_type(max_workers=workers) as pool:
                futures: list[tuple[int, Future]] = [
                    (index, pool.submit(execute_job, index, job, self.retries))
                    for index, job in enumerate(jobs)
                ]
                for index, future in futures:
                    outcomes[index] = self._collect(index, jobs[index], future)
        except OSError:
            # Pool construction itself failed (fork refused, fd
            # exhaustion): degrade to serial rather than crash.
            return [
                execute_job(index, job, self.retries)
                for index, job in enumerate(jobs)
            ]
        return [outcome for outcome in outcomes if outcome is not None]

    # -- internals -----------------------------------------------------------

    def _collect(
        self, index: int, job: RunnerJob, future: Future
    ) -> JobOutcome:
        """Resolve one future; pool-level faults fall back inline."""
        try:
            return future.result()
        except Exception as error:  # noqa: BLE001 - degrade, don't crash
            inline = execute_job(index, job, retries=0)
            if inline.ok:
                return inline
            return JobOutcome(
                index=index,
                job_name=job.name,
                result=None,
                failure=JobFailure(
                    job_name=job.name,
                    error_type=type(error).__name__,
                    message=f"worker pool fault: {error}",
                    traceback="",
                    attempts=1,
                ),
                seconds=inline.seconds,
                attempts=1,
            )
