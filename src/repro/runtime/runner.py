"""The parallel multi-category sweep runner.

:class:`CategoryRunner` fans a list of :class:`~repro.runtime.jobs.
RunnerJob` out over a ``concurrent.futures`` pool and returns one
:class:`~repro.runtime.jobs.JobOutcome` per job **in submission
order**, regardless of completion order — sweeps must be reproducible
run-to-run and identical to serial execution.

Three execution modes:

* ``"process"`` (default) — real parallelism via
  ``ProcessPoolExecutor``; jobs and results cross the boundary by
  pickle, so generator-spec jobs (category name + scale) are preferred
  over shipping whole page corpora.
* ``"thread"`` — ``ThreadPoolExecutor``; useful when results must
  share memory with the caller or the platform cannot fork.
* ``"serial"`` — run inline, no pool. ``workers <= 1`` always takes
  this path, making the serial baseline exactly the parallel code
  minus the executor.

Failure semantics: ``execute_job`` converts in-job exceptions into
:class:`JobFailure` records after bounded retries (with exponential,
deterministically-jittered backoff between attempts); the runner
additionally catches pool-level faults (a worker killed by the OOM
killer, unpicklable results) and, rather than crashing the sweep,
retries the affected job inline before recording a failure. A
``job_timeout`` turns a hung worker into a structured
``JobFailure(error_type="Timeout")`` instead of a stuck sweep: the
runner stops waiting for that job's future, records the deadline miss,
and abandons the pool without blocking on the wedged worker.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Sequence

from ..errors import ConfigError, JobTimeoutError
from .jobs import JobFailure, JobOutcome, RunnerJob, execute_job

_MODES = ("process", "thread", "serial")


def visible_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def default_workers(job_count: int | None = None) -> int:
    """A sensible worker count: CPUs visible to this process, capped.

    Honours the ``REPRO_WORKERS`` environment variable when set;
    ``REPRO_WORKERS=0`` (or 1) forces serial execution. A value that is
    not an integer raises :class:`~repro.errors.ConfigError` naming the
    offending value.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        text = env.strip()
        if not text:
            workers = 1
        else:
            try:
                value = int(text)
            except ValueError:
                raise ConfigError(
                    f"REPRO_WORKERS must be an integer, got {env!r}"
                ) from None
            workers = max(1, value)
    else:
        workers = visible_cpus()
    if job_count is not None:
        workers = min(workers, max(1, job_count))
    return workers


def _chunk_apply(function, chunk: list) -> list:
    """Apply ``function`` to every item of one chunk (worker side)."""
    return [function(item) for item in chunk]


def parallel_map(function, items, workers: int | None = None) -> list:
    """Order-preserving process-pool map with serial fallback.

    For fan-outs that are not full pipeline runs (seed-only sweeps,
    dataset generation). ``function`` and every item must be picklable;
    ``workers <= 1`` (the single-CPU default) runs inline. Items are
    submitted in contiguous chunks (roughly four chunks per worker) so
    per-task pickling and scheduling overhead amortises over many
    items. Any pool-level fault degrades to inline execution of the
    affected items instead of crashing. A *deterministic* per-item
    error — one the guarded inline retry reproduces — is the item's own
    failure, not the pool's: it re-raises with its original type and
    traceback, exactly as the serial path would, never wrapped in (or
    mistaken for) a pool fault.
    """
    items = list(items)
    if not items:
        return []
    workers = (
        default_workers(len(items))
        if workers is None
        else min(workers, len(items))
    )
    if workers <= 1:
        return [function(item) for item in items]
    chunksize = max(1, len(items) // (workers * 4))
    chunks = [
        (start, items[start:start + chunksize])
        for start in range(0, len(items), chunksize)
    ]
    results: list = [None] * len(items)
    item_error: Exception | None = None
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (start, chunk, pool.submit(_chunk_apply, function, chunk))
                for start, chunk in chunks
            ]
            for start, chunk, future in futures:
                try:
                    results[start:start + len(chunk)] = future.result()
                except Exception:  # noqa: BLE001 - degrade, don't crash
                    # The whole chunk failed in the worker; retry its
                    # items inline, one by one, so only the genuinely
                    # broken item surfaces an error.
                    try:
                        for offset, item in enumerate(chunk):
                            results[start + offset] = function(item)
                    except Exception as error:  # noqa: BLE001
                        # The item itself is broken: cancel what has
                        # not started and surface the item's error
                        # (consistently with the serial path) below,
                        # outside the pool shutdown.
                        item_error = error
                        for _, _, pending in futures:
                            pending.cancel()
                        break
    except OSError:
        # Pool construction/submission failed: degrade to serial.
        if item_error is None:
            return [function(item) for item in items]
    if item_error is not None:
        raise item_error
    return results


def summarize_outcomes(outcomes: Sequence[JobOutcome]) -> dict:
    """Aggregate sweep health across a runner's outcomes.

    One dict a sweep driver can print or log: job success/failure
    census, every structured failure line, and the dirty-input
    containment totals merged across jobs — pages quarantined per gate
    check, pages repaired per check, circuit-breaker trips per reason,
    and which jobs a breaker halted early. Failed jobs contribute their
    failure line only; nothing here ever raises on a partial sweep.
    """
    summary: dict = {
        "jobs": len(outcomes),
        "succeeded": sum(1 for outcome in outcomes if outcome.ok),
        "failed": sum(1 for outcome in outcomes if not outcome.ok),
        "failures": [
            str(outcome.failure)
            for outcome in outcomes
            if outcome.failure is not None
        ],
        "quarantined": {},
        "repaired": {},
        "circuit_breaker": {},
        "halted_jobs": [],
    }
    for outcome in outcomes:
        result = outcome.result
        if result is None:
            continue
        counters = (
            result.resilience_counters()
            if hasattr(result, "resilience_counters")
            else {}
        )
        for key in ("quarantined", "repaired", "circuit_breaker"):
            for name, count in counters.get(key, {}).items():
                summary[key][name] = summary[key].get(name, 0) + count
        bootstrap = getattr(result, "bootstrap", None)
        if bootstrap is not None and bootstrap.halted_reason is not None:
            summary["halted_jobs"].append(
                {
                    "job": outcome.job_name,
                    "reason": bootstrap.halted_reason,
                    "iteration": bootstrap.halted_at_iteration,
                }
            )
    return summary


class CategoryRunner:
    """Run many category pipelines with bounded parallelism.

    Args:
        workers: pool size; None resolves via :func:`default_workers`
            at ``run()`` time. ``<= 1`` runs serially inline.
        mode: ``"process"``, ``"thread"`` or ``"serial"``.
        retries: extra in-worker attempts per failed job.
        job_timeout: per-job wall-clock budget in seconds. The budget
            is enforced twice: inside the worker (no new attempt starts
            past it) and at collection (a worker that never answers
            within the budget is written off as a ``Timeout`` failure
            and the pool is abandoned without joining the hung worker).
            None disables deadlines.
        backoff_base: first-retry backoff in seconds for in-worker
            retries (exponential growth, deterministic jitter; see
            :func:`~repro.runtime.jobs.retry_backoff`). ``0`` disables
            backoff.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        mode: str = "process",
        retries: int = 1,
        job_timeout: float | None = None,
        backoff_base: float = 0.05,
    ):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be > 0 (or None)")
        if backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        self.workers = workers
        self.mode = mode
        self.retries = retries
        self.job_timeout = job_timeout
        self.backoff_base = backoff_base

    def _execute_serial(self, jobs: list[RunnerJob]) -> list[JobOutcome]:
        return [
            execute_job(
                index,
                job,
                self.retries,
                timeout=self.job_timeout,
                backoff_base=self.backoff_base,
            )
            for index, job in enumerate(jobs)
        ]

    def run(self, jobs: Sequence[RunnerJob]) -> list[JobOutcome]:
        """Execute every job; outcomes come back in submission order."""
        jobs = list(jobs)
        if not jobs:
            return []
        workers = (
            default_workers(len(jobs))
            if self.workers is None
            else min(self.workers, len(jobs))
        )
        if self.mode == "process" and self.job_timeout is None:
            # CPU-bound pipeline workers beyond the visible CPUs only
            # oversubscribe the machine (context-switch thrash made a
            # 2-worker sweep *slower* than serial on a 1-CPU box).
            # Deadline-bearing runs keep the requested pool: a real
            # pool is what lets the runner abandon a hung worker.
            workers = min(workers, visible_cpus())
        if self.mode == "serial" or workers <= 1:
            return self._execute_serial(jobs)
        executor_type = (
            ProcessPoolExecutor
            if self.mode == "process"
            else ThreadPoolExecutor
        )
        try:
            pool = executor_type(max_workers=workers)
        except OSError:
            # Pool construction itself failed (fork refused, fd
            # exhaustion): degrade to serial rather than crash.
            return self._execute_serial(jobs)
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        futures: list[tuple[int, Future]] = []
        try:
            try:
                futures = [
                    (
                        index,
                        pool.submit(
                            execute_job,
                            index,
                            job,
                            self.retries,
                            timeout=self.job_timeout,
                            backoff_base=self.backoff_base,
                        ),
                    )
                    for index, job in enumerate(jobs)
                ]
            except OSError:
                return self._execute_serial(jobs)
            for index, future in futures:
                outcomes[index] = self._collect(index, jobs[index], future)
        finally:
            # A worker that blew its deadline may be wedged for good;
            # joining it would wedge the sweep too, so only wait for
            # the pool when every future actually completed.
            completed = all(future.done() for _, future in futures)
            pool.shutdown(wait=completed, cancel_futures=True)
        return [outcome for outcome in outcomes if outcome is not None]

    # -- internals -----------------------------------------------------------

    def _collect(
        self, index: int, job: RunnerJob, future: Future
    ) -> JobOutcome:
        """Resolve one future; pool faults fall back inline.

        With a ``job_timeout``, waits at most that long for the
        worker's answer; a deadline miss becomes a structured
        ``Timeout`` failure (no inline retry — the job is presumed
        hung, and rerunning a hung job inline would hang the sweep).
        """
        try:
            return future.result(timeout=self.job_timeout)
        except FutureTimeoutError:
            assert self.job_timeout is not None
            error = JobTimeoutError(job.name, self.job_timeout)
            return JobOutcome(
                index=index,
                job_name=job.name,
                result=None,
                failure=JobFailure(
                    job_name=job.name,
                    error_type="Timeout",
                    message=str(error),
                    traceback="",
                    attempts=1,
                ),
                seconds=self.job_timeout,
                attempts=1,
            )
        except Exception as error:  # noqa: BLE001 - degrade, don't crash
            inline = execute_job(
                index,
                job,
                retries=0,
                timeout=self.job_timeout,
                backoff_base=self.backoff_base,
            )
            if inline.ok:
                return inline
            # Both the pool attempt and the inline retry failed: keep
            # the inline failure's type and traceback (the pool error
            # is usually a symptom, the inline error the cause), note
            # the pool fault in the message, and count every attempt —
            # the worker's plus the inline one.
            assert inline.failure is not None
            merged = JobFailure(
                job_name=job.name,
                error_type=inline.failure.error_type,
                message=(
                    f"{inline.failure.message} "
                    f"(after worker pool fault: "
                    f"{type(error).__name__}: {error})"
                ),
                traceback=inline.failure.traceback,
                attempts=inline.failure.attempts + 1,
            )
            return JobOutcome(
                index=index,
                job_name=job.name,
                result=None,
                failure=merged,
                seconds=inline.seconds,
                attempts=merged.attempts,
            )
