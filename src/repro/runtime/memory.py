"""Process-memory observability: current and peak RSS.

The streamed/sharded bootstrap exists to keep peak resident memory
bounded while the corpus grows unbounded; a claim like that is only
worth anything if the run *reports* its peak. This module reads the
numbers the kernel already keeps:

* ``/proc/self/status`` — ``VmRSS`` (current resident set) and
  ``VmHWM`` (the lifetime high-water mark of the process);
* ``resource.getrusage`` — ``ru_maxrss`` for this process (fallback
  where procfs is unavailable) and, separately, for reaped *child*
  processes, which is how shard workers show up in the accounting.

All functions return bytes and never raise: on a platform with neither
source they return 0, so callers can record the counter unconditionally.

``VmHWM``/``ru_maxrss`` are lifetime maxima — they never decrease. A
benchmark comparing peaks across scales must therefore run each scale
in a fresh process (see :mod:`repro.perf.bench_scale`).

On top of the samplers sits the :class:`MemoryGovernor`: the
backpressure half of the memory story. Given a budget
(``PipelineConfig.memory_budget_mb`` / ``--memory-budget``) it samples
RSS at fan-out boundaries and, when the budget is crossed, shrinks the
levers that trade speed for memory — shard-worker fan-out, effective
tag batch size, the tokenizer sentence memo — all of which are
output-invisible, so a governed run stays bit-identical to an
ungoverned one. Pressure events surface as ``memory_pressure`` trace
counters, and serve admission control consults the same governor to
shed earlier while the process is swollen.
"""

from __future__ import annotations

import pathlib
import sys
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .faults import FaultPlan

_STATUS_PATH = pathlib.Path("/proc/self/status")


def _status_kb(field: str) -> int | None:
    """Read one kB-denominated field from ``/proc/self/status``."""
    try:
        text = _STATUS_PATH.read_text()
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith(field + ":"):
            parts = line.split()
            if len(parts) >= 2 and parts[1].isdigit():
                return int(parts[1])
    return None


def _rusage_kb(who_children: bool = False) -> int | None:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    who = (
        resource.RUSAGE_CHILDREN if who_children else resource.RUSAGE_SELF
    )
    return _maxrss_kb(resource.getrusage(who).ru_maxrss, sys.platform)


def _maxrss_kb(maxrss: int, platform: str) -> int:
    """Normalize a raw ``ru_maxrss`` reading to kilobytes.

    Linux denominates ``ru_maxrss`` in kilobytes; macOS reports bytes.
    """
    if platform == "darwin":
        return maxrss // 1024
    return maxrss


def current_rss_bytes() -> int:
    """This process's current resident set size, in bytes (0 unknown)."""
    kb = _status_kb("VmRSS")
    return (kb or 0) * 1024


def peak_rss_bytes() -> int:
    """This process's lifetime peak RSS, in bytes (0 if unknown)."""
    kb = _status_kb("VmHWM")
    if kb is None:
        kb = _rusage_kb(who_children=False)
    return (kb or 0) * 1024


def children_peak_rss_bytes() -> int:
    """Peak RSS among reaped child processes, in bytes (0 if none).

    This is the maximum over *individual* children (shard workers),
    not their sum — exactly the number that answers "did any worker
    blow the budget".
    """
    kb = _rusage_kb(who_children=True)
    return (kb or 0) * 1024


def run_peak_rss_bytes() -> int:
    """Peak RSS across this process and any of its reaped children."""
    return max(peak_rss_bytes(), children_peak_rss_bytes())


class MemoryGovernor:
    """Backpressure controller: RSS samples against a byte budget.

    The governor is consulted at fan-out boundaries (before each shard
    prep/tag wave, at serve admission) rather than on a timer — the
    decisions it informs only exist at those boundaries, and sampling
    is a procfs read, cheap enough to do inline. Every lever it pulls
    is output-invisible:

    * :meth:`throttle_workers` — halve the next wave's worker fan-out
      (fewer concurrent shard copies resident), floor 1.
    * :meth:`throttle_batch` — halve the effective tag batch size
      (smaller design-matrix buffers), floor 1; tag output is
      batch-size-invariant by contract.
    * :meth:`relieve` — drop the tokenizer sentence memo (a pure
      cache).

    With no budget the governor is inert unless the fault plan injects
    synthetic pressure (``mem_pressure`` specs), which makes the
    backpressure paths testable without ballooning the test process.

    Args:
        budget_mb: RSS budget in MiB; None disables real sampling
            pressure.
        faults: optional plan whose ``mem_pressure`` specs add
            synthetic bytes to each sample.
        min_sample_interval: seconds a sample stays fresh — serve
            admission consults per request, and re-reading procfs a
            thousand times a second buys nothing.
    """

    def __init__(
        self,
        budget_mb: float | None = None,
        *,
        faults: "FaultPlan | None" = None,
        min_sample_interval: float = 0.0,
    ):
        self.budget_bytes = (
            int(budget_mb * 1024 * 1024) if budget_mb else None
        )
        self.faults = faults
        self.min_sample_interval = min_sample_interval
        self.samples = 0
        self.pressure_events = 0
        self.last_rss_bytes = 0
        self.max_rss_bytes = 0
        self.memo_entries_released = 0
        self._last_sample_at: float | None = None
        self._last_pressed = False

    def sample(self) -> int:
        """Current RSS plus any injected synthetic pressure, in bytes."""
        now = time.monotonic()
        if (
            self._last_sample_at is not None
            and self.min_sample_interval > 0
            and now - self._last_sample_at < self.min_sample_interval
        ):
            return self.last_rss_bytes
        rss = current_rss_bytes()
        synthetic = (
            self.faults.synthetic_rss_bytes()
            if self.faults is not None
            else 0
        )
        rss += synthetic
        self.samples += 1
        self.last_rss_bytes = rss
        self.max_rss_bytes = max(self.max_rss_bytes, rss)
        self._last_sample_at = now
        # A synthetic press with no budget still signals pressure —
        # that is what the fault is for.
        self._last_pressed = bool(
            (self.budget_bytes is not None and rss > self.budget_bytes)
            or (synthetic > 0 and self.budget_bytes is None)
        )
        if self._last_pressed:
            self.pressure_events += 1
        return rss

    def under_pressure(self) -> bool:
        """Sample now; True when the budget is crossed (or injected)."""
        self.sample()
        return self._last_pressed

    def throttle_workers(self, workers: int) -> int:
        """Halved fan-out under the last sample's pressure, floor 1."""
        if not self._last_pressed:
            return workers
        return max(1, workers // 2)

    def throttle_batch(self, batch_size: int) -> int:
        """Halved tag batch size under the last sample's pressure."""
        if not self._last_pressed:
            return batch_size
        return max(1, batch_size // 2)

    def relieve(self) -> int:
        """Drop pure caches (tokenizer sentence memo); entries freed."""
        from ..nlp.tokenizer import clear_sentence_memos

        released = clear_sentence_memos()
        self.memo_entries_released += released
        return released

    def counters(self) -> dict[str, int]:
        """Trace-counter payload (only meaningful after sampling)."""
        return {
            "samples": self.samples,
            "events": self.pressure_events,
            "rss_bytes": self.last_rss_bytes,
            "max_rss_bytes": self.max_rss_bytes,
        }
