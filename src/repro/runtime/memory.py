"""Process-memory observability: current and peak RSS.

The streamed/sharded bootstrap exists to keep peak resident memory
bounded while the corpus grows unbounded; a claim like that is only
worth anything if the run *reports* its peak. This module reads the
numbers the kernel already keeps:

* ``/proc/self/status`` — ``VmRSS`` (current resident set) and
  ``VmHWM`` (the lifetime high-water mark of the process);
* ``resource.getrusage`` — ``ru_maxrss`` for this process (fallback
  where procfs is unavailable) and, separately, for reaped *child*
  processes, which is how shard workers show up in the accounting.

All functions return bytes and never raise: on a platform with neither
source they return 0, so callers can record the counter unconditionally.

``VmHWM``/``ru_maxrss`` are lifetime maxima — they never decrease. A
benchmark comparing peaks across scales must therefore run each scale
in a fresh process (see :mod:`repro.perf.bench_scale`).
"""

from __future__ import annotations

import pathlib

_STATUS_PATH = pathlib.Path("/proc/self/status")


def _status_kb(field: str) -> int | None:
    """Read one kB-denominated field from ``/proc/self/status``."""
    try:
        text = _STATUS_PATH.read_text()
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith(field + ":"):
            parts = line.split()
            if len(parts) >= 2 and parts[1].isdigit():
                return int(parts[1])
    return None


def _rusage_kb(who_children: bool = False) -> int | None:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    who = (
        resource.RUSAGE_CHILDREN if who_children else resource.RUSAGE_SELF
    )
    # Linux reports ru_maxrss in kilobytes.
    return resource.getrusage(who).ru_maxrss


def current_rss_bytes() -> int:
    """This process's current resident set size, in bytes (0 unknown)."""
    kb = _status_kb("VmRSS")
    return (kb or 0) * 1024


def peak_rss_bytes() -> int:
    """This process's lifetime peak RSS, in bytes (0 if unknown)."""
    kb = _status_kb("VmHWM")
    if kb is None:
        kb = _rusage_kb(who_children=False)
    return (kb or 0) * 1024


def children_peak_rss_bytes() -> int:
    """Peak RSS among reaped child processes, in bytes (0 if none).

    This is the maximum over *individual* children (shard workers),
    not their sum — exactly the number that answers "did any worker
    blow the budget".
    """
    kb = _rusage_kb(who_children=True)
    return (kb or 0) * 1024


def run_peak_rss_bytes() -> int:
    """Peak RSS across this process and any of its reaped children."""
    return max(peak_rss_bytes(), children_peak_rss_bytes())
