"""Per-stage pipeline tracing.

A :class:`PipelineTrace` is a flat, append-only list of
:class:`StageEvent` records — one per timed stage — collected through a
lightweight context-manager API::

    trace = PipelineTrace(label="vacuum_cleaner")
    with trace.stage("tagger_train", iteration=2) as stage:
        model.train(dataset)
        stage.add(sentences=len(dataset))

Stages carry an optional iteration number (seed-phase stages have
none) and arbitrary integer counters. Traces are plain data: picklable
(so worker processes can ship them back to the parent), mergeable, and
dumpable as JSON for the CLI's ``--trace`` flag.

Timing uses ``time.perf_counter``; the overhead per stage is two clock
reads and one small object, so tracing is always on — there is no
separate "null trace" code path to keep behaviourally identical.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class StageEvent:
    """One timed stage of a pipeline run.

    Attributes:
        stage: stage name (e.g. ``"tagger_train"``, ``"veto"``).
        seconds: wall-clock duration of the stage body.
        iteration: 1-based bootstrap cycle, or None for seed-phase
            stages that run before the loop.
        counters: named integer observables recorded inside the stage
            (e.g. ``{"extractions": 412}``).
    """

    stage: str
    seconds: float
    iteration: int | None = None
    counters: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        record: dict = {"stage": self.stage, "seconds": self.seconds}
        if self.iteration is not None:
            record["iteration"] = self.iteration
        if self.counters:
            record["counters"] = dict(self.counters)
        return record


class _ActiveStage:
    """Mutable counter sink handed to the body of a ``stage()`` block."""

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}

    def add(self, **counts: int) -> None:
        """Accumulate named integer counters onto the current stage."""
        for name, count in counts.items():
            self.counters[name] = self.counters.get(name, 0) + int(count)


class PipelineTrace:
    """Wall-clock and counter events of one pipeline run.

    Args:
        label: free-form run label (the CLI uses the category name).
    """

    def __init__(self, label: str = ""):
        self.label = label
        self.events: list[StageEvent] = []

    @contextmanager
    def stage(
        self, name: str, iteration: int | None = None
    ) -> Iterator[_ActiveStage]:
        """Time a stage body; record it even when the body raises."""
        active = _ActiveStage()
        start = time.perf_counter()
        try:
            yield active
        finally:
            self.events.append(
                StageEvent(
                    stage=name,
                    seconds=time.perf_counter() - start,
                    iteration=iteration,
                    counters=active.counters,
                )
            )

    def count(
        self, name: str, iteration: int | None = None, **counts: int
    ) -> None:
        """Record a zero-duration counter-only event."""
        self.events.append(
            StageEvent(
                stage=name,
                seconds=0.0,
                iteration=iteration,
                counters={key: int(value) for key, value in counts.items()},
            )
        )

    # -- aggregation ---------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Sum of top-level stage durations.

        Stages never nest in the pipeline's instrumentation, so the sum
        is the traced share of the run's wall-clock.
        """
        return sum(event.seconds for event in self.events)

    def stage_totals(self) -> dict[str, float]:
        """Total seconds per stage name, across all iterations."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.stage] = totals.get(event.stage, 0.0) + event.seconds
        return totals

    def counter_totals(self, stage: str) -> dict[str, int]:
        """Summed counters of every event with the given stage name.

        The resilience machinery records faults/retries/skips as
        counter-only events (``"fault_injected"``, ``"stage_retry"``,
        ``"stage_skip"``, ``"pages_corrupted"``); this aggregates them
        per counter key across the whole run.
        """
        totals: dict[str, int] = {}
        for event in self.events:
            if event.stage != stage:
                continue
            for key, value in event.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def iteration_events(self, iteration: int | None) -> list[StageEvent]:
        """Events of one bootstrap cycle (None = seed phase)."""
        return [
            event for event in self.events if event.iteration == iteration
        ]

    def iterations(self) -> list[int]:
        """Distinct iteration numbers present, sorted."""
        return sorted(
            {
                event.iteration
                for event in self.events
                if event.iteration is not None
            }
        )

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready view of the trace."""
        return {
            "label": self.label,
            "total_seconds": self.total_seconds,
            "stage_totals": self.stage_totals(),
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        trace = cls(label=payload.get("label", ""))
        for record in payload.get("events", ()):
            trace.events.append(
                StageEvent(
                    stage=record["stage"],
                    seconds=record["seconds"],
                    iteration=record.get("iteration"),
                    counters=dict(record.get("counters", {})),
                )
            )
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PipelineTrace(label={self.label!r}, "
            f"events={len(self.events)}, "
            f"total={self.total_seconds:.3f}s)"
        )
