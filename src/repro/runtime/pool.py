"""Persistent, supervised shard-worker pool.

:func:`~repro.runtime.runner.parallel_map` answers "run these chunks
somewhere"; this module answers the production question underneath it:
*what happens when the machine kills a worker mid-shard?* A
``ProcessPoolExecutor`` whose worker is SIGKILLed (OOM killer, cgroup
limit, an operator's ``kill -9``) raises ``BrokenProcessPool`` and
abandons every in-flight task — the exact failure mode a paper-scale
overnight bootstrap cannot afford. :class:`ShardWorkerPool` replaces
per-call pools with long-lived supervised workers:

* **Persistent workers.** One process per slot lives across every
  fan-out of a run (prep, then each iteration's tag wave); work units
  are shard indices sent over a per-worker task queue after a single
  per-wave context broadcast (so the model pickles once per worker per
  wave, not per task).
* **True-death detection.** Each worker runs a heartbeat thread; the
  parent's supervision loop treats ``proc.exitcode is not None`` as
  the authoritative death sentinel (a SIGKILLed process cannot send a
  goodbye) and a stale heartbeat as a wedged worker, which it
  escalates to SIGKILL and handles identically.
* **Respawn + requeue with deterministic retry accounting.** A dead
  worker is replaced (fresh queues — its old queue may hold a stale
  task) and its in-flight shard is requeued at the front with an
  incremented attempt counter. Attempt numbers depend only on the
  failure history of the shard itself, never on scheduling, so
  injected ``worker_kill`` faults (pure in ``(seed, stage, shard,
  attempt)``) replay identically at any worker count.
* **Poisoned shards.** A shard whose worker dies ``1 +
  max_shard_retries`` times is returned as a :class:`ShardFailure`
  instead of wedging the run; the caller quarantines it
  (``check="poisoned_shard"``) and completes on the survivors, or
  raises under the strict policy. Ordinary in-worker *exceptions* are
  not retried here — they re-raise in the parent exactly as the old
  fan-out did, so stage-level retry/escalation semantics are
  unchanged.

With one worker the pool degrades to inline execution with the same
retry/poison accounting (``worker_kill`` faults are *simulated* — the
parent cannot SIGKILL itself — so chaos suites stay meaningful on
1-CPU boxes).

Clean runs are bit-identical to the old ``parallel_map`` fan-out: the
pool changes who executes a shard and what happens on failure, never
the per-shard computation or the caller's deterministic merge order.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import pickle
import queue as queue_module
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .faults import FaultPlan

#: Seconds between worker heartbeat messages.
HEARTBEAT_INTERVAL = 0.25

#: Seconds of heartbeat silence after which a live-looking worker is
#: declared wedged and SIGKILLed. Generous: a beat is sent from a
#: daemon thread, so only a worker stuck in GIL-holding native code —
#: or truly dead in a way the exitcode check will catch first — goes
#: silent this long.
DEFAULT_HEARTBEAT_TIMEOUT = 60.0

#: Default extra attempts a shard gets after its first failure.
DEFAULT_MAX_SHARD_RETRIES = 2

#: Parent supervision-loop poll interval, seconds.
_POLL_INTERVAL = 0.02

#: Consecutive deaths-before-ready one slot may suffer before the pool
#: declares the environment unable to sustain workers at all.
_MAX_CTX_DEATHS = 5


@dataclass(frozen=True)
class ShardFailure:
    """One shard's terminal failure after exhausting its retries.

    Attributes:
        index: the poisoned shard.
        attempts: attempts consumed (``1 + max_shard_retries``).
        reason: ``"worker_death"`` or ``"heartbeat_timeout"``.
        detail: human-readable last-failure detail.
    """

    index: int
    attempts: int
    reason: str
    detail: str


@dataclass
class PoolReport:
    """Supervision tallies for one :meth:`ShardWorkerPool.run` wave."""

    deaths: int = 0
    respawns: int = 0
    requeues: int = 0
    poisoned: int = 0
    injected_kills: int = 0

    def as_counts(self) -> dict[str, int]:
        return {
            name: value
            for name, value in self.__dict__.items()
            if value
        }

    def merge(self, other: "PoolReport") -> None:
        for name, value in other.__dict__.items():
            setattr(self, name, getattr(self, name) + value)


def _worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    heartbeat_interval: float,
) -> None:
    """Worker process loop: beat, receive context, execute shard tasks.

    Messages in: ``("ctx", gen, fn, context, stage, faults)``,
    ``("task", gen, index, attempt)``, ``("stop",)``. Messages out:
    ``("hb", gen, -1, None)``, ``("ready", gen, -1, None)``,
    ``("ok", gen, index, result)``, ``("err", gen, index, info)``.
    """
    stop_beating = threading.Event()
    generation = 0

    def _beat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            try:
                result_queue.put(("hb", generation, -1, None))
            except Exception:  # pragma: no cover - shutdown race
                return

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    fn = context = stage = faults = None
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            stop_beating.set()
            return
        if kind == "ctx":
            _, generation, fn, context, stage, faults = message
            result_queue.put(("ready", generation, -1, None))
            continue
        _, gen, index, attempt = message
        if gen != generation:  # stale task from a superseded wave
            continue
        if faults is not None and faults.should_kill_worker(
            stage, index, attempt
        ):
            # Die the way the OOM killer kills: no teardown, no
            # goodbye message, not even atexit. The parent must
            # notice via the exitcode sentinel alone.
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            result = fn(context, index)
        except BaseException as error:  # noqa: BLE001 - forwarded
            # The queue feeder pickles in a background thread and drops
            # unpicklable items silently — probe the pickle here so an
            # exotic exception still surfaces as *something*.
            try:
                pickle.dumps(error)
                payload: object = error
            except Exception:
                payload = (
                    type(error).__name__,
                    str(error),
                    traceback.format_exc(),
                )
            result_queue.put(("err", gen, index, payload))
        else:
            result_queue.put(("ok", gen, index, result))


@dataclass
class _WorkerHandle:
    """Parent-side state for one pool slot."""

    worker_id: int
    process: multiprocessing.Process
    task_queue: object
    result_queue: object
    ready: bool = False
    busy_index: int | None = None
    last_beat: float = field(default_factory=time.monotonic)


class ShardWorkerPool:
    """Supervised pool of persistent shard workers.

    Args:
        workers: pool size. ``1`` (or less) runs tasks inline in the
            parent with identical retry/poison accounting.
        max_shard_retries: extra attempts per shard after its first
            failure; a shard failing all ``1 + max_shard_retries``
            attempts comes back as a :class:`ShardFailure`.
        heartbeat_timeout: seconds of worker silence before the
            supervisor declares it wedged and SIGKILLs it.
        heartbeat_interval: worker beat period.
    """

    def __init__(
        self,
        workers: int,
        *,
        max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
    ):
        self.workers = max(1, int(workers))
        self.max_shard_retries = max(0, int(max_shard_retries))
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        self.report = PoolReport()
        self._generation = 0
        self._next_worker_id = 0
        self._handles: list[_WorkerHandle] = []
        self._closed = False
        methods = multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    @property
    def max_attempts(self) -> int:
        return 1 + self.max_shard_retries

    # -- lifecycle -------------------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        task_queue = self._mp.Queue()
        result_queue = self._mp.Queue()
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self._mp.Process(
            target=_worker_main,
            args=(
                worker_id,
                task_queue,
                result_queue,
                self.heartbeat_interval,
            ),
            daemon=True,
            name=f"repro-shard-worker-{worker_id}",
        )
        process.start()
        return _WorkerHandle(
            worker_id=worker_id,
            process=process,
            task_queue=task_queue,
            result_queue=result_queue,
        )

    def _discard(self, handle: _WorkerHandle) -> None:
        """Drop a dead handle's queues without joining their feeders."""
        for q in (handle.task_queue, handle.result_queue):
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover - race
                pass

    def close(self) -> None:
        """Stop every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            if handle.process.exitcode is None:
                try:
                    handle.task_queue.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + 2.0
        for handle in self._handles:
            remaining = max(0.0, deadline - time.monotonic())
            handle.process.join(timeout=remaining)
            if handle.process.exitcode is None:
                handle.process.kill()
                handle.process.join(timeout=1.0)
            self._discard(handle)
        self._handles = []

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the supervised wave --------------------------------------------

    def run(
        self,
        fn: Callable,
        context: object,
        indices: Sequence[int],
        *,
        stage: str,
        faults: "FaultPlan | None" = None,
        max_workers: int | None = None,
    ) -> tuple[dict[int, object], dict[int, ShardFailure], PoolReport]:
        """Execute ``fn(context, index)`` for every index, supervised.

        Returns ``(results, failures, report)``: per-index results for
        shards that completed, :class:`ShardFailure` records for
        poisoned shards, and this wave's supervision tallies (also
        merged into :attr:`report`).

        Args:
            fn: picklable top-level worker function.
            context: per-wave context broadcast once per worker.
            indices: shard indices to run (executed in order given,
                modulo retries).
            stage: stage name for ``worker_kill`` fault matching
                (``"shard_prep"`` / ``"shard_tag"``).
            faults: optional plan; workers consult
                :meth:`~repro.runtime.faults.FaultPlan.
                should_kill_worker` before each attempt.
            max_workers: cap the slots used this wave (memory-governor
                backpressure) without shrinking the pool.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        indices = list(indices)
        if not indices:
            return {}, {}, PoolReport()
        active = min(self.workers, len(indices))
        if max_workers is not None:
            active = max(1, min(active, max_workers))
        if self.workers <= 1 or active <= 1:
            return self._run_inline(fn, context, indices, stage, faults)
        return self._run_pooled(
            fn, context, indices, stage, faults, active
        )

    # -- inline degradation ---------------------------------------------

    def _run_inline(
        self,
        fn: Callable,
        context: object,
        indices: list[int],
        stage: str,
        faults: "FaultPlan | None",
    ) -> tuple[dict[int, object], dict[int, ShardFailure], PoolReport]:
        report = PoolReport()
        results: dict[int, object] = {}
        failures: dict[int, ShardFailure] = {}
        try:
            for index in indices:
                for attempt in range(1, self.max_attempts + 1):
                    if faults is not None and faults.should_kill_worker(
                        stage, index, attempt
                    ):
                        # Inline mode cannot SIGKILL the parent; model
                        # the death as a failed attempt with the same
                        # accounting the pooled path would produce.
                        faults.record_worker_kill(stage)
                        report.deaths += 1
                        report.injected_kills += 1
                        if attempt < self.max_attempts:
                            report.requeues += 1
                            continue
                        report.poisoned += 1
                        failures[index] = ShardFailure(
                            index, attempt, "worker_death",
                            "injected kill",
                        )
                        break
                    # Task exceptions propagate, as the old fan-out's
                    # did — only deaths get retry/poison accounting.
                    results[index] = fn(context, index)
                    break
        finally:
            self.report.merge(report)
        return results, failures, report

    # -- pooled execution ------------------------------------------------

    def _ensure_workers(self, active: int) -> None:
        while len(self._handles) < active:
            self._handles.append(self._spawn())

    def _respawn(self, slot: int) -> _WorkerHandle:
        dead = self._handles[slot]
        self._discard(dead)
        handle = self._spawn()
        self._handles[slot] = handle
        return handle

    def _broadcast_context(
        self, handles: list[_WorkerHandle], message: tuple
    ) -> None:
        for handle in handles:
            handle.ready = False
            handle.busy_index = None
            handle.last_beat = time.monotonic()
            handle.task_queue.put(message)

    def _run_pooled(
        self,
        fn: Callable,
        context: object,
        indices: list[int],
        stage: str,
        faults: "FaultPlan | None",
        active: int,
    ) -> tuple[dict[int, object], dict[int, ShardFailure], PoolReport]:
        report = PoolReport()
        self._generation += 1
        self._ensure_workers(active)
        handles = self._handles[:active]
        ctx_message = (
            "ctx", self._generation, fn, context, stage, faults
        )
        self._broadcast_context(handles, ctx_message)

        pending: collections.deque[int] = collections.deque(indices)
        attempts: dict[int, int] = {index: 0 for index in indices}
        results: dict[int, object] = {}
        failures: dict[int, ShardFailure] = {}
        ctx_deaths: dict[int, int] = collections.defaultdict(int)
        outstanding = len(indices)

        def fail_attempt(index: int, reason: str, detail: str) -> None:
            nonlocal outstanding
            if attempts[index] < self.max_attempts:
                pending.appendleft(index)
                report.requeues += 1
                return
            failures[index] = ShardFailure(
                index, attempts[index], reason, detail
            )
            report.poisoned += 1
            outstanding -= 1

        def process_message(handle: _WorkerHandle, message) -> bool:
            """Fold one worker message into wave state; True if it was
            a work-bearing (non-heartbeat) message of this wave."""
            nonlocal outstanding
            kind, gen, index, payload = message
            handle.last_beat = time.monotonic()
            if kind == "hb":
                return False
            if gen != self._generation:
                return False  # leftovers from a superseded wave
            if kind == "ready":
                handle.ready = True
                return True
            if handle.busy_index == index:
                handle.busy_index = None
            if index in results or index in failures:
                return True  # duplicate after a false-positive kill
            if kind == "ok":
                results[index] = payload
                outstanding -= 1
                return True
            # "err": the worker is alive but the task raised. Surface
            # it in the parent exactly as the old fan-out did — stage
            # retry/escalation semantics belong to the caller, not the
            # pool. The next wave's generation bump discards whatever
            # the other workers were still doing.
            if isinstance(payload, BaseException):
                raise payload
            name, detail, tb = payload
            raise RuntimeError(
                f"shard {index} raised unpicklable "
                f"{name}: {detail}\n{tb}"
            )

        def drain(handle: _WorkerHandle) -> bool:
            progressed = False
            while True:
                try:
                    message = handle.result_queue.get_nowait()
                except (queue_module.Empty, EOFError, OSError):
                    return progressed
                progressed = process_message(handle, message) or progressed

        def handle_death(slot: int, reason: str, detail: str) -> None:
            handle = handles[slot]
            report.deaths += 1
            if not handle.ready and handle.busy_index is None:
                # Died before ever becoming ready: no shard to charge
                # the death to, so retry accounting can't bound it.
                # Cap the respawn loop or a machine that can't sustain
                # workers would spin forever.
                ctx_deaths[slot] += 1
                if ctx_deaths[slot] > _MAX_CTX_DEATHS:
                    raise RuntimeError(
                        f"pool worker slot {slot} died "
                        f"{ctx_deaths[slot]} times before becoming "
                        f"ready ({detail}); giving up on the pool"
                    )
            else:
                ctx_deaths[slot] = 0
            # A worker can die *after* flushing its result: salvage
            # whatever reached the pipe before declaring the shard
            # attempt failed.
            drain(handle)
            index = handle.busy_index
            if index is not None:
                if faults is not None and faults.kill_decision(
                    stage, index, attempts[index]
                ):
                    faults.record_worker_kill(stage)
                    report.injected_kills += 1
                fail_attempt(index, reason, detail)
            handles[slot] = self._respawn(slot)
            report.respawns += 1
            handles[slot].task_queue.put(ctx_message)

        try:
            while outstanding > 0:
                # Dispatch to every ready idle worker.
                for handle in handles:
                    if not pending:
                        break
                    if not handle.ready or handle.busy_index is not None:
                        continue
                    index = pending.popleft()
                    attempts[index] += 1
                    handle.busy_index = index
                    handle.task_queue.put(
                        ("task", self._generation, index, attempts[index])
                    )
                progressed = False
                for handle in handles:
                    progressed = drain(handle) or progressed
                if outstanding <= 0:
                    break
                # Liveness sweep: exitcode is the authoritative death
                # sentinel; heartbeat silence marks a wedged worker,
                # which is escalated to SIGKILL and then handled as a
                # death.
                now = time.monotonic()
                for slot, handle in enumerate(handles):
                    if handle.process.exitcode is not None:
                        handle_death(
                            slot,
                            "worker_death",
                            f"worker exited with code "
                            f"{handle.process.exitcode}",
                        )
                    elif (
                        handle.busy_index is not None
                        and now - handle.last_beat > self.heartbeat_timeout
                    ):
                        handle.process.kill()
                        handle.process.join(timeout=5.0)
                        handle_death(
                            slot,
                            "heartbeat_timeout",
                            f"no heartbeat for "
                            f"{self.heartbeat_timeout:g}s",
                        )
                if not progressed:
                    time.sleep(_POLL_INTERVAL)
        finally:
            self.report.merge(report)
        return results, failures, report
