"""Durable-storage primitives for a hostile machine.

Every artifact the pipeline persists — checkpoints, prep-cache shards,
bench records — goes through the same two hazards in production:
partial writes (a crash mid-`write` leaves a torn file the next run
chokes on) and environment failures (``ENOSPC`` on a full disk,
``EIO`` from a dying device, ``EDQUOT`` on a quota'd share). This
module centralizes the answers:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` /
  :func:`atomic_writer` — the tmp + fsync + rename pattern, so readers
  only ever observe absent-or-complete files. Environment errnos are
  re-raised as :class:`~repro.errors.StorageError` so callers can
  distinguish "the machine is hostile, degrade" from programming
  errors; everything else propagates unchanged.
* :class:`DirectoryLock` — ``fcntl.flock`` advisory locking on a
  sentinel file, so two concurrent runs sharing a cache or checkpoint
  directory serialize (or fall back to private scratch) instead of
  interleaving partial writes. Degrades to a no-op on platforms
  without ``fcntl``.

Fault injection: helpers accept a :class:`~repro.runtime.faults.
FaultPlan` and call :meth:`~repro.runtime.faults.FaultPlan.
fire_storage` with the logical operation name before touching the
disk, so ``disk_full`` / ``slow_disk`` specs inject deterministic
``ENOSPC`` (classified exactly like the real thing) and latency at
every durable-write site without monkeypatching.
"""

from __future__ import annotations

import contextlib
import errno
import os
import pathlib
import time
from typing import IO, TYPE_CHECKING, Iterator

from ..errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .faults import FaultPlan

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

#: errnos classified as *environment* storage failures. Anything else
#: (EACCES from a misconfigured path, EISDIR from a caller bug, …) is
#: a programming/configuration error and propagates as plain OSError.
STORAGE_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EDQUOT, errno.EIO, errno.EROFS}
)


def classify_storage_error(
    error: OSError, op: str, path: str | os.PathLike
) -> StorageError | None:
    """The :class:`StorageError` for an OSError, or None if unclassified."""
    if error.errno in STORAGE_ERRNOS:
        return StorageError(
            op, str(path), error.errno, error.strerror or str(error)
        )
    return None


@contextlib.contextmanager
def atomic_writer(
    path: str | os.PathLike,
    mode: str = "wb",
    *,
    fsync: bool = True,
    faults: "FaultPlan | None" = None,
    op: str = "storage",
    encoding: str | None = None,
) -> Iterator[IO]:
    """Write ``path`` atomically: tmp file + fsync + rename.

    Yields a handle onto ``<dir>/.<name>.tmp``; on clean exit the data
    is flushed, fsynced and renamed over ``path``, so a reader never
    observes a torn file — the write either happened completely or not
    at all. On any error the tmp file is removed. OSErrors whose errno
    is in :data:`STORAGE_ERRNOS` are re-raised as
    :class:`~repro.errors.StorageError`; other exceptions propagate
    unchanged.

    Args:
        path: final destination.
        mode: ``"wb"`` or ``"wt"`` (the tmp file's open mode).
        fsync: flush file contents to stable storage before the
            rename. Scratch files that are rebuilt deterministically
            can pass False to skip the (slow) disk barrier.
        faults: optional plan; due ``disk_full`` / ``slow_disk`` specs
            for ``op`` fire before the write.
        op: logical operation name (fault stage + StorageError.op).
        encoding: text-mode encoding.
    """
    final = pathlib.Path(path)
    temp = final.parent / f".{final.name}.tmp"
    try:
        if faults is not None:
            faults.fire_storage(op)
        final.parent.mkdir(parents=True, exist_ok=True)
        handle = open(temp, mode, encoding=encoding)
        try:
            yield handle
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        finally:
            handle.close()
        os.replace(temp, final)
    except OSError as error:
        with contextlib.suppress(OSError):
            temp.unlink()
        classified = classify_storage_error(error, op, final)
        if classified is not None:
            raise classified from error
        raise
    except BaseException:
        with contextlib.suppress(OSError):
            temp.unlink()
        raise


def atomic_write_bytes(
    path: str | os.PathLike,
    data: bytes,
    *,
    fsync: bool = True,
    faults: "FaultPlan | None" = None,
    op: str = "storage",
) -> None:
    """Atomically replace ``path`` with ``data`` (see :func:`atomic_writer`)."""
    with atomic_writer(
        path, "wb", fsync=fsync, faults=faults, op=op
    ) as handle:
        handle.write(data)


def atomic_write_text(
    path: str | os.PathLike,
    text: str,
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
    faults: "FaultPlan | None" = None,
    op: str = "storage",
) -> None:
    """Atomically replace ``path`` with ``text`` (see :func:`atomic_writer`)."""
    atomic_write_bytes(
        path, text.encode(encoding), fsync=fsync, faults=faults, op=op
    )


class DirectoryLock:
    """Advisory inter-process lock on a directory.

    Backed by ``fcntl.flock`` on a sentinel file inside the directory.
    flock locks attach to the open file description, so two handles —
    even in one process — conflict, which is exactly what the
    dueling-run tests need. The sentinel file is left in place (its
    *lock*, not its existence, is the signal), so a crashed holder
    never wedges later runs.

    On platforms without ``fcntl`` the lock degrades to always
    acquiring: single-host POSIX boxes are the deployment target, and
    a no-op beats crashing off it.
    """

    def __init__(self, directory: str | os.PathLike, name: str = ".lock"):
        self.directory = pathlib.Path(directory)
        self.path = self.directory / name
        self._handle: IO | None = None

    @property
    def held(self) -> bool:
        return self._handle is not None

    def try_acquire(self) -> bool:
        """Take the lock without blocking; False if another run holds it."""
        if self._handle is not None:
            return True
        if fcntl is None:  # pragma: no cover - non-POSIX
            self._handle = open(os.devnull, "rb")
            return True
        self.directory.mkdir(parents=True, exist_ok=True)
        handle = open(self.path, "a+b")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            return False
        self._handle = handle
        return True

    def acquire(
        self, timeout: float | None = None, poll_seconds: float = 0.05
    ) -> None:
        """Block until the lock is held.

        Args:
            timeout: give up after this many seconds (None waits
                forever — a second run *queues behind* a long first
                run rather than failing it).
            poll_seconds: re-check interval while waiting.

        Raises:
            TimeoutError: the timeout elapsed with the lock still held
                elsewhere.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.try_acquire():
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"could not lock {self.directory} within {timeout:g}s: "
                    "another run holds it"
                )
            time.sleep(poll_seconds)

    def release(self) -> None:
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        if fcntl is not None:
            with contextlib.suppress(OSError):
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()

    def __enter__(self) -> "DirectoryLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
