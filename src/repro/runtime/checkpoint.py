"""Crash-safe bootstrap checkpoints: per-iteration snapshots + resume.

A field deployment runs the bootstrap loop over millions of pages per
category; a sweep killed at iteration 4 of 5 must not redo days of
tagger training. :class:`CheckpointStore` persists everything the loop
needs to continue — the per-iteration records and the folded training
dataset — as one JSON snapshot per completed iteration, in the same
pickle-free spirit as :mod:`repro.ml.persistence` (``meta.json`` for
run identity, plain JSON for state; no arbitrary code execution on
load).

Layout of a checkpoint directory::

    meta.json               # format version, run fingerprint, seed digest
    iteration_0001.json.gz  # IterationResult + folded dataset, checksummed
    iteration_0002.json.gz
    ...

Snapshots are gzip-compressed (the folded dataset is highly repetitive
JSON — compression is ~10×); plain ``.json`` snapshots written by older
versions are still read transparently.

Guarantees:

* **Atomicity** — snapshots are written to a temp file and
  ``os.replace``d into place, so a crash mid-write never leaves a
  half-snapshot under the final name.
* **Integrity** — every snapshot embeds a SHA-256 checksum of its
  payload; truncated or hand-edited files raise
  :class:`~repro.errors.CheckpointError` instead of silently resuming
  from garbage.
* **Identity** — ``meta.json`` records a fingerprint of the pages,
  configuration and attribute subset, plus a digest of the recomputed
  seed state; resuming against different inputs raises
  :class:`CheckpointError` rather than splicing two unrelated runs.

The seed phase itself is *not* snapshotted: it is deterministic and
cheap relative to tagger training, so resume recomputes it and verifies
the digest matches — which also catches a changed query log that the
page fingerprint alone cannot see.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import pathlib
import re
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Sequence

from ..config import PipelineConfig
from ..errors import CheckpointError
from ..types import ProductPage, Sentence, TaggedSentence, Token, Triple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.bootstrap import IterationResult
    from .faults import FaultPlan
    from .storage import DirectoryLock

_FORMAT_VERSION = 1
_SNAPSHOT_PATTERN = re.compile(r"^iteration_(\d{4})\.json(\.gz)?$")
_SHARD_TAG_PATTERN = re.compile(
    r"^shard_tag_(\d{4})_(\d{4})\.json\.gz$"
)


# -- fingerprints -------------------------------------------------------


def run_fingerprint(
    pages: Sequence[ProductPage],
    config: PipelineConfig,
    attribute_subset: Sequence[str] | None = None,
) -> str:
    """A stable digest of everything that determines a run's output.

    Covers the full configuration (including iteration count and every
    nested sub-config), the attribute subset, and each page's identity
    and HTML. Two calls with equal inputs always agree; any drift in
    pages or config changes the digest.
    """
    digest = hashlib.sha256()
    digest.update(
        json.dumps(asdict(config), sort_keys=True).encode("utf-8")
    )
    subset = (
        sorted(attribute_subset) if attribute_subset is not None else None
    )
    digest.update(json.dumps(subset).encode("utf-8"))
    for page in pages:
        for part in (page.product_id, page.category, page.locale, page.html):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
    return digest.hexdigest()


def source_run_fingerprint(
    source_fingerprint: str,
    config: PipelineConfig,
    attribute_subset: Sequence[str] | None = None,
) -> str:
    """Run fingerprint for a streamed (:class:`~repro.corpus.stream.
    PageSource`-fed) run.

    The streamed corpus is never fully resident, so instead of hashing
    every page (what :func:`run_fingerprint` does) this folds in the
    source's own stable fingerprint — which covers the generator seed
    and shape, or the backing file's identity — alongside the full
    configuration and attribute subset.
    """
    digest = hashlib.sha256()
    digest.update(
        json.dumps(asdict(config), sort_keys=True).encode("utf-8")
    )
    subset = (
        sorted(attribute_subset) if attribute_subset is not None else None
    )
    digest.update(json.dumps(subset).encode("utf-8"))
    digest.update(source_fingerprint.encode("utf-8"))
    return digest.hexdigest()


def seed_digest(
    seed_triples: frozenset[Triple], attributes: Sequence[str]
) -> str:
    """Digest of the recomputed seed-phase output (triples + schema)."""
    digest = hashlib.sha256()
    digest.update(json.dumps(sorted(attributes)).encode("utf-8"))
    rows = sorted(
        (t.product_id, t.attribute, t.value) for t in seed_triples
    )
    digest.update(json.dumps(rows, ensure_ascii=False).encode("utf-8"))
    return digest.hexdigest()


# -- serialization helpers ----------------------------------------------


def _triples_to_json(triples) -> list[list[str]]:
    return sorted(
        [t.product_id, t.attribute, t.value] for t in triples
    )


def _triples_from_json(rows) -> frozenset[Triple]:
    return frozenset(Triple(*row) for row in rows)


def _tagged_to_json(tagged: TaggedSentence) -> dict:
    return {
        "product_id": tagged.sentence.product_id,
        "index": tagged.sentence.index,
        "tokens": [
            [token.text, token.pos] for token in tagged.sentence.tokens
        ],
        "labels": list(tagged.labels),
    }


def _tagged_from_json(record: dict) -> TaggedSentence:
    sentence = Sentence(
        product_id=record["product_id"],
        index=record["index"],
        tokens=tuple(Token(text, pos) for text, pos in record["tokens"]),
    )
    return TaggedSentence(sentence, tuple(record["labels"]))


def _result_to_json(result: "IterationResult") -> dict:
    return {
        "iteration": result.iteration,
        "triples": _triples_to_json(result.triples),
        "new_triples": _triples_to_json(result.new_triples),
        "candidate_extractions": result.candidate_extractions,
        "veto_stats": (
            None if result.veto_stats is None else asdict(result.veto_stats)
        ),
        "semantic_stats": (
            None
            if result.semantic_stats is None
            else {
                "attributes_cleaned": result.semantic_stats.attributes_cleaned,
                "values_scored": result.semantic_stats.values_scored,
                "values_removed": result.semantic_stats.values_removed,
                "removed_by_attribute": {
                    attribute: list(values)
                    for attribute, values in (
                        result.semantic_stats.removed_by_attribute.items()
                    )
                },
            }
        ),
        "dataset_sentences": result.dataset_sentences,
    }


def _result_from_json(record: dict) -> "IterationResult":
    from ..core.bootstrap import IterationResult
    from ..core.cleaning import SemanticStats, VetoStats

    veto = record["veto_stats"]
    semantic = record["semantic_stats"]
    return IterationResult(
        iteration=record["iteration"],
        triples=_triples_from_json(record["triples"]),
        new_triples=_triples_from_json(record["new_triples"]),
        candidate_extractions=record["candidate_extractions"],
        veto_stats=None if veto is None else VetoStats(**veto),
        semantic_stats=(
            None
            if semantic is None
            else SemanticStats(
                attributes_cleaned=semantic["attributes_cleaned"],
                values_scored=semantic["values_scored"],
                values_removed=semantic["values_removed"],
                removed_by_attribute={
                    attribute: tuple(values)
                    for attribute, values in (
                        semantic["removed_by_attribute"].items()
                    )
                },
            )
        ),
        dataset_sentences=record["dataset_sentences"],
    )


def _checksum(body: dict) -> str:
    return hashlib.sha256(
        json.dumps(body, sort_keys=True, ensure_ascii=False).encode("utf-8")
    ).hexdigest()


# -- the store ----------------------------------------------------------


@dataclass(frozen=True)
class ResumeState:
    """What the bootstrap loop needs to continue a checkpointed run.

    Attributes:
        results: per-iteration records of every completed cycle, in
            order (``results[-1].iteration`` is the resume point).
        dataset: the folded training dataset feeding the next cycle.
    """

    results: tuple["IterationResult", ...]
    dataset: list[TaggedSentence]

    @property
    def completed_iterations(self) -> int:
        return len(self.results)


class CheckpointStore:
    """Reads and writes one run's checkpoint directory.

    Args:
        directory: checkpoint root for exactly one (pages, config) run;
            created on first write.
        faults: optional :class:`~repro.runtime.faults.FaultPlan` whose
            ``disk_full``/``slow_disk`` specs fire inside every
            snapshot write (op ``"checkpoint_write"``).

    Environment failures (``ENOSPC``, ``EIO``, …) during a write
    surface as :class:`~repro.errors.StorageError` — the bootstrap
    loop catches those, retries with deterministic backoff and then
    degrades to checkpoint-less rather than crashing the run.

    Concurrency: :meth:`hold_lock` takes an ``fcntl.flock`` advisory
    lock on the directory for the duration of a run, so a second run
    pointed at the same checkpoint queues behind the first instead of
    interleaving snapshot writes. Shard tag workers write through
    their own (lock-free) stores — the run owner holds the lock on
    their behalf.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        faults: "FaultPlan | None" = None,
    ):
        self.directory = pathlib.Path(directory)
        self.faults = faults

    # -- locking --------------------------------------------------------

    def hold_lock(self, timeout: float | None = None) -> "DirectoryLock":
        """Advisory lock on the directory, as a context manager.

        Args:
            timeout: seconds to wait for a concurrent holder before
                raising :class:`~repro.errors.CheckpointError`; None
                waits indefinitely (a second run queues, never
                corrupts).
        """
        from .storage import DirectoryLock

        self.directory.mkdir(parents=True, exist_ok=True)
        lock = DirectoryLock(self.directory, ".run.lock")
        try:
            lock.acquire(timeout=timeout)
        except TimeoutError as error:
            raise CheckpointError(str(error)) from error
        return lock

    # -- writing --------------------------------------------------------

    def _write_json(self, name: str, payload: dict) -> None:
        """Atomically write one JSON document into the directory.

        Names ending ``.gz`` are gzip-compressed (``mtime=0`` keeps the
        compressed bytes deterministic for identical payloads).
        Classified environment failures raise
        :class:`~repro.errors.StorageError`.
        """
        from .storage import atomic_writer

        final = self.directory / name
        text = json.dumps(payload, ensure_ascii=False, indent=1)
        with atomic_writer(
            final, "wb", faults=self.faults, op="checkpoint_write"
        ) as handle:
            if name.endswith(".gz"):
                with gzip.GzipFile(
                    fileobj=handle, mode="wb", mtime=0
                ) as compressed:
                    compressed.write(text.encode("utf-8"))
            else:
                handle.write(text.encode("utf-8"))

    def begin(
        self, fingerprint: str, digest: str, iterations: int
    ) -> None:
        """Start (or restart) a checkpointed run: wipe stale snapshots.

        Any snapshot from a previous run in this directory is deleted —
        a fresh run must never splice in old iterations — and a new
        ``meta.json`` records the run identity. Only snapshot files are
        wiped: the ``prep_cache/`` subdirectory (streamed shard-prep
        artifacts, :mod:`repro.perf.prep_cache`) is deliberately
        retained, so a restarted run skips ``shard_prep`` — its
        artifacts are keyed by source fingerprint and config digest and
        self-invalidate when either changes.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        for path in self._snapshot_paths():
            path.unlink()
        for path in self._shard_tag_paths():
            path.unlink()
        stale_quarantine = self.directory / "quarantine.json"
        if stale_quarantine.exists():
            stale_quarantine.unlink()
        self._write_json(
            "meta.json",
            {
                "format_version": _FORMAT_VERSION,
                "fingerprint": fingerprint,
                "seed_digest": digest,
                "iterations_target": iterations,
            },
        )

    def write_iteration(
        self, result: "IterationResult", dataset: Sequence[TaggedSentence]
    ) -> None:
        """Snapshot one completed iteration and its folded dataset."""
        body = {
            "iteration": result.iteration,
            "result": _result_to_json(result),
            "dataset": [_tagged_to_json(tagged) for tagged in dataset],
        }
        payload = dict(
            body,
            format_version=_FORMAT_VERSION,
            checksum=_checksum(body),
        )
        self._write_json(
            f"iteration_{result.iteration:04d}.json.gz", payload
        )

    def record_quarantine(self, entries: list[dict]) -> None:
        """Persist — or, on resume, verify — the run's quarantine ledger.

        The ingest gate is deterministic, so a resumed run regates the
        same pages and must reproduce the ledger bit-for-bit. First
        call writes ``quarantine.json``; later calls verify the stored
        digest and raise :class:`CheckpointError` on divergence (which
        means the pages or gate config changed under the checkpoint).
        An empty ledger writes nothing — a clean run's checkpoint
        directory stays byte-identical to one from before the gate
        existed — but still verifies against any existing file.
        """
        path = self.directory / "quarantine.json"
        if not entries and not path.exists():
            return
        digest = hashlib.sha256(
            json.dumps(
                entries, sort_keys=True, ensure_ascii=False
            ).encode("utf-8")
        ).hexdigest()
        if path.exists():
            stored = self._load_json(path)
            if stored.get("digest") != digest:
                raise CheckpointError(
                    f"checkpoint at {self.directory} holds a different "
                    "quarantine ledger; the pages or ingest config "
                    "changed under the checkpoint — pass resume=False "
                    "to restart"
                )
            return
        self._write_json(
            "quarantine.json",
            {
                "format_version": _FORMAT_VERSION,
                "digest": digest,
                "entries": entries,
            },
        )

    def load_quarantine(self) -> list[dict] | None:
        """The stored quarantine ledger entries, or None if absent."""
        path = self.directory / "quarantine.json"
        if not path.exists():
            return None
        payload = self._load_json(path)
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise CheckpointError(
                f"corrupt checkpoint file {path}: missing entries"
            )
        return entries

    # -- per-shard tag snapshots (sharded bootstrap) --------------------

    def write_shard_tags(
        self,
        iteration: int,
        shard: int,
        tagged: Sequence[TaggedSentence],
        sentence_count: int,
    ) -> None:
        """Snapshot one shard's tagging output for one iteration.

        Written by shard *worker processes* — each shard owns a
        distinct file name, so concurrent writers never collide, and
        the atomic replace in :meth:`_write_json` means a worker killed
        mid-write leaves no partial snapshot. ``tagged`` holds only the
        span-bearing sentences (everything downstream of tagging is a
        pure function of those), ``sentence_count`` the full number of
        unlabeled sentences the shard tagged.
        """
        body = {
            "iteration": iteration,
            "shard": shard,
            "sentence_count": sentence_count,
            "tagged": [_tagged_to_json(item) for item in tagged],
        }
        payload = dict(
            body,
            format_version=_FORMAT_VERSION,
            checksum=_checksum(body),
        )
        self._write_json(
            f"shard_tag_{iteration:04d}_{shard:04d}.json.gz", payload
        )

    def load_shard_tags(
        self, iteration: int, shard: int
    ) -> tuple[list[TaggedSentence], int] | None:
        """One shard's snapshotted tagging output, or None if absent.

        A resumed sharded run calls this per (iteration, shard) and
        fans out only the shards with no snapshot — completed shards
        are never re-tagged. Corruption raises
        :class:`~repro.errors.CheckpointError` (a snapshot is either
        whole or absent; a damaged one means tampering, not a crash).
        """
        path = (
            self.directory
            / f"shard_tag_{iteration:04d}_{shard:04d}.json.gz"
        )
        if not path.exists():
            return None
        payload = self._load_json(path)
        try:
            body = {
                "iteration": payload["iteration"],
                "shard": payload["shard"],
                "sentence_count": payload["sentence_count"],
                "tagged": payload["tagged"],
            }
            stored = payload["checksum"]
        except KeyError as error:
            raise CheckpointError(
                f"corrupt checkpoint file {path}: missing {error}"
            ) from error
        if _checksum(body) != stored:
            raise CheckpointError(
                f"corrupt checkpoint file {path}: checksum mismatch"
            )
        tagged = [
            _tagged_from_json(record) for record in body["tagged"]
        ]
        return tagged, body["sentence_count"]

    def clear_shard_tags(self, iteration: int | None = None) -> int:
        """Delete shard tag snapshots (one iteration's, or all).

        Called once an iteration's own ``iteration_NNNN.json.gz``
        snapshot has landed — the shard files are scaffolding for the
        in-flight iteration only. Returns the number removed.
        """
        removed = 0
        for path in self._shard_tag_paths():
            match = _SHARD_TAG_PATTERN.match(path.name)
            assert match is not None
            if iteration is None or int(match.group(1)) == iteration:
                path.unlink()
                removed += 1
        return removed

    def _shard_tag_paths(self) -> list[pathlib.Path]:
        if not self.directory.exists():
            return []
        return sorted(
            path
            for path in self.directory.iterdir()
            if _SHARD_TAG_PATTERN.match(path.name)
        )

    # -- reading --------------------------------------------------------

    def has_run(self) -> bool:
        """True when this directory holds a started checkpointed run."""
        return (self.directory / "meta.json").exists()

    def _snapshot_paths(self) -> list[pathlib.Path]:
        if not self.directory.exists():
            return []
        return sorted(
            path
            for path in self.directory.iterdir()
            if _SNAPSHOT_PATTERN.match(path.name)
        )

    def _load_json(self, path: pathlib.Path) -> dict:
        # gzip.BadGzipFile is an OSError subclass; a *truncated* gzip
        # stream surfaces as EOFError instead. Both mean corruption.
        try:
            if path.name.endswith(".gz"):
                with gzip.open(path, "rt", encoding="utf-8") as handle:
                    payload = json.load(handle)
            else:
                payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError, EOFError) as error:
            raise CheckpointError(
                f"corrupt checkpoint file {path}: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"corrupt checkpoint file {path}: not a JSON object"
            )
        return payload

    def load_meta(self) -> dict:
        """Read and validate ``meta.json``."""
        path = self.directory / "meta.json"
        if not path.exists():
            raise CheckpointError(f"no checkpoint run at {self.directory}")
        meta = self._load_json(path)
        if meta.get("format_version") != _FORMAT_VERSION:
            raise CheckpointError(
                "unsupported checkpoint format "
                f"{meta.get('format_version')!r} at {path}"
            )
        return meta

    def validate(
        self, fingerprint: str, digest: str
    ) -> None:
        """Check the stored run identity against a resume attempt."""
        meta = self.load_meta()
        if meta.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"checkpoint at {self.directory} belongs to a different "
                "run (pages/config fingerprint mismatch); pass "
                "resume=False to restart"
            )
        if meta.get("seed_digest") != digest:
            raise CheckpointError(
                f"checkpoint at {self.directory} was built from a "
                "different seed state (query log or seed inputs "
                "changed); pass resume=False to restart"
            )

    def _load_snapshot(self, path: pathlib.Path) -> dict:
        payload = self._load_json(path)
        try:
            body = {
                "iteration": payload["iteration"],
                "result": payload["result"],
                "dataset": payload["dataset"],
            }
            stored = payload["checksum"]
        except KeyError as error:
            raise CheckpointError(
                f"corrupt checkpoint file {path}: missing {error}"
            ) from error
        if _checksum(body) != stored:
            raise CheckpointError(
                f"corrupt checkpoint file {path}: checksum mismatch"
            )
        return body

    def load_resume_state(self) -> ResumeState | None:
        """Rebuild the loop state from the last completed iteration.

        Returns None when the run has no completed iterations yet.
        Snapshots must be contiguous from iteration 1; a gap means the
        directory was tampered with and raises
        :class:`CheckpointError`.
        """
        paths = self._snapshot_paths()
        if not paths:
            return None
        results = []
        last_body: dict | None = None
        for expected, path in enumerate(paths, start=1):
            body = self._load_snapshot(path)
            if body["iteration"] != expected:
                raise CheckpointError(
                    f"checkpoint at {self.directory} is missing "
                    f"iteration {expected} (found {body['iteration']} "
                    f"in {path.name})"
                )
            results.append(_result_from_json(body["result"]))
            last_body = body
        assert last_body is not None
        dataset = [
            _tagged_from_json(record) for record in last_body["dataset"]
        ]
        return ResumeState(results=tuple(results), dataset=dataset)
