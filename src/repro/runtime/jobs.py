"""Job specifications and the worker entry point for category sweeps.

A :class:`RunnerJob` describes one pipeline run: either an explicit
``(pages, query_log)`` dataset or a generator spec (category name +
scale + RNG seed) that the worker materialises locally. Generator-spec
jobs are the cheap way to fan out over a process pool — a few ints and
strings cross the process boundary instead of a pickled page corpus.

``execute_job`` is a module-level function (so it pickles by reference
into worker processes) that runs one job with bounded retries and
converts any exception into a structured :class:`JobFailure` instead of
letting it propagate — a failed category must never crash the sweep.
Between attempts it backs off exponentially with *deterministic*
jitter (a CRC of the job name and attempt number, not wall-clock
entropy), so retry schedules are reproducible run-to-run while distinct
jobs still decorrelate. An optional in-worker ``timeout`` stops the
retry loop from starting attempts past the job's wall-clock budget.
"""

from __future__ import annotations

import time
import traceback
import zlib
from dataclasses import dataclass
from typing import Sequence

from ..config import PipelineConfig
from ..errors import JobTimeoutError
from ..types import ProductPage
from .trace import PipelineTrace


@dataclass(frozen=True)
class RunnerJob:
    """One category run in a sweep.

    Exactly one of (``pages`` + ``query_log``) or ``category`` must be
    provided. ``products``/``data_seed`` only apply to generator-spec
    jobs.
    """

    name: str
    config: PipelineConfig
    attribute_subset: tuple[str, ...] | None = None
    pages: tuple[ProductPage, ...] | None = None
    query_log: object | None = None
    category: str | None = None
    products: int | None = None
    data_seed: int = 7
    #: Optional per-job checkpoint directory: the worker snapshots each
    #: completed bootstrap iteration there, so a retried (or re-run)
    #: job resumes instead of recomputing finished cycles.
    checkpoint_dir: str | None = None
    resume: bool = True
    #: Optional :class:`~repro.runtime.faults.FaultPlan` injected into
    #: the worker's pipeline run (chaos testing). The plan's exhaustion
    #: state is shared across this job's in-worker retry attempts, so a
    #: ``times``-bounded fault hit on attempt 1 is absent on attempt 2
    #: — exactly how a transient production fault behaves.
    faults: object | None = None
    #: Drop the heavy training material from a successful result before
    #: it crosses the process boundary (see ``PipelineResult.slim``).
    #: Sweeps that only read triples/metrics/traces should enable this;
    #: the default keeps the full result for API compatibility.
    slim_results: bool = False

    def __post_init__(self) -> None:
        has_dataset = self.pages is not None
        has_spec = self.category is not None
        if has_dataset == has_spec:
            raise ValueError(
                "RunnerJob needs either pages+query_log or a category "
                "generator spec, not both"
            )
        if has_dataset and self.query_log is None:
            raise ValueError("RunnerJob with pages also needs a query_log")

    @classmethod
    def from_dataset(
        cls,
        name: str,
        pages: Sequence[ProductPage],
        query_log: object,
        config: PipelineConfig,
        attribute_subset: Sequence[str] | None = None,
    ) -> "RunnerJob":
        """A job over an explicit page collection."""
        return cls(
            name=name,
            config=config,
            attribute_subset=(
                tuple(attribute_subset)
                if attribute_subset is not None
                else None
            ),
            pages=tuple(pages),
            query_log=query_log,
        )

    @classmethod
    def generate(
        cls,
        category: str,
        products: int,
        config: PipelineConfig,
        *,
        data_seed: int = 7,
        attribute_subset: Sequence[str] | None = None,
        name: str | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = True,
        slim_results: bool = False,
    ) -> "RunnerJob":
        """A job whose dataset the worker generates from a spec."""
        return cls(
            name=name or category,
            config=config,
            attribute_subset=(
                tuple(attribute_subset)
                if attribute_subset is not None
                else None
            ),
            category=category,
            products=products,
            data_seed=data_seed,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            slim_results=slim_results,
        )

    def materialize(self) -> tuple[tuple[ProductPage, ...], object]:
        """The (pages, query_log) this job runs over."""
        if self.pages is not None:
            return self.pages, self.query_log
        from ..corpus import Marketplace

        dataset = Marketplace(seed=self.data_seed).generate(
            self.category, self.products
        )
        return dataset.product_pages, dataset.query_log


@dataclass(frozen=True)
class JobFailure:
    """Structured record of a job that exhausted its retries."""

    job_name: str
    error_type: str
    message: str
    traceback: str
    attempts: int

    def __str__(self) -> str:
        return (
            f"{self.job_name}: {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt(s))"
        )


@dataclass(frozen=True)
class JobOutcome:
    """Result slot of one job, in submission order.

    Exactly one of ``result``/``failure`` is set.
    """

    index: int
    job_name: str
    result: object | None  # PipelineResult, annotated loosely to avoid cycle
    failure: JobFailure | None
    seconds: float
    attempts: int

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def trace(self) -> PipelineTrace | None:
        """The run's trace (None for failed jobs)."""
        return None if self.result is None else self.result.trace


@dataclass(frozen=True)
class Deadline:
    """A monotonic wall-clock budget shared across pipeline stages.

    The serve path threads one :class:`Deadline` through admission,
    batching and tagging so every stage can cheaply ask "is there time
    left?" — a blown deadline becomes a structured
    :class:`~repro.errors.JobTimeoutError`, never a hung socket.
    """

    expires_at: float
    budget_seconds: float

    @classmethod
    def after(cls, budget_seconds: float) -> "Deadline":
        """A deadline ``budget_seconds`` from now."""
        return cls(
            expires_at=time.monotonic() + budget_seconds,
            budget_seconds=budget_seconds,
        )

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def error(self, job_name: str) -> JobTimeoutError:
        """The structured timeout this deadline produces when blown."""
        return JobTimeoutError(job_name, self.budget_seconds)


def retry_backoff(
    job_name: str,
    attempt: int,
    base: float = 0.05,
    cap: float = 2.0,
) -> float:
    """Backoff before retry number ``attempt`` (1-based), in seconds.

    Exponential in the attempt number, capped, with deterministic
    jitter in ``[0.5, 1.0)`` of the raw delay derived from a CRC of
    ``(job_name, attempt)`` — the schedule is reproducible for a given
    job yet decorrelated across jobs, so a sweep's retries do not
    stampede in lockstep. Pure and lock-free: concurrent callers (the
    serve daemon computes shed ``Retry-After`` hints from worker
    threads) always observe identical values for identical inputs.
    """
    if base <= 0:
        return 0.0
    raw = min(cap, base * (2.0 ** (attempt - 1)))
    seed = zlib.crc32(f"{job_name}:{attempt}".encode("utf-8"))
    jitter = 0.5 + 0.5 * ((seed % 10_000) / 10_000.0)
    return raw * jitter


def execute_job(
    index: int,
    job: RunnerJob,
    retries: int = 1,
    timeout: float | None = None,
    backoff_base: float = 0.05,
) -> JobOutcome:
    """Run one job, retrying on failure, never raising.

    Args:
        index: submission position (preserved for deterministic result
            ordering).
        job: the job spec.
        retries: extra attempts after the first failure.
        timeout: in-worker wall-clock budget across all attempts; once
            elapsed, no further attempt (or backoff sleep) starts and
            the outcome records a structured ``Timeout`` failure. The
            budget cannot interrupt a stuck attempt mid-flight — that
            is the runner's pool-level deadline's job.
        backoff_base: first-retry backoff in seconds (doubles per
            retry, deterministic jitter; see :func:`retry_backoff`).
            ``0`` disables backoff.

    Returns:
        A :class:`JobOutcome` carrying either the
        :class:`~repro.core.pipeline.PipelineResult` or a
        :class:`JobFailure`.
    """
    from ..core.pipeline import PAEPipeline

    attempts = 0
    start = time.perf_counter()
    last_failure: JobFailure | None = None
    while attempts <= retries:
        elapsed = time.perf_counter() - start
        if timeout is not None and attempts > 0 and elapsed >= timeout:
            error = JobTimeoutError(job.name, timeout)
            last_failure = JobFailure(
                job_name=job.name,
                error_type="Timeout",
                message=(
                    f"{error}; gave up after {attempts} attempt(s), "
                    f"last error: {last_failure.error_type}: "
                    f"{last_failure.message}"
                    if last_failure is not None
                    else str(error)
                ),
                traceback=(
                    last_failure.traceback
                    if last_failure is not None
                    else ""
                ),
                attempts=attempts,
            )
            break
        if attempts > 0 and backoff_base > 0:
            delay = retry_backoff(job.name, attempts, base=backoff_base)
            if timeout is not None:
                delay = min(delay, max(0.0, timeout - elapsed))
            if delay > 0:
                time.sleep(delay)
        attempts += 1
        try:
            pages, query_log = job.materialize()
            pipeline = PAEPipeline(job.config, job.attribute_subset)
            trace = PipelineTrace(label=job.name)
            result = pipeline.run(
                pages,
                query_log,
                trace=trace,
                checkpoint_dir=job.checkpoint_dir,
                # Only the first attempt honours resume=False: once this
                # invocation has begun a fresh checkpointed run, its own
                # retries must resume it, not wipe it again.
                resume=job.resume or attempts > 1,
                faults=job.faults,
            )
            if job.slim_results:
                result = result.slim()
            return JobOutcome(
                index=index,
                job_name=job.name,
                result=result,
                failure=None,
                seconds=time.perf_counter() - start,
                attempts=attempts,
            )
        except Exception as error:  # noqa: BLE001 - sweeps must not crash
            last_failure = JobFailure(
                job_name=job.name,
                error_type=type(error).__name__,
                message=str(error),
                traceback=traceback.format_exc(),
                attempts=attempts,
            )
    return JobOutcome(
        index=index,
        job_name=job.name,
        result=None,
        failure=last_failure,
        seconds=time.perf_counter() - start,
        attempts=attempts,
    )
