"""Job specifications and the worker entry point for category sweeps.

A :class:`RunnerJob` describes one pipeline run: either an explicit
``(pages, query_log)`` dataset or a generator spec (category name +
scale + RNG seed) that the worker materialises locally. Generator-spec
jobs are the cheap way to fan out over a process pool — a few ints and
strings cross the process boundary instead of a pickled page corpus.

``execute_job`` is a module-level function (so it pickles by reference
into worker processes) that runs one job with bounded retries and
converts any exception into a structured :class:`JobFailure` instead of
letting it propagate — a failed category must never crash the sweep.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Sequence

from ..config import PipelineConfig
from ..types import ProductPage
from .trace import PipelineTrace


@dataclass(frozen=True)
class RunnerJob:
    """One category run in a sweep.

    Exactly one of (``pages`` + ``query_log``) or ``category`` must be
    provided. ``products``/``data_seed`` only apply to generator-spec
    jobs.
    """

    name: str
    config: PipelineConfig
    attribute_subset: tuple[str, ...] | None = None
    pages: tuple[ProductPage, ...] | None = None
    query_log: object | None = None
    category: str | None = None
    products: int | None = None
    data_seed: int = 7

    def __post_init__(self) -> None:
        has_dataset = self.pages is not None
        has_spec = self.category is not None
        if has_dataset == has_spec:
            raise ValueError(
                "RunnerJob needs either pages+query_log or a category "
                "generator spec, not both"
            )
        if has_dataset and self.query_log is None:
            raise ValueError("RunnerJob with pages also needs a query_log")

    @classmethod
    def from_dataset(
        cls,
        name: str,
        pages: Sequence[ProductPage],
        query_log: object,
        config: PipelineConfig,
        attribute_subset: Sequence[str] | None = None,
    ) -> "RunnerJob":
        """A job over an explicit page collection."""
        return cls(
            name=name,
            config=config,
            attribute_subset=(
                tuple(attribute_subset)
                if attribute_subset is not None
                else None
            ),
            pages=tuple(pages),
            query_log=query_log,
        )

    @classmethod
    def generate(
        cls,
        category: str,
        products: int,
        config: PipelineConfig,
        *,
        data_seed: int = 7,
        attribute_subset: Sequence[str] | None = None,
        name: str | None = None,
    ) -> "RunnerJob":
        """A job whose dataset the worker generates from a spec."""
        return cls(
            name=name or category,
            config=config,
            attribute_subset=(
                tuple(attribute_subset)
                if attribute_subset is not None
                else None
            ),
            category=category,
            products=products,
            data_seed=data_seed,
        )

    def materialize(self) -> tuple[tuple[ProductPage, ...], object]:
        """The (pages, query_log) this job runs over."""
        if self.pages is not None:
            return self.pages, self.query_log
        from ..corpus import Marketplace

        dataset = Marketplace(seed=self.data_seed).generate(
            self.category, self.products
        )
        return dataset.product_pages, dataset.query_log


@dataclass(frozen=True)
class JobFailure:
    """Structured record of a job that exhausted its retries."""

    job_name: str
    error_type: str
    message: str
    traceback: str
    attempts: int

    def __str__(self) -> str:
        return (
            f"{self.job_name}: {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt(s))"
        )


@dataclass(frozen=True)
class JobOutcome:
    """Result slot of one job, in submission order.

    Exactly one of ``result``/``failure`` is set.
    """

    index: int
    job_name: str
    result: object | None  # PipelineResult, annotated loosely to avoid cycle
    failure: JobFailure | None
    seconds: float
    attempts: int

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def trace(self) -> PipelineTrace | None:
        """The run's trace (None for failed jobs)."""
        return None if self.result is None else self.result.trace


def execute_job(
    index: int, job: RunnerJob, retries: int = 1
) -> JobOutcome:
    """Run one job, retrying on failure, never raising.

    Args:
        index: submission position (preserved for deterministic result
            ordering).
        job: the job spec.
        retries: extra attempts after the first failure.

    Returns:
        A :class:`JobOutcome` carrying either the
        :class:`~repro.core.pipeline.PipelineResult` or a
        :class:`JobFailure`.
    """
    from ..core.pipeline import PAEPipeline

    attempts = 0
    start = time.perf_counter()
    last_failure: JobFailure | None = None
    while attempts <= retries:
        attempts += 1
        try:
            pages, query_log = job.materialize()
            pipeline = PAEPipeline(job.config, job.attribute_subset)
            trace = PipelineTrace(label=job.name)
            result = pipeline.run(pages, query_log, trace=trace)
            return JobOutcome(
                index=index,
                job_name=job.name,
                result=result,
                failure=None,
                seconds=time.perf_counter() - start,
                attempts=attempts,
            )
        except Exception as error:  # noqa: BLE001 - sweeps must not crash
            last_failure = JobFailure(
                job_name=job.name,
                error_type=type(error).__name__,
                message=str(error),
                traceback=traceback.format_exc(),
                attempts=attempts,
            )
    return JobOutcome(
        index=index,
        job_name=job.name,
        result=None,
        failure=last_failure,
        seconds=time.perf_counter() - start,
        attempts=attempts,
    )
