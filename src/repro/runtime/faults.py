"""Deterministic fault injection for the bootstrap pipeline.

Production sweeps die from worker crashes, hung stages and hostile
merchant HTML. Rather than hoping the recovery paths work, this module
makes failure reproducible: a :class:`FaultPlan` is a seedable schedule
of faults — exceptions, delays, corrupted pages — attached to *named
pipeline stages* (the same names :class:`~repro.runtime.trace.
PipelineTrace` records: ``"tokenize"``, ``"seed_build"``,
``"tagger_train"``, ``"semantic_clean"``, …). The bootstrap loop calls
:meth:`FaultPlan.fire` at the top of every stage body, so a plan can
kill any stage of any iteration on demand::

    plan = FaultPlan(
        [FaultSpec(stage="tagger_tag", iteration=2, times=1)], seed=3
    )
    result = PAEPipeline(config).run(pages, query_log, faults=plan)

Determinism is the point: every stochastic choice (probabilistic
injection, which pages to corrupt) flows from ``random.Random(seed)``,
so a chaos test that fails replays bit-identically. Plans also count
what they injected (:attr:`FaultPlan.injected`), letting tests assert
"exactly one fault fired and the retry path absorbed it".

Fault kinds:

* ``"error"`` — raise :class:`~repro.errors.FaultInjectionError` at the
  stage. With ``times=1`` the stage-level retry in the bootstrap loop
  recovers and output is bit-identical to a fault-free run; unlimited
  ``times`` exercises the degradation paths (skip for optional cleaning
  stages, structured :class:`JobFailure` for mandatory ones).
* ``"delay"`` — sleep ``delay_seconds`` inside the stage; combined with
  job deadlines this turns a hung worker into a ``Timeout`` failure.
* ``"corrupt_pages"`` — mangle a deterministic fraction of page HTML
  before tokenization (truncated markup plus tag soup), exercising the
  hostile-input tolerance of the HTML substrate.
* ``"dirt"`` — run a deterministic fraction of pages through the
  :mod:`repro.corpus.dirt` corruption generator (truncation, unclosed
  tags, entity garbage, mojibake, duplicate ids, megapages). Unlike
  ``corrupt_pages`` the damage is calibrated to trip the ingest gate,
  and the plan keeps each :class:`~repro.corpus.dirt.DirtReport` in
  :attr:`FaultPlan.dirt_reports` so tests can assert the quarantine
  ledger matches the injection ledger exactly.
* ``"worker_death"`` — raise :class:`~repro.errors.WorkerDeathError`
  at the stage, simulating a worker process/thread dying mid-request.
  The serve path converts it into a structured per-request error and
  a circuit-breaker failure.
* ``"corrupt_payload"`` — consumed by :meth:`FaultPlan.mangle_payload`
  (the serve path's pre-parse hook): deterministically truncates a
  request body and splices in binary garbage, exercising the
  protocol-level containment (structured 400, never a crash).

Environment fault kinds (the machine, not the pipeline):

* ``"worker_kill"`` — consumed by :meth:`FaultPlan.should_kill_worker`
  inside pool workers: a matching shard task SIGKILLs its own process
  (no Python teardown, exactly like the OOM killer), exercising true
  death detection, respawn and shard requeue in
  :mod:`repro.runtime.pool`. ``times`` bounds the number of *attempts*
  killed per shard (decisions derive from ``(seed, stage, shard)`` so
  they replay identically in any worker).
* ``"disk_full"`` — consumed by :meth:`FaultPlan.fire_storage` inside
  :mod:`repro.runtime.storage`: raises a real ``OSError(ENOSPC)``
  before the write, which the atomic-write helper classifies into
  :class:`~repro.errors.StorageError` exactly like a genuinely full
  disk. The spec's stage names the logical write op
  (``"prep_cache_write"``, ``"checkpoint_write"``, or ``"storage"``
  for all of them).
* ``"slow_disk"`` — sleeps ``delay_seconds`` inside
  :meth:`fire_storage`, modelling a contended or dying device.
* ``"mem_pressure"`` — consumed by the
  :class:`~repro.runtime.memory.MemoryGovernor`: adds
  ``pressure_bytes`` of synthetic RSS to every sample while due, so
  backpressure paths are testable without actually ballooning the
  process.

The serve chaos harness drives plans from many worker threads at once,
so all mutable plan state (fire counters, the seeded RNG, injection
tallies) is guarded by an internal lock; injection *counts* stay
deterministic even though thread scheduling decides which concurrent
request absorbs which fault.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigError, FaultInjectionError, WorkerDeathError
from ..types import ProductPage

_KINDS = (
    "error",
    "delay",
    "corrupt_pages",
    "dirt",
    "worker_death",
    "corrupt_payload",
    "worker_kill",
    "disk_full",
    "slow_disk",
    "mem_pressure",
)

#: Pool stages whose workers honor ``worker_kill`` specs (optionally
#: suffixed ``:NNNN`` to target one shard).
_KILLABLE_STAGES = ("shard_prep", "shard_tag")

#: Logical storage ops ``disk_full``/``slow_disk`` specs may target;
#: ``"storage"`` matches every durable write.
_STORAGE_STAGES = ("storage", "prep_cache_write", "checkpoint_write")

#: Spliced into request bodies by ``corrupt_payload`` faults: an
#: unterminated JSON prefix plus bytes that are not valid UTF-8.
_PAYLOAD_GARBAGE = b'{"truncated": \xff\xfe\x00'

#: Appended to a corrupted page's truncated HTML — the same tag soup
#: the failure-injection tests use for hostile-input coverage.
_GARBAGE = "<<<<>>>>&&&&<table><tr><td>x</script>"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        stage: pipeline stage name the fault targets (``"corpus"`` for
            ``corrupt_pages`` and ``dirt``, which fire before
            tokenization).
        kind: ``"error"``, ``"delay"``, ``"corrupt_pages"`` or
            ``"dirt"``.
        iteration: restrict to one bootstrap cycle (None matches every
            occurrence of the stage, including the seed phase).
        times: maximum number of injections; None means unlimited.
        probability: per-opportunity injection chance, drawn from the
            plan's seeded RNG (1.0 fires every time).
        delay_seconds: sleep length for ``"delay"`` faults.
        corrupt_fraction: share of pages mangled by ``"corrupt_pages"``
            or ``"dirt"``.
        dirt_kinds: corruption kinds a ``"dirt"`` fault draws from;
            empty means all of :data:`repro.corpus.dirt.DIRT_KINDS`.
        message: carried into the raised :class:`FaultInjectionError`.
        pressure_bytes: synthetic RSS a ``"mem_pressure"`` fault adds
            to every governor sample while due.
    """

    stage: str
    kind: str = "error"
    iteration: int | None = None
    times: int | None = 1
    probability: float = 1.0
    delay_seconds: float = 0.0
    corrupt_fraction: float = 0.25
    dirt_kinds: tuple[str, ...] = ()
    message: str = "injected fault"
    pressure_bytes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("probability must be in [0, 1]")
        if self.times is not None and self.times < 1:
            raise ConfigError("times must be >= 1 (or None for unlimited)")
        if self.delay_seconds < 0:
            raise ConfigError("delay_seconds must be >= 0")
        if not 0.0 <= self.corrupt_fraction <= 1.0:
            raise ConfigError("corrupt_fraction must be in [0, 1]")
        if self.pressure_bytes < 0:
            raise ConfigError("pressure_bytes must be >= 0")
        if self.kind == "worker_kill":
            base = self.stage.split(":", 1)[0]
            if base not in _KILLABLE_STAGES:
                raise ConfigError(
                    "worker_kill faults target pool stages "
                    f"{_KILLABLE_STAGES} (optionally ':NNNN'-suffixed), "
                    f"got stage {self.stage!r}"
                )
        if self.kind in ("disk_full", "slow_disk"):
            if self.stage not in _STORAGE_STAGES:
                raise ConfigError(
                    f"{self.kind} faults target storage ops "
                    f"{_STORAGE_STAGES}, got stage {self.stage!r}"
                )
            if self.kind == "slow_disk" and self.delay_seconds <= 0:
                raise ConfigError(
                    "slow_disk faults require delay_seconds > 0"
                )
        if self.kind == "mem_pressure" and self.pressure_bytes <= 0:
            raise ConfigError(
                "mem_pressure faults require pressure_bytes > 0"
            )


class FaultPlan:
    """A seeded, counting schedule of pipeline faults.

    Args:
        specs: the faults to inject.
        seed: RNG seed; two plans with equal specs and seed make
            identical injection decisions given the same stage
            sequence.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.specs = tuple(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._fired: list[int] = [0] * len(self.specs)
        # The serve path fires plans from concurrent worker threads;
        # every read-modify-write of plan state happens under this.
        self._lock = threading.Lock()
        #: ``{(stage, kind): count}`` of faults actually injected.
        self.injected: dict[tuple[str, str], int] = {}
        #: One :class:`~repro.corpus.dirt.DirtReport` per fired
        #: ``"dirt"`` spec, in firing order — the test oracle for
        #: quarantine assertions.
        self.dirt_reports: list = []

    def _matches(
        self, spec: FaultSpec, index: int, stage: str, iteration: int | None
    ) -> bool:
        if spec.stage != stage:
            return False
        if spec.iteration is not None and spec.iteration != iteration:
            return False
        if spec.times is not None and self._fired[index] >= spec.times:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        return True

    def _record(self, spec: FaultSpec, index: int) -> None:
        self._fired[index] += 1
        key = (spec.stage, spec.kind)
        self.injected[key] = self.injected.get(key, 0) + 1

    def fire(self, stage: str, iteration: int | None = None) -> None:
        """Inject any due error/delay/worker-death fault at a stage.

        Called by the bootstrap loop at the top of every stage body
        and by the serve path inside its tag engine. Delays sleep
        inline (outside the plan lock); errors raise
        :class:`~repro.errors.FaultInjectionError` and worker deaths
        :class:`~repro.errors.WorkerDeathError` (retry/breaker
        machinery then treats the fault like a real failure).
        """
        due: list[FaultSpec] = []
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.kind not in ("error", "delay", "worker_death"):
                    continue
                if not self._matches(spec, index, stage, iteration):
                    continue
                self._record(spec, index)
                due.append(spec)
        for spec in due:
            if spec.kind == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.kind == "worker_death":
                raise WorkerDeathError(stage, spec.message)
            else:
                raise FaultInjectionError(stage, iteration, spec.message)

    def fire_storage(self, op: str) -> None:
        """Inject any due ``disk_full``/``slow_disk`` fault at a write.

        Called by :func:`repro.runtime.storage.atomic_writer` with the
        logical operation name before touching the disk. ``slow_disk``
        sleeps inline (outside the plan lock); ``disk_full`` raises a
        real ``OSError(ENOSPC)`` so the helper's classification path —
        the same one a genuinely full disk takes — turns it into a
        :class:`~repro.errors.StorageError`.
        """
        import errno as _errno

        due: list[FaultSpec] = []
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.kind not in ("disk_full", "slow_disk"):
                    continue
                if spec.stage != "storage" and spec.stage != op:
                    continue
                if spec.times is not None and self._fired[index] >= spec.times:
                    continue
                if (
                    spec.probability < 1.0
                    and self._rng.random() >= spec.probability
                ):
                    continue
                self._record(spec, index)
                due.append(spec)
        for spec in due:
            if spec.kind == "slow_disk":
                time.sleep(spec.delay_seconds)
            else:
                raise OSError(
                    _errno.ENOSPC,
                    f"injected disk full [{op}]",
                    op,
                )

    def kill_decision(
        self, stage: str, shard_index: int, attempt: int
    ) -> bool:
        """Whether a ``worker_kill`` spec condemns this shard attempt.

        Pure function of ``(plan seed, stage, shard, attempt)`` —
        workers hold pickled plan *copies* and may die before any
        bookkeeping escapes the process, so the decision cannot depend
        on shared mutable state. ``times`` is interpreted per shard:
        attempts ``1..times`` are killed, later retries survive, so a
        default ``times=1`` spec kills exactly the first attempt and
        the requeued retry completes — keeping final output
        bit-identical to a fault-free run. The parent re-evaluates the
        same function after detecting a death to classify it as
        injected (see :meth:`record_worker_kill`).
        """
        base = stage.split(":", 1)[0]
        for spec in self.specs:
            if spec.kind != "worker_kill":
                continue
            if spec.stage not in (base, f"{base}:{shard_index:04d}"):
                continue
            if spec.times is not None and attempt > spec.times:
                continue
            if spec.probability < 1.0:
                rng = random.Random(
                    repr((self.seed, "worker_kill", base, shard_index))
                )
                if rng.random() >= spec.probability:
                    continue
            return True
        return False

    def should_kill_worker(
        self, stage: str, shard_index: int, attempt: int
    ) -> bool:
        """Worker-side hook: True means SIGKILL yourself now."""
        return self.kill_decision(stage, shard_index, attempt)

    def record_worker_kill(self, stage: str) -> None:
        """Parent-side tally of a detected injected kill.

        The condemned worker's plan copy dies with it, so the parent —
        which re-derived the same :meth:`kill_decision` — books the
        injection on the plan tests actually hold.
        """
        base = stage.split(":", 1)[0]
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.kind != "worker_kill":
                    continue
                if spec.stage.split(":", 1)[0] != base:
                    continue
                self._record(spec, index)
                return

    def synthetic_rss_bytes(self) -> int:
        """Total synthetic RSS due ``mem_pressure`` specs add right now.

        Each sample that observes a spec consumes one of its ``times``
        (unlimited specs press forever), so a default ``times=1`` spec
        pressures exactly one governor sample.
        """
        total = 0
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.kind != "mem_pressure":
                    continue
                if spec.times is not None and self._fired[index] >= spec.times:
                    continue
                if (
                    spec.probability < 1.0
                    and self._rng.random() >= spec.probability
                ):
                    continue
                self._record(spec, index)
                total += spec.pressure_bytes
        return total

    def has_memory_faults(self) -> bool:
        """Whether any spec injects synthetic memory pressure."""
        return any(spec.kind == "mem_pressure" for spec in self.specs)

    def mangle_payload(self, stage: str, payload: bytes) -> bytes:
        """Corrupt a request body per any due ``corrupt_payload`` spec.

        The serve path calls this on every request body before JSON
        parsing. Damage is deterministic in shape: the body is cut to
        two thirds and an unterminated-JSON/non-UTF-8 garbage tail is
        spliced on, so the protocol layer must produce a structured
        ``bad_request`` — never an unhandled decode crash.
        """
        mangle = False
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.kind != "corrupt_payload":
                    continue
                if not self._matches(spec, index, stage, None):
                    continue
                self._record(spec, index)
                mangle = True
        if not mangle:
            return payload
        return payload[: (2 * len(payload)) // 3] + _PAYLOAD_GARBAGE

    def corrupt_pages(
        self, pages: Sequence[ProductPage]
    ) -> list[ProductPage]:
        """Mangle a deterministic subset of pages per corrupt specs.

        Fires for every ``"corrupt_pages"`` or ``"dirt"`` spec whose
        stage is ``"corpus"`` (the pre-tokenization hook).
        ``corrupt_pages`` truncates the HTML and appends unbalanced tag
        soup; ``dirt`` delegates to the calibrated
        :func:`repro.corpus.dirt.dirty_pages` generator (which may grow
        the corpus via duplicate-id injection). Product ids survive so
        downstream assertions can still attribute output.
        """
        pages = list(pages)
        victims: set[int] = set()
        with self._lock:
            return self._corrupt_pages_locked(pages, victims)

    def _corrupt_pages_locked(
        self, pages: list[ProductPage], victims: set[int]
    ) -> list[ProductPage]:
        for index, spec in enumerate(self.specs):
            if spec.kind == "dirt":
                if not self._matches(spec, index, "corpus", None):
                    continue
                from ..corpus.dirt import DIRT_KINDS, dirty_pages

                self._record(spec, index)
                pages, report = dirty_pages(
                    pages,
                    rate=spec.corrupt_fraction,
                    seed=self._rng.randrange(2**32),
                    kinds=spec.dirt_kinds or DIRT_KINDS,
                )
                self.dirt_reports.append(report)
                if report.total:
                    key = ("corpus", "dirt_pages")
                    self.injected[key] = (
                        self.injected.get(key, 0) + report.total
                    )
                continue
            if spec.kind != "corrupt_pages":
                continue
            if not self._matches(spec, index, "corpus", None):
                continue
            count = round(len(pages) * spec.corrupt_fraction)
            if count <= 0:
                continue
            self._record(spec, index)
            victims.update(
                self._rng.sample(range(len(pages)), min(count, len(pages)))
            )
        for index in sorted(victims):
            page = pages[index]
            pages[index] = ProductPage(
                product_id=page.product_id,
                category=page.category,
                html=page.html[: len(page.html) // 3] + _GARBAGE,
                locale=page.locale,
            )
        if victims:
            self.injected[("corpus", "pages")] = len(victims)
        return pages

    def has_page_faults(self) -> bool:
        """Whether any spec corrupts corpus pages before tokenization.

        The streamed bootstrap uses this to decide two things: whether
        shard workers must run the corruption hook, and whether the
        prep cache must be bypassed (corrupted prep must never be
        recorded as clean, nor be masked by a clean cached artifact).
        """
        return any(
            spec.stage == "corpus"
            and spec.kind in ("corrupt_pages", "dirt")
            for spec in self.specs
        )

    def corrupt_shard_pages(
        self, pages: Sequence[ProductPage], shard_index: int
    ) -> tuple[list[ProductPage], dict[tuple[str, str], int], int]:
        """Shard-local page corruption for streamed prep workers.

        Workers hold pickled plan *copies*, and one worker may process
        many shards, so the shared RNG / ``times`` bookkeeping of
        :meth:`corrupt_pages` cannot coordinate decisions across
        processes. Instead every decision flows from a derived RNG
        seeded by ``(plan seed, shard index)``: deterministic for any
        worker count and chunking, at the cost of a corruption pattern
        that differs from (but is statistically equivalent to) the
        monolithic one and is evaluated once per shard — ``times`` is
        interpreted per shard, not globally.

        Returns ``(pages, injected, corrupted)``: the (possibly grown)
        page list, the per-spec injection counts in
        :attr:`injected`-key form, and the number of pages whose html
        changed or were added — the caller (the parent process) folds
        both back via :meth:`absorb_injected` and the
        ``pages_corrupted`` trace counter.
        """
        pages = list(pages)
        originals = list(pages)
        injected: dict[tuple[str, str], int] = {}
        victims: set[int] = set()
        rng = random.Random(repr((self.seed, "shard_prep", shard_index)))
        for spec in self.specs:
            if spec.stage != "corpus":
                continue
            if spec.kind == "dirt":
                if (
                    spec.probability < 1.0
                    and rng.random() >= spec.probability
                ):
                    continue
                from ..corpus.dirt import DIRT_KINDS, dirty_pages

                pages, report = dirty_pages(
                    pages,
                    rate=spec.corrupt_fraction,
                    seed=rng.randrange(2**32),
                    kinds=spec.dirt_kinds or DIRT_KINDS,
                )
                if report.total:
                    key = ("corpus", "dirt_pages")
                    injected[key] = injected.get(key, 0) + report.total
                continue
            if spec.kind != "corrupt_pages":
                continue
            if spec.probability < 1.0 and rng.random() >= spec.probability:
                continue
            count = round(len(pages) * spec.corrupt_fraction)
            if count <= 0:
                continue
            victims.update(
                rng.sample(range(len(pages)), min(count, len(pages)))
            )
        for index in sorted(victims):
            page = pages[index]
            pages[index] = ProductPage(
                product_id=page.product_id,
                category=page.category,
                html=page.html[: len(page.html) // 3] + _GARBAGE,
                locale=page.locale,
            )
        if victims:
            key = ("corpus", "pages")
            injected[key] = injected.get(key, 0) + len(victims)
        corrupted = sum(
            1
            for before, after in zip(originals, pages)
            if before.html != after.html
        )
        corrupted += max(len(pages) - len(originals), 0)
        return pages, injected, corrupted

    def absorb_injected(
        self, counts: dict[tuple[str, str], int]
    ) -> None:
        """Fold injection counts from a worker's plan copy into this one.

        Worker processes mutate pickled copies; their tallies die with
        the process unless the parent absorbs them, so chaos tests can
        keep asserting against the one plan they constructed.
        """
        if not counts:
            return
        with self._lock:
            for key, value in counts.items():
                key = tuple(key)
                self.injected[key] = self.injected.get(key, 0) + value

    @property
    def total_injected(self) -> int:
        """Total faults injected so far, across all specs."""
        return sum(self.injected.values())

    # Plans ride RunnerJobs across process boundaries; the lock is
    # per-process state and is rebuilt on unpickle.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(specs={len(self.specs)}, seed={self.seed}, "
            f"injected={self.total_injected})"
        )
