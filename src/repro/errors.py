"""Exception hierarchy for the PAE reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the pipeline can catch a single base class. Subclasses
are grouped by subsystem; they carry plain messages and, where useful,
structured context attributes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class HtmlParseError(ReproError):
    """The HTML substrate could not parse a document.

    The lenient parser only raises this for internal invariant violations;
    malformed markup is normally recovered from silently, as real product
    pages are rarely well-formed.
    """


class TokenizationError(ReproError):
    """A locale tokenizer was asked to process unsupported input."""


class UnknownLocaleError(ConfigError):
    """A locale name has no registered tokenizer/PoS tagger."""

    def __init__(self, locale: str, known: tuple[str, ...]):
        self.locale = locale
        self.known = known
        super().__init__(
            f"unknown locale {locale!r}; registered locales: {', '.join(known)}"
        )


class SchemaError(ConfigError):
    """A category schema is internally inconsistent."""


class ModelError(ReproError):
    """Base class for machine-learning model failures."""


class NotFittedError(ModelError):
    """A model was asked to predict before being trained."""

    def __init__(self, model_name: str):
        self.model_name = model_name
        super().__init__(f"{model_name} must be trained before prediction")


class TrainingError(ModelError):
    """Model training failed or was given unusable data."""


class EmbeddingError(ReproError):
    """The word2vec subsystem was misused (e.g. empty corpus)."""


class EvaluationError(ReproError):
    """An evaluation was requested against an incompatible truth sample."""


class ExperimentError(ReproError):
    """An experiment runner was configured inconsistently."""
