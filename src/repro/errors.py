"""Exception hierarchy for the PAE reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the pipeline can catch a single base class. Subclasses
are grouped by subsystem; they carry plain messages and, where useful,
structured context attributes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class HtmlParseError(ReproError):
    """The HTML substrate could not parse a document.

    The lenient parser only raises this for internal invariant violations;
    malformed markup is normally recovered from silently, as real product
    pages are rarely well-formed.
    """


class HtmlLimitError(HtmlParseError):
    """A document blew one of the parser's hard resource bounds.

    Attributes:
        limit: the bound that was exceeded (``"input_chars"``,
            ``"open_depth"`` or ``"parse_seconds"``).
        value: the observed size/depth/duration.
        maximum: the configured bound.
    """

    def __init__(self, limit: str, value: float, maximum: float):
        self.limit = limit
        self.value = value
        self.maximum = maximum
        super().__init__(
            f"document exceeds {limit} bound: {value:g} > {maximum:g}"
        )


class DatasetError(ReproError):
    """A serialized dataset row could not be decoded.

    Attributes:
        path: the file the row came from.
        line: 1-based line number of the offending row (None for
            file-level problems).
    """

    def __init__(self, message: str, path: str, line: int | None = None):
        self.path = path
        self.line = line
        where = path if line is None else f"{path}:{line}"
        super().__init__(f"{message} [{where}]")


class PageQuarantinedError(ReproError):
    """A page failed the ingest gate under the ``strict`` policy.

    Attributes:
        page_id: product id of the failing page.
        check: the gate check that rejected it.
    """

    def __init__(self, page_id: str, check: str, detail: str):
        self.page_id = page_id
        self.check = check
        self.detail = detail
        super().__init__(
            f"page {page_id!r} failed ingest check {check!r}: {detail}"
        )


class TokenizationError(ReproError):
    """A locale tokenizer was asked to process unsupported input."""


class UnknownLocaleError(ConfigError):
    """A locale name has no registered tokenizer/PoS tagger."""

    def __init__(self, locale: str, known: tuple[str, ...]):
        self.locale = locale
        self.known = known
        super().__init__(
            f"unknown locale {locale!r}; registered locales: {', '.join(known)}"
        )


class SchemaError(ConfigError):
    """A category schema is internally inconsistent."""


class ModelError(ReproError):
    """Base class for machine-learning model failures."""


class NotFittedError(ModelError):
    """A model was asked to predict before being trained."""

    def __init__(self, model_name: str):
        self.model_name = model_name
        super().__init__(f"{model_name} must be trained before prediction")


class TrainingError(ModelError):
    """Model training failed or was given unusable data."""


class EmbeddingError(ReproError):
    """The word2vec subsystem was misused (e.g. empty corpus)."""


class CheckpointError(ReproError):
    """A checkpoint directory is missing, corrupt, or from another run.

    Raised when resuming from snapshots that fail integrity checks
    (truncated/garbled JSON, checksum mismatch) or whose fingerprint
    does not match the pages/config being resumed.
    """


class StorageError(ReproError):
    """A durable write hit an environment fault (disk full, I/O error).

    Raised by :mod:`repro.runtime.storage` when an atomic write fails
    with a *classified* environment errno (``ENOSPC``, ``EDQUOT``,
    ``EIO``, ``EROFS``). Callers that can live without the artifact
    (prep cache, checkpoints) catch this and degrade with a counted
    warning; anything else propagates as the original ``OSError``.

    Attributes:
        op: logical write operation (``"prep_cache_write"``,
            ``"checkpoint_write"``, …) — also the fault-injection
            stage name.
        path: destination path of the failed write.
        errno: the classified errno value.
    """

    def __init__(self, op: str, path: str, errno_value: int, detail: str):
        self.op = op
        self.path = path
        self.errno = errno_value
        super().__init__(f"storage failure during {op} at {path}: {detail}")


class PoisonedShardError(ReproError):
    """A shard exhausted its retry budget in the worker pool.

    Only raised under the ``strict`` ingest policy; the default
    policies quarantine the shard as ``check="poisoned_shard"`` and
    complete the run on the survivors.

    Attributes:
        stage: pool stage the shard kept failing in (``"shard_prep"``
            or ``"shard_tag"``).
        shard_index: index of the poisoned shard.
        attempts: how many times it was tried.
    """

    def __init__(
        self, stage: str, shard_index: int, attempts: int, detail: str
    ):
        self.stage = stage
        self.shard_index = shard_index
        self.attempts = attempts
        super().__init__(
            f"shard {shard_index} poisoned after {attempts} attempts "
            f"in {stage}: {detail}"
        )


class JobTimeoutError(ReproError):
    """A runner job exceeded its wall-clock budget.

    Attributes:
        job_name: the job that blew its deadline.
        budget_seconds: the configured per-job budget.
    """

    def __init__(self, job_name: str, budget_seconds: float):
        self.job_name = job_name
        self.budget_seconds = budget_seconds
        super().__init__(
            f"job {job_name!r} exceeded its {budget_seconds:g}s "
            "wall-clock budget"
        )


class WorkerDeathError(ReproError):
    """A serving worker died mid-request (real or injected).

    The serve path converts this into a structured per-request error
    and a circuit-breaker failure — never a hung socket or a crashed
    daemon.

    Attributes:
        stage: serve stage the worker died in (``"serve_tag"``, …).
    """

    def __init__(self, stage: str, message: str = "worker died"):
        self.stage = stage
        super().__init__(f"{message} [{stage}]")


class FaultInjectionError(ReproError):
    """An exception deliberately raised by the fault-injection harness.

    Attributes:
        stage: pipeline stage the fault fired at.
        iteration: bootstrap cycle (None for seed-phase stages).
    """

    def __init__(
        self,
        stage: str,
        iteration: int | None = None,
        message: str = "injected fault",
    ):
        self.stage = stage
        self.iteration = iteration
        where = stage if iteration is None else f"{stage}@{iteration}"
        super().__init__(f"{message} [{where}]")


class EvaluationError(ReproError):
    """An evaluation was requested against an incompatible truth sample."""


class ExperimentError(ReproError):
    """An experiment runner was configured inconsistently."""
