"""Core value types shared across the PAE pipeline.

The pipeline's unit of discourse follows the paper's Definition 3.1:

* an *attribute* is a binary relation between products and values;
* an :class:`AttributeValuePair` states that some attribute admits some
  value (``<color, pink>``);
* a :class:`Triple` attaches a pair to a concrete product
  (``<handbag_287, color, pink>``).

Sentences flow through the system as :class:`Token` sequences produced by
the NLP substrate, and taggers exchange :class:`TaggedSentence` objects
whose label sequences use the BIO scheme from :mod:`repro.nlp.bio`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class Token:
    """A single token with its part-of-speech tag.

    Attributes:
        text: surface form, exactly as found in the source text.
        pos: part-of-speech tag from the locale tagger (e.g. ``"NN"``,
            ``"NUM"``, ``"SYM"``).
    """

    text: str
    pos: str

    def is_numeric(self) -> bool:
        """Return True when the token is a bare number."""
        return self.pos == "NUM"

    def is_symbol(self) -> bool:
        """Return True when the token is punctuation or another symbol."""
        return self.pos == "SYM"


@dataclass(frozen=True, slots=True)
class AttributeValuePair:
    """A ``<attribute, value>`` association, product-independent."""

    attribute: str
    value: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.attribute}, {self.value}>"


@dataclass(frozen=True, slots=True)
class Triple:
    """A ``<product, attribute, value>`` extraction result."""

    product_id: str
    attribute: str
    value: str

    @property
    def pair(self) -> AttributeValuePair:
        """The product-independent pair carried by this triple."""
        return AttributeValuePair(self.attribute, self.value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.product_id}, {self.attribute}, {self.value}>"


@dataclass(frozen=True, slots=True)
class Sentence:
    """A tokenized sentence tied back to its source product page.

    Attributes:
        product_id: page the sentence came from.
        index: 0-based sentence number within the page, used as a CRF
            feature (the paper's "sentence number" feature).
        tokens: the token sequence.
    """

    product_id: str
    index: int
    tokens: tuple[Token, ...]

    def texts(self) -> tuple[str, ...]:
        """Surface forms of all tokens."""
        return tuple(token.text for token in self.tokens)

    def pos_tags(self) -> tuple[str, ...]:
        """PoS tags of all tokens."""
        return tuple(token.pos for token in self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self) -> Iterator[Token]:
        return iter(self.tokens)


@dataclass(frozen=True, slots=True)
class TaggedSentence:
    """A sentence plus one BIO label per token."""

    sentence: Sentence
    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.sentence):
            raise ValueError(
                f"label count {len(self.labels)} does not match "
                f"token count {len(self.sentence)}"
            )

    @property
    def product_id(self) -> str:
        return self.sentence.product_id

    def with_labels(self, labels: Sequence[str]) -> "TaggedSentence":
        """Return a copy carrying ``labels`` instead of the current ones."""
        return replace(self, labels=tuple(labels))

    def __len__(self) -> int:
        return len(self.sentence)


@dataclass(frozen=True, slots=True)
class Extraction:
    """A value occurrence located in a concrete sentence.

    Unlike :class:`Triple`, an extraction keeps its provenance (sentence
    and token span), which the cleaning modules need for veto rules such
    as the markup check.
    """

    product_id: str
    attribute: str
    value: str
    sentence_index: int
    start: int
    end: int  # exclusive token index

    @property
    def triple(self) -> Triple:
        """Drop provenance and return the bare triple."""
        return Triple(self.product_id, self.attribute, self.value)

    @property
    def token_count(self) -> int:
        return self.end - self.start


def unique_triples(extractions: Iterable[Extraction]) -> set[Triple]:
    """Collapse extractions to their distinct triples."""
    return {extraction.triple for extraction in extractions}


@dataclass(frozen=True, slots=True)
class ProductPage:
    """A product page as consumed by the pipeline.

    Attributes:
        product_id: unique page/product identifier.
        category: category name the page belongs to.
        html: raw HTML of the page (title, description, optional tables).
        locale: locale code of the page text (e.g. ``"ja"``, ``"de"``).
    """

    product_id: str
    category: str
    html: str
    locale: str


@dataclass(frozen=True, slots=True)
class SeedEntry:
    """One attribute-value pair of the initial seed, with frequency info.

    The pre-processor builds seeds from dictionary tables; ``support`` is
    the number of pages whose table stated this exact pair, which the
    value-cleaning and diversification modules use for ranking.
    """

    pair: AttributeValuePair
    support: int = 1

    @property
    def attribute(self) -> str:
        return self.pair.attribute

    @property
    def value(self) -> str:
        return self.pair.value


@dataclass(slots=True)
class Dataset:
    """A labelled dataset exchanged between bootstrap iterations.

    Attributes:
        tagged: sentences with BIO labels (training material).
        attributes: attribute names the labels may mention.
    """

    tagged: list[TaggedSentence] = field(default_factory=list)
    attributes: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.tagged)

    def labelled_token_count(self) -> int:
        """Number of tokens carrying a non-O label, across all sentences."""
        return sum(
            1
            for tagged in self.tagged
            for label in tagged.labels
            if label != "O"
        )
