"""Vocabulary: bidirectional token/id mapping with frequency counts.

Used by the word2vec trainer and the BiLSTM embedding layers. Index 0 is
always the unknown token so models can embed out-of-vocabulary words.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

UNKNOWN = "<unk>"


class Vocabulary:
    """A frozen-on-demand token inventory.

    Build by calling :meth:`add` (or :meth:`add_all`) and then
    :meth:`freeze`. Lookup of unseen tokens returns the unknown id.
    """

    def __init__(self, min_count: int = 1):
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self._min_count = min_count
        self._counts: Counter[str] = Counter()
        self._token_to_id: dict[str, int] | None = None
        self._id_to_token: list[str] = []

    def add(self, token: str) -> None:
        """Count one occurrence of ``token``. Only valid before freeze."""
        if self._token_to_id is not None:
            raise RuntimeError("vocabulary already frozen")
        self._counts[token] += 1

    def add_all(self, tokens: Iterable[str]) -> None:
        """Count many tokens at once."""
        if self._token_to_id is not None:
            raise RuntimeError("vocabulary already frozen")
        self._counts.update(tokens)

    def freeze(self) -> "Vocabulary":
        """Assign ids (frequency-descending, ties lexicographic).

        Returns self for chaining. Idempotent.
        """
        if self._token_to_id is None:
            kept = [
                token
                for token, count in self._counts.items()
                if count >= self._min_count
            ]
            kept.sort(key=lambda token: (-self._counts[token], token))
            self._id_to_token = [UNKNOWN] + kept
            self._token_to_id = {
                token: index for index, token in enumerate(self._id_to_token)
            }
        return self

    @classmethod
    def from_ordered_tokens(cls, tokens: list[str]) -> "Vocabulary":
        """Rebuild a frozen vocabulary from its id-ordered token list.

        Used by model persistence; ``tokens[0]`` must be the unknown
        token. Counts are not restored (they are training-time state).
        """
        if not tokens or tokens[0] != UNKNOWN:
            raise ValueError(
                f"ordered token list must start with {UNKNOWN!r}"
            )
        vocabulary = cls()
        vocabulary._id_to_token = list(tokens)
        vocabulary._token_to_id = {
            token: index for index, token in enumerate(tokens)
        }
        return vocabulary

    @property
    def frozen(self) -> bool:
        return self._token_to_id is not None

    def id_of(self, token: str) -> int:
        """Id of ``token``, or the unknown id (0) if absent."""
        if self._token_to_id is None:
            raise RuntimeError("vocabulary must be frozen before lookup")
        return self._token_to_id.get(token, 0)

    def token_of(self, index: int) -> str:
        """Token with id ``index``."""
        if self._token_to_id is None:
            raise RuntimeError("vocabulary must be frozen before lookup")
        return self._id_to_token[index]

    def count_of(self, token: str) -> int:
        """Raw occurrence count (0 for unseen tokens)."""
        return self._counts.get(token, 0)

    def __contains__(self, token: str) -> bool:
        if self._token_to_id is None:
            raise RuntimeError("vocabulary must be frozen before lookup")
        return token in self._token_to_id

    def __len__(self) -> int:
        if self._token_to_id is None:
            raise RuntimeError("vocabulary must be frozen before lookup")
        return len(self._id_to_token)

    def __iter__(self) -> Iterator[str]:
        if self._token_to_id is None:
            raise RuntimeError("vocabulary must be frozen before lookup")
        return iter(self._id_to_token)
