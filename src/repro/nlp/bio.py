"""BIO label scheme: encoding spans, decoding labels, validation.

Labels are ``"O"``, ``"B-<attribute>"`` and ``"I-<attribute>"``. The
taggers are free-running classifiers, so their output may violate the
scheme (an ``I-`` with no preceding ``B-``); :func:`repair_bio` applies
the conventional fix of promoting such tokens to ``B-``.
"""

from __future__ import annotations

from typing import Sequence

OUTSIDE = "O"


def bio_label(prefix: str, attribute: str) -> str:
    """Compose a BIO label, e.g. ``bio_label("B", "color") == "B-color"``."""
    if prefix not in ("B", "I"):
        raise ValueError(f"BIO prefix must be 'B' or 'I', got {prefix!r}")
    return f"{prefix}-{attribute}"


def split_label(label: str) -> tuple[str, str | None]:
    """Split a label into ``(prefix, attribute)``; O yields ``("O", None)``."""
    if label == OUTSIDE:
        return OUTSIDE, None
    prefix, _, attribute = label.partition("-")
    if prefix not in ("B", "I") or not attribute:
        raise ValueError(f"malformed BIO label: {label!r}")
    return prefix, attribute


def labels_for_attributes(attributes: Sequence[str]) -> list[str]:
    """The full label inventory for an attribute set (O first)."""
    labels = [OUTSIDE]
    for attribute in attributes:
        labels.append(bio_label("B", attribute))
        labels.append(bio_label("I", attribute))
    return labels


def encode_bio(
    length: int,
    spans: Sequence[tuple[int, int, str]],
) -> list[str]:
    """Turn ``(start, end, attribute)`` spans into a BIO label sequence.

    Overlapping spans are resolved first-come-first-served: a span is
    dropped if any of its tokens is already labelled.

    Args:
        length: sentence length in tokens.
        spans: half-open token spans with their attribute name.

    Returns:
        One label per token.
    """
    labels = [OUTSIDE] * length
    for start, end, attribute in spans:
        if start < 0 or end > length or start >= end:
            raise ValueError(
                f"span ({start}, {end}) out of range for length {length}"
            )
        if any(labels[i] != OUTSIDE for i in range(start, end)):
            continue
        labels[start] = bio_label("B", attribute)
        for i in range(start + 1, end):
            labels[i] = bio_label("I", attribute)
    return labels


def decode_bio(labels: Sequence[str]) -> list[tuple[int, int, str]]:
    """Extract ``(start, end, attribute)`` spans from a label sequence.

    Tolerant of scheme violations: an ``I-`` starting a new attribute (or
    following O) opens a fresh span, mirroring :func:`repair_bio`.
    """
    spans: list[tuple[int, int, str]] = []
    start: int | None = None
    current: str | None = None
    for index, label in enumerate(labels):
        prefix, attribute = split_label(label)
        if prefix == "B" or (prefix == "I" and attribute != current):
            if start is not None:
                spans.append((start, index, current))  # type: ignore[arg-type]
            start, current = index, attribute
        elif prefix == OUTSIDE:
            if start is not None:
                spans.append((start, index, current))  # type: ignore[arg-type]
            start, current = None, None
        # prefix == "I" and attribute == current: span continues.
    if start is not None:
        spans.append((start, len(labels), current))  # type: ignore[arg-type]
    return spans


def is_valid_bio(labels: Sequence[str]) -> bool:
    """True when every ``I-`` continues a same-attribute ``B-``/``I-``."""
    previous_attribute: str | None = None
    for label in labels:
        prefix, attribute = split_label(label)
        if prefix == "I" and attribute != previous_attribute:
            return False
        previous_attribute = attribute if prefix != OUTSIDE else None
    return True


def repair_bio(labels: Sequence[str]) -> list[str]:
    """Promote orphan ``I-`` labels to ``B-`` so the sequence is valid."""
    repaired: list[str] = []
    previous_attribute: str | None = None
    for label in labels:
        prefix, attribute = split_label(label)
        if prefix == "I" and attribute != previous_attribute:
            label = bio_label("B", attribute)  # type: ignore[arg-type]
        repaired.append(label)
        previous_attribute = attribute if prefix != OUTSIDE else None
    return repaired
