"""Deterministic rule-based part-of-speech tagging.

The tagset is deliberately small — the downstream consumers (CRF feature
templates and the value-diversification module's PoS-sequence shapes)
only need coarse distinctions:

====  =========================================================
tag   meaning
====  =========================================================
NUM   bare number (``5``; in the de locale also ``1,5``)
UNIT  measurement unit (``kg``, ``gaso``)
FW    function word (particles, articles)
SYM   punctuation / other symbol
AN    alphanumeric mix, e.g. model codes (``X100``)
NN    everything else (nouns and content words)
====  =========================================================
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

_NUM_RE = re.compile(r"^[0-9]+$")
_DECIMAL_RE = re.compile(r"^[0-9]+(?:[.,][0-9]+)+$")
_ALNUM_RE = re.compile(r"^[^\W\d_]+[0-9]+$", re.UNICODE)
_WORD_RE = re.compile(r"^[^\W\d_]+$", re.UNICODE)


class PosTagger:
    """Lexicon+regex PoS tagger.

    Args:
        units: lowercase unit lexicon for the locale.
        function_words: lowercase function-word lexicon.
        single_token_decimals: whether the locale's tokenizer emits
            decimals as one token (de) or split (ja); controls whether
            the decimal regex can ever match.
    """

    def __init__(
        self,
        units: Iterable[str],
        function_words: Iterable[str],
        single_token_decimals: bool,
    ):
        self._units = frozenset(unit.lower() for unit in units)
        self._function_words = frozenset(
            word.lower() for word in function_words
        )
        self._single_token_decimals = single_token_decimals

    def tag_one(self, surface: str) -> str:
        """Tag a single surface form."""
        lowered = surface.lower()
        if _NUM_RE.match(surface):
            return "NUM"
        if self._single_token_decimals and _DECIMAL_RE.match(surface):
            return "NUM"
        if lowered in self._units:
            return "UNIT"
        if lowered in self._function_words:
            return "FW"
        if _WORD_RE.match(surface):
            return "NN"
        if _ALNUM_RE.match(surface):
            return "AN"
        if len(surface) == 1 and not surface.isalnum():
            return "SYM"
        # Mixed leftovers (digits+symbols, symbol clusters).
        if any(char.isalpha() for char in surface):
            return "AN"
        return "SYM"

    def tag(self, surfaces: Sequence[str]) -> list[str]:
        """Tag a token sequence (context-free, so order is irrelevant)."""
        return [self.tag_one(surface) for surface in surfaces]
