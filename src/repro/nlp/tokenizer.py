"""Locale-aware tokenizers.

A tokenizer turns raw text into surface tokens; the PoS tagger
(:mod:`repro.nlp.pos`) then annotates them. Both are bundled per locale
in :class:`LocaleNlp`, retrieved through :func:`get_locale`.

The ``ja`` tokenizer reproduces the paper's footnote 3 behaviour: the
Japanese PoS tokenizer splits ``1.5`` into three tokens (``1``, ``.``,
``5``), which is exactly what makes un-diversified seeds fail on decimal
weights (Section VIII-A). The ``de`` tokenizer keeps ``1.5`` (and the
comma form ``1,5``) as one numeric token.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..errors import UnknownLocaleError
from ..types import Token
from .pos import PosTagger

#: Entry bound for the per-bundle sentence memo in
#: :meth:`LocaleNlp.tokens`. Marketplace pages are template-heavy —
#: identical sentences ("Free shipping nationwide.") recur across many
#: pages — so memoizing the tokenize+tag result by sentence text is a
#: large win on the prep hot path. The memo is cleared wholesale when
#: full (deterministic, and recurring template sentences repopulate it
#: immediately), keeping memory bounded without LRU bookkeeping.
_TOKENS_MEMO_MAX = 50_000


class Tokenizer:
    """Regex tokenizer parameterized by a token pattern.

    Args:
        pattern: compiled regex whose non-overlapping matches are the
            tokens, evaluated left-to-right.
        name: human-readable tokenizer name.
    """

    def __init__(self, pattern: re.Pattern[str], name: str):
        self._pattern = pattern
        self.name = name

    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into surface tokens."""
        return self._pattern.findall(text)

    def tokenize_with_offsets(
        self, text: str
    ) -> list[tuple[str, int, int]]:
        """Tokenize keeping character provenance.

        Returns:
            ``(token, start, end)`` triples with half-open character
            spans into ``text`` — what a UI needs to highlight an
            extraction in the original page.
        """
        return [
            (match.group(0), match.start(), match.end())
            for match in self._pattern.finditer(text)
        ]


# ja: numbers never absorb separators -> "1.5" lexes as 1 / . / 5.
_JA_TOKEN_RE = re.compile(
    r"[A-Za-zÀ-ɏ぀-ヿ一-鿿]+[0-9]*"  # words, e.g. X100
    r"|[0-9]+"                                                  # digit runs
    r"|[^\sA-Za-z0-9À-ɏ぀-ヿ一-鿿]"   # one symbol
)

# de: decimal/thousand-separated numbers stay one token.
_DE_TOKEN_RE = re.compile(
    r"[0-9]+(?:[.,][0-9]+)*"
    r"|[A-Za-zÀ-ɏ]+(?:-[A-Za-zÀ-ɏ]+)*[0-9]*"
    r"|[^\sA-Za-z0-9À-ɏ]"
)


@dataclass(frozen=True)
class LocaleNlp:
    """The language-dependent bundle: tokenizer + PoS tagger.

    Attributes:
        locale: locale code (``"ja"``, ``"de"``).
        tokenizer: surface tokenizer.
        pos_tagger: deterministic PoS tagger for the locale.
        sentence_terminators: characters ending a sentence in this locale.
    """

    locale: str
    tokenizer: Tokenizer
    pos_tagger: PosTagger
    sentence_terminators: frozenset[str]
    _tokens_memo: dict[str, tuple[Token, ...]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def tokens(self, text: str) -> tuple[Token, ...]:
        """Tokenize and PoS-tag ``text`` in one step.

        Tokenization and tagging are pure functions of ``text``, so the
        result is memoized per bundle (bounded at ``_TOKENS_MEMO_MAX``
        sentences): template sentences recurring across pages pay the
        regex and tagger cost once per process. Surfaces and tags are
        interned so the memo — and every Sentence built from it —
        shares one string object per distinct surface form.
        """
        memo = self._tokens_memo
        cached = memo.get(text)
        if cached is not None:
            return cached
        surfaces = self.tokenizer.tokenize(text)
        tags = self.pos_tagger.tag(surfaces)
        result = tuple(
            Token(sys.intern(surface), sys.intern(tag))
            for surface, tag in zip(surfaces, tags)
        )
        if len(memo) >= _TOKENS_MEMO_MAX:
            memo.clear()
        memo[text] = result
        return result


_JA_UNITS = frozenset(
    {
        "kg", "g", "mg", "cm", "mm", "m", "ml", "l", "w", "v", "mah",
        "gaso", "byo", "mai", "hon", "dai", "inchi", "waza",
    }
)
_JA_FUNCTION_WORDS = frozenset(
    {
        "no", "wa", "ga", "de", "ni", "wo", "to", "desu", "shimasu",
        "kono", "sono", "arimasu", "dekimasu", "yori", "made", "kara",
    }
)
_DE_UNITS = frozenset(
    {
        "kg", "g", "mg", "cm", "mm", "m", "ml", "l", "w", "v", "mah",
        "mp", "sek", "liter", "watt", "stück", "stueck", "bar",
    }
)
_DE_FUNCTION_WORDS = frozenset(
    {
        "der", "die", "das", "ein", "eine", "mit", "und", "für", "aus",
        "von", "ist", "hat", "bei", "im", "am", "nicht", "dieser",
        "dieses", "auf", "zu",
    }
)


def _build_registry() -> dict[str, LocaleNlp]:
    ja = LocaleNlp(
        locale="ja",
        tokenizer=Tokenizer(_JA_TOKEN_RE, "ja-regex"),
        pos_tagger=PosTagger(
            units=_JA_UNITS,
            function_words=_JA_FUNCTION_WORDS,
            single_token_decimals=False,
        ),
        # "." is NOT a terminator: it is the decimal point that the ja
        # tokenizer splits into its own token (paper footnote 3).
        sentence_terminators=frozenset({"。", "!", "?", "！", "？"}),
    )
    de = LocaleNlp(
        locale="de",
        tokenizer=Tokenizer(_DE_TOKEN_RE, "de-regex"),
        pos_tagger=PosTagger(
            units=_DE_UNITS,
            function_words=_DE_FUNCTION_WORDS,
            single_token_decimals=True,
        ),
        sentence_terminators=frozenset({".", "!", "?"}),
    )
    return {"ja": ja, "de": de}


_REGISTRY = _build_registry()


def available_locales() -> tuple[str, ...]:
    """Locale codes with a registered NLP bundle."""
    return tuple(sorted(_REGISTRY))


def clear_sentence_memos() -> int:
    """Drop every registered bundle's sentence-tokenization memo.

    The memo is a pure cache (missing entries are recomputed), so
    clearing it is output-invisible — it is the memory governor's
    cheapest relief lever under RSS pressure. Returns the number of
    entries released.
    """
    released = 0
    for bundle in _REGISTRY.values():
        released += len(bundle._tokens_memo)
        bundle._tokens_memo.clear()
    return released


def get_locale(locale: str) -> LocaleNlp:
    """Return the NLP bundle for ``locale``.

    Raises:
        UnknownLocaleError: if no bundle is registered for the code.
    """
    try:
        return _REGISTRY[locale]
    except KeyError:
        raise UnknownLocaleError(locale, available_locales()) from None


def register_locale(bundle: LocaleNlp) -> None:
    """Register a custom locale bundle (ports to new languages).

    The paper's architecture is language-independent except for this
    plug-in point; downstream code picks the bundle by page locale.
    """
    _REGISTRY[bundle.locale] = bundle
