"""Sentence splitting over extracted text blocks.

The pipeline tokenizes "all the sentences in the product title and
descriptions" (Section V-A). Titles arrive as their own block; free-text
blocks are split on the locale's sentence terminators. The terminator
symbol is kept as the final token of its sentence, matching common
tokenizer behaviour.
"""

from __future__ import annotations

from typing import Iterable

from ..types import Sentence
from .tokenizer import LocaleNlp


def split_block(block: str, terminators: frozenset[str]) -> list[str]:
    """Split one text block into sentence strings.

    Args:
        block: whitespace-normalized text.
        terminators: characters that end a sentence.

    Returns:
        Non-empty sentence strings; the terminator stays attached.
    """
    sentences: list[str] = []
    start = 0
    for index, char in enumerate(block):
        if char in terminators:
            piece = block[start:index + 1].strip()
            if piece:
                sentences.append(piece)
            start = index + 1
    tail = block[start:].strip()
    if tail:
        sentences.append(tail)
    return sentences


def split_sentences(
    product_id: str,
    blocks: Iterable[str],
    nlp: LocaleNlp,
) -> list[Sentence]:
    """Tokenize the text blocks of a page into :class:`Sentence` objects.

    Sentence indices are assigned page-wide in reading order; they feed
    the CRF's "sentence number" feature.
    """
    sentences: list[Sentence] = []
    index = 0
    for block in blocks:
        for piece in split_block(block, nlp.sentence_terminators):
            tokens = nlp.tokens(piece)
            if not tokens:
                continue
            sentences.append(Sentence(product_id, index, tokens))
            index += 1
    return sentences
