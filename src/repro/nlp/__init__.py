"""NLP substrate: tokenization, PoS tagging, sentences, BIO labels.

The paper treats the tokenizer and part-of-speech tagger as the only
language-dependent plug-ins of the whole architecture. This package
mirrors that: :func:`get_locale` returns a :class:`LocaleNlp` bundle for
a locale code, and everything downstream consumes only the produced
:class:`~repro.types.Token` sequences.

Two locales ship with the reproduction:

* ``"ja"`` — stands in for MeCab-tokenized Japanese. Reproduces the
  paper's footnote 3: numbers are split at symbols, so ``1.5`` becomes
  the three tokens ``1``, ``.``, ``5``.
* ``"de"`` — stands in for a German tokenizer; decimal numbers stay a
  single token.
"""

from .bio import (
    bio_label,
    decode_bio,
    encode_bio,
    is_valid_bio,
    repair_bio,
)
from .pos import PosTagger
from .sentences import split_sentences
from .tokenizer import (
    LocaleNlp,
    Tokenizer,
    available_locales,
    get_locale,
    register_locale,
)
from .vocab import Vocabulary

__all__ = [
    "LocaleNlp",
    "PosTagger",
    "Tokenizer",
    "Vocabulary",
    "available_locales",
    "bio_label",
    "decode_bio",
    "encode_bio",
    "get_locale",
    "is_valid_bio",
    "register_locale",
    "repair_bio",
    "split_sentences",
]
