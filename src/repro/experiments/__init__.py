"""Experiment runners: one per table/figure of the paper's evaluation.

Every runner is a pure function from an :class:`ExperimentSettings`
(scale, seeds) to a structured result object with a ``format()`` method
printing rows analogous to the paper's table/figure. Expensive
bootstrap runs are memoized process-wide in :mod:`common`, so benches
that share runs (Tables II and III; Figures 3 and 5) pay once.

Paper → module map (see DESIGN.md §3 for the full index):

====================  ==========================================
Table I               :mod:`table1`
Table II / III        :mod:`table2_3`
Table IV              :mod:`table4`
Figure 3              :mod:`figure3`
Figure 4 / 6          :mod:`figure4_6`
Figure 5              :mod:`figure5`
Figure 7 / 8          :mod:`figure7_8`
§VII-B/C German       :mod:`german`
§VIII-A div. study    :mod:`diversification`
§VIII-B cleaning      :mod:`cleaning_impact`
§VIII-C complex attrs :mod:`per_attribute`
§VIII-E heterogeneity :mod:`heterogeneous`
====================  ==========================================
"""

from .common import (
    CORE_CATEGORIES,
    ExperimentSettings,
    RunRequest,
    cached_dataset,
    cached_run,
    clear_cache,
    prefetch_runs,
)

__all__ = [
    "CORE_CATEGORIES",
    "ExperimentSettings",
    "RunRequest",
    "cached_dataset",
    "cached_run",
    "clear_cache",
    "prefetch_runs",
]
