"""§VIII-E — heterogeneous categories.

The paper: Baby Carriers alone reaches 85.15% precision, but one level
up the taxonomy, the heterogeneous Baby Goods (clothes, toys, carriers
mixed) drops to 63.16% — "a plethora of semantically different
attributes ... with often overlapping values, rendering the model
imprecise". We run the pipeline on ``baby_carriers`` and on the
``baby_goods`` union and report both.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation import coverage, precision
from ..evaluation.report import format_table
from .common import (
    ExperimentSettings,
    RunRequest,
    cached_run,
    cached_truth,
    crf_config,
    prefetch_runs,
)


@dataclass(frozen=True)
class HeterogeneousResult:
    homogeneous_precision: float
    heterogeneous_precision: float
    homogeneous_coverage: float
    heterogeneous_coverage: float

    def format(self) -> str:
        return format_table(
            ["category", "precision%", "coverage%"],
            [
                [
                    "baby_carriers (homogeneous)",
                    100.0 * self.homogeneous_precision,
                    100.0 * self.homogeneous_coverage,
                ],
                [
                    "baby_goods (heterogeneous)",
                    100.0 * self.heterogeneous_precision,
                    100.0 * self.heterogeneous_coverage,
                ],
            ],
            title="§VIII-E — homogeneity matters: precision one "
            "taxonomy level up",
        )


def run(settings: ExperimentSettings | None = None) -> HeterogeneousResult:
    """Reproduce the §VIII-E heterogeneity comparison."""
    settings = settings or ExperimentSettings()
    config = crf_config(settings.iterations, cleaning=True)
    prefetch_runs(
        [
            RunRequest(category, settings.products, settings.data_seed, config)
            for category in ("baby_carriers", "baby_goods")
        ]
    )
    measurements = {}
    for category in ("baby_carriers", "baby_goods"):
        truth = cached_truth(category, settings.products, settings.data_seed)
        result = cached_run(
            category, settings.products, settings.data_seed, config
        )
        measurements[category] = (
            precision(result.final_triples, truth).precision,
            coverage(result.final_triples, settings.products),
        )
    return HeterogeneousResult(
        homogeneous_precision=measurements["baby_carriers"][0],
        heterogeneous_precision=measurements["baby_goods"][0],
        homogeneous_coverage=measurements["baby_carriers"][1],
        heterogeneous_coverage=measurements["baby_goods"][1],
    )
