"""Table I — precision and coverage of the automatically obtained seed.

Columns per category: #Pairs, #Triples, Precision Pairs (structural
pair validity, the annotators' "valid association" judgement),
Precision Triples (against the truth sample) and Coverage Triples (the
share of the truth sample's correct triples the seed already finds).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.preprocess import (
    build_seed,
    build_training_material,
    discover_candidates,
)
from ..core.text import tokenize_pages
from ..evaluation import build_truth_sample, pair_precision, precision
from ..evaluation.metrics import triple_coverage
from ..evaluation.report import format_table
from ..runtime import parallel_map
from .common import CORE_CATEGORIES, ExperimentSettings, cached_dataset


@dataclass(frozen=True)
class SeedRow:
    """One category's seed statistics."""

    category: str
    n_pairs: int
    n_triples: int
    precision_pairs: float
    precision_triples: float
    coverage_triples: float


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[SeedRow, ...]

    def format(self) -> str:
        return format_table(
            [
                "category", "#pairs", "#triples", "prec.pairs%",
                "prec.triples%", "cov.triples%",
            ],
            [
                [
                    row.category,
                    row.n_pairs,
                    row.n_triples,
                    100.0 * row.precision_pairs,
                    100.0 * row.precision_triples,
                    100.0 * row.coverage_triples,
                ]
                for row in self.rows
            ],
            title="Table I — seed precision and coverage",
        )


def seed_row(category: str, settings: ExperimentSettings) -> SeedRow:
    """Compute the seed statistics of one category."""
    dataset = cached_dataset(category, settings.products, settings.data_seed)
    pages = list(dataset.product_pages)
    candidates = discover_candidates(pages)
    seed = build_seed(
        pages, dataset.query_log, candidates=candidates
    )
    material = build_training_material(
        tokenize_pages(pages), seed, candidates
    )
    triples = seed.table_triples | material.text_triples
    truth = build_truth_sample(dataset)
    return SeedRow(
        category=category,
        n_pairs=len(seed.pairs()),
        n_triples=len(triples),
        precision_pairs=pair_precision(
            seed.pairs(), dataset.pair_validator, dataset.alias_map
        ),
        precision_triples=precision(triples, truth).precision,
        coverage_triples=triple_coverage(triples, truth),
    )


def _seed_row_job(job: tuple[str, ExperimentSettings]) -> SeedRow:
    """Picklable single-argument adapter for :func:`parallel_map`."""
    category, settings = job
    return seed_row(category, settings)


def run(settings: ExperimentSettings | None = None) -> Table1Result:
    """Reproduce Table I over the eight core categories.

    Seed construction is embarrassingly parallel across categories;
    rows fan out over :func:`repro.runtime.parallel_map` (serial on a
    single CPU) and come back in category order.
    """
    settings = settings or ExperimentSettings()
    rows = parallel_map(
        _seed_row_job,
        [(category, settings) for category in CORE_CATEGORIES],
    )
    return Table1Result(tuple(rows))
