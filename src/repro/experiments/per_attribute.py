"""§VIII-C — precision per attribute for "complex" attributes.

The paper studies attributes harder than brand/color: Digital Cameras'
shutter speed (wildly varied composite formats), effective pixels
(confusable with total pixels) and weight (confusable with shipping
weights); Vacuum Cleaner's type, container type and power-supply type.
Reported precisions are high (87–100%) but coverage is small (~10%).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation import attribute_coverage, precision
from ..evaluation.report import format_table
from .common import (
    ExperimentSettings,
    RunRequest,
    cached_run,
    cached_truth,
    crf_config,
    prefetch_runs,
)

STUDIES = (
    ("digital_cameras", ("shatta supido", "yukogaso", "juryo")),
    ("vacuum_cleaner", ("taipu", "shujin hoshiki", "dengen hoshiki")),
)


@dataclass(frozen=True)
class AttributeRow:
    category: str
    attribute: str
    precision: float
    coverage: float
    n_triples: int


@dataclass(frozen=True)
class PerAttributeResult:
    rows: tuple[AttributeRow, ...]

    def format(self) -> str:
        return format_table(
            ["category", "attribute", "precision%", "coverage%", "#triples"],
            [
                [
                    row.category, row.attribute,
                    100.0 * row.precision, 100.0 * row.coverage,
                    row.n_triples,
                ]
                for row in self.rows
            ],
            title="§VIII-C — per-attribute precision for complex "
            "attributes (global CRF + cleaning)",
        )


def run(settings: ExperimentSettings | None = None) -> PerAttributeResult:
    """Reproduce the §VIII-C per-attribute study."""
    settings = settings or ExperimentSettings()
    config = crf_config(settings.iterations, cleaning=True)
    prefetch_runs(
        [
            RunRequest(category, settings.products, settings.data_seed, config)
            for category, _ in STUDIES
        ]
    )
    rows = []
    for category, attributes in STUDIES:
        truth = cached_truth(category, settings.products, settings.data_seed)
        result = cached_run(
            category, settings.products, settings.data_seed, config
        )
        canonical = truth.canonicalize_all(result.final_triples)
        coverage_map = attribute_coverage(
            result.final_triples, settings.products, truth.alias_map
        )
        for attribute in attributes:
            subset = {
                triple
                for triple in canonical
                if triple.attribute == attribute
            }
            rows.append(
                AttributeRow(
                    category=category,
                    attribute=attribute,
                    precision=(
                        precision(subset, truth).precision if subset else 0.0
                    ),
                    coverage=coverage_map.get(attribute, 0.0),
                    n_triples=len(subset),
                )
            )
    return PerAttributeResult(rows=tuple(rows))
