"""§VIII-B — the impact of cleaning.

Two measurements from the paper:

* the non-semantic veto rules "tend to discard 10% of the candidate
  triples in the first iteration" — we report the per-rule discard
  breakdown for each core category;
* the semantic-core size ``n`` barely matters: "having no restriction
  on n did not heavily reduce the precision of the system, 1% in the
  worst cases (Garden and Shoes)" — we sweep ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import PipelineConfig, SemanticConfig
from ..evaluation import precision
from ..evaluation.report import format_table
from .common import (
    CORE_CATEGORIES,
    ExperimentSettings,
    RunRequest,
    cached_run,
    cached_truth,
    crf_config,
    prefetch_runs,
)

SWEEP_CATEGORIES = ("garden", "shoes")
CORE_SIZES = (5, 10, 0)  # 0 = unrestricted


@dataclass(frozen=True)
class VetoRow:
    category: str
    candidates: int
    discard_rate: float
    symbol: int
    markup: int
    long: int
    unpopular: int


@dataclass(frozen=True)
class CleaningImpactResult:
    veto_rows: tuple[VetoRow, ...]
    core_sweep: dict[tuple[str, int], float]  # (category, n) -> precision

    def format(self) -> str:
        veto = format_table(
            [
                "category", "#candidates", "discard%", "symbol",
                "markup", "long", "unpopular",
            ],
            [
                [
                    row.category, row.candidates,
                    100.0 * row.discard_rate, row.symbol, row.markup,
                    row.long, row.unpopular,
                ]
                for row in self.veto_rows
            ],
            title="§VIII-B — veto-rule discards in the first iteration",
        )
        sweep = format_table(
            ["category"]
            + [f"n={n}" if n else "n=unrestricted" for n in CORE_SIZES],
            [
                [category]
                + [
                    100.0 * self.core_sweep[(category, n)]
                    for n in CORE_SIZES
                ]
                for category in SWEEP_CATEGORIES
            ],
            title="§VIII-B — semantic-core size sweep (final precision)",
        )
        return veto + "\n\n" + sweep


def run(settings: ExperimentSettings | None = None) -> CleaningImpactResult:
    """Reproduce the §VIII-B measurements."""
    settings = settings or ExperimentSettings()
    config = crf_config(settings.iterations, cleaning=True)
    prefetch_runs(
        [
            RunRequest(category, settings.products, settings.data_seed, config)
            for category in CORE_CATEGORIES
        ]
        + [
            RunRequest(
                category,
                settings.products,
                settings.data_seed,
                replace(config, semantic=SemanticConfig(core_size=n)),
            )
            for category in SWEEP_CATEGORIES
            for n in CORE_SIZES
        ]
    )

    veto_rows = []
    for category in CORE_CATEGORIES:
        result = cached_run(
            category, settings.products, settings.data_seed, config
        )
        stats = result.iterations[0].veto_stats
        assert stats is not None  # cleaning is enabled in this config
        veto_rows.append(
            VetoRow(
                category=category,
                candidates=stats.total,
                discard_rate=stats.discard_rate,
                symbol=stats.symbol,
                markup=stats.markup,
                long=stats.long,
                unpopular=stats.unpopular,
            )
        )

    core_sweep: dict[tuple[str, int], float] = {}
    for category in SWEEP_CATEGORIES:
        truth = cached_truth(category, settings.products, settings.data_seed)
        for n in CORE_SIZES:
            swept = replace(
                config, semantic=SemanticConfig(core_size=n)
            )
            result = cached_run(
                category, settings.products, settings.data_seed, swept
            )
            core_sweep[(category, n)] = precision(
                result.final_triples, truth
            ).precision
    return CleaningImpactResult(
        veto_rows=tuple(veto_rows), core_sweep=core_sweep
    )
