"""Shared infrastructure for the experiment runners.

Datasets and bootstrap runs are memoized process-wide: Tables II and
III analyse the same five configurations, Figures 3 and 5 the same
ten runs — running them twice would double bench time for no insight.
Cache keys are the full configuration reprs, so any knob change misses.

Experiments declare the runs they need up front as
:class:`RunRequest` lists and call :func:`prefetch_runs`, which fans
cache misses out over a :class:`~repro.runtime.CategoryRunner`
process pool and warms the memo — the per-category loops stay serial
and readable, but the expensive bootstraps run in parallel when CPUs
allow.

Scale: the paper uses 2k–12k products per category; the default bench
scale (:data:`DEFAULT_PRODUCTS`, overridable with the
``REPRO_BENCH_PRODUCTS`` environment variable) keeps the full suite
laptop-sized while preserving every qualitative shape.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

from ..config import PipelineConfig
from ..core.bootstrap import BootstrapResult, Bootstrapper
from ..corpus import CategoryDataset, Marketplace
from ..evaluation import TruthSample, build_truth_sample
from ..runtime import CategoryRunner, RunnerJob, default_workers

#: The eight categories of Tables I-IV.
CORE_CATEGORIES: tuple[str, ...] = (
    "tennis",
    "kitchen",
    "cosmetics",
    "garden",
    "shoes",
    "ladies_bags",
    "digital_cameras",
    "vacuum_cleaner",
)

DEFAULT_PRODUCTS = int(os.environ.get("REPRO_BENCH_PRODUCTS", "220"))


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs common to every experiment runner.

    Attributes:
        products: pages per Japanese category (German categories use
            ~40% of it, mirroring the paper's much smaller German sets).
        data_seed: marketplace RNG seed.
        iterations: bootstrap cycles for multi-iteration experiments.
    """

    products: int = DEFAULT_PRODUCTS
    data_seed: int = 7
    iterations: int = 5

    @property
    def german_products(self) -> int:
        return max(40, int(0.4 * self.products))


_dataset_cache: dict[tuple, CategoryDataset] = {}
_run_cache: dict[tuple, BootstrapResult] = {}


def clear_cache() -> None:
    """Drop all memoized datasets and runs (tests use this)."""
    _dataset_cache.clear()
    _run_cache.clear()


def cached_dataset(
    category: str, products: int, data_seed: int
) -> CategoryDataset:
    """Generate (or reuse) a category dataset."""
    key = (category, products, data_seed)
    if key not in _dataset_cache:
        _dataset_cache[key] = Marketplace(seed=data_seed).generate(
            category, products
        )
    return _dataset_cache[key]


def cached_truth(
    category: str, products: int, data_seed: int
) -> TruthSample:
    """Truth sample for a cached dataset."""
    return build_truth_sample(cached_dataset(category, products, data_seed))


def cached_run(
    category: str,
    products: int,
    data_seed: int,
    config: PipelineConfig,
    attribute_subset: Sequence[str] | None = None,
) -> BootstrapResult:
    """Run (or reuse) a bootstrap for one configuration."""
    key = _run_key(
        RunRequest(category, products, data_seed, config, attribute_subset)
    )
    if key not in _run_cache:
        dataset = cached_dataset(category, products, data_seed)
        bootstrapper = Bootstrapper(config, attribute_subset)
        _run_cache[key] = bootstrapper.run(
            list(dataset.product_pages), dataset.query_log
        )
    return _run_cache[key]


@dataclass(frozen=True)
class RunRequest:
    """One bootstrap run an experiment is about to need.

    The fields mirror :func:`cached_run`'s signature so a runner can
    warm exactly the cache entries the serial code will read.
    """

    category: str
    products: int
    data_seed: int
    config: PipelineConfig
    attribute_subset: Sequence[str] | None = None


def _run_key(request: RunRequest) -> tuple:
    subset_key = (
        tuple(sorted(request.attribute_subset))
        if request.attribute_subset
        else None
    )
    return (
        request.category,
        request.products,
        request.data_seed,
        repr(request.config),
        subset_key,
    )


def prefetch_runs(
    requests: Sequence[RunRequest],
    workers: int | None = None,
) -> None:
    """Warm the run cache for ``requests``, in parallel when possible.

    Deduplicates against the memo, fans the cache misses out over a
    :class:`~repro.runtime.CategoryRunner` process pool (generator-spec
    jobs, so only a few strings and ints cross the process boundary),
    and stores the returned :class:`BootstrapResult` objects under the
    exact keys :func:`cached_run` will look up. Experiments keep their
    readable serial loops; every ``cached_run`` call after a prefetch
    is a cache hit.

    A failed parallel job falls back to an inline :func:`cached_run`
    (which raises normally), so failure behaviour is identical to the
    pre-runner serial path. With one miss — or one worker — everything
    runs inline and the pool is never built.
    """
    missing: list[RunRequest] = []
    seen: set[tuple] = set()
    for request in requests:
        key = _run_key(request)
        if key in _run_cache or key in seen:
            continue
        seen.add(key)
        missing.append(request)
    if not missing:
        return
    workers = default_workers(len(missing)) if workers is None else workers
    if len(missing) == 1 or workers <= 1:
        for request in missing:
            cached_run(
                request.category,
                request.products,
                request.data_seed,
                request.config,
                request.attribute_subset,
            )
        return
    jobs = [
        RunnerJob.generate(
            request.category,
            request.products,
            request.config,
            data_seed=request.data_seed,
            attribute_subset=request.attribute_subset,
            name=f"{request.category}#{index}",
        )
        for index, request in enumerate(missing)
    ]
    runner = CategoryRunner(workers=workers, mode="process", retries=1)
    for request, outcome in zip(missing, runner.run(jobs)):
        if outcome.ok:
            _run_cache[_run_key(request)] = outcome.result.bootstrap
        else:
            cached_run(
                request.category,
                request.products,
                request.data_seed,
                request.config,
                request.attribute_subset,
            )


def crf_config(
    iterations: int,
    *,
    cleaning: bool = True,
    semantic: bool | None = None,
    syntactic: bool | None = None,
    diversification: bool = True,
) -> PipelineConfig:
    """A CRF pipeline config with explicit cleaning knobs."""
    return PipelineConfig(
        iterations=iterations,
        tagger="crf",
        enable_syntactic_cleaning=(
            cleaning if syntactic is None else syntactic
        ),
        enable_semantic_cleaning=(
            cleaning if semantic is None else semantic
        ),
        enable_diversification=diversification,
    )


def lstm_config(
    iterations: int, epochs: int, *, cleaning: bool
) -> PipelineConfig:
    """An RNN/BiLSTM pipeline config (paper: 2 vs 10 epochs)."""
    from ..config import LstmConfig

    return PipelineConfig(
        iterations=iterations,
        tagger="lstm",
        enable_syntactic_cleaning=cleaning,
        enable_semantic_cleaning=cleaning,
        lstm=LstmConfig(epochs=epochs),
    )
