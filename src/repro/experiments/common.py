"""Shared infrastructure for the experiment runners.

Datasets and bootstrap runs are memoized process-wide: Tables II and
III analyse the same five configurations, Figures 3 and 5 the same
ten runs — running them twice would double bench time for no insight.
Cache keys are the full configuration reprs, so any knob change misses.

Scale: the paper uses 2k–12k products per category; the default bench
scale (:data:`DEFAULT_PRODUCTS`, overridable with the
``REPRO_BENCH_PRODUCTS`` environment variable) keeps the full suite
laptop-sized while preserving every qualitative shape.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

from ..config import PipelineConfig
from ..core.bootstrap import BootstrapResult, Bootstrapper
from ..corpus import CategoryDataset, Marketplace
from ..evaluation import TruthSample, build_truth_sample

#: The eight categories of Tables I-IV.
CORE_CATEGORIES: tuple[str, ...] = (
    "tennis",
    "kitchen",
    "cosmetics",
    "garden",
    "shoes",
    "ladies_bags",
    "digital_cameras",
    "vacuum_cleaner",
)

DEFAULT_PRODUCTS = int(os.environ.get("REPRO_BENCH_PRODUCTS", "220"))


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs common to every experiment runner.

    Attributes:
        products: pages per Japanese category (German categories use
            ~40% of it, mirroring the paper's much smaller German sets).
        data_seed: marketplace RNG seed.
        iterations: bootstrap cycles for multi-iteration experiments.
    """

    products: int = DEFAULT_PRODUCTS
    data_seed: int = 7
    iterations: int = 5

    @property
    def german_products(self) -> int:
        return max(40, int(0.4 * self.products))


_dataset_cache: dict[tuple, CategoryDataset] = {}
_run_cache: dict[tuple, BootstrapResult] = {}


def clear_cache() -> None:
    """Drop all memoized datasets and runs (tests use this)."""
    _dataset_cache.clear()
    _run_cache.clear()


def cached_dataset(
    category: str, products: int, data_seed: int
) -> CategoryDataset:
    """Generate (or reuse) a category dataset."""
    key = (category, products, data_seed)
    if key not in _dataset_cache:
        _dataset_cache[key] = Marketplace(seed=data_seed).generate(
            category, products
        )
    return _dataset_cache[key]


def cached_truth(
    category: str, products: int, data_seed: int
) -> TruthSample:
    """Truth sample for a cached dataset."""
    return build_truth_sample(cached_dataset(category, products, data_seed))


def cached_run(
    category: str,
    products: int,
    data_seed: int,
    config: PipelineConfig,
    attribute_subset: Sequence[str] | None = None,
) -> BootstrapResult:
    """Run (or reuse) a bootstrap for one configuration."""
    subset_key = tuple(sorted(attribute_subset)) if attribute_subset else None
    key = (category, products, data_seed, repr(config), subset_key)
    if key not in _run_cache:
        dataset = cached_dataset(category, products, data_seed)
        bootstrapper = Bootstrapper(config, attribute_subset)
        _run_cache[key] = bootstrapper.run(
            list(dataset.product_pages), dataset.query_log
        )
    return _run_cache[key]


def crf_config(
    iterations: int,
    *,
    cleaning: bool = True,
    semantic: bool | None = None,
    syntactic: bool | None = None,
    diversification: bool = True,
) -> PipelineConfig:
    """A CRF pipeline config with explicit cleaning knobs."""
    return PipelineConfig(
        iterations=iterations,
        tagger="crf",
        enable_syntactic_cleaning=(
            cleaning if syntactic is None else syntactic
        ),
        enable_semantic_cleaning=(
            cleaning if semantic is None else semantic
        ),
        enable_diversification=diversification,
    )


def lstm_config(
    iterations: int, epochs: int, *, cleaning: bool
) -> PipelineConfig:
    """An RNN/BiLSTM pipeline config (paper: 2 vs 10 epochs)."""
    from ..config import LstmConfig

    return PipelineConfig(
        iterations=iterations,
        tagger="lstm",
        enable_syntactic_cleaning=cleaning,
        enable_semantic_cleaning=cleaning,
        lstm=LstmConfig(epochs=epochs),
    )
