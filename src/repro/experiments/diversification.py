"""§VIII-A — the value-diversification case study (Vacuum Cleaner).

The paper's account: integer weights dominate descriptions, so without
diversification no decimal weight is sampled into the seed; the CRF
then tags only the decimal part plus unit (``5kg`` out of ``2.5kg``),
weight coverage collapses (40% → 1% for that property), and the
distinct-value count falls from 1068 (including decimals) to 166
(all integers).

This runner reports, with and without the module: overall precision,
the weight attribute's coverage, the distinct weight values in the
seed and in the final output, and how many of them are decimals.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation import attribute_coverage, precision
from ..evaluation.report import format_table
from .common import (
    ExperimentSettings,
    RunRequest,
    cached_run,
    cached_truth,
    crf_config,
    prefetch_runs,
)

CATEGORY = "vacuum_cleaner"
WEIGHT_ATTRIBUTE = "juryo"


def _is_decimal(value_key: str) -> bool:
    return " . " in value_key or "," in value_key


@dataclass(frozen=True)
class DiversificationSide:
    """Measurements for one setting (div on / off)."""

    precision: float
    weight_coverage: float
    seed_weight_values: int
    seed_weight_decimals: int
    final_weight_values: int
    final_weight_decimals: int


@dataclass(frozen=True)
class DiversificationResult:
    with_div: DiversificationSide
    without_div: DiversificationSide

    def format(self) -> str:
        rows = []
        for label, side in (
            ("with diversification", self.with_div),
            ("without diversification", self.without_div),
        ):
            rows.append(
                [
                    label,
                    100.0 * side.precision,
                    100.0 * side.weight_coverage,
                    side.seed_weight_values,
                    side.seed_weight_decimals,
                    side.final_weight_values,
                    side.final_weight_decimals,
                ]
            )
        return format_table(
            [
                "setting", "precision%", "weight cov.%",
                "seed wt vals", "seed decimals",
                "final wt vals", "final decimals",
            ],
            rows,
            title="§VIII-A — impact of value diversification "
            "(Vacuum Cleaner, weight)",
        )


def _side(diversification: bool, settings: ExperimentSettings):
    truth = cached_truth(CATEGORY, settings.products, settings.data_seed)
    config = crf_config(
        settings.iterations,
        cleaning=True,
        diversification=diversification,
    )
    result = cached_run(
        CATEGORY, settings.products, settings.data_seed, config
    )
    weight_aliases = {
        surface
        for surface, canonical in truth.alias_map.items()
        if canonical == WEIGHT_ATTRIBUTE
    }
    seed_values = {
        value
        for attribute, counter in result.seed.values.items()
        if attribute in weight_aliases
        for value in counter
    }
    final_values = {
        triple.value
        for triple in truth.canonicalize_all(result.final_triples)
        if triple.attribute == WEIGHT_ATTRIBUTE
    }
    coverage_map = attribute_coverage(
        result.final_triples, settings.products, truth.alias_map
    )
    return DiversificationSide(
        precision=precision(result.final_triples, truth).precision,
        weight_coverage=coverage_map.get(WEIGHT_ATTRIBUTE, 0.0),
        seed_weight_values=len(seed_values),
        seed_weight_decimals=sum(
            1 for value in seed_values if _is_decimal(value)
        ),
        final_weight_values=len(final_values),
        final_weight_decimals=sum(
            1 for value in final_values if _is_decimal(value)
        ),
    )


def run(
    settings: ExperimentSettings | None = None,
) -> DiversificationResult:
    """Reproduce the §VIII-A diversification study."""
    settings = settings or ExperimentSettings()
    prefetch_runs(
        [
            RunRequest(
                CATEGORY,
                settings.products,
                settings.data_seed,
                crf_config(
                    settings.iterations,
                    cleaning=True,
                    diversification=diversification,
                ),
            )
            for diversification in (True, False)
        ]
    )
    return DiversificationResult(
        with_div=_side(True, settings),
        without_div=_side(False, settings),
    )
