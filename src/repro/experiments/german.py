"""§VII-B/C — the German categories.

The paper reports (CRF + cleaning): mailbox 94.36% precision / 73%
coverage / 2943 triples; coffee machines 92% / 57.3% / 1626 triples;
garden 84.2% / 87.03% / 2096 triples — i.e. results comparable to
Japanese, which is the language-independence claim. German datasets are
much smaller (~2k items vs ~10k), which the settings mirror.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation import coverage, precision
from ..evaluation.report import format_table
from .common import (
    ExperimentSettings,
    RunRequest,
    cached_run,
    cached_truth,
    crf_config,
    prefetch_runs,
)

GERMAN_CATEGORIES = ("mailbox", "coffee_machines", "garden_de")


@dataclass(frozen=True)
class GermanRow:
    category: str
    precision: float
    coverage: float
    n_triples: int


@dataclass(frozen=True)
class GermanResult:
    rows: tuple[GermanRow, ...]

    def format(self) -> str:
        return format_table(
            ["category", "precision%", "coverage%", "#triples"],
            [
                [
                    row.category,
                    100.0 * row.precision,
                    100.0 * row.coverage,
                    row.n_triples,
                ]
                for row in self.rows
            ],
            title="§VII-B/C — German categories (CRF + cleaning, "
            "final iteration)",
        )


def run(settings: ExperimentSettings | None = None) -> GermanResult:
    """Reproduce the German results."""
    settings = settings or ExperimentSettings()
    products = settings.german_products
    config = crf_config(settings.iterations, cleaning=True)
    prefetch_runs(
        [
            RunRequest(category, products, settings.data_seed, config)
            for category in GERMAN_CATEGORIES
        ]
    )
    rows = []
    for category in GERMAN_CATEGORIES:
        truth = cached_truth(category, products, settings.data_seed)
        result = cached_run(
            category, products, settings.data_seed, config
        )
        triples = result.final_triples
        rows.append(
            GermanRow(
                category=category,
                precision=precision(triples, truth).precision,
                coverage=coverage(triples, products),
                n_triples=len(triples),
            )
        )
    return GermanResult(rows=tuple(rows))
