"""Figure 5 — total triples per category through bootstrap iterations
(CRF with cleaning).

Expected shape: a steady increase with decreasing marginal gains as
iterations continue. Shares its runs with Figure 3's cleaned curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation.report import format_table
from .common import (
    ExperimentSettings,
    RunRequest,
    cached_run,
    crf_config,
    prefetch_runs,
)
from .figure3 import FIGURE3_CATEGORIES


@dataclass(frozen=True)
class Figure5Result:
    """counts[category] -> #triples at iterations 0..N."""

    counts: dict[str, tuple[int, ...]]

    def format(self) -> str:
        iterations = len(next(iter(self.counts.values())))
        rows = [
            [category, *values]
            for category, values in sorted(self.counts.items())
        ]
        return format_table(
            ["category"] + [f"iter{i}" for i in range(iterations)],
            rows,
            title="Figure 5 — number of triples through bootstrap "
            "iterations (CRF + cleaning)",
        )

    def gains(self, category: str) -> tuple[int, ...]:
        """Per-iteration increase (diminishing-returns check)."""
        values = self.counts[category]
        return tuple(
            values[i + 1] - values[i] for i in range(len(values) - 1)
        )


def run(settings: ExperimentSettings | None = None) -> Figure5Result:
    """Reproduce Figure 5."""
    settings = settings or ExperimentSettings()
    counts: dict[str, tuple[int, ...]] = {}
    config = crf_config(settings.iterations, cleaning=True)
    prefetch_runs(
        [
            RunRequest(
                category, settings.products, settings.data_seed, config
            )
            for category in FIGURE3_CATEGORIES
        ]
    )
    for category in FIGURE3_CATEGORIES:
        result = cached_run(
            category, settings.products, settings.data_seed, config
        )
        counts[category] = tuple(
            len(result.triples_after(iteration))
            for iteration in range(len(result.iterations) + 1)
        )
    return Figure5Result(counts=counts)
