"""Table IV — module-ablation precision for Vacuum Cleaner and Garden.

Rows: the full CRF system, minus semantic cleaning (``-sem``), minus
both cleaning stages (``-sem-synt``), and minus value diversification
(``-div``). The paper reads precision after the first cycle (top half)
and the fifth cycle (bottom half).

Expected shapes: every knockout loses precision; Garden (noisy, small
seed) suffers most from removing semantic cleaning; Vacuum Cleaner's
``-div`` drop comes from decimal weights (§VIII-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation import precision
from ..evaluation.report import format_table
from .common import (
    ExperimentSettings,
    RunRequest,
    cached_run,
    cached_truth,
    crf_config,
    prefetch_runs,
)

CATEGORIES = ("vacuum_cleaner", "garden")

ABLATIONS = ("CRF full", "CRF -sem", "CRF -sem -synt", "CRF -div")


def _config_for(name: str, iterations: int):
    if name == "CRF full":
        return crf_config(iterations, cleaning=True)
    if name == "CRF -sem":
        return crf_config(iterations, semantic=False, syntactic=True)
    if name == "CRF -sem -synt":
        return crf_config(iterations, semantic=False, syntactic=False)
    if name == "CRF -div":
        return crf_config(iterations, cleaning=True, diversification=False)
    raise ValueError(name)


@dataclass(frozen=True)
class Table4Result:
    """precision[(ablation, category, iteration)] with iterations 1, N."""

    precisions: dict[tuple[str, str, int], float]
    iterations: int

    def format(self) -> str:
        blocks = []
        for read in (1, self.iterations):
            rows = []
            for name in ABLATIONS:
                rows.append(
                    [name]
                    + [
                        100.0 * self.precisions[(name, category, read)]
                        for category in CATEGORIES
                    ]
                )
            blocks.append(
                format_table(
                    ["configuration", *CATEGORIES],
                    rows,
                    title=(
                        f"Table IV — precision after bootstrap cycle {read}"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run(settings: ExperimentSettings | None = None) -> Table4Result:
    """Reproduce Table IV (both halves)."""
    settings = settings or ExperimentSettings()
    prefetch_runs(
        [
            RunRequest(
                category,
                settings.products,
                settings.data_seed,
                _config_for(name, settings.iterations),
            )
            for category in CATEGORIES
            for name in ABLATIONS
        ]
    )
    precisions: dict[tuple[str, str, int], float] = {}
    for category in CATEGORIES:
        truth = cached_truth(category, settings.products, settings.data_seed)
        for name in ABLATIONS:
            config = _config_for(name, settings.iterations)
            result = cached_run(
                category, settings.products, settings.data_seed, config
            )
            for read in (1, settings.iterations):
                triples = result.triples_after(
                    min(read, len(result.iterations))
                )
                precisions[(name, category, read)] = precision(
                    triples, truth
                ).precision
    return Table4Result(precisions=precisions, iterations=settings.iterations)
