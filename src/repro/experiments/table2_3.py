"""Tables II and III — precision and coverage after the first bootstrap
iteration for the five system configurations.

Configurations (Section VII-B): RNN 2 epochs, RNN 10 epochs, RNN 2
epochs + cleaning, CRF, CRF + cleaning. Both tables come from the same
runs, so the module computes them together and the two benches share
the memoized results.

Expected shapes: CRF beats raw RNN; RNN@10 epochs overfits (precision
collapses, coverage balloons — Table III's inverse correlation);
cleaning lifts precision at some coverage cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation import coverage, precision
from ..evaluation.report import format_table
from .common import (
    CORE_CATEGORIES,
    ExperimentSettings,
    RunRequest,
    cached_run,
    cached_truth,
    crf_config,
    lstm_config,
    prefetch_runs,
)

#: Configuration rows in paper order.
CONFIG_NAMES = (
    "RNN 2 epochs",
    "RNN 10 epochs",
    "RNN 2 epochs + cleaning",
    "CRF",
    "CRF + cleaning",
)


def _config_for(name: str, settings: ExperimentSettings):
    """Map a row name to (PipelineConfig, read_iteration)."""
    if name == "RNN 2 epochs":
        return lstm_config(1, epochs=2, cleaning=False), 1
    if name == "RNN 10 epochs":
        return lstm_config(1, epochs=10, cleaning=False), 1
    if name == "RNN 2 epochs + cleaning":
        return lstm_config(1, epochs=2, cleaning=True), 1
    # CRF rows reuse the 5-iteration runs of Figures 3/5 and read the
    # state after the first cycle.
    if name == "CRF":
        return crf_config(settings.iterations, cleaning=False), 1
    if name == "CRF + cleaning":
        return crf_config(settings.iterations, cleaning=True), 1
    raise ValueError(name)


@dataclass(frozen=True)
class ConfigCell:
    precision: float
    coverage: float
    n_triples: int


@dataclass(frozen=True)
class Table23Result:
    """Precision (Table II) and coverage (Table III) per config/category."""

    cells: dict[tuple[str, str], ConfigCell]  # (config, category)
    categories: tuple[str, ...]

    def _format(self, metric: str, title: str) -> str:
        rows = []
        for name in CONFIG_NAMES:
            row: list[object] = [name]
            for category in self.categories:
                cell = self.cells[(name, category)]
                row.append(100.0 * getattr(cell, metric))
            rows.append(row)
        return format_table(
            ["configuration", *self.categories], rows, title=title
        )

    def format_precision(self) -> str:
        return self._format(
            "precision",
            "Table II — precision after the first bootstrap iteration",
        )

    def format_coverage(self) -> str:
        return self._format(
            "coverage",
            "Table III — product coverage after the first bootstrap iteration",
        )

    def format(self) -> str:
        return self.format_precision() + "\n\n" + self.format_coverage()


def run(settings: ExperimentSettings | None = None) -> Table23Result:
    """Reproduce Tables II and III."""
    settings = settings or ExperimentSettings()
    prefetch_runs(
        [
            RunRequest(
                category,
                settings.products,
                settings.data_seed,
                _config_for(name, settings)[0],
            )
            for category in CORE_CATEGORIES
            for name in CONFIG_NAMES
        ]
    )
    cells: dict[tuple[str, str], ConfigCell] = {}
    for category in CORE_CATEGORIES:
        truth = cached_truth(
            category, settings.products, settings.data_seed
        )
        for name in CONFIG_NAMES:
            config, read_iteration = _config_for(name, settings)
            result = cached_run(
                category, settings.products, settings.data_seed, config
            )
            triples = result.triples_after(
                min(read_iteration, len(result.iterations))
            )
            cells[(name, category)] = ConfigCell(
                precision=precision(triples, truth).precision,
                coverage=coverage(triples, settings.products),
                n_triples=len(triples),
            )
    return Table23Result(cells=cells, categories=CORE_CATEGORIES)
