"""Figure 3 — precision and coverage across bootstrap iterations,
CRF with and without cleaning.

The paper plots per-category curves over five cycles in four panels:
precision/coverage × cleaning on/off. Expected shapes: precision decays
slowly and stays above ~85% *with* cleaning (high-precision categories
barely move); coverage rises steeply across iterations, a little less
steeply with cleaning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation import coverage, precision
from ..evaluation.report import format_table
from .common import (
    ExperimentSettings,
    RunRequest,
    cached_run,
    cached_truth,
    crf_config,
    prefetch_runs,
)

#: Categories plotted (vacuum_cleaner included so Figures 7/8 and the
#: Table IV ablations can share the same cached full run).
FIGURE3_CATEGORIES = (
    "tennis",
    "kitchen",
    "cosmetics",
    "garden",
    "ladies_bags",
    "digital_cameras",
    "vacuum_cleaner",
)


@dataclass(frozen=True)
class CurvePoint:
    iteration: int
    precision: float
    coverage: float
    n_triples: int


@dataclass(frozen=True)
class Figure3Result:
    """curves[(category, cleaned)] -> points at iterations 0..N."""

    curves: dict[tuple[str, bool], tuple[CurvePoint, ...]]

    def format(self) -> str:
        blocks = []
        for cleaned in (False, True):
            label = "with cleaning" if cleaned else "without cleaning"
            for metric in ("precision", "coverage"):
                rows = []
                iterations = range(
                    len(next(iter(self.curves.values())))
                )
                for (category, flag), points in sorted(self.curves.items()):
                    if flag != cleaned:
                        continue
                    rows.append(
                        [category]
                        + [
                            100.0 * getattr(point, metric)
                            for point in points
                        ]
                    )
                blocks.append(
                    format_table(
                        ["category"]
                        + [f"iter{i}" for i in iterations],
                        rows,
                        title=f"Figure 3 — {metric} ({label})",
                    )
                )
        return "\n\n".join(blocks)


def run(settings: ExperimentSettings | None = None) -> Figure3Result:
    """Reproduce Figure 3's four panels."""
    settings = settings or ExperimentSettings()
    prefetch_runs(
        [
            RunRequest(
                category,
                settings.products,
                settings.data_seed,
                crf_config(settings.iterations, cleaning=cleaned),
            )
            for category in FIGURE3_CATEGORIES
            for cleaned in (False, True)
        ]
    )
    curves: dict[tuple[str, bool], tuple[CurvePoint, ...]] = {}
    for category in FIGURE3_CATEGORIES:
        truth = cached_truth(category, settings.products, settings.data_seed)
        for cleaned in (False, True):
            config = crf_config(settings.iterations, cleaning=cleaned)
            result = cached_run(
                category, settings.products, settings.data_seed, config
            )
            points = []
            for iteration in range(len(result.iterations) + 1):
                triples = result.triples_after(iteration)
                points.append(
                    CurvePoint(
                        iteration=iteration,
                        precision=precision(triples, truth).precision,
                        coverage=coverage(triples, settings.products),
                        n_triples=len(triples),
                    )
                )
            curves[(category, cleaned)] = tuple(points)
    return Figure3Result(curves=curves)
