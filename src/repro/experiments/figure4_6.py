"""Figures 4 and 6 — triple-count views of the first bootstrap cycle.

Figure 4: average triples per product for CRF vs RNN (both with
cleaning) after the first iteration — the paper finds CRF consistently
associates more triples, and both stay below three per product.

Figure 6: the *increase* in triples after the first cycle for the RNN
configurations (2 epochs, 10 epochs, 2 epochs + cleaning) — 10 epochs
adds far more triples, at the precision cost Table II shows; cleaning
systematically shrinks the increase.

Both figures share the memoized runs of Tables II/III.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation.metrics import triples_per_product
from ..evaluation.report import format_table
from .common import (
    CORE_CATEGORIES,
    ExperimentSettings,
    RunRequest,
    cached_run,
    crf_config,
    lstm_config,
    prefetch_runs,
)


@dataclass(frozen=True)
class Figure4Result:
    """Average triples per product, CRF vs RNN (cleaned, 1st cycle)."""

    per_product: dict[tuple[str, str], float]  # (model, category)

    def format(self) -> str:
        rows = []
        for model in ("CRF", "RNN"):
            rows.append(
                [model]
                + [
                    self.per_product[(model, category)]
                    for category in CORE_CATEGORIES
                ]
            )
        return format_table(
            ["model", *CORE_CATEGORIES],
            rows,
            title="Figure 4 — average triples per product "
            "(1st iteration, with cleaning)",
        )


@dataclass(frozen=True)
class Figure6Result:
    """Triple increase over the seed after the 1st cycle, RNN configs."""

    increases: dict[tuple[str, str], int]  # (config, category)
    configs: tuple[str, ...] = (
        "RNN 2 epochs",
        "RNN 10 epochs",
        "RNN 2 epochs + cleaning",
    )

    def format(self) -> str:
        rows = [
            [name]
            + [
                self.increases[(name, category)]
                for category in CORE_CATEGORIES
            ]
            for name in self.configs
        ]
        return format_table(
            ["configuration", *CORE_CATEGORIES],
            rows,
            title="Figure 6 — increase in #triples after the 1st "
            "bootstrap cycle (RNN configurations)",
        )


def run_figure4(
    settings: ExperimentSettings | None = None,
) -> Figure4Result:
    """Reproduce Figure 4."""
    settings = settings or ExperimentSettings()
    prefetch_runs(
        [
            RunRequest(category, settings.products, settings.data_seed, config)
            for category in CORE_CATEGORIES
            for config in (
                crf_config(settings.iterations, cleaning=True),
                lstm_config(1, epochs=2, cleaning=True),
            )
        ]
    )
    per_product: dict[tuple[str, str], float] = {}
    for category in CORE_CATEGORIES:
        crf = cached_run(
            category,
            settings.products,
            settings.data_seed,
            crf_config(settings.iterations, cleaning=True),
        )
        rnn = cached_run(
            category,
            settings.products,
            settings.data_seed,
            lstm_config(1, epochs=2, cleaning=True),
        )
        per_product[("CRF", category)] = triples_per_product(
            crf.triples_after(1), settings.products
        )
        per_product[("RNN", category)] = triples_per_product(
            rnn.triples_after(1), settings.products
        )
    return Figure4Result(per_product=per_product)


def run_figure6(
    settings: ExperimentSettings | None = None,
) -> Figure6Result:
    """Reproduce Figure 6."""
    settings = settings or ExperimentSettings()
    increases: dict[tuple[str, str], int] = {}
    configurations = {
        "RNN 2 epochs": lstm_config(1, epochs=2, cleaning=False),
        "RNN 10 epochs": lstm_config(1, epochs=10, cleaning=False),
        "RNN 2 epochs + cleaning": lstm_config(1, epochs=2, cleaning=True),
    }
    prefetch_runs(
        [
            RunRequest(category, settings.products, settings.data_seed, config)
            for category in CORE_CATEGORIES
            for config in configurations.values()
        ]
    )
    for category in CORE_CATEGORIES:
        for name, config in configurations.items():
            result = cached_run(
                category, settings.products, settings.data_seed, config
            )
            increases[(name, category)] = len(
                result.triples_after(1)
            ) - len(result.seed_triples)
    return Figure6Result(increases=increases)
