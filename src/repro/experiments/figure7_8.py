"""Figures 7 and 8 — attribute coverage: global vs specialized models.

Section VIII-D: a single global model tags every attribute; training a
*specialized* model on a subset of attributes multiplies those
attributes' coverage (orders of magnitude in some cases), but fully
per-attribute models can lose precision — the paper's example is
``power supply type`` in Vacuum Cleaner dropping from >90% to <70%
because the model loses the inter-attribute contrast.

Figure 7 studies Digital Cameras (A1 shutter speed, A2 effective
pixels, A3 weight); Figure 8 Vacuum Cleaner (B1 type, B2 container
type, B3 power supply type).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evaluation import attribute_coverage, precision
from ..evaluation.report import format_table
from .common import (
    ExperimentSettings,
    RunRequest,
    cached_run,
    cached_truth,
    crf_config,
    prefetch_runs,
)

#: (category, studied attributes) per figure.
FIGURE7 = ("digital_cameras", ("shatta supido", "yukogaso", "juryo"))
FIGURE8 = ("vacuum_cleaner", ("taipu", "shujin hoshiki", "dengen hoshiki"))


@dataclass(frozen=True)
class SpecializationResult:
    """Coverage per attribute under each modelling regime."""

    category: str
    attributes: tuple[str, ...]
    global_coverage: dict[str, float]
    specialized_coverage: dict[str, float]
    single_attribute_precision: dict[str, float]
    global_precision: dict[str, float]

    def format(self, figure_name: str) -> str:
        rows = []
        for attribute in self.attributes:
            rows.append(
                [
                    attribute,
                    100.0 * self.global_coverage.get(attribute, 0.0),
                    100.0 * self.specialized_coverage.get(attribute, 0.0),
                    100.0 * self.global_precision.get(attribute, 0.0),
                    100.0 * self.single_attribute_precision.get(
                        attribute, 0.0
                    ),
                ]
            )
        return format_table(
            [
                "attribute", "cov.global%", "cov.specialized%",
                "prec.global%", "prec.single-attr%",
            ],
            rows,
            title=(
                f"{figure_name} — attribute coverage, global vs "
                f"specialized models ({self.category})"
            ),
        )


def _per_attribute_precision(triples, truth, attributes):
    results: dict[str, float] = {}
    for attribute in attributes:
        subset = {
            triple
            for triple in truth.canonicalize_all(triples)
            if triple.attribute == attribute
        }
        if subset:
            results[attribute] = precision(subset, truth).precision
        else:
            results[attribute] = 0.0
    return results


def run_specialization(
    category: str,
    attributes: tuple[str, ...],
    settings: ExperimentSettings | None = None,
) -> SpecializationResult:
    """Compare the global model against specialized models."""
    settings = settings or ExperimentSettings()
    truth = cached_truth(category, settings.products, settings.data_seed)
    config = crf_config(settings.iterations, cleaning=True)

    # The global, specialized and every single-attribute run are
    # mutually independent: warm them all in one fan-out.
    prefetch_runs(
        [
            RunRequest(category, settings.products, settings.data_seed, config),
            RunRequest(
                category,
                settings.products,
                settings.data_seed,
                config,
                attribute_subset=attributes,
            ),
            *(
                RunRequest(
                    category,
                    settings.products,
                    settings.data_seed,
                    config,
                    attribute_subset=(attribute,),
                )
                for attribute in attributes
            ),
        ]
    )

    global_run = cached_run(
        category, settings.products, settings.data_seed, config
    )
    global_cov = attribute_coverage(
        global_run.final_triples, settings.products, truth.alias_map
    )
    global_prec = _per_attribute_precision(
        global_run.final_triples, truth, attributes
    )

    specialized_run = cached_run(
        category,
        settings.products,
        settings.data_seed,
        config,
        attribute_subset=attributes,
    )
    specialized_cov = attribute_coverage(
        specialized_run.final_triples, settings.products, truth.alias_map
    )

    single_prec: dict[str, float] = {}
    for attribute in attributes:
        single_run = cached_run(
            category,
            settings.products,
            settings.data_seed,
            config,
            attribute_subset=(attribute,),
        )
        single_prec.update(
            _per_attribute_precision(
                single_run.final_triples, truth, (attribute,)
            )
        )

    return SpecializationResult(
        category=category,
        attributes=attributes,
        global_coverage={
            attribute: global_cov.get(attribute, 0.0)
            for attribute in attributes
        },
        specialized_coverage={
            attribute: specialized_cov.get(attribute, 0.0)
            for attribute in attributes
        },
        single_attribute_precision=single_prec,
        global_precision=global_prec,
    )


def run_figure7(
    settings: ExperimentSettings | None = None,
) -> SpecializationResult:
    """Reproduce Figure 7 (Digital Cameras)."""
    return run_specialization(FIGURE7[0], FIGURE7[1], settings)


def run_figure8(
    settings: ExperimentSettings | None = None,
) -> SpecializationResult:
    """Reproduce Figure 8 (Vacuum Cleaner)."""
    return run_specialization(FIGURE8[0], FIGURE8[1], settings)
