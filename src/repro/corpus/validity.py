"""Structural pair validity: is ``<attribute, value>`` a sane association?

Stands in for the paper's human annotators judging whether a pair like
``<color, pink>`` is a valid association (independent of any product).
Validity is *structural*: a categorical value must come from the
attribute's inventory; a numeric value must be a number in the
attribute's unit; a composite value must instantiate one of the
attribute's patterns. Magnitudes are not range-checked — a human would
accept ``<weight, 100 kg>`` for any product domain.
"""

from __future__ import annotations

import re

from ..nlp import get_locale
from .schema import (
    AttributeSpec,
    CategoricalValues,
    CategorySchema,
    CompositeValues,
    NumericValues,
)
from .values import value_key

_N_SENTINEL = "7777777"
_M_SENTINEL = "8888888"


def _numeric_regex(unit: str, locale: str) -> re.Pattern[str]:
    if locale == "de":
        number = r"[0-9]+(?:[.,][0-9]+)*"
    else:
        # ja tokenization splits at separators: "2 . 5" / "2 , 430".
        number = r"[0-9]+(?: [.,] [0-9]+)*"
    return re.compile(rf"^{number} {re.escape(unit)}$")


def _composite_regexes(
    spec: CompositeValues, locale: str
) -> list[re.Pattern[str]]:
    regexes: list[re.Pattern[str]] = []
    for pattern in spec.patterns:
        filled = pattern.replace("{n}", _N_SENTINEL).replace(
            "{m}", _M_SENTINEL
        )
        key = value_key(filled, locale)
        escaped = re.escape(key)
        escaped = escaped.replace(_N_SENTINEL, "[0-9]+")
        escaped = escaped.replace(_M_SENTINEL, "[0-9]+")
        regexes.append(re.compile(f"^{escaped}$"))
    return regexes


class PairValidator:
    """Judges pair validity for a set of category schemas.

    Args:
        schemas: the schemas whose attributes are known; in the
            heterogeneous union study several schemas contribute.

    An attribute name may be canonical or an alias; unknown attribute
    names are always invalid (junk table rows, drifted clusters).
    """

    def __init__(self, schemas: tuple[CategorySchema, ...]):
        self._checkers: dict[str, list] = {}
        for schema in schemas:
            for attribute in schema.attributes:
                checker = self._build_checker(attribute, schema.locale)
                for name in attribute.all_names():
                    self._checkers.setdefault(name, []).append(checker)

    @staticmethod
    def _build_checker(attribute: AttributeSpec, locale: str):
        spec = attribute.values
        if isinstance(spec, CategoricalValues):
            inventory = frozenset(
                value_key(value, locale) for value in spec.values
            )
            return lambda key: key in inventory
        if isinstance(spec, NumericValues):
            regex = _numeric_regex(spec.unit, locale)
            return lambda key: bool(regex.match(key))
        regexes = _composite_regexes(spec, locale)
        return lambda key: any(regex.match(key) for regex in regexes)

    def knows_attribute(self, attribute: str) -> bool:
        """True when the attribute name belongs to some schema."""
        return attribute in self._checkers

    def is_valid(self, attribute: str, key: str) -> bool:
        """True when ``<attribute, key>`` is a structurally valid pair."""
        checkers = self._checkers.get(attribute)
        if not checkers:
            return False
        return any(checker(key) for checker in checkers)
